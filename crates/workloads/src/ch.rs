//! The CH-benchmark (§VI-C, Fig. 11): TPC-C's transactional schema with
//! TPC-H-style analytical queries on top (Cole et al., DBTest '11).
//!
//! The paper evaluates queries 1–6, 8 and 10. CH queries that use operators
//! outside this engine's vocabulary (correlated EXISTS subqueries, scalar
//! subqueries in predicates) are reduced to their join/aggregation cores —
//! each reduction is noted on the query and in DESIGN.md. Cardinalities and
//! layout sensitivity (the properties Fig. 11 depends on) are preserved.
//!
//! Dates are `i32` in `yyyymmdd` form.

use crate::BenchQuery;
use pdsm_plan::builder::QueryBuilder;
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::{AggExpr, AggFunc};
use pdsm_storage::{ColumnDef, DataType, Schema, Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `WAREHOUSE(w_id, w_name, w_street_1, w_city, w_state, w_zip, w_tax, w_ytd)`
pub fn warehouse_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("w_id", DataType::Int32),
        ColumnDef::new("w_name", DataType::Str),
        ColumnDef::new("w_street_1", DataType::Str),
        ColumnDef::new("w_city", DataType::Str),
        ColumnDef::new("w_state", DataType::Str),
        ColumnDef::new("w_zip", DataType::Str),
        ColumnDef::new("w_tax", DataType::Float64),
        ColumnDef::new("w_ytd", DataType::Float64),
    ])
}

/// `DISTRICT` (10 per warehouse).
pub fn district_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("d_id", DataType::Int32),
        ColumnDef::new("d_w_id", DataType::Int32),
        ColumnDef::new("d_name", DataType::Str),
        ColumnDef::new("d_city", DataType::Str),
        ColumnDef::new("d_state", DataType::Str),
        ColumnDef::new("d_tax", DataType::Float64),
        ColumnDef::new("d_ytd", DataType::Float64),
        ColumnDef::new("d_next_o_id", DataType::Int32),
    ])
}

/// `CUSTOMER` (3000 per district in TPC-C; scaled down here).
pub fn customer_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("c_id", DataType::Int32),
        ColumnDef::new("c_d_id", DataType::Int32),
        ColumnDef::new("c_w_id", DataType::Int32),
        ColumnDef::new("c_first", DataType::Str),
        ColumnDef::new("c_last", DataType::Str),
        ColumnDef::new("c_street_1", DataType::Str),
        ColumnDef::new("c_city", DataType::Str),
        ColumnDef::new("c_state", DataType::Str),
        ColumnDef::new("c_zip", DataType::Str),
        ColumnDef::new("c_phone", DataType::Str),
        ColumnDef::new("c_since", DataType::Int32),
        ColumnDef::new("c_credit", DataType::Str),
        ColumnDef::new("c_credit_lim", DataType::Float64),
        ColumnDef::new("c_discount", DataType::Float64),
        ColumnDef::new("c_balance", DataType::Float64),
        ColumnDef::new("c_ytd_payment", DataType::Float64),
        ColumnDef::new("c_payment_cnt", DataType::Int32),
        ColumnDef::new("c_delivery_cnt", DataType::Int32),
    ])
}

/// `ORDERS` (o_id unique across the run for join simplicity).
pub fn orders_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("o_id", DataType::Int32),
        ColumnDef::new("o_d_id", DataType::Int32),
        ColumnDef::new("o_w_id", DataType::Int32),
        ColumnDef::new("o_c_id", DataType::Int32),
        ColumnDef::new("o_entry_d", DataType::Int32),
        ColumnDef::new("o_carrier_id", DataType::Int32),
        ColumnDef::new("o_ol_cnt", DataType::Int32),
        ColumnDef::new("o_all_local", DataType::Int32),
    ])
}

/// `ORDER_LINE`.
pub fn order_line_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("ol_o_id", DataType::Int32),
        ColumnDef::new("ol_d_id", DataType::Int32),
        ColumnDef::new("ol_w_id", DataType::Int32),
        ColumnDef::new("ol_number", DataType::Int32),
        ColumnDef::new("ol_i_id", DataType::Int32),
        ColumnDef::new("ol_supply_w_id", DataType::Int32),
        ColumnDef::new("ol_delivery_d", DataType::Int32),
        ColumnDef::new("ol_quantity", DataType::Int32),
        ColumnDef::new("ol_amount", DataType::Float64),
        ColumnDef::new("ol_dist_info", DataType::Str),
    ])
}

/// `ITEM`.
pub fn item_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("i_id", DataType::Int32),
        ColumnDef::new("i_im_id", DataType::Int32),
        ColumnDef::new("i_name", DataType::Str),
        ColumnDef::new("i_price", DataType::Float64),
        ColumnDef::new("i_data", DataType::Str),
    ])
}

/// `STOCK`.
pub fn stock_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("s_i_id", DataType::Int32),
        ColumnDef::new("s_w_id", DataType::Int32),
        ColumnDef::new("s_quantity", DataType::Int32),
        ColumnDef::new("s_ytd", DataType::Float64),
        ColumnDef::new("s_order_cnt", DataType::Int32),
        ColumnDef::new("s_remote_cnt", DataType::Int32),
        ColumnDef::new("s_data", DataType::Str),
    ])
}

/// `SUPPLIER` (the CH extension tables).
pub fn supplier_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("su_suppkey", DataType::Int32),
        ColumnDef::new("su_name", DataType::Str),
        ColumnDef::new("su_address", DataType::Str),
        ColumnDef::new("su_nationkey", DataType::Int32),
        ColumnDef::new("su_phone", DataType::Str),
        ColumnDef::new("su_acctbal", DataType::Float64),
        ColumnDef::new("su_comment", DataType::Str),
    ])
}

/// `NATION`.
pub fn nation_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("n_nationkey", DataType::Int32),
        ColumnDef::new("n_name", DataType::Str),
        ColumnDef::new("n_regionkey", DataType::Int32),
        ColumnDef::new("n_comment", DataType::Str),
    ])
}

const NATIONS: [&str; 10] = [
    "GERMANY",
    "FRANCE",
    "NETHERLANDS",
    "ITALY",
    "SPAIN",
    "USA",
    "JAPAN",
    "BRAZIL",
    "KENYA",
    "INDIA",
];

fn date(rng: &mut SmallRng) -> i32 {
    20_230_000 + rng.gen_range(101..1231)
}

/// Generate the CH database. `warehouses` is the TPC-C scale knob;
/// per warehouse: 10 districts, 300 customers, 900 orders, ~9 000 order
/// lines, 1 000 stocked items (items table: 1 000 rows shared).
pub fn tables(warehouses: usize, seed: u64) -> Vec<Table> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_items = 1_000usize;
    let dist_per_w = 10usize;
    let cust_per_d = 30usize;
    let orders_per_d = 90usize;

    let mut warehouse = Table::new("WAREHOUSE", warehouse_schema());
    let mut district = Table::new("DISTRICT", district_schema());
    let mut customer = Table::new("CUSTOMER", customer_schema());
    let mut orders = Table::new("ORDERS", orders_schema());
    let mut order_line = Table::new("ORDER_LINE", order_line_schema());
    let mut item = Table::new("ITEM", item_schema());
    let mut stock = Table::new("STOCK", stock_schema());
    let mut supplier = Table::new("SUPPLIER", supplier_schema());
    let mut nation = Table::new("NATION", nation_schema());

    for (k, name) in NATIONS.iter().enumerate() {
        nation
            .insert(&[
                Value::Int32(k as i32),
                Value::Str((*name).into()),
                Value::Int32((k % 5) as i32),
                Value::Str(String::new()),
            ])
            .expect("nation");
    }
    for s in 0..(warehouses * 10).max(10) {
        supplier
            .insert(&[
                Value::Int32(s as i32),
                Value::Str(format!("Supplier#{s:05}")),
                Value::Str(format!("Addr {s}")),
                Value::Int32((s % NATIONS.len()) as i32),
                Value::Str(format!("+31-{s:08}")),
                Value::Float64(rng.gen_range(-999.0..9999.0)),
                Value::Str(String::new()),
            ])
            .expect("supplier");
    }
    for i in 0..n_items {
        let original = rng.gen_bool(0.1);
        item.insert(&[
            Value::Int32(i as i32),
            Value::Int32(rng.gen_range(0..10_000)),
            Value::Str(format!("Item {i:05}")),
            Value::Float64(rng.gen_range(1..100) as f64),
            Value::Str(if original {
                format!("data original {i}")
            } else {
                format!("data plain {i}")
            }),
        ])
        .expect("item");
    }

    let mut o_id = 0i32;
    for w in 0..warehouses {
        warehouse
            .insert(&[
                Value::Int32(w as i32),
                Value::Str(format!("WH{w:03}")),
                Value::Str(format!("Street {w}")),
                Value::Str(format!("City{}", w % 37)),
                Value::Str(format!("S{}", w % 26)),
                Value::Str(format!("{:05}", 10_000 + w)),
                Value::Float64(rng.gen_range(0.0..0.2)),
                Value::Float64(300_000.0),
            ])
            .expect("warehouse");
        for i in 0..n_items {
            stock
                .insert(&[
                    Value::Int32(i as i32),
                    Value::Int32(w as i32),
                    Value::Int32(rng.gen_range(10..100)),
                    Value::Float64(0.0),
                    Value::Int32(rng.gen_range(0..50)),
                    Value::Int32(rng.gen_range(0..10)),
                    Value::Str(format!("stock data {i}")),
                ])
                .expect("stock");
        }
        for d in 0..dist_per_w {
            district
                .insert(&[
                    Value::Int32(d as i32),
                    Value::Int32(w as i32),
                    Value::Str(format!("D{w}-{d}")),
                    Value::Str(format!("City{}", (w + d) % 37)),
                    Value::Str(format!("S{}", d % 26)),
                    Value::Float64(rng.gen_range(0.0..0.2)),
                    Value::Float64(30_000.0),
                    Value::Int32(orders_per_d as i32),
                ])
                .expect("district");
            for c in 0..cust_per_d {
                customer
                    .insert(&[
                        Value::Int32(c as i32),
                        Value::Int32(d as i32),
                        Value::Int32(w as i32),
                        Value::Str(format!("First{}", rng.gen_range(0..500))),
                        Value::Str(format!("Last{}", rng.gen_range(0..100))),
                        Value::Str(format!("Street {}", rng.gen_range(0..999))),
                        Value::Str(format!("City{}", rng.gen_range(0..37))),
                        Value::Str(format!(
                            "{}{}",
                            (b'A' + (rng.gen_range(0..26u8))) as char,
                            (b'A' + (rng.gen_range(0..26u8))) as char
                        )),
                        Value::Str(format!("{:05}", rng.gen_range(10_000..99_999))),
                        Value::Str(format!("+49-{:08}", rng.gen_range(0..99_999_999))),
                        Value::Int32(date(&mut rng)),
                        Value::Str(if rng.gen_bool(0.9) { "GC" } else { "BC" }.into()),
                        Value::Float64(50_000.0),
                        Value::Float64(rng.gen_range(0.0..0.5)),
                        Value::Float64(rng.gen_range(-100.0..5_000.0)),
                        Value::Float64(rng.gen_range(0.0..5_000.0)),
                        Value::Int32(rng.gen_range(0..20)),
                        Value::Int32(rng.gen_range(0..20)),
                    ])
                    .expect("customer");
            }
            for _o in 0..orders_per_d {
                let ol_cnt = rng.gen_range(5..=15);
                let entry = date(&mut rng);
                let c_id = rng.gen_range(0..cust_per_d) as i32
                    + (d as i32) * cust_per_d as i32
                    + (w as i32) * (dist_per_w * cust_per_d) as i32;
                orders
                    .insert(&[
                        Value::Int32(o_id),
                        Value::Int32(d as i32),
                        Value::Int32(w as i32),
                        Value::Int32(c_id),
                        Value::Int32(entry),
                        Value::Int32(rng.gen_range(0..10)),
                        Value::Int32(ol_cnt),
                        Value::Int32(1),
                    ])
                    .expect("orders");
                for n in 0..ol_cnt {
                    order_line
                        .insert(&[
                            Value::Int32(o_id),
                            Value::Int32(d as i32),
                            Value::Int32(w as i32),
                            Value::Int32(n),
                            Value::Int32(rng.gen_range(0..n_items as i32)),
                            Value::Int32(w as i32),
                            Value::Int32(entry + rng.gen_range(0..30)),
                            Value::Int32(rng.gen_range(1..10)),
                            Value::Float64(rng.gen_range(1..10_000) as f64 / 100.0),
                            Value::Str(format!("dist{:02}", d)),
                        ])
                        .expect("order_line");
                }
                o_id += 1;
            }
        }
    }
    vec![
        warehouse, district, customer, orders, order_line, item, stock, supplier, nation,
    ]
}

/// CUSTOMER column count (left side of Q3/Q5/Q10 joins).
const CW: usize = 18;
/// ORDERS column count.
const OW: usize = 8;

#[allow(clippy::vec_init_then_push)] // long literal list reads better as pushes
/// The CH analytic queries evaluated in Fig. 11 (1–6, 8, 10).
pub fn queries() -> Vec<BenchQuery> {
    let mut qs = Vec::new();

    // Q1: pricing summary per ol_number over recent deliveries.
    qs.push(BenchQuery::plan(
        "CH-Q1",
        QueryBuilder::scan("ORDER_LINE")
            .filter(Expr::col(6).gt(Expr::lit(20_230_600)))
            .aggregate(
                vec![Expr::col(3)],
                vec![
                    AggExpr::new(AggFunc::Sum, Expr::col(7)),
                    AggExpr::new(AggFunc::Sum, Expr::col(8)),
                    AggExpr::new(AggFunc::Avg, Expr::col(7)),
                    AggExpr::new(AggFunc::Avg, Expr::col(8)),
                    AggExpr::count_star(),
                ],
            )
            .sort(vec![(Expr::col(0), true)])
            .build(),
    ));

    // Q2 (reduced): cheapest-supplier lookup core — STOCK ⋈ ITEM with the
    // "original" data filter, min stock stats per item class. The original
    // CH-Q2's region/supplier subquery is dropped (no scalar subqueries).
    qs.push(BenchQuery::plan(
        "CH-Q2",
        QueryBuilder::scan("ITEM")
            .filter(Expr::col(4).like("%original%"))
            .join(
                QueryBuilder::scan("STOCK").build(),
                Expr::col(0),
                Expr::col(0),
            )
            .aggregate(
                vec![Expr::col(1)], // i_im_id class
                vec![
                    AggExpr::new(AggFunc::Min, Expr::col(5 + 2)), // min s_quantity
                    AggExpr::count_star(),
                ],
            )
            .build(),
    ));

    // Q3: unshipped-order value for good-credit customers.
    qs.push(BenchQuery::plan(
        "CH-Q3",
        QueryBuilder::scan("CUSTOMER")
            .filter(Expr::col(7).like("A%")) // c_state
            .join(
                QueryBuilder::scan("ORDERS").build(),
                Expr::col(0),
                Expr::col(3),
            )
            .join(
                QueryBuilder::scan("ORDER_LINE").build(),
                Expr::col(CW), // o_id
                Expr::col(0),  // ol_o_id
            )
            .aggregate(
                vec![Expr::col(CW)],                                      // group by o_id
                vec![AggExpr::new(AggFunc::Sum, Expr::col(CW + OW + 8))], // sum ol_amount
            )
            .sort(vec![(Expr::col(1), false), (Expr::col(0), true)]) // o_id tiebreak
            .limit(10)
            .build(),
    ));

    // Q4 (reduced): order count per ol_cnt class in a date range; the
    // original's EXISTS(order_line late delivery) is folded away.
    qs.push(BenchQuery::plan(
        "CH-Q4",
        QueryBuilder::scan("ORDERS")
            .filter(
                Expr::col(4)
                    .ge(Expr::lit(20_230_300))
                    .and(Expr::col(4).lt(Expr::lit(20_230_900))),
            )
            .aggregate(vec![Expr::col(6)], vec![AggExpr::count_star()])
            .sort(vec![(Expr::col(0), true)])
            .build(),
    ));

    // Q5 (reduced): revenue per customer state (stands in for per-nation;
    // the supplier/nation/region arm is dropped).
    qs.push(BenchQuery::plan(
        "CH-Q5",
        QueryBuilder::scan("CUSTOMER")
            .join(
                QueryBuilder::scan("ORDERS").build(),
                Expr::col(0),
                Expr::col(3),
            )
            .join(
                QueryBuilder::scan("ORDER_LINE").build(),
                Expr::col(CW),
                Expr::col(0),
            )
            .aggregate(
                vec![Expr::col(7)], // c_state
                vec![AggExpr::new(AggFunc::Sum, Expr::col(CW + OW + 8))],
            )
            .sort(vec![(Expr::col(1), false)])
            .build(),
    ));

    // Q6: selective scan-aggregate (verbatim shape).
    qs.push(BenchQuery::plan(
        "CH-Q6",
        QueryBuilder::scan("ORDER_LINE")
            .filter(
                Expr::col(6)
                    .ge(Expr::lit(20_230_101))
                    .and(Expr::col(6).lt(Expr::lit(20_230_701)))
                    .and(Expr::col(7).ge(Expr::lit(1)))
                    .and(Expr::col(7).le(Expr::lit(100_000))),
            )
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(8))])
            .build(),
    ));

    // Q8 (reduced): "market share" core — ITEM ⋈ ORDER_LINE ⋈ ORDERS,
    // average line amount per entry month for a popular item class.
    qs.push(BenchQuery::plan(
        "CH-Q8",
        QueryBuilder::scan("ITEM")
            .filter(Expr::col(3).lt(Expr::lit(50.0)))
            .join(
                QueryBuilder::scan("ORDER_LINE").build(),
                Expr::col(0),
                Expr::col(4),
            )
            .join(
                QueryBuilder::scan("ORDERS").build(),
                Expr::col(5), // ol_o_id (5 item cols + 0)
                Expr::col(0), // o_id
            )
            .aggregate(
                vec![Expr::col(5 + 10 + 4).div(Expr::lit(100))], // month bucket of o_entry_d
                vec![AggExpr::new(AggFunc::Avg, Expr::col(5 + 8))], // avg ol_amount
            )
            .sort(vec![(Expr::col(0), true)])
            .build(),
    ));

    // Q10: top customers by recent revenue.
    qs.push(BenchQuery::plan(
        "CH-Q10",
        QueryBuilder::scan("CUSTOMER")
            .join(
                QueryBuilder::scan("ORDERS").build(),
                Expr::col(0),
                Expr::col(3),
            )
            .join(
                QueryBuilder::scan("ORDER_LINE").build(),
                Expr::col(CW),
                Expr::col(0),
            )
            .filter(Expr::col(CW + 4).ge(Expr::lit(20_230_800))) // o_entry_d
            .aggregate(
                vec![Expr::col(0), Expr::col(4)], // c_id, c_last
                vec![AggExpr::new(AggFunc::Sum, Expr::col(CW + OW + 8))],
            )
            // deterministic under ties: break on customer id then name
            .sort(vec![
                (Expr::col(2), false),
                (Expr::col(0), true),
                (Expr::col(1), true),
            ])
            .limit(20)
            .build(),
    ));
    qs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_exec::engine::{BulkEngine, CompiledEngine, Engine, VolcanoEngine};
    use std::collections::HashMap;

    fn db(w: usize) -> HashMap<String, Table> {
        tables(w, 3)
            .into_iter()
            .map(|t| (t.name().to_string(), t))
            .collect()
    }

    #[test]
    fn generator_cardinalities() {
        let d = db(2);
        assert_eq!(d["WAREHOUSE"].len(), 2);
        assert_eq!(d["DISTRICT"].len(), 20);
        assert_eq!(d["CUSTOMER"].len(), 600);
        assert_eq!(d["ORDERS"].len(), 1800);
        assert_eq!(d["ITEM"].len(), 1000);
        assert_eq!(d["STOCK"].len(), 2000);
        assert_eq!(d["NATION"].len(), 10);
        let ol = d["ORDER_LINE"].len();
        assert!((1800 * 5..=1800 * 15).contains(&ol), "order lines {ol}");
    }

    #[test]
    fn all_ch_queries_differentially_correct() {
        let d = db(1);
        for q in queries() {
            let plan = q.as_plan().unwrap();
            let c = CompiledEngine.execute(plan, &d).unwrap();
            let v = VolcanoEngine.execute(plan, &d).unwrap();
            let b = BulkEngine.execute(plan, &d).unwrap();
            c.assert_same(&v, &format!("{} compiled vs volcano", q.name));
            c.assert_same(&b, &format!("{} compiled vs bulk", q.name));
        }
    }

    #[test]
    fn q1_groups_by_line_number() {
        let d = db(1);
        let out = CompiledEngine
            .execute(queries()[0].as_plan().unwrap(), &d)
            .unwrap();
        // ol_number ranges 0..15
        assert!(out.len() <= 15 && out.len() >= 5, "{} groups", out.len());
    }

    #[test]
    fn q6_revenue_positive() {
        let d = db(1);
        let out = CompiledEngine
            .execute(queries()[5].as_plan().unwrap(), &d)
            .unwrap();
        assert!(out.rows[0][0].as_f64().unwrap() > 0.0);
    }
}
