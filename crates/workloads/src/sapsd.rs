//! The SAP Sales & Distribution (SD) benchmark (§VI-B, Fig. 9/10).
//!
//! Five tables modeled on the public SAP schema documentation the paper
//! cites: `ADRC` (addresses), `KNA1` (customer master), `VBAK` (sales order
//! headers), `VBAP` (sales order items), `VBEP` (schedule lines).
//!
//! Q1 and Q3 are quoted verbatim in the paper (Table IV(a)); the remaining
//! ten queries are reconstructed from the HYRISE paper's query-class
//! descriptions with the properties the figures depend on preserved:
//! Q6 is the only modifying query (insert into VBAP), Q7/Q8 are identity
//! selects (hash / RB-tree indexable), Q9/Q10 are order-dependent queries
//! (where HYRISE's implicit-ordering metadata beats HyPer, §VI-B), and the
//! rest are scan/aggregate/join classes. See DESIGN.md §2.

use crate::{BenchQuery, QueryKind};
use pdsm_plan::builder::QueryBuilder;
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::{AggExpr, AggFunc};
use pdsm_storage::{ColumnDef, DataType, Schema, Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Company-name prefixes; `NAME1 like 'Alpha%'` matches 1/10 of rows.
pub const NAME_PREFIXES: [&str; 10] = [
    "Alpha", "Borealis", "Cumulus", "Dynamo", "Electra", "Fastout", "Gradient", "Helix",
    "Ignition", "Juniper",
];
/// Company-name suffixes; `NAME2 like '%GmbH'` matches 1/4 of rows.
pub const NAME_SUFFIXES: [&str; 4] = ["GmbH", "AG", "Ltd", "Inc"];
/// Country codes (uniform).
pub const COUNTRIES: [&str; 8] = ["DE", "NL", "FR", "IT", "US", "GB", "CH", "AT"];

/// Column names of ADRC in schema order.
pub const ADRC_COLS: [&str; 24] = [
    "ADDRNUMBER",
    "NAME_CO",
    "NAME1",
    "NAME2",
    "KUNNR",
    "CITY1",
    "CITY2",
    "POST_CODE1",
    "STREET",
    "COUNTRY",
    "REGION",
    "TEL_NUMBER",
    "FAX_NUMBER",
    "DATE_FROM",
    "LANGU",
    "SORT1",
    "SORT2",
    "HOUSE_NUM1",
    "LOCATION",
    "TRANSPZONE",
    "PO_BOX",
    "TITLE",
    "FLAG_S",
    "FLAG_P",
];

/// ADRC: the address table of Table IV.
pub fn adrc_schema() -> Schema {
    Schema::new(
        ADRC_COLS
            .iter()
            .map(|&n| match n {
                "ADDRNUMBER" | "DATE_FROM" | "FLAG_S" | "FLAG_P" => {
                    ColumnDef::new(n, DataType::Int32)
                }
                _ => ColumnDef::new(n, DataType::Str),
            })
            .collect(),
    )
}

/// KNA1: customer master.
pub fn kna1_schema() -> Schema {
    let cols = [
        ("KUNNR", DataType::Str),
        ("LAND1", DataType::Str),
        ("NAME1", DataType::Str),
        ("NAME2", DataType::Str),
        ("ORT01", DataType::Str),
        ("PSTLZ", DataType::Str),
        ("REGIO", DataType::Str),
        ("STRAS", DataType::Str),
        ("TELF1", DataType::Str),
        ("TELFX", DataType::Str),
        ("ADRNR", DataType::Int32),
        ("KTOKD", DataType::Str),
        ("ERDAT", DataType::Int32),
        ("VBUND", DataType::Str),
        ("SPERR", DataType::Int32),
        ("LOEVM", DataType::Int32),
    ];
    Schema::new(cols.iter().map(|&(n, t)| ColumnDef::new(n, t)).collect())
}

/// VBAK: sales order headers.
pub fn vbak_schema() -> Schema {
    let cols = [
        ("VBELN", DataType::Int32),
        ("ERDAT", DataType::Int32),
        ("ERZET", DataType::Int32),
        ("ERNAM", DataType::Str),
        ("AUDAT", DataType::Int32),
        ("VBTYP", DataType::Str),
        ("AUART", DataType::Str),
        ("NETWR", DataType::Float64),
        ("WAERK", DataType::Str),
        ("VKORG", DataType::Str),
        ("VTWEG", DataType::Str),
        ("SPART", DataType::Str),
        ("KUNNR", DataType::Str),
        ("GUEBG", DataType::Int32),
        ("GUEEN", DataType::Int32),
        ("KNUMV", DataType::Int32),
    ];
    Schema::new(cols.iter().map(|&(n, t)| ColumnDef::new(n, t)).collect())
}

/// VBAP: sales order items.
pub fn vbap_schema() -> Schema {
    let cols = [
        ("VBELN", DataType::Int32),
        ("POSNR", DataType::Int32),
        ("MATNR", DataType::Str),
        ("MATWA", DataType::Str),
        ("PSTYV", DataType::Str),
        ("CHARG", DataType::Str),
        ("WERKS", DataType::Str),
        ("LGORT", DataType::Str),
        ("KWMENG", DataType::Float64),
        ("VRKME", DataType::Str),
        ("NETWR", DataType::Float64),
        ("WAERK", DataType::Str),
        ("NETPR", DataType::Float64),
        ("KPEIN", DataType::Int32),
        ("ABGRU", DataType::Str),
        ("ERDAT", DataType::Int32),
        ("SPART", DataType::Str),
        ("GSBER", DataType::Str),
        ("VSTEL", DataType::Str),
        ("ROUTE", DataType::Str),
    ];
    Schema::new(cols.iter().map(|&(n, t)| ColumnDef::new(n, t)).collect())
}

/// VBEP: schedule lines.
pub fn vbep_schema() -> Schema {
    let cols = [
        ("VBELN", DataType::Int32),
        ("POSNR", DataType::Int32),
        ("ETENR", DataType::Int32),
        ("ETTYP", DataType::Str),
        ("EDATU", DataType::Int32),
        ("WMENG", DataType::Float64),
        ("BMENG", DataType::Float64),
        ("VRKME", DataType::Str),
        ("LIFSP", DataType::Str),
        ("WADAT", DataType::Int32),
    ];
    Schema::new(cols.iter().map(|&(n, t)| ColumnDef::new(n, t)).collect())
}

fn date(rng: &mut SmallRng) -> i32 {
    20_230_000 + rng.gen_range(101..1231)
}

fn kunnr_str(i: usize) -> String {
    format!("C{i:07}")
}

fn company_name(rng: &mut SmallRng) -> (String, String) {
    let p = NAME_PREFIXES[rng.gen_range(0..NAME_PREFIXES.len())];
    let s = NAME_SUFFIXES[rng.gen_range(0..NAME_SUFFIXES.len())];
    let n1 = format!("{p} Systems {}", rng.gen_range(0..10_000));
    let n2 = format!("{p} Holding {s}");
    (n1, n2)
}

/// One synthetic VBAP row (also used by the Q6 insert driver).
pub fn vbap_row(rng: &mut SmallRng, vbeln: i32, posnr: i32) -> Vec<Value> {
    let qty = rng.gen_range(1..100) as f64;
    let price = rng.gen_range(5..500) as f64 / 2.0;
    vec![
        Value::Int32(vbeln),
        Value::Int32(posnr),
        Value::Str(format!("MAT-{:05}", rng.gen_range(0..2000))),
        Value::Str(format!("MATW-{}", rng.gen_range(0..50))),
        Value::Str(format!("TA{}", rng.gen_range(0..5))),
        Value::Str(format!("CH{:04}", rng.gen_range(0..500))),
        Value::Str(format!("W{:02}", rng.gen_range(0..20))),
        Value::Str(format!("L{:02}", rng.gen_range(0..10))),
        Value::Float64(qty),
        Value::Str("ST".into()),
        Value::Float64(qty * price),
        Value::Str("EUR".into()),
        Value::Float64(price),
        Value::Int32(1),
        Value::Str(String::new()),
        Value::Int32(date(rng)),
        Value::Str(format!("S{}", rng.gen_range(0..5))),
        Value::Str(format!("G{}", rng.gen_range(0..8))),
        Value::Str(format!("V{}", rng.gen_range(0..6))),
        Value::Str(format!("R{:03}", rng.gen_range(0..100))),
    ]
}

/// Generate all five tables. `scale` = number of sales orders; customers
/// scale at a tenth of that, items at ~3 per order.
pub fn tables(scale: usize, seed: u64) -> Vec<Table> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_customers = (scale / 10).max(10);

    // ADRC: two addresses per customer.
    let mut adrc = Table::new("ADRC", adrc_schema());
    adrc.reserve(n_customers * 2);
    for i in 0..n_customers * 2 {
        let (n1, n2) = company_name(&mut rng);
        let country = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
        adrc.insert(&[
            Value::Int32(i as i32),
            Value::Str(format!("c/o {}", rng.gen_range(0..100))),
            Value::Str(n1),
            Value::Str(n2),
            Value::Str(kunnr_str(i / 2)),
            Value::Str(format!("City{:03}", rng.gen_range(0..300))),
            Value::Str(String::new()),
            Value::Str(format!("{:05}", rng.gen_range(1000..99999))),
            Value::Str(format!("Street {}", rng.gen_range(1..200))),
            Value::Str(country.into()),
            Value::Str(format!("R{:02}", rng.gen_range(0..16))),
            Value::Str(format!("+49-{:08}", rng.gen_range(0..99_999_999))),
            Value::Str(format!("+49-{:08}", rng.gen_range(0..99_999_999))),
            Value::Int32(date(&mut rng)),
            Value::Str("DE".into()),
            Value::Str(format!("S{}", rng.gen_range(0..100))),
            Value::Str(String::new()),
            Value::Str(format!("{}", rng.gen_range(1..500))),
            Value::Str(format!("Loc{}", rng.gen_range(0..50))),
            Value::Str(format!("Z{:03}", rng.gen_range(0..100))),
            Value::Str(String::new()),
            Value::Str("Firma".into()),
            Value::Int32(rng.gen_range(0..2)),
            Value::Int32(rng.gen_range(0..2)),
        ])
        .expect("adrc row");
    }

    // KNA1: one row per customer.
    let mut kna1 = Table::new("KNA1", kna1_schema());
    kna1.reserve(n_customers);
    for i in 0..n_customers {
        let (n1, n2) = company_name(&mut rng);
        kna1.insert(&[
            Value::Str(kunnr_str(i)),
            Value::Str(COUNTRIES[rng.gen_range(0..COUNTRIES.len())].into()),
            Value::Str(n1),
            Value::Str(n2),
            Value::Str(format!("City{:03}", rng.gen_range(0..300))),
            Value::Str(format!("{:05}", rng.gen_range(1000..99999))),
            Value::Str(format!("R{:02}", rng.gen_range(0..16))),
            Value::Str(format!("Street {}", rng.gen_range(1..200))),
            Value::Str(format!("+49-{:08}", rng.gen_range(0..99_999_999))),
            Value::Str(format!("+49-{:08}", rng.gen_range(0..99_999_999))),
            Value::Int32((i * 2) as i32),
            Value::Str(format!("K{}", rng.gen_range(0..5))),
            Value::Int32(date(&mut rng)),
            Value::Str(String::new()),
            Value::Int32(0),
            Value::Int32(0),
        ])
        .expect("kna1 row");
    }

    // VBAK + VBAP + VBEP.
    let mut vbak = Table::new("VBAK", vbak_schema());
    let mut vbap = Table::new("VBAP", vbap_schema());
    let mut vbep = Table::new("VBEP", vbep_schema());
    vbak.reserve(scale);
    vbap.reserve(scale * 3);
    vbep.reserve(scale * 4);
    for o in 0..scale {
        let vbeln = o as i32;
        let kunnr = kunnr_str(rng.gen_range(0..n_customers));
        let n_items = rng.gen_range(1..=5);
        let mut order_total = 0.0f64;
        for p in 0..n_items {
            let row = vbap_row(&mut rng, vbeln, (p + 1) * 10);
            order_total += row[10].as_f64().unwrap();
            let n_sched = rng.gen_range(1..=2);
            for e in 0..n_sched {
                let qty = row[8].as_f64().unwrap() / n_sched as f64;
                vbep.insert(&[
                    Value::Int32(vbeln),
                    row[1].clone(),
                    Value::Int32(e + 1),
                    Value::Str(format!("E{}", rng.gen_range(0..3))),
                    Value::Int32(date(&mut rng)),
                    Value::Float64(qty),
                    Value::Float64(qty),
                    Value::Str("ST".into()),
                    Value::Str(format!("LS{}", rng.gen_range(0..4))),
                    Value::Int32(date(&mut rng)),
                ])
                .expect("vbep row");
            }
            vbap.insert(&row).expect("vbap row");
        }
        vbak.insert(&[
            Value::Int32(vbeln),
            Value::Int32(date(&mut rng)),
            Value::Int32(rng.gen_range(0..86_400)),
            Value::Str(format!("USER{:03}", rng.gen_range(0..200))),
            Value::Int32(date(&mut rng)),
            Value::Str("C".into()),
            Value::Str(format!("TA{}", rng.gen_range(0..4))),
            Value::Float64(order_total),
            Value::Str("EUR".into()),
            Value::Str(format!("VK{:02}", rng.gen_range(0..10))),
            Value::Str(format!("{}", rng.gen_range(10..20))),
            Value::Str(format!("SP{}", rng.gen_range(0..6))),
            Value::Str(kunnr),
            Value::Int32(date(&mut rng)),
            Value::Int32(date(&mut rng)),
            Value::Int32(o as i32 + 1_000_000),
        ])
        .expect("vbak row");
    }
    vec![adrc, kna1, vbak, vbap, vbep]
}

/// The twelve SD queries. `scale` parameterizes the point-query literals so
/// they always hit generated data.
#[allow(clippy::vec_init_then_push)] // long literal list reads better as pushes
pub fn queries(scale: usize) -> Vec<BenchQuery> {
    let n_customers = (scale / 10).max(10);
    let some_kunnr = kunnr_str(n_customers / 3);
    let some_vbeln = (scale / 2) as i32;
    // column indexes
    let adrc = |n: &str| ADRC_COLS.iter().position(|&c| c == n).unwrap();
    let mut qs = Vec::new();

    // Q1 (paper Table IV(a)): scan-and-project on ADRC with two LIKEs.
    // §VI-B states "NAME2 is only accessed if NAME1 does not match the
    // condition" — i.e. OR short-circuit evaluation (a name search over
    // both fields). Table IV(a) prints "and", but the published ADRC
    // decomposition only follows from the prose's access pattern, so the
    // prose wins here.
    qs.push(BenchQuery::plan(
        "Q1",
        QueryBuilder::scan("ADRC")
            .filter(
                Expr::col(adrc("NAME1"))
                    .like("Alpha%")
                    .or(Expr::col(adrc("NAME2")).like("%GmbH")),
            )
            .project(vec![
                Expr::col(adrc("ADDRNUMBER")),
                Expr::col(adrc("NAME_CO")),
                Expr::col(adrc("NAME1")),
                Expr::col(adrc("NAME2")),
                Expr::col(adrc("KUNNR")),
            ])
            .build(),
    ));

    // Q2: analytic scan of VBAK (revenue since mid-year).
    qs.push(BenchQuery::plan(
        "Q2",
        QueryBuilder::scan("VBAK")
            .filter(Expr::col(1).ge(Expr::lit(20_230_700)))
            .aggregate(
                vec![],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(7)),
                ],
            )
            .build(),
    ));

    // Q3 (paper-verbatim): select * from ADRC where KUNNR = $1.
    qs.push(BenchQuery::plan(
        "Q3",
        QueryBuilder::scan("ADRC")
            .filter(Expr::col(adrc("KUNNR")).eq(Expr::lit(some_kunnr.as_str())))
            .build(),
    ));

    // Q4: order value per customer (VBAK ⋈ VBAP on VBELN).
    qs.push(BenchQuery::plan(
        "Q4",
        QueryBuilder::scan("VBAK")
            .join(
                QueryBuilder::scan("VBAP").build(),
                Expr::col(0),
                Expr::col(0),
            )
            .aggregate(
                vec![Expr::col(12)],                                  // VBAK.KUNNR
                vec![AggExpr::new(AggFunc::Sum, Expr::col(16 + 10))], // VBAP.NETWR
            )
            .build(),
    ));

    // Q5: material statistics on VBAP.
    qs.push(BenchQuery::plan(
        "Q5",
        QueryBuilder::scan("VBAP")
            .aggregate(
                vec![Expr::col(2)], // MATNR
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(8)), // KWMENG
                ],
            )
            .build(),
    ));

    // Q6: the only modifying query — insert sales order items.
    qs.push(BenchQuery {
        name: "Q6".into(),
        kind: QueryKind::Insert {
            table: "VBAP".into(),
            count: 1000,
        },
        frequency: 1.0,
    });

    // Q7: identity select on KNA1 (hash-indexable).
    qs.push(BenchQuery::plan(
        "Q7",
        QueryBuilder::scan("KNA1")
            .filter(Expr::col(0).eq(Expr::lit(some_kunnr.as_str())))
            .build(),
    ));

    // Q8: identity select on VBAP by VBELN (RB-tree in the paper).
    qs.push(BenchQuery::plan(
        "Q8",
        QueryBuilder::scan("VBAP")
            .filter(Expr::col(0).eq(Expr::lit(some_vbeln)))
            .build(),
    ));

    // Q9: date-range scan with ordering (HYRISE exploits implicit order).
    qs.push(BenchQuery::plan(
        "Q9",
        QueryBuilder::scan("VBAK")
            .filter(
                Expr::col(1)
                    .ge(Expr::lit(20_230_300))
                    .and(Expr::col(1).le(Expr::lit(20_230_400))),
            )
            .project(vec![Expr::col(0), Expr::col(1)])
            .sort(vec![(Expr::col(1), true)])
            .build(),
    ));

    // Q10: top items by value (order-dependent).
    qs.push(BenchQuery::plan(
        "Q10",
        QueryBuilder::scan("VBAP")
            .project(vec![Expr::col(0), Expr::col(1), Expr::col(10)])
            .sort(vec![(Expr::col(2), false)])
            .limit(100)
            .build(),
    ));

    // Q11: projection-heavy country filter on ADRC.
    qs.push(BenchQuery::plan(
        "Q11",
        QueryBuilder::scan("ADRC")
            .filter(Expr::col(adrc("COUNTRY")).eq(Expr::lit("DE")))
            .project(vec![
                Expr::col(adrc("NAME1")),
                Expr::col(adrc("CITY1")),
                Expr::col(adrc("TEL_NUMBER")),
            ])
            .build(),
    ));

    // Q12: schedule-line aggregation over a date range.
    qs.push(BenchQuery::plan(
        "Q12",
        QueryBuilder::scan("VBEP")
            .filter(
                Expr::col(4)
                    .ge(Expr::lit(20_230_500))
                    .and(Expr::col(4).le(Expr::lit(20_230_900))),
            )
            .aggregate(
                vec![Expr::col(8)], // LIFSP
                vec![AggExpr::new(AggFunc::Sum, Expr::col(5))],
            )
            .build(),
    ));
    qs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_exec::engine::{BulkEngine, CompiledEngine, Engine, VolcanoEngine};
    use std::collections::HashMap;

    fn db(scale: usize) -> HashMap<String, Table> {
        tables(scale, 11)
            .into_iter()
            .map(|t| (t.name().to_string(), t))
            .collect()
    }

    #[test]
    fn generator_cardinalities() {
        let d = db(200);
        assert_eq!(d["VBAK"].len(), 200);
        assert_eq!(d["KNA1"].len(), 20);
        assert_eq!(d["ADRC"].len(), 40);
        let items = d["VBAP"].len();
        assert!((200..=1000).contains(&items), "items {items}");
        assert!(d["VBEP"].len() >= items);
    }

    #[test]
    fn all_queries_run_on_all_engines_identically() {
        let d = db(120);
        for q in queries(120) {
            let Some(plan) = q.as_plan() else { continue };
            let c = CompiledEngine.execute(plan, &d).unwrap();
            let v = VolcanoEngine.execute(plan, &d).unwrap();
            let b = BulkEngine.execute(plan, &d).unwrap();
            c.assert_same(&v, &format!("{} compiled vs volcano", q.name));
            c.assert_same(&b, &format!("{} compiled vs bulk", q.name));
        }
    }

    #[test]
    fn q1_hits_expected_fraction() {
        let d = db(400);
        let plan = queries(400)[0].as_plan().unwrap().clone();
        let out = CompiledEngine.execute(&plan, &d).unwrap();
        let n = d["ADRC"].len() as f64;
        // prefix 1/10 of names OR suffix 1/4 => ~32.5 %
        let frac = out.len() as f64 / n;
        assert!((0.2..0.5).contains(&frac), "Q1 matched {frac:.4} of ADRC");
    }

    #[test]
    fn q6_insert_spec_present() {
        let qs = queries(100);
        assert!(matches!(
            &qs[5].kind,
            QueryKind::Insert { table, count: 1000 } if table == "VBAP"
        ));
    }

    #[test]
    fn deterministic_generation() {
        let a = db(80);
        let b = db(80);
        for name in ["ADRC", "VBAK", "VBAP"] {
            assert_eq!(a[name].len(), b[name].len());
            for r in 0..a[name].len().min(20) {
                assert_eq!(
                    a[name].row(r).unwrap(),
                    b[name].row(r).unwrap(),
                    "{name} row {r}"
                );
            }
        }
    }
}
