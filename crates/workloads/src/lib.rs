//! # pdsm-workloads
//!
//! The three benchmarks of the paper's evaluation (§VI) plus the Fig.-3
//! microbenchmark, each with a deterministic data generator and its query
//! set:
//!
//! * [`microbench`] — the running example: 16-integer-column relation `R`,
//!   `select sum(B),sum(C),sum(D),sum(E) from R where A = $1` (Fig. 2/3),
//! * [`sapsd`] — the SAP Sales & Distribution benchmark used by HYRISE
//!   (Fig. 9/10): ADRC/KNA1/VBAK/VBAP/VBEP with 12 queries. Q1 and Q3 are
//!   verbatim from the paper; the rest are reconstructed from the HYRISE
//!   query-class descriptions (see DESIGN.md §2),
//! * [`ch`] — the CH-benchmark (TPC-C schema + TPC-H-style analytics,
//!   Fig. 11): queries 1–6, 8, 10, reduced where they exceed the engine's
//!   operator vocabulary (reductions documented per query),
//! * [`cnet`] — the CNET product catalog (Fig. 12 / Table V): a very wide,
//!   sparse schema with dense id/name/category/manufacturer/price columns.
//!
//! All generators take a seed and are fully deterministic.

pub mod ch;
pub mod cnet;
pub mod microbench;
pub mod mixed;
pub mod sapsd;

use pdsm_plan::logical::LogicalPlan;

/// A benchmark query: either a read plan or a DML action the harness
/// performs through the database API (SAP-SD Q6 is the paper's only
/// modifying query).
#[derive(Debug, Clone)]
pub enum QueryKind {
    /// A SELECT plan.
    Plan(LogicalPlan),
    /// Insert `count` synthetic rows into `table`.
    Insert { table: String, count: usize },
}

/// A named, weighted benchmark query.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    pub name: String,
    pub kind: QueryKind,
    /// Execution frequency in the weighted workload (Table V).
    pub frequency: f64,
}

impl BenchQuery {
    /// A plan query with frequency 1.
    pub fn plan(name: impl Into<String>, plan: LogicalPlan) -> Self {
        BenchQuery {
            name: name.into(),
            kind: QueryKind::Plan(plan),
            frequency: 1.0,
        }
    }

    /// Override the frequency.
    pub fn with_frequency(mut self, f: f64) -> Self {
        self.frequency = f;
        self
    }

    /// The plan, if this is a read query.
    pub fn as_plan(&self) -> Option<&LogicalPlan> {
        match &self.kind {
            QueryKind::Plan(p) => Some(p),
            QueryKind::Insert { .. } => None,
        }
    }
}
