//! The paper's running example (Fig. 2 / Fig. 3 / Table I(b)).
//!
//! Relation `R(A, B, …, P)` of 16 `int` columns; query
//! `select sum(B), sum(C), sum(D), sum(E) from R where A = $1`.
//!
//! The paper sweeps the selection's selectivity. We control it through the
//! data: column `A` holds `0` for exactly `⌈s·n⌉` rows (spread uniformly)
//! and unique negative values elsewhere, so `A = 0` matches the target
//! fraction exactly and an equality predicate drives the sweep, as in the
//! paper.

use pdsm_plan::builder::QueryBuilder;
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::{AggExpr, AggFunc, LogicalPlan};
use pdsm_storage::{ColumnDef, DataType, Layout, Schema, Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of columns in `R` (A..P).
pub const N_COLS: usize = 16;

/// The schema of `R`.
pub fn schema() -> Schema {
    let names = [
        "A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M", "N", "O", "P",
    ];
    Schema::new(
        names
            .iter()
            .map(|n| ColumnDef::new(*n, DataType::Int32))
            .collect(),
    )
}

/// The paper's PDSM layout for the example query: `{{A},{B,C,D,E},{F..P}}`.
pub fn pdsm_layout() -> Layout {
    Layout::from_groups(
        vec![vec![0], (1..=4).collect(), (5..N_COLS).collect()],
        N_COLS,
    )
    .expect("static layout")
}

/// The three layouts Fig. 3 compares.
pub fn layouts() -> Vec<(&'static str, Layout)> {
    vec![
        ("row", Layout::row(N_COLS)),
        ("column", Layout::column(N_COLS)),
        ("hybrid", pdsm_layout()),
    ]
}

/// Generate `R` with `n` rows under `layout`; `A = 0` matches a fraction
/// `sel` of the rows exactly.
pub fn generate(n: usize, sel: f64, layout: Layout, seed: u64) -> Table {
    let mut t = Table::with_layout("R", schema(), layout).expect("valid layout");
    t.reserve(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let matches = ((n as f64) * sel).round() as usize;
    // Spread the matching rows evenly so every scan region sees them.
    let stride = if matches == 0 {
        usize::MAX
    } else {
        n.div_ceil(matches)
    };
    let mut row: Vec<Value> = vec![Value::Int32(0); N_COLS];
    for i in 0..n {
        let a = if matches > 0 && i % stride == 0 && i / stride < matches {
            0
        } else {
            -((i as i32) + 1) // unique, never matches A = 0
        };
        row[0] = Value::Int32(a);
        for item in row.iter_mut().take(N_COLS).skip(1) {
            *item = Value::Int32(rng.gen_range(0..1000));
        }
        t.insert(&row).expect("insert");
    }
    t
}

/// The example query with the selectivity hint attached.
pub fn query(sel: f64) -> LogicalPlan {
    QueryBuilder::scan("R")
        .filter_with_selectivity(Expr::col(0).eq(Expr::lit(0)), sel)
        .aggregate(
            vec![],
            (1..=4)
                .map(|c| AggExpr::new(AggFunc::Sum, Expr::col(c)))
                .collect(),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_exec::engine::{CompiledEngine, Engine, VolcanoEngine};
    use std::collections::HashMap;

    fn as_db(t: Table) -> HashMap<String, Table> {
        let mut m = HashMap::new();
        m.insert("R".to_string(), t);
        m
    }

    #[test]
    fn selectivity_is_exact() {
        for &(n, s) in &[
            (10_000usize, 0.01f64),
            (10_000, 0.5),
            (5_000, 0.0),
            (5_000, 1.0),
        ] {
            let t = generate(n, s, Layout::row(N_COLS), 42);
            let matches = (0..t.len())
                .filter(|&r| t.get(r, 0).unwrap() == Value::Int32(0))
                .count();
            assert_eq!(matches, ((n as f64) * s).round() as usize, "n={n} s={s}");
        }
    }

    #[test]
    fn results_agree_across_layouts_and_engines() {
        let base = generate(3_000, 0.1, Layout::row(N_COLS), 7);
        let plan = query(0.1);
        let reference = CompiledEngine.execute(&plan, &as_db(base.clone())).unwrap();
        for (name, layout) in layouts() {
            let t = base.relayout(layout).unwrap();
            let out = CompiledEngine.execute(&plan, &as_db(t.clone())).unwrap();
            reference.assert_same(&out, name);
            let vol = VolcanoEngine.execute(&plan, &as_db(t)).unwrap();
            reference.assert_same(&vol, &format!("{name}/volcano"));
        }
    }

    #[test]
    fn zero_selectivity_sums_null() {
        let t = generate(1_000, 0.0, pdsm_layout(), 1);
        let out = CompiledEngine.execute(&query(0.0), &as_db(t)).unwrap();
        assert_eq!(out.rows[0], vec![Value::Null; 4]);
    }
}
