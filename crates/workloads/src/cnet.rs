//! The CNET product-catalog benchmark (§VI-D, Fig. 12, Table V).
//!
//! The CNET data set describes a catalog relation that is very wide (~3 000
//! attributes, one per product property across all categories) but sparsely
//! populated (≈11 non-NULL values per tuple), with a handful of dense
//! columns (`id`, `name`, `category`, `manufacturer`, `price_from`) that
//! every product carries — the schema shape produced by mapping a class
//! hierarchy onto one relation. The paper filled it with a generator built
//! from the data set's reported statistics; so do we.
//!
//! The four queries and their 1 / 1 / 100 / 10 000 frequencies are Table V
//! verbatim.

use crate::BenchQuery;
use pdsm_plan::builder::QueryBuilder;
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::AggExpr;
use pdsm_storage::{ColumnDef, DataType, Schema, Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Dense column ids.
pub const COL_ID: usize = 0;
pub const COL_NAME: usize = 1;
pub const COL_CATEGORY: usize = 2;
pub const COL_MANUFACTURER: usize = 3;
pub const COL_PRICE_FROM: usize = 4;
/// First sparse attribute column.
pub const FIRST_SPARSE: usize = 5;

/// Product categories; `category = $1` matches about `1/len` of the rows.
pub const CATEGORIES: [&str; 12] = [
    "laptops",
    "desktops",
    "monitors",
    "printers",
    "cameras",
    "phones",
    "tablets",
    "routers",
    "storage",
    "audio",
    "software",
    "accessories",
];

/// Catalog schema: 5 dense columns + `n_attrs` sparse nullable `Int32`
/// attribute columns. The paper's full data set has ~3 000 attributes;
/// generators accept any width so tests can stay small while the harness
/// runs wide.
pub fn schema(n_attrs: usize) -> Schema {
    let mut cols = vec![
        ColumnDef::new("id", DataType::Int32),
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("category", DataType::Str),
        ColumnDef::new("manufacturer", DataType::Str),
        ColumnDef::nullable("price_from", DataType::Float64),
    ];
    for a in 0..n_attrs {
        cols.push(ColumnDef::nullable(format!("attr_{a:04}"), DataType::Int32));
    }
    Schema::new(cols)
}

/// Generate the catalog: `n` products, `n_attrs` sparse attributes,
/// `set_per_row` non-NULL sparse values per product (the data set reports
/// ≈11). Each category uses its own contiguous band of attributes, as real
/// per-category properties do — this is what makes the sparse region
/// cold for the category-level analytics.
pub fn generate(n: usize, n_attrs: usize, set_per_row: usize, seed: u64) -> Table {
    let mut t = Table::new("PRODUCTS", schema(n_attrs));
    t.reserve(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let width = FIRST_SPARSE + n_attrs;
    let mut row: Vec<Value> = vec![Value::Null; width];
    for i in 0..n {
        let cat = rng.gen_range(0..CATEGORIES.len());
        row[COL_ID] = Value::Int32(i as i32);
        row[COL_NAME] = Value::Str(format!("{} product {i}", CATEGORIES[cat]));
        row[COL_CATEGORY] = Value::Str(CATEGORIES[cat].into());
        row[COL_MANUFACTURER] = Value::Str(format!("maker-{}", rng.gen_range(0..200)));
        row[COL_PRICE_FROM] = if rng.gen_bool(0.9) {
            Value::Float64(rng.gen_range(500..100_000) as f64 / 100.0)
        } else {
            Value::Null
        };
        for v in row.iter_mut().skip(FIRST_SPARSE) {
            *v = Value::Null;
        }
        if n_attrs > 0 {
            // the category's attribute band
            let band = n_attrs / CATEGORIES.len().min(n_attrs).max(1);
            let start = FIRST_SPARSE + cat * band;
            for _ in 0..set_per_row.min(band.max(1)) {
                let c = start + rng.gen_range(0..band.max(1));
                if c < width {
                    row[c] = Value::Int32(rng.gen_range(0..1_000));
                }
            }
        }
        t.insert(&row).expect("catalog row");
    }
    t
}

/// The Table-V queries with their frequencies. `category` and `price`
/// parameterize queries 2–3; `product_id` parameterizes query 4.
pub fn queries(category: &str, price_bucket: i64, product_id: i32) -> Vec<BenchQuery> {
    let mut qs = Vec::new();

    // 1: category overview. Frequency 1.
    qs.push(BenchQuery::plan(
        "C1",
        QueryBuilder::scan("PRODUCTS")
            .aggregate(vec![Expr::col(COL_CATEGORY)], vec![AggExpr::count_star()])
            .build(),
    ));

    // 2: price-range drill-down within a category. Frequency 1.
    let price_expr = Expr::col(COL_PRICE_FROM)
        .div(Expr::lit(10))
        .mul(Expr::lit(10));
    qs.push(BenchQuery::plan(
        "C2",
        QueryBuilder::scan("PRODUCTS")
            .filter(Expr::col(COL_CATEGORY).eq(Expr::lit(category)))
            .aggregate(vec![price_expr.clone()], vec![AggExpr::count_star()])
            .sort(vec![(Expr::col(0), true)])
            .build(),
    ));

    // 3: product listing for a category + price bucket. Frequency 100.
    qs.push(
        BenchQuery::plan(
            "C3",
            QueryBuilder::scan("PRODUCTS")
                .filter(
                    Expr::col(COL_CATEGORY)
                        .eq(Expr::lit(category))
                        .and(price_expr.eq(Expr::lit(price_bucket))),
                )
                .project(vec![Expr::col(COL_ID), Expr::col(COL_NAME)])
                .build(),
        )
        .with_frequency(100.0),
    );

    // 4: product details page (identity select). Frequency 10 000.
    qs.push(
        BenchQuery::plan(
            "C4",
            QueryBuilder::scan("PRODUCTS")
                .filter(Expr::col(COL_ID).eq(Expr::lit(product_id)))
                .build(),
        )
        .with_frequency(10_000.0),
    );
    qs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_exec::engine::{BulkEngine, CompiledEngine, Engine, VolcanoEngine};
    use std::collections::HashMap;

    fn db(n: usize, attrs: usize) -> HashMap<String, Table> {
        let mut m = HashMap::new();
        m.insert("PRODUCTS".to_string(), generate(n, attrs, 11, 5));
        m
    }

    #[test]
    fn sparsity_matches_reported_statistics() {
        let t = generate(500, 120, 11, 9);
        let mut non_null = 0usize;
        for r in 0..t.len() {
            for c in FIRST_SPARSE..t.schema().len() {
                if t.is_valid(r, c) {
                    non_null += 1;
                }
            }
        }
        let avg = non_null as f64 / t.len() as f64;
        // duplicate draws within the band may collide; allow a band
        assert!(
            (6.0..=11.0).contains(&avg),
            "avg sparse non-NULLs per row = {avg}"
        );
    }

    #[test]
    fn queries_run_identically_on_all_engines() {
        let d = db(400, 60);
        for q in queries("laptops", 40, 123) {
            let plan = q.as_plan().unwrap();
            let c = CompiledEngine.execute(plan, &d).unwrap();
            let v = VolcanoEngine.execute(plan, &d).unwrap();
            let b = BulkEngine.execute(plan, &d).unwrap();
            c.assert_same(&v, &format!("{} compiled vs volcano", q.name));
            c.assert_same(&b, &format!("{} compiled vs bulk", q.name));
        }
    }

    #[test]
    fn identity_select_returns_full_width_row() {
        let d = db(100, 40);
        let out = CompiledEngine
            .execute(queries("laptops", 40, 57)[3].as_plan().unwrap(), &d)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].len(), FIRST_SPARSE + 40);
        assert_eq!(out.rows[0][COL_ID], Value::Int32(57));
    }

    #[test]
    fn category_counts_sum_to_n() {
        let d = db(300, 24);
        let out = CompiledEngine
            .execute(queries("laptops", 40, 0)[0].as_plan().unwrap(), &d)
            .unwrap();
        let total: i64 = out.rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn frequencies_match_table_v() {
        let qs = queries("laptops", 40, 0);
        let freqs: Vec<f64> = qs.iter().map(|q| q.frequency).collect();
        assert_eq!(freqs, vec![1.0, 1.0, 100.0, 10_000.0]);
    }
}
