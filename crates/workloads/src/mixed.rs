//! Mixed read/write workloads over the versioned write path.
//!
//! The paper's benchmarks are read-only except SAP-SD Q6 (the insert
//! query); this module generates *interleaved* read/write op streams so the
//! delta-store trade-off — bigger delta ⇒ cheaper writes amortized, slower
//! scans — can be measured (`fig_update_mix`) and tested.
//!
//! A [`MixedWorkload`] is a deterministic spec: read ops name a plan from
//! `plans`, write ops carry rows or row *hints*. Hints are resolved by the
//! driver against its set of currently-live row ids (`hint % live.len()`),
//! which keeps the spec independent of how ids shift as the table churns;
//! [`apply_write`] is that driver for a [`VersionedTable`].

use crate::{microbench, sapsd};
use pdsm_plan::builder::QueryBuilder;
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::{AggExpr, AggFunc, LogicalPlan};
use pdsm_storage::{Result, Value};
use pdsm_txn::{RowId, VersionedTable};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One step of a mixed workload.
#[derive(Debug, Clone)]
pub enum MixedOp {
    /// Run `plans[plan]`.
    Read { plan: usize },
    /// Insert these rows (one atomic batch).
    Insert { rows: Vec<Vec<Value>> },
    /// Update the live row addressed by `row_hint` (modulo the driver's
    /// live set): set column `col` to `value`.
    Update {
        row_hint: u64,
        col: usize,
        value: Value,
    },
    /// Delete the live row addressed by `row_hint`.
    Delete { row_hint: u64 },
}

impl MixedOp {
    /// True iff this op is a read.
    pub fn is_read(&self) -> bool {
        matches!(self, MixedOp::Read { .. })
    }
}

/// A deterministic interleaved read/write op stream over one table.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    /// The written (and read) table.
    pub table: String,
    /// The read queries, referenced by index from [`MixedOp::Read`].
    pub plans: Vec<(String, LogicalPlan)>,
    /// The op stream.
    pub ops: Vec<MixedOp>,
}

impl MixedWorkload {
    /// Number of read ops.
    pub fn reads(&self) -> usize {
        self.ops.iter().filter(|o| o.is_read()).count()
    }

    /// Number of write ops.
    pub fn writes(&self) -> usize {
        self.ops.len() - self.reads()
    }
}

/// The live-id set a driver threads through [`apply_write`]: every
/// currently visible row id (main store and delta tail alike).
pub fn live_ids(t: &VersionedTable) -> Vec<RowId> {
    (0..t.main().len() + t.delta_rows())
        .filter(|&i| t.is_visible(i))
        .collect()
}

/// Apply one write op to `t`, resolving row hints against (and updating)
/// `live`. [`MixedOp::Read`]s are the driver's job (it picks the engine)
/// and are ignored here. Update/delete against an empty table are no-ops.
pub fn apply_write(t: &mut VersionedTable, live: &mut Vec<RowId>, op: &MixedOp) -> Result<()> {
    match op {
        MixedOp::Read { .. } => Ok(()),
        MixedOp::Insert { rows } => {
            live.extend(t.insert_batch(rows)?);
            Ok(())
        }
        MixedOp::Update {
            row_hint,
            col,
            value,
        } => {
            if live.is_empty() {
                return Ok(());
            }
            let slot = (*row_hint % live.len() as u64) as usize;
            live[slot] = t.update(live[slot], *col, value)?;
            Ok(())
        }
        MixedOp::Delete { row_hint } => {
            if live.is_empty() {
                return Ok(());
            }
            let slot = (*row_hint % live.len() as u64) as usize;
            t.delete(live[slot])?;
            live.swap_remove(slot);
            Ok(())
        }
    }
}

/// Fraction-of-reads presets used by the bench (`100/0`, `95/5`, `50/50`).
pub const MIXES: [(&str, f64); 3] = [("100/0", 1.0), ("95/5", 0.95), ("50/50", 0.5)];

/// A mixed workload over the microbenchmark relation `R`: reads are the
/// Fig.-2 aggregate at selectivity `sel`; writes split ~70% inserts, 20%
/// updates (non-key columns), 10% deletes.
pub fn microbench_mix(n_ops: usize, read_fraction: f64, sel: f64, seed: u64) -> MixedWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let plans = vec![("fig2".to_string(), microbench::query(sel))];
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        if rng.gen_range(0.0..1.0) < read_fraction {
            ops.push(MixedOp::Read { plan: 0 });
            continue;
        }
        let w = rng.gen_range(0..10);
        if w < 7 {
            // non-matching A values, like the generator's filler rows
            let row: Vec<Value> = (0..microbench::N_COLS)
                .map(|c| {
                    if c == 0 {
                        Value::Int32(-rng.gen_range(1i32..1_000_000))
                    } else {
                        Value::Int32(rng.gen_range(0..1000))
                    }
                })
                .collect();
            ops.push(MixedOp::Insert { rows: vec![row] });
        } else if w < 9 {
            ops.push(MixedOp::Update {
                row_hint: rng.gen_range(0..u64::MAX),
                col: rng.gen_range(1..microbench::N_COLS),
                value: Value::Int32(rng.gen_range(0..1000)),
            });
        } else {
            ops.push(MixedOp::Delete {
                row_hint: rng.gen_range(0..u64::MAX),
            });
        }
    }
    MixedWorkload {
        table: "R".to_string(),
        plans,
        ops,
    }
}

/// The SAP-SD Q6 mix over `VBAP`: reads rotate through the VBAP-only
/// queries (Q5 material statistics, Q8 identity select, Q10 top items);
/// writes are Q6-style order-item inserts plus NETWR price updates and
/// item deletes. `scale` must match the generated tables so Q8's literal
/// hits data.
pub fn sapsd_q6_mix(scale: usize, n_ops: usize, read_fraction: f64, seed: u64) -> MixedWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let some_vbeln = (scale / 2) as i32;
    let plans = vec![
        (
            "Q5".to_string(),
            QueryBuilder::scan("VBAP")
                .aggregate(
                    vec![Expr::col(2)],
                    vec![
                        AggExpr::count_star(),
                        AggExpr::new(AggFunc::Sum, Expr::col(8)),
                    ],
                )
                .build(),
        ),
        (
            "Q8".to_string(),
            QueryBuilder::scan("VBAP")
                .filter(Expr::col(0).eq(Expr::lit(some_vbeln)))
                .build(),
        ),
        (
            "Q10".to_string(),
            QueryBuilder::scan("VBAP")
                .project(vec![Expr::col(0), Expr::col(1), Expr::col(10)])
                .sort(vec![(Expr::col(2), false)])
                .limit(100)
                .build(),
        ),
    ];
    let mut ops = Vec::with_capacity(n_ops);
    let mut next_vbeln = 1_000_000i32;
    let mut read_rr = 0usize;
    for _ in 0..n_ops {
        if rng.gen_range(0.0..1.0) < read_fraction {
            ops.push(MixedOp::Read {
                plan: read_rr % plans.len(),
            });
            read_rr += 1;
            continue;
        }
        let w = rng.gen_range(0..10);
        if w < 6 {
            // Q6: insert a new order's items
            let n_items = rng.gen_range(1..=3);
            let rows = (0..n_items)
                .map(|p| sapsd::vbap_row(&mut rng, next_vbeln, (p + 1) * 10))
                .collect();
            next_vbeln += 1;
            ops.push(MixedOp::Insert { rows });
        } else if w < 9 {
            // reprice an item (NETWR, col 10)
            ops.push(MixedOp::Update {
                row_hint: rng.gen_range(0..u64::MAX),
                col: 10,
                value: Value::Float64(rng.gen_range(5..5000) as f64 / 2.0),
            });
        } else {
            ops.push(MixedOp::Delete {
                row_hint: rng.gen_range(0..u64::MAX),
            });
        }
    }
    MixedWorkload {
        table: "VBAP".to_string(),
        plans,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_storage::Layout;

    #[test]
    fn deterministic_and_mix_fractions() {
        let a = microbench_mix(2_000, 0.95, 0.05, 9);
        let b = microbench_mix(2_000, 0.95, 0.05, 9);
        assert_eq!(a.ops.len(), b.ops.len());
        assert_eq!(a.reads(), b.reads());
        let frac = a.reads() as f64 / a.ops.len() as f64;
        assert!((0.90..=0.99).contains(&frac), "read fraction {frac}");
        let c = sapsd_q6_mix(200, 1_000, 0.5, 3);
        let frac = c.reads() as f64 / c.ops.len() as f64;
        assert!((0.4..=0.6).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn writes_apply_cleanly_and_merge() {
        let base = microbench::generate(500, 0.05, Layout::row(microbench::N_COLS), 11);
        let mut t = VersionedTable::from_table(base);
        let mut live = live_ids(&t);
        let w = microbench_mix(1_000, 0.5, 0.05, 13);
        for op in &w.ops {
            apply_write(&mut t, &mut live, op).expect("write applies");
        }
        assert_eq!(t.len(), live.len());
        let visible = t.len();
        t.merge().unwrap();
        assert_eq!(t.len(), visible, "merge preserves visible rows");
    }

    #[test]
    fn q6_mix_rows_match_vbap_schema() {
        let w = sapsd_q6_mix(100, 400, 0.0, 5);
        let mut t = VersionedTable::from_table(sapsd::tables(100, 7).remove(3));
        assert_eq!(t.name(), "VBAP");
        let mut live = live_ids(&t);
        for op in &w.ops {
            apply_write(&mut t, &mut live, op).expect("vbap write applies");
        }
        assert!(t.has_delta());
    }
}
