//! [`VersionedTable`]: an immutable main store plus an append-only delta
//! with tombstones, merged on demand.

use crate::version::{OverlayData, Snapshot};
use pdsm_exec::{Overlay, TableProvider};
use pdsm_storage::row::Row;
use pdsm_storage::{ColId, DataType, Error, Layout, Result, Schema, Table, Value};
use std::sync::{Arc, OnceLock};

/// Stable row address within one merge generation.
///
/// Ids `0..main.len()` address main-store rows by position; ids from
/// `main.len()` upward address delta rows by append ordinal. Ids stay valid
/// until the next [`VersionedTable::merge`], which compacts the surviving
/// rows and renumbers them `0..len` in scan order (main survivors first,
/// then tail survivors).
pub type RowId = usize;

/// What one merge did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeStats {
    /// Generation published by this merge.
    pub generation: u64,
    /// Main-store rows before the merge.
    pub main_rows_before: usize,
    /// Tombstoned rows dropped (main and delta).
    pub tombstones_dropped: usize,
    /// Live delta rows folded into the new main store.
    pub delta_rows_folded: usize,
    /// Rows in the new main store.
    pub rows_after: usize,
}

/// Cumulative write-path counters (reset never; survives merges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteStats {
    pub inserts: u64,
    pub updates: u64,
    pub deletes: u64,
    pub merges: u64,
}

/// A versioned table: immutable partitioned main + append-only row-format
/// delta with tombstones. See the crate docs for the design.
///
/// All write operations take `&mut self`; concurrent single-writer /
/// multi-reader use goes through [`crate::SharedTable`].
#[derive(Debug)]
pub struct VersionedTable {
    main: Arc<Table>,
    generation: u64,
    /// Tombstone mask over the main store. Empty until the first main-row
    /// delete, then sized `main.len()`.
    dead_main: Vec<bool>,
    dead_main_count: usize,
    /// Delta rows in append order (normalized, decoded values).
    tail: Vec<Row>,
    /// Liveness of each tail row.
    tail_alive: Vec<bool>,
    tail_dead_count: usize,
    /// Write operations applied since the last merge.
    n_ops: u64,
    stats: WriteStats,
    /// Frozen overlay of the *current* state, shared by snapshots; reset by
    /// every write so each version is computed at most once.
    snap_cache: OnceLock<Arc<OverlayData>>,
}

impl Clone for VersionedTable {
    fn clone(&self) -> Self {
        VersionedTable {
            main: self.main.clone(),
            generation: self.generation,
            dead_main: self.dead_main.clone(),
            dead_main_count: self.dead_main_count,
            tail: self.tail.clone(),
            tail_alive: self.tail_alive.clone(),
            tail_dead_count: self.tail_dead_count,
            n_ops: self.n_ops,
            stats: self.stats,
            snap_cache: OnceLock::new(),
        }
    }
}

impl VersionedTable {
    /// Wrap an already-built table (e.g. from a workload generator) as the
    /// generation-0 main store with an empty delta.
    pub fn from_table(table: Table) -> Self {
        VersionedTable {
            main: Arc::new(table),
            generation: 0,
            dead_main: Vec::new(),
            dead_main_count: 0,
            tail: Vec::new(),
            tail_alive: Vec::new(),
            tail_dead_count: 0,
            n_ops: 0,
            stats: WriteStats::default(),
            snap_cache: OnceLock::new(),
        }
    }

    /// New empty versioned table in row layout.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self::from_table(Table::new(name, schema))
    }

    /// New empty versioned table with an explicit layout.
    pub fn with_layout(name: impl Into<String>, schema: Schema, layout: Layout) -> Result<Self> {
        Ok(Self::from_table(Table::with_layout(name, schema, layout)?))
    }

    /// Table name.
    pub fn name(&self) -> &str {
        self.main.name()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.main.schema()
    }

    /// The read-optimized main store (excludes pending delta rows).
    pub fn main(&self) -> &Table {
        &self.main
    }

    /// Shared handle to the main store.
    pub fn main_arc(&self) -> Arc<Table> {
        self.main.clone()
    }

    /// Mutable access to the main store for bulk loading. Only valid while
    /// the delta is empty — delta row ids are positions relative to the
    /// main store, so growing it underneath them would corrupt addressing.
    pub fn main_mut(&mut self) -> Result<&mut Table> {
        if self.has_delta() {
            return Err(Error::InvalidLayout(
                "cannot mutate the main store with a pending delta; merge first".into(),
            ));
        }
        self.snap_cache = OnceLock::new();
        Ok(Arc::make_mut(&mut self.main))
    }

    /// Merge generation (0 for a fresh table, +1 per merge).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cumulative write counters.
    pub fn write_stats(&self) -> WriteStats {
        self.stats
    }

    /// Number of visible rows (main − tombstones + live delta).
    pub fn len(&self) -> usize {
        self.main.len() - self.dead_main_count + self.tail.len() - self.tail_dead_count
    }

    /// True iff no rows are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write operations applied since the last merge.
    pub fn delta_ops(&self) -> u64 {
        self.n_ops
    }

    /// Delta rows appended since the last merge (live or tombstoned) —
    /// the natural merge-threshold metric: it is what scans pay for.
    pub fn delta_rows(&self) -> usize {
        self.tail.len()
    }

    /// Live (non-tombstoned) delta-tail rows — what an index probe's
    /// delta-union scan must visit, and therefore the delta term of the
    /// planner's access-path cost.
    pub fn live_delta_rows(&self) -> usize {
        self.tail.len() - self.tail_dead_count
    }

    /// True iff any write happened since the last merge.
    pub fn has_delta(&self) -> bool {
        self.n_ops > 0
    }

    /// The id space upper bound (main rows + delta ordinals).
    fn id_space(&self) -> usize {
        self.main.len() + self.tail.len()
    }

    fn bump(&mut self) {
        self.n_ops += 1;
        self.snap_cache = OnceLock::new();
    }

    /// Normalize `v` for column `c`: exactly the type checking and widening
    /// [`Table::insert`]'s encoder performs, so a delta row decodes
    /// byte-identically to the same row inserted into a plain table.
    fn normalize(&self, c: ColId, v: &Value) -> Result<Value> {
        let def = &self.schema().columns()[c];
        match (v, def.ty) {
            (Value::Null, _) => {
                if def.nullable {
                    Ok(Value::Null)
                } else {
                    Err(Error::NullViolation(def.name.clone()))
                }
            }
            (Value::Int32(x), DataType::Int32) => Ok(Value::Int32(*x)),
            (Value::Int64(x), DataType::Int64) => Ok(Value::Int64(*x)),
            (Value::Int32(x), DataType::Int64) => Ok(Value::Int64(*x as i64)),
            (Value::Float64(x), DataType::Float64) => Ok(Value::Float64(*x)),
            (Value::Int32(x), DataType::Float64) => Ok(Value::Float64(*x as f64)),
            (Value::Str(s), DataType::Str) => Ok(Value::Str(s.clone())),
            (v, ty) => Err(Error::TypeMismatch {
                column: def.name.clone(),
                expected: ty.name(),
                got: v.type_name(),
            }),
        }
    }

    fn normalize_row(&self, values: &[Value]) -> Result<Row> {
        if values.len() != self.schema().len() {
            return Err(Error::ArityMismatch {
                expected: self.schema().len(),
                got: values.len(),
            });
        }
        values
            .iter()
            .enumerate()
            .map(|(c, v)| self.normalize(c, v))
            .collect::<Result<Vec<_>>>()
            .map(Row)
    }

    /// Append one row to the delta. Returns its [`RowId`].
    pub fn insert(&mut self, values: &[Value]) -> Result<RowId> {
        let row = self.normalize_row(values)?;
        let id = self.id_space();
        self.tail.push(row);
        self.tail_alive.push(true);
        self.stats.inserts += 1;
        self.bump();
        Ok(id)
    }

    /// Append many rows atomically: every row is validated before any is
    /// appended, so a bad row leaves the table unchanged.
    pub fn insert_batch(&mut self, rows: &[Vec<Value>]) -> Result<Vec<RowId>> {
        let normalized: Vec<Row> = rows
            .iter()
            .map(|r| self.normalize_row(r))
            .collect::<Result<_>>()?;
        let base = self.id_space();
        let ids = (base..base + normalized.len()).collect();
        self.tail.extend(normalized);
        self.tail_alive.resize(self.tail.len(), true);
        self.stats.inserts += rows.len() as u64;
        self.bump();
        Ok(ids)
    }

    /// Is `id` in range and not tombstoned?
    pub fn is_visible(&self, id: RowId) -> bool {
        if id < self.main.len() {
            self.dead_main.get(id).map(|d| !d).unwrap_or(true)
        } else {
            self.tail_alive
                .get(id - self.main.len())
                .copied()
                .unwrap_or(false)
        }
    }

    /// Read one visible row, decoded.
    pub fn get(&self, id: RowId) -> Result<Row> {
        if id >= self.id_space() {
            return Err(Error::RowOutOfRange {
                row: id,
                len: self.id_space(),
            });
        }
        if !self.is_visible(id) {
            return Err(Error::RowDeleted { row: id });
        }
        if id < self.main.len() {
            self.main.row(id)
        } else {
            Ok(self.tail[id - self.main.len()].clone())
        }
    }

    /// Tombstone one visible row.
    pub fn delete(&mut self, id: RowId) -> Result<()> {
        if id >= self.id_space() {
            return Err(Error::RowOutOfRange {
                row: id,
                len: self.id_space(),
            });
        }
        if !self.is_visible(id) {
            return Err(Error::RowDeleted { row: id });
        }
        if id < self.main.len() {
            if self.dead_main.is_empty() {
                self.dead_main = vec![false; self.main.len()];
            }
            self.dead_main[id] = true;
            self.dead_main_count += 1;
        } else {
            self.tail_alive[id - self.main.len()] = false;
            self.tail_dead_count += 1;
        }
        self.stats.deletes += 1;
        self.bump();
        Ok(())
    }

    /// Overwrite one cell of a visible row. Implemented as tombstone +
    /// re-append (the delta is append-only), so the row moves to the end of
    /// the scan order and gets a fresh id, which is returned.
    pub fn update(&mut self, id: RowId, c: ColId, v: &Value) -> Result<RowId> {
        if c >= self.schema().len() {
            return Err(Error::UnknownColumn(c));
        }
        let normalized = self.normalize(c, v)?;
        let mut row = self.get(id)?;
        row.0[c] = normalized;
        self.delete(id).expect("visible: just read");
        let new_id = self.id_space();
        self.tail.push(row);
        self.tail_alive.push(true);
        // delete() and this append are one logical operation
        self.stats.deletes -= 1;
        self.stats.updates += 1;
        self.bump();
        Ok(new_id)
    }

    /// The engine-facing overlay of the current state, or `None` when the
    /// delta is empty.
    pub fn overlay(&self) -> Option<Overlay<'_>> {
        if !self.has_delta() {
            return None;
        }
        Some(Overlay {
            dead: &self.dead_main,
            tail: &self.tail,
            tail_alive: if self.tail_dead_count > 0 {
                &self.tail_alive
            } else {
                &[]
            },
        })
    }

    /// All visible rows in scan order (main order, then tail append order).
    pub fn rows(&self) -> impl Iterator<Item = Row> + '_ {
        let main_live = (0..self.main.len())
            .filter(move |&i| self.dead_main.get(i).map(|d| !d).unwrap_or(true))
            .map(move |i| self.main.row(i).expect("in-range"));
        let tail_live = self
            .tail
            .iter()
            .zip(self.tail_alive.iter())
            .filter(|(_, alive)| **alive)
            .map(|(r, _)| r.clone());
        main_live.chain(tail_live)
    }

    /// Take a consistent snapshot of the current version. O(1) when this
    /// version has already been snapshotted; otherwise the overlay is
    /// frozen once (O(delta + tombstone mask)) and shared.
    pub fn snapshot(&self) -> Snapshot {
        let overlay = if self.has_delta() {
            Some(
                self.snap_cache
                    .get_or_init(|| {
                        Arc::new(OverlayData {
                            dead: self.dead_main.clone(),
                            tail: self.tail.clone(),
                            tail_alive: if self.tail_dead_count > 0 {
                                self.tail_alive.clone()
                            } else {
                                Vec::new()
                            },
                        })
                    })
                    .clone(),
            )
        } else {
            None
        };
        Snapshot {
            main: self.main.clone(),
            overlay,
            generation: self.generation,
        }
    }

    /// Fold the delta into a fresh main store under the current layout.
    pub fn merge(&mut self) -> Result<MergeStats> {
        self.merge_with_layout(self.main.layout().clone())
    }

    /// Fold the delta into a fresh main store under `layout` — the
    /// re-layout entry point the advisor drives. Publishing swaps the main
    /// `Arc`, so in-flight snapshots keep reading the old version. Row ids
    /// are renumbered; with an empty delta this is a pure relayout and ids
    /// are stable.
    pub fn merge_with_layout(&mut self, layout: Layout) -> Result<MergeStats> {
        let mut fresh = Table::with_layout(self.name().to_string(), self.schema().clone(), layout)?;
        fresh.reserve(self.len());
        for row in self.rows() {
            fresh
                .insert(row.values())
                .expect("merge re-encodes already-normalized rows");
        }
        let stats = MergeStats {
            generation: self.generation + 1,
            main_rows_before: self.main.len(),
            tombstones_dropped: self.dead_main_count + self.tail_dead_count,
            delta_rows_folded: self.tail.len() - self.tail_dead_count,
            rows_after: fresh.len(),
        };
        self.main = Arc::new(fresh);
        self.generation += 1;
        self.dead_main = Vec::new();
        self.dead_main_count = 0;
        self.tail = Vec::new();
        self.tail_alive = Vec::new();
        self.tail_dead_count = 0;
        self.n_ops = 0;
        self.stats.merges += 1;
        self.snap_cache = OnceLock::new();
        Ok(stats)
    }

    /// Approximate bytes held by the delta (tail rows + masks).
    pub fn delta_byte_size(&self) -> usize {
        let row_bytes: usize = self
            .tail
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => 24 + s.len(),
                        _ => 16,
                    })
                    .sum::<usize>()
            })
            .sum();
        row_bytes + self.dead_main.len() + self.tail_alive.len()
    }
}

/// A live `VersionedTable` is itself a single-table provider: queries
/// against `&self` see main ∪ delta − tombstones. (Rust's borrow rules make
/// this safe without snapshotting: no write can happen during the borrow.)
impl TableProvider for VersionedTable {
    fn table(&self, name: &str) -> Option<&Table> {
        (name == self.name()).then_some(&*self.main)
    }

    fn overlay(&self, name: &str) -> Option<Overlay<'_>> {
        if name == self.name() {
            self.overlay()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_storage::ColumnDef;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int32),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::nullable("price", DataType::Float64),
        ])
    }

    fn seeded() -> VersionedTable {
        let mut base = Table::new("t", schema());
        for i in 0..10 {
            base.insert(&[
                Value::Int32(i),
                Value::Str(format!("n{}", i % 3)),
                Value::Float64(i as f64),
            ])
            .unwrap();
        }
        VersionedTable::from_table(base)
    }

    #[test]
    fn insert_delete_update_visibility() {
        let mut t = seeded();
        assert_eq!(t.len(), 10);
        let id = t
            .insert(&[Value::Int32(10), Value::Str("new".into()), Value::Null])
            .unwrap();
        assert_eq!(id, 10);
        assert_eq!(t.len(), 11);
        t.delete(3).unwrap();
        assert_eq!(t.len(), 10);
        assert!(matches!(t.delete(3), Err(Error::RowDeleted { row: 3 })));
        assert!(matches!(t.get(3), Err(Error::RowDeleted { .. })));
        let new_id = t.update(id, 1, &Value::Str("renamed".into())).unwrap();
        assert_eq!(new_id, 11);
        assert!(matches!(t.get(id), Err(Error::RowDeleted { .. })));
        assert_eq!(t.get(new_id).unwrap().0[1], Value::Str("renamed".into()));
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn dml_error_paths() {
        let mut t = seeded();
        assert!(matches!(
            t.insert(&[Value::Int32(1)]),
            Err(Error::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.insert(&[Value::Str("x".into()), Value::Str("y".into()), Value::Null]),
            Err(Error::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.insert(&[Value::Null, Value::Str("y".into()), Value::Null]),
            Err(Error::NullViolation(_))
        ));
        assert!(matches!(
            t.delete(999),
            Err(Error::RowOutOfRange { row: 999, .. })
        ));
        assert!(matches!(
            t.update(0, 99, &Value::Int32(1)),
            Err(Error::UnknownColumn(99))
        ));
        // nothing above changed the table
        assert_eq!(t.len(), 10);
        assert!(!t.has_delta());
    }

    #[test]
    fn insert_batch_is_atomic() {
        let mut t = seeded();
        let bad = vec![
            vec![Value::Int32(20), Value::Str("a".into()), Value::Null],
            vec![Value::Int32(21)], // arity error
        ];
        assert!(t.insert_batch(&bad).is_err());
        assert_eq!(t.len(), 10);
        assert!(!t.has_delta());
        let good = vec![
            vec![Value::Int32(20), Value::Str("a".into()), Value::Null],
            vec![
                Value::Int32(21),
                Value::Str("b".into()),
                Value::Float64(1.0),
            ],
        ];
        assert_eq!(t.insert_batch(&good).unwrap(), vec![10, 11]);
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn snapshots_pin_versions() {
        let mut t = seeded();
        let s0 = t.snapshot();
        t.insert(&[Value::Int32(100), Value::Str("x".into()), Value::Null])
            .unwrap();
        let s1 = t.snapshot();
        t.delete(0).unwrap();
        let s2 = t.snapshot();
        assert_eq!(s0.len(), 10);
        assert_eq!(s1.len(), 11);
        assert_eq!(s2.len(), 10);
        t.merge().unwrap();
        // old snapshots still read their pinned versions
        assert_eq!(s0.len(), 10);
        assert_eq!(s1.len(), 11);
        assert_eq!(s2.len(), 10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.generation(), 1);
    }

    #[test]
    fn snapshot_overlay_shared_within_version() {
        let mut t = seeded();
        t.insert(&[Value::Int32(100), Value::Str("x".into()), Value::Null])
            .unwrap();
        let a = t.snapshot();
        let b = t.snapshot();
        assert!(Arc::ptr_eq(
            a.overlay.as_ref().unwrap(),
            b.overlay.as_ref().unwrap()
        ));
    }

    #[test]
    fn merge_compacts_and_renumbers() {
        let mut t = seeded();
        t.delete(0).unwrap();
        t.delete(9).unwrap();
        t.insert(&[Value::Int32(50), Value::Str("tail".into()), Value::Null])
            .unwrap();
        let stats = t.merge().unwrap();
        assert_eq!(stats.main_rows_before, 10);
        assert_eq!(stats.tombstones_dropped, 2);
        assert_eq!(stats.delta_rows_folded, 1);
        assert_eq!(stats.rows_after, 9);
        assert_eq!(t.main().len(), 9);
        assert!(!t.has_delta());
        // scan order: surviving main rows, then the folded tail row
        assert_eq!(t.get(0).unwrap().0[0], Value::Int32(1));
        assert_eq!(t.get(8).unwrap().0[0], Value::Int32(50));
    }

    #[test]
    fn merge_into_different_layout_preserves_rows() {
        let mut t = seeded();
        t.delete(2).unwrap();
        t.insert(&[Value::Int32(77), Value::Str("n0".into()), Value::Null])
            .unwrap();
        let before: Vec<Row> = t.rows().collect();
        t.merge_with_layout(Layout::column(3)).unwrap();
        let after: Vec<Row> = t.rows().collect();
        assert_eq!(before, after);
        assert_eq!(t.main().layout().n_groups(), 3);
    }

    #[test]
    fn widening_matches_table_encoding() {
        let mut t = VersionedTable::new(
            "w",
            Schema::new(vec![
                ColumnDef::new("f", DataType::Float64),
                ColumnDef::new("l", DataType::Int64),
            ]),
        );
        let id = t.insert(&[Value::Int32(3), Value::Int32(4)]).unwrap();
        assert_eq!(
            t.get(id).unwrap().0,
            vec![Value::Float64(3.0), Value::Int64(4)]
        );
        t.merge().unwrap();
        assert_eq!(
            t.get(0).unwrap().0,
            vec![Value::Float64(3.0), Value::Int64(4)]
        );
    }

    #[test]
    fn main_mut_requires_empty_delta() {
        let mut t = seeded();
        assert!(t.main_mut().is_ok());
        t.insert(&[Value::Int32(1), Value::Str("x".into()), Value::Null])
            .unwrap();
        assert!(t.main_mut().is_err());
        t.merge().unwrap();
        assert!(t.main_mut().is_ok());
    }
}
