//! [`VersionedTable`]: an immutable main store plus an append-only delta
//! with tombstones, merged on demand — synchronously or through the
//! three-phase background pipeline (see [`crate::merge`]).

use crate::durability::TableDurability;
use crate::merge::{BuiltMain, MergeTicket};
use crate::registry::{VersionRegistry, VersionStats};
use crate::version::{OverlayData, Snapshot};
use pdsm_exec::{Overlay, TableProvider};
use pdsm_pool::ColdTable;
use pdsm_storage::row::Row;
use pdsm_storage::{ColId, DataType, Error, Layout, Result, Schema, Table, Value};
use pdsm_store::WalOp;
use std::sync::{Arc, OnceLock};

/// Stable row address within one merge generation.
///
/// Ids `0..main.len()` address main-store rows by position; ids from
/// `main.len()` upward address delta rows by append ordinal. Ids stay valid
/// until the next [`VersionedTable::merge`], which compacts the surviving
/// rows and renumbers them `0..len` in scan order (main survivors first,
/// then tail survivors).
pub type RowId = usize;

/// What one merge did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeStats {
    /// Generation published by this merge.
    pub generation: u64,
    /// Main-store rows before the merge.
    pub main_rows_before: usize,
    /// Tombstoned rows dropped (main and delta).
    pub tombstones_dropped: usize,
    /// Live delta rows folded into the new main store.
    pub delta_rows_folded: usize,
    /// Rows in the new main store.
    pub rows_after: usize,
}

/// Cumulative write-path counters (reset never; survives merges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteStats {
    pub inserts: u64,
    pub updates: u64,
    pub deletes: u64,
    pub merges: u64,
}

/// The replay log a pending background merge maintains: enough to carry
/// every op that lands between the build's snapshot cut and the swap.
///
/// Inserts need no explicit log — tail rows past `cut_tail` *are* the
/// post-cut inserts, carried verbatim into the new delta. Only tombstones
/// of rows that existed at the cut must be replayed through the build's
/// remap (updates are tombstone + re-append, so they decompose into the
/// two cases).
#[derive(Debug)]
struct PendingMerge {
    /// Must match the finishing build's epoch.
    epoch: u64,
    /// Tail length at the cut; rows past it belong to the next version's
    /// delta.
    cut_tail: usize,
    /// `n_ops` at the cut; the next version's delta op count is the
    /// difference.
    cut_ops: u64,
    /// Cut-space row ids tombstoned after the cut (each was alive at the
    /// cut — liveness only decreases within a version — so each has a
    /// remap entry).
    replay_deletes: Vec<RowId>,
}

/// Everything a streaming executor needs to scan a still-cold main store
/// extent-at-a-time without hydrating it: the header-only [`ColdTable`]
/// plus the frozen delta overlay of the current version. Returned by
/// [`VersionedTable::cold_scan`] only while the main is unhydrated.
#[derive(Debug, Clone)]
pub struct ColdScan {
    /// The checkpointed main, faulting through the buffer pool.
    pub cold: Arc<ColdTable>,
    /// Frozen overlay (tombstones over the cold main + the delta tail), or
    /// `None` when the delta is empty.
    pub overlay: Option<Arc<OverlayData>>,
    /// The version this scan observes.
    pub generation: u64,
}

/// A versioned table: immutable partitioned main + append-only row-format
/// delta with tombstones. See the crate docs for the design.
///
/// All write operations take `&mut self`; concurrent single-writer /
/// multi-reader use goes through [`crate::SharedTable`].
///
/// A table recovered through [`VersionedTable::from_cold`] keeps its main
/// store on disk: `main` stays unset and reads fault extents through the
/// buffer pool until something needs the whole table resident
/// ([`VersionedTable::main_ref`] hydrates it once, lazily).
#[derive(Debug)]
pub struct VersionedTable {
    /// The resident main store. Unset only for a cold-recovered table that
    /// has not been hydrated yet; set exactly once thereafter.
    main: OnceLock<Arc<Table>>,
    /// The on-disk main this table was recovered over, if any. Retired
    /// (frames dropped) by the first merge that supersedes it.
    cold: Option<Arc<ColdTable>>,
    generation: u64,
    /// Tombstone mask over the main store. Empty until the first main-row
    /// delete, then sized `main.len()`.
    dead_main: Vec<bool>,
    dead_main_count: usize,
    /// Delta rows in append order (normalized, decoded values).
    tail: Vec<Row>,
    /// Liveness of each tail row.
    tail_alive: Vec<bool>,
    tail_dead_count: usize,
    /// Write operations applied since the last merge.
    n_ops: u64,
    stats: WriteStats,
    /// Frozen overlay of the *current* state, shared by snapshots; reset by
    /// every write so each version is computed at most once.
    snap_cache: OnceLock<Arc<OverlayData>>,
    /// Reader/version bookkeeping shared with every snapshot.
    registry: Arc<VersionRegistry>,
    /// Monotonic counter of merge builds begun; stamps tickets so stale
    /// builds can never swap in.
    merge_epoch: u64,
    /// The in-flight background merge, if any.
    pending: Option<PendingMerge>,
    /// WAL + checkpoint glue, if this table is durable. `None` costs the
    /// write path nothing.
    durability: Option<Arc<TableDurability>>,
}

impl Clone for VersionedTable {
    fn clone(&self) -> Self {
        // The clone is an independent table: it gets its own registry
        // (snapshots of the original keep counting against the original)
        // and no pending merge (the in-flight build belongs to `self`).
        let registry = Arc::new(VersionRegistry::default());
        if let Some(m) = self.main.get() {
            registry.publish(self.generation, m);
        }
        VersionedTable {
            main: self.main.clone(),
            cold: self.cold.clone(),
            generation: self.generation,
            dead_main: self.dead_main.clone(),
            dead_main_count: self.dead_main_count,
            tail: self.tail.clone(),
            tail_alive: self.tail_alive.clone(),
            tail_dead_count: self.tail_dead_count,
            n_ops: self.n_ops,
            stats: self.stats,
            snap_cache: OnceLock::new(),
            registry,
            merge_epoch: self.merge_epoch,
            pending: None,
            // The clone must not log to the original's WAL: two tables
            // sharing one log would corrupt each other's id space.
            durability: None,
        }
    }
}

/// A pre-initialized slot for a main store that is resident from birth.
fn resident(main: Arc<Table>) -> OnceLock<Arc<Table>> {
    let slot = OnceLock::new();
    let _ = slot.set(main);
    slot
}

impl VersionedTable {
    /// Wrap an already-built table (e.g. from a workload generator) as the
    /// generation-0 main store with an empty delta.
    pub fn from_table(table: Table) -> Self {
        let main = Arc::new(table);
        let registry = Arc::new(VersionRegistry::default());
        registry.publish(0, &main);
        VersionedTable {
            main: resident(main),
            cold: None,
            generation: 0,
            dead_main: Vec::new(),
            dead_main_count: 0,
            tail: Vec::new(),
            tail_alive: Vec::new(),
            tail_dead_count: 0,
            n_ops: 0,
            stats: WriteStats::default(),
            snap_cache: OnceLock::new(),
            registry,
            merge_epoch: 0,
            pending: None,
            durability: None,
        }
    }

    /// Wrap a main store loaded from a checkpoint, publishing it at the
    /// recovered `generation` instead of 0. The WAL tail is then replayed
    /// through the normal DML methods (see [`crate::durability::replay`])
    /// and durability attached last, so replay is not re-logged.
    pub fn from_recovered(table: Table, generation: u64) -> Self {
        let mut t = Self::from_table(table);
        t.generation = generation;
        t.registry = Arc::new(VersionRegistry::default());
        t.registry
            .publish(generation, t.main.get().expect("set by from_table"));
        t
    }

    /// Wrap a still-on-disk checkpoint as an unhydrated main store at the
    /// recovered `generation`. Reads fault extents through the cold table's
    /// buffer pool; the first operation that needs the whole main resident
    /// hydrates it (bit-identical to a resident recovery). WAL replay runs
    /// through the normal DML methods and never hydrates: `schema()`,
    /// `get()` and the tombstone masks all work against the header.
    pub fn from_cold(cold: Arc<ColdTable>, generation: u64) -> Self {
        VersionedTable {
            main: OnceLock::new(),
            cold: Some(cold),
            generation,
            dead_main: Vec::new(),
            dead_main_count: 0,
            tail: Vec::new(),
            tail_alive: Vec::new(),
            tail_dead_count: 0,
            n_ops: 0,
            stats: WriteStats::default(),
            snap_cache: OnceLock::new(),
            registry: Arc::new(VersionRegistry::default()),
            merge_epoch: 0,
            pending: None,
            durability: None,
        }
    }

    /// Attach the WAL + checkpoint glue. From here on every committed DML
    /// op is logged before the caller gets control back, and every merge
    /// checkpoints.
    pub fn set_durability(&mut self, durability: Arc<TableDurability>) {
        self.durability = Some(durability);
    }

    /// The durability handle, if this table is durable.
    pub fn durability(&self) -> Option<Arc<TableDurability>> {
        self.durability.clone()
    }

    /// New empty versioned table in row layout.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self::from_table(Table::new(name, schema))
    }

    /// New empty versioned table with an explicit layout.
    pub fn with_layout(name: impl Into<String>, schema: Schema, layout: Layout) -> Result<Self> {
        Ok(Self::from_table(Table::with_layout(name, schema, layout)?))
    }

    /// Table name. Never hydrates: reads the cold header when the main
    /// store is still on disk.
    pub fn name(&self) -> &str {
        match self.main.get() {
            Some(m) => m.name(),
            None => self.cold.as_ref().expect("unhydrated ⇒ cold").name(),
        }
    }

    /// The schema. Never hydrates (WAL replay normalizes against it).
    pub fn schema(&self) -> &Schema {
        match self.main.get() {
            Some(m) => m.schema(),
            None => {
                &self
                    .cold
                    .as_ref()
                    .expect("unhydrated ⇒ cold")
                    .header()
                    .schema
            }
        }
    }

    /// The resident main store, hydrating a cold one on first demand.
    ///
    /// Hydration faults every extent through the buffer pool and
    /// reassembles a table bit-identical to a resident recovery; it happens
    /// at most once. Panics if the checkpoint payload fails its CRC —
    /// the header was validated at open, so this is on-disk corruption
    /// that appeared after recovery.
    pub fn main_ref(&self) -> &Arc<Table> {
        self.main.get_or_init(|| {
            let cold = self.cold.as_ref().expect("unhydrated ⇒ cold");
            let table = Arc::new(
                cold.hydrate()
                    .expect("cold main hydration: checkpoint payload unreadable"),
            );
            self.registry.publish(self.generation, &table);
            table
        })
    }

    /// Main-store row count without hydrating a cold main.
    pub fn main_len(&self) -> usize {
        match self.main.get() {
            Some(m) => m.len(),
            None => self.cold.as_ref().expect("unhydrated ⇒ cold").len(),
        }
    }

    /// The unhydrated cold main, if this table still has one. `None` once
    /// hydration or a merge made the main resident.
    pub fn cold_main(&self) -> Option<&Arc<ColdTable>> {
        if self.main.get().is_some() {
            return None;
        }
        self.cold.as_ref()
    }

    /// A streaming view over the cold main plus the frozen overlay of the
    /// current version — `Some` only while the main is unhydrated. The
    /// overlay freeze shares [`VersionedTable::snapshot`]'s per-version
    /// cache, so taking both costs one freeze.
    pub fn cold_scan(&self) -> Option<ColdScan> {
        let cold = self.cold_main()?.clone();
        Some(ColdScan {
            cold,
            overlay: self.frozen_overlay(),
            generation: self.generation,
        })
    }

    /// The read-optimized main store (excludes pending delta rows).
    /// Hydrates a cold main.
    pub fn main(&self) -> &Table {
        self.main_ref()
    }

    /// Shared handle to the main store. Hydrates a cold main.
    pub fn main_arc(&self) -> Arc<Table> {
        self.main_ref().clone()
    }

    /// Mutable access to the main store for bulk loading. Only valid while
    /// the delta is empty — delta row ids are positions relative to the
    /// main store, so growing it underneath them would corrupt addressing.
    pub fn main_mut(&mut self) -> Result<&mut Table> {
        if self.has_delta() {
            return Err(Error::InvalidLayout(
                "cannot mutate the main store with a pending delta; merge first".into(),
            ));
        }
        // A direct main-store edit invalidates any in-flight merge build.
        self.abort_merge();
        self.snap_cache = OnceLock::new();
        self.main_ref();
        // The edit diverges from the checkpoint: drop the cold mount and
        // its cached frames so nothing serves stale extents.
        if let Some(c) = self.cold.take() {
            c.retire();
        }
        Ok(Arc::make_mut(self.main.get_mut().expect("hydrated above")))
    }

    /// Re-persist the main store after [`VersionedTable::main_mut`] bulk
    /// edits. A no-op for non-durable tables. Safe as a lone blob swap:
    /// `main_mut` requires an empty delta, and an empty delta means the
    /// live WAL is empty too, so the blob is the whole durable state.
    pub fn persist_main(&self) -> Result<()> {
        match &self.durability {
            Some(d) => d.persist_main(self.main_ref(), self.generation),
            None => Ok(()),
        }
    }

    /// Merge generation (0 for a fresh table, +1 per merge).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cumulative write counters.
    pub fn write_stats(&self) -> WriteStats {
        self.stats
    }

    /// Number of visible rows (main − tombstones + live delta).
    pub fn len(&self) -> usize {
        self.main_len() - self.dead_main_count + self.tail.len() - self.tail_dead_count
    }

    /// True iff no rows are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write operations applied since the last merge.
    pub fn delta_ops(&self) -> u64 {
        self.n_ops
    }

    /// Delta rows appended since the last merge (live or tombstoned) —
    /// the natural merge-threshold metric: it is what scans pay for.
    pub fn delta_rows(&self) -> usize {
        self.tail.len()
    }

    /// Live (non-tombstoned) delta-tail rows — what an index probe's
    /// delta-union scan must visit, and therefore the delta term of the
    /// planner's access-path cost.
    pub fn live_delta_rows(&self) -> usize {
        self.tail.len() - self.tail_dead_count
    }

    /// True iff any write happened since the last merge.
    pub fn has_delta(&self) -> bool {
        self.n_ops > 0
    }

    /// The id space upper bound (main rows + delta ordinals).
    fn id_space(&self) -> usize {
        self.main_len() + self.tail.len()
    }

    fn bump(&mut self) {
        self.n_ops += 1;
        self.snap_cache = OnceLock::new();
    }

    /// Normalize `v` for column `c`: exactly the type checking and widening
    /// [`Table::insert`]'s encoder performs, so a delta row decodes
    /// byte-identically to the same row inserted into a plain table.
    fn normalize(&self, c: ColId, v: &Value) -> Result<Value> {
        let def = &self.schema().columns()[c];
        match (v, def.ty) {
            (Value::Null, _) => {
                if def.nullable {
                    Ok(Value::Null)
                } else {
                    Err(Error::NullViolation(def.name.clone()))
                }
            }
            (Value::Int32(x), DataType::Int32) => Ok(Value::Int32(*x)),
            (Value::Int64(x), DataType::Int64) => Ok(Value::Int64(*x)),
            (Value::Int32(x), DataType::Int64) => Ok(Value::Int64(*x as i64)),
            (Value::Float64(x), DataType::Float64) => Ok(Value::Float64(*x)),
            (Value::Int32(x), DataType::Float64) => Ok(Value::Float64(*x as f64)),
            (Value::Str(s), DataType::Str) => Ok(Value::Str(s.clone())),
            (v, ty) => Err(Error::TypeMismatch {
                column: def.name.clone(),
                expected: ty.name(),
                got: v.type_name(),
            }),
        }
    }

    fn normalize_row(&self, values: &[Value]) -> Result<Row> {
        if values.len() != self.schema().len() {
            return Err(Error::ArityMismatch {
                expected: self.schema().len(),
                got: values.len(),
            });
        }
        values
            .iter()
            .enumerate()
            .map(|(c, v)| self.normalize(c, v))
            .collect::<Result<Vec<_>>>()
            .map(Row)
    }

    /// Append one row to the delta. Returns its [`RowId`].
    pub fn insert(&mut self, values: &[Value]) -> Result<RowId> {
        let row = self.normalize_row(values)?;
        let logged = self
            .durability
            .as_ref()
            .map(|_| WalOp::InsertBatch(vec![row.clone()]));
        let id = self.id_space();
        self.tail.push(row);
        self.tail_alive.push(true);
        self.stats.inserts += 1;
        self.bump();
        if let Some(op) = logged {
            self.durability.as_ref().expect("mapped above").log(&op)?;
        }
        Ok(id)
    }

    /// Append many rows atomically: every row is validated before any is
    /// appended, so a bad row leaves the table unchanged.
    pub fn insert_batch(&mut self, rows: &[Vec<Value>]) -> Result<Vec<RowId>> {
        let normalized: Vec<Row> = rows
            .iter()
            .map(|r| self.normalize_row(r))
            .collect::<Result<_>>()?;
        let logged = self
            .durability
            .as_ref()
            .map(|_| WalOp::InsertBatch(normalized.clone()));
        let base = self.id_space();
        let ids = (base..base + normalized.len()).collect();
        self.tail.extend(normalized);
        self.tail_alive.resize(self.tail.len(), true);
        self.stats.inserts += rows.len() as u64;
        self.bump();
        if let Some(op) = logged {
            self.durability.as_ref().expect("mapped above").log(&op)?;
        }
        Ok(ids)
    }

    /// Is `id` in range and not tombstoned?
    pub fn is_visible(&self, id: RowId) -> bool {
        let main_len = self.main_len();
        if id < main_len {
            self.dead_main.get(id).map(|d| !d).unwrap_or(true)
        } else {
            self.tail_alive.get(id - main_len).copied().unwrap_or(false)
        }
    }

    /// Read one visible row, decoded.
    pub fn get(&self, id: RowId) -> Result<Row> {
        if id >= self.id_space() {
            return Err(Error::RowOutOfRange {
                row: id,
                len: self.id_space(),
            });
        }
        if !self.is_visible(id) {
            return Err(Error::RowDeleted { row: id });
        }
        let main_len = self.main_len();
        if id < main_len {
            // A cold main serves the point read from one faulted extent —
            // WAL replay and stray gets must not hydrate the whole table.
            match self.main.get() {
                Some(m) => m.row(id),
                None => self.cold.as_ref().expect("unhydrated ⇒ cold").row(id),
            }
        } else {
            Ok(self.tail[id - main_len].clone())
        }
    }

    /// Tombstone one visible row.
    pub fn delete(&mut self, id: RowId) -> Result<()> {
        if id >= self.id_space() {
            return Err(Error::RowOutOfRange {
                row: id,
                len: self.id_space(),
            });
        }
        if !self.is_visible(id) {
            return Err(Error::RowDeleted { row: id });
        }
        let main_len = self.main_len();
        if id < main_len {
            if self.dead_main.is_empty() {
                self.dead_main = vec![false; main_len];
            }
            self.dead_main[id] = true;
            self.dead_main_count += 1;
        } else {
            self.tail_alive[id - main_len] = false;
            self.tail_dead_count += 1;
        }
        // Tombstones of rows that existed at a pending build's cut must be
        // replayed through the remap at swap time; rows appended after the
        // cut carry their own liveness into the next delta.
        if let Some(p) = self.pending.as_mut() {
            if id < main_len + p.cut_tail {
                p.replay_deletes.push(id);
            }
        }
        self.stats.deletes += 1;
        self.bump();
        if let Some(d) = &self.durability {
            d.log(&WalOp::Delete { row: id as u64 })?;
        }
        Ok(())
    }

    /// Overwrite one cell of a visible row. Implemented as tombstone +
    /// re-append (the delta is append-only), so the row moves to the end of
    /// the scan order and gets a fresh id, which is returned.
    pub fn update(&mut self, id: RowId, c: ColId, v: &Value) -> Result<RowId> {
        if c >= self.schema().len() {
            return Err(Error::UnknownColumn(c));
        }
        let normalized = self.normalize(c, v)?;
        let mut row = self.get(id)?;
        row.0[c] = normalized.clone();
        // The WAL carries update as one op, not its tombstone + re-append
        // decomposition: detach durability around the internal delete so
        // it is not logged separately.
        let durability = self.durability.take();
        self.delete(id).expect("visible: just read");
        self.durability = durability;
        let new_id = self.id_space();
        self.tail.push(row);
        self.tail_alive.push(true);
        // delete() and this append are one logical operation
        self.stats.deletes -= 1;
        self.stats.updates += 1;
        self.bump();
        if let Some(d) = &self.durability {
            d.log(&WalOp::Update {
                row: id as u64,
                col: c as u32,
                value: normalized,
            })?;
        }
        Ok(new_id)
    }

    /// The engine-facing overlay of the current state, or `None` when the
    /// delta is empty.
    pub fn overlay(&self) -> Option<Overlay<'_>> {
        if !self.has_delta() {
            return None;
        }
        Some(Overlay {
            dead: &self.dead_main,
            tail: &self.tail,
            tail_alive: if self.tail_dead_count > 0 {
                &self.tail_alive
            } else {
                &[]
            },
        })
    }

    /// All visible rows in scan order (main order, then tail append order).
    /// Hydrates a cold main.
    pub fn rows(&self) -> impl Iterator<Item = Row> + '_ {
        let main = self.main_ref();
        let main_live = (0..main.len())
            .filter(move |&i| self.dead_main.get(i).map(|d| !d).unwrap_or(true))
            .map(move |i| main.row(i).expect("in-range"));
        let tail_live = self
            .tail
            .iter()
            .zip(self.tail_alive.iter())
            .filter(|(_, alive)| **alive)
            .map(|(r, _)| r.clone());
        main_live.chain(tail_live)
    }

    /// The frozen overlay of the current version (shared per-version via
    /// the snapshot cache), or `None` when the delta is empty.
    fn frozen_overlay(&self) -> Option<Arc<OverlayData>> {
        if !self.has_delta() {
            return None;
        }
        Some(
            self.snap_cache
                .get_or_init(|| {
                    Arc::new(OverlayData {
                        dead: self.dead_main.clone(),
                        tail: self.tail.clone(),
                        tail_alive: if self.tail_dead_count > 0 {
                            self.tail_alive.clone()
                        } else {
                            Vec::new()
                        },
                    })
                })
                .clone(),
        )
    }

    /// Take a consistent snapshot of the current version. O(1) when this
    /// version has already been snapshotted; otherwise the overlay is
    /// frozen once (O(delta + tombstone mask)) and shared. Hydrates a cold
    /// main — streaming readers use [`VersionedTable::cold_scan`] instead.
    pub fn snapshot(&self) -> Snapshot {
        let overlay = self.frozen_overlay();
        let main = self.main_ref();
        Snapshot {
            main: main.clone(),
            overlay,
            generation: self.generation,
            _ticket: Some(self.registry.register(self.generation, main)),
        }
    }

    /// Fold the delta into a fresh main store under the current layout.
    ///
    /// Synchronous: the fold runs on the caller's thread. Aborts any
    /// pending background build first (the explicit merge wins; the
    /// in-flight build's `finish_merge` will fail `StaleMergeBuild` and
    /// be discarded by its owner).
    pub fn merge(&mut self) -> Result<MergeStats> {
        self.merge_with_layout(self.main_ref().layout().clone())
    }

    /// Fold the delta into a fresh main store under `layout` — the
    /// re-layout entry point the advisor drives. Publishing swaps the main
    /// `Arc`, so in-flight snapshots keep reading the old version. Row ids
    /// are renumbered; with an empty delta this is a pure relayout and ids
    /// are stable.
    ///
    /// Implemented as the three-phase pipeline run back-to-back (begin →
    /// build → finish) so the synchronous and background paths share one
    /// fold and stay byte-identical by construction.
    pub fn merge_with_layout(&mut self, layout: Layout) -> Result<MergeStats> {
        self.abort_merge();
        let ticket = self.begin_merge()?;
        let built = match ticket.build(layout) {
            Ok(b) => b,
            Err(e) => {
                self.abort_merge();
                return Err(e);
            }
        };
        self.finish_merge(built)
    }

    /// Phase 1 of a background merge: pin the current version as the
    /// build's *cut* and start recording post-cut tombstones for replay.
    /// O(delta) to freeze the overlay; the heavy fold belongs to
    /// [`MergeTicket::build`], which runs on any thread.
    ///
    /// Errors with [`Error::MergeInProgress`] if a build is already
    /// pending ([`VersionedTable::abort_merge`] clears it).
    pub fn begin_merge(&mut self) -> Result<MergeTicket> {
        if self.pending.is_some() {
            return Err(Error::MergeInProgress);
        }
        self.merge_epoch += 1;
        self.pending = Some(PendingMerge {
            epoch: self.merge_epoch,
            cut_tail: self.tail.len(),
            cut_ops: self.n_ops,
            replay_deletes: Vec::new(),
        });
        Ok(MergeTicket {
            snapshot: self.snapshot(),
            epoch: self.merge_epoch,
        })
    }

    /// Phase 3 of a background merge: replay the ops that landed since the
    /// build's cut and swap the fresh main store in. O(ops since cut) —
    /// the write path never pays the O(table) fold.
    ///
    /// Errors with [`Error::StaleMergeBuild`] (table untouched) when the
    /// merge state moved on since the build began: another merge
    /// completed, the build was aborted, or the main store was edited.
    pub fn finish_merge(&mut self, built: BuiltMain) -> Result<MergeStats> {
        match &self.pending {
            Some(p)
                if p.epoch == built.epoch
                    && built.cut_main_rows == self.main_len()
                    && built.cut_tail == p.cut_tail => {}
            _ => return Err(Error::StaleMergeBuild),
        }
        let pending = self.pending.take().expect("matched above");
        // Replay post-cut tombstones of cut-time rows onto the fresh main.
        let mut dead_main = Vec::new();
        let mut dead_main_count = 0usize;
        for &id in &pending.replay_deletes {
            let Some(p) = built.remap[id] else {
                continue; // defensive: dead at cut, nothing to replay
            };
            if dead_main.is_empty() {
                dead_main = vec![false; built.table.len()];
            }
            if !dead_main[p as usize] {
                dead_main[p as usize] = true;
                dead_main_count += 1;
            }
        }
        // Rows appended after the cut become the next version's delta,
        // liveness carried verbatim.
        let tail: Vec<Row> = self.tail.split_off(pending.cut_tail);
        let tail_alive: Vec<bool> = self.tail_alive.split_off(pending.cut_tail);
        let tail_dead_count = tail_alive.iter().filter(|a| !**a).count();
        let stats = MergeStats {
            generation: self.generation + 1,
            main_rows_before: built.cut_main_rows,
            tombstones_dropped: built.dead_at_cut,
            delta_rows_folded: built.tail_folded,
            rows_after: built.table.len(),
        };
        let build_epoch = built.epoch;
        let new_main = Arc::new(built.table);
        self.main = resident(new_main.clone());
        // The merge supersedes the checkpoint the cold mount was serving:
        // retire its frames so the pool does not cache a dead generation.
        if let Some(c) = self.cold.take() {
            c.retire();
        }
        self.generation += 1;
        self.registry.publish(self.generation, &new_main);
        self.dead_main = dead_main;
        self.dead_main_count = dead_main_count;
        self.tail = tail;
        self.tail_alive = tail_alive;
        self.tail_dead_count = tail_dead_count;
        self.n_ops -= pending.cut_ops;
        self.stats.merges += 1;
        self.snap_cache = OnceLock::new();
        // Checkpoint-on-merge: persist the fresh main and rewrite the WAL
        // in the new id space, still under the caller's write lock, so no
        // op can land between the swap and its durable record. An I/O
        // error here leaves the in-memory merge applied (readers are
        // fine) but reports the broken durable state to the caller.
        if let Some(d) = self.durability.clone() {
            d.checkpoint(
                &new_main,
                self.generation,
                build_epoch,
                &self.dead_main,
                &self.tail,
                &self.tail_alive,
            )?;
        }
        Ok(stats)
    }

    /// Drop any pending merge build. Its `finish_merge` will fail with
    /// [`Error::StaleMergeBuild`]. Returns whether a build was pending.
    pub fn abort_merge(&mut self) -> bool {
        self.pending.take().is_some()
    }

    /// Drop the pending merge build only if it is the one `epoch` stamps
    /// (see [`crate::MergeTicket::epoch`]) — the safe abort for an owner
    /// that may have been preempted: a newer pending merge begun by
    /// someone else is left alone. Returns whether an abort happened.
    pub fn abort_merge_epoch(&mut self, epoch: u64) -> bool {
        match &self.pending {
            Some(p) if p.epoch == epoch => {
                self.pending = None;
                true
            }
            _ => false,
        }
    }

    /// True iff a background merge build is in flight (begun, not yet
    /// finished or aborted).
    pub fn has_pending_merge(&self) -> bool {
        self.pending.is_some()
    }

    /// Version-chain statistics: how many main stores are still allocated,
    /// how many readers pin which generations, and the bytes superseded
    /// versions hold. See [`crate::registry`].
    pub fn version_stats(&self) -> VersionStats {
        self.registry.stats(self.generation)
    }

    /// Approximate bytes held by the delta (tail rows + masks).
    pub fn delta_byte_size(&self) -> usize {
        let row_bytes: usize = self
            .tail
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => 24 + s.len(),
                        _ => 16,
                    })
                    .sum::<usize>()
            })
            .sum();
        row_bytes + self.dead_main.len() + self.tail_alive.len()
    }
}

/// A live `VersionedTable` is itself a single-table provider: queries
/// against `&self` see main ∪ delta − tombstones. (Rust's borrow rules make
/// this safe without snapshotting: no write can happen during the borrow.)
impl TableProvider for VersionedTable {
    fn table(&self, name: &str) -> Option<&Table> {
        (name == self.name()).then(|| self.main_ref().as_ref())
    }

    fn overlay(&self, name: &str) -> Option<Overlay<'_>> {
        if name == self.name() {
            self.overlay()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_storage::ColumnDef;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int32),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::nullable("price", DataType::Float64),
        ])
    }

    fn seeded() -> VersionedTable {
        let mut base = Table::new("t", schema());
        for i in 0..10 {
            base.insert(&[
                Value::Int32(i),
                Value::Str(format!("n{}", i % 3)),
                Value::Float64(i as f64),
            ])
            .unwrap();
        }
        VersionedTable::from_table(base)
    }

    #[test]
    fn insert_delete_update_visibility() {
        let mut t = seeded();
        assert_eq!(t.len(), 10);
        let id = t
            .insert(&[Value::Int32(10), Value::Str("new".into()), Value::Null])
            .unwrap();
        assert_eq!(id, 10);
        assert_eq!(t.len(), 11);
        t.delete(3).unwrap();
        assert_eq!(t.len(), 10);
        assert!(matches!(t.delete(3), Err(Error::RowDeleted { row: 3 })));
        assert!(matches!(t.get(3), Err(Error::RowDeleted { .. })));
        let new_id = t.update(id, 1, &Value::Str("renamed".into())).unwrap();
        assert_eq!(new_id, 11);
        assert!(matches!(t.get(id), Err(Error::RowDeleted { .. })));
        assert_eq!(t.get(new_id).unwrap().0[1], Value::Str("renamed".into()));
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn dml_error_paths() {
        let mut t = seeded();
        assert!(matches!(
            t.insert(&[Value::Int32(1)]),
            Err(Error::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.insert(&[Value::Str("x".into()), Value::Str("y".into()), Value::Null]),
            Err(Error::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.insert(&[Value::Null, Value::Str("y".into()), Value::Null]),
            Err(Error::NullViolation(_))
        ));
        assert!(matches!(
            t.delete(999),
            Err(Error::RowOutOfRange { row: 999, .. })
        ));
        assert!(matches!(
            t.update(0, 99, &Value::Int32(1)),
            Err(Error::UnknownColumn(99))
        ));
        // nothing above changed the table
        assert_eq!(t.len(), 10);
        assert!(!t.has_delta());
    }

    #[test]
    fn insert_batch_is_atomic() {
        let mut t = seeded();
        let bad = vec![
            vec![Value::Int32(20), Value::Str("a".into()), Value::Null],
            vec![Value::Int32(21)], // arity error
        ];
        assert!(t.insert_batch(&bad).is_err());
        assert_eq!(t.len(), 10);
        assert!(!t.has_delta());
        let good = vec![
            vec![Value::Int32(20), Value::Str("a".into()), Value::Null],
            vec![
                Value::Int32(21),
                Value::Str("b".into()),
                Value::Float64(1.0),
            ],
        ];
        assert_eq!(t.insert_batch(&good).unwrap(), vec![10, 11]);
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn snapshots_pin_versions() {
        let mut t = seeded();
        let s0 = t.snapshot();
        t.insert(&[Value::Int32(100), Value::Str("x".into()), Value::Null])
            .unwrap();
        let s1 = t.snapshot();
        t.delete(0).unwrap();
        let s2 = t.snapshot();
        assert_eq!(s0.len(), 10);
        assert_eq!(s1.len(), 11);
        assert_eq!(s2.len(), 10);
        t.merge().unwrap();
        // old snapshots still read their pinned versions
        assert_eq!(s0.len(), 10);
        assert_eq!(s1.len(), 11);
        assert_eq!(s2.len(), 10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.generation(), 1);
    }

    #[test]
    fn snapshot_overlay_shared_within_version() {
        let mut t = seeded();
        t.insert(&[Value::Int32(100), Value::Str("x".into()), Value::Null])
            .unwrap();
        let a = t.snapshot();
        let b = t.snapshot();
        assert!(Arc::ptr_eq(
            a.overlay.as_ref().unwrap(),
            b.overlay.as_ref().unwrap()
        ));
    }

    #[test]
    fn merge_compacts_and_renumbers() {
        let mut t = seeded();
        t.delete(0).unwrap();
        t.delete(9).unwrap();
        t.insert(&[Value::Int32(50), Value::Str("tail".into()), Value::Null])
            .unwrap();
        let stats = t.merge().unwrap();
        assert_eq!(stats.main_rows_before, 10);
        assert_eq!(stats.tombstones_dropped, 2);
        assert_eq!(stats.delta_rows_folded, 1);
        assert_eq!(stats.rows_after, 9);
        assert_eq!(t.main().len(), 9);
        assert!(!t.has_delta());
        // scan order: surviving main rows, then the folded tail row
        assert_eq!(t.get(0).unwrap().0[0], Value::Int32(1));
        assert_eq!(t.get(8).unwrap().0[0], Value::Int32(50));
    }

    #[test]
    fn merge_into_different_layout_preserves_rows() {
        let mut t = seeded();
        t.delete(2).unwrap();
        t.insert(&[Value::Int32(77), Value::Str("n0".into()), Value::Null])
            .unwrap();
        let before: Vec<Row> = t.rows().collect();
        t.merge_with_layout(Layout::column(3)).unwrap();
        let after: Vec<Row> = t.rows().collect();
        assert_eq!(before, after);
        assert_eq!(t.main().layout().n_groups(), 3);
    }

    #[test]
    fn widening_matches_table_encoding() {
        let mut t = VersionedTable::new(
            "w",
            Schema::new(vec![
                ColumnDef::new("f", DataType::Float64),
                ColumnDef::new("l", DataType::Int64),
            ]),
        );
        let id = t.insert(&[Value::Int32(3), Value::Int32(4)]).unwrap();
        assert_eq!(
            t.get(id).unwrap().0,
            vec![Value::Float64(3.0), Value::Int64(4)]
        );
        t.merge().unwrap();
        assert_eq!(
            t.get(0).unwrap().0,
            vec![Value::Float64(3.0), Value::Int64(4)]
        );
    }

    /// Run `write_ops(t)` between begin and finish of a background merge,
    /// and the identical ops on a clone that stays un-merged; both tables
    /// (and then both after a final sync merge) must agree exactly.
    fn background_vs_live(
        mut t: VersionedTable,
        layout: Layout,
        write_ops: impl Fn(&mut VersionedTable),
    ) {
        let mut live = t.clone();
        let ticket = t.begin_merge().unwrap();
        write_ops(&mut t);
        write_ops(&mut live);
        let built = ticket.build(layout).unwrap();
        t.finish_merge(built).unwrap();
        let a: Vec<Row> = t.rows().collect();
        let b: Vec<Row> = live.rows().collect();
        assert_eq!(a, b, "background-merged vs live scan order");
        t.merge().unwrap();
        live.merge().unwrap();
        let a: Vec<Row> = t.rows().collect();
        let b: Vec<Row> = live.rows().collect();
        assert_eq!(a, b, "after final sync merge");
    }

    #[test]
    fn background_merge_replays_interleaved_ops() {
        background_vs_live(seeded(), Layout::column(3), |t| {
            // inserts after the cut
            t.insert(&[Value::Int32(100), Value::Str("post".into()), Value::Null])
                .unwrap();
            // delete a main-store row that existed at the cut
            t.delete(2).unwrap();
            // update a cut-time row: tombstone (replayed) + re-append (carried)
            t.update(5, 1, &Value::Str("upd".into())).unwrap();
            // delete a row appended after the cut (carried liveness)
            let id = t
                .insert(&[Value::Int32(101), Value::Str("gone".into()), Value::Null])
                .unwrap();
            t.delete(id).unwrap();
        });
    }

    #[test]
    fn background_merge_replays_cut_tail_tombstones() {
        // Seed a delta before the cut so the replay must remap tail
        // ordinals, not just main positions.
        let mut t = seeded();
        let pre = t
            .insert(&[Value::Int32(50), Value::Str("pre".into()), Value::Null])
            .unwrap();
        t.insert(&[Value::Int32(51), Value::Str("pre2".into()), Value::Null])
            .unwrap();
        background_vs_live(t, Layout::row(3), move |t| {
            t.delete(pre).unwrap(); // cut-tail row tombstoned post-cut
            t.delete(0).unwrap();
        });
    }

    #[test]
    fn background_merge_with_quiet_window_matches_sync() {
        let mut t = seeded();
        t.delete(0).unwrap();
        t.insert(&[Value::Int32(70), Value::Str("x".into()), Value::Null])
            .unwrap();
        let mut sync = t.clone();
        let ticket = t.begin_merge().unwrap();
        let built = ticket.build(Layout::column(3)).unwrap();
        let a = t.finish_merge(built).unwrap();
        let b = sync.merge_with_layout(Layout::column(3)).unwrap();
        assert_eq!(a, b, "identical MergeStats");
        assert!(!t.has_delta());
        let ta: Vec<Row> = t.rows().collect();
        let tb: Vec<Row> = sync.rows().collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn stale_build_is_rejected_and_table_untouched() {
        let mut t = seeded();
        t.insert(&[Value::Int32(60), Value::Str("d".into()), Value::Null])
            .unwrap();
        let ticket = t.begin_merge().unwrap();
        assert!(matches!(t.begin_merge(), Err(Error::MergeInProgress)));
        let built = ticket.build(Layout::row(3)).unwrap();
        // an explicit merge intervenes: the build is now stale
        t.merge().unwrap();
        let gen = t.generation();
        let rows: Vec<Row> = t.rows().collect();
        assert!(matches!(t.finish_merge(built), Err(Error::StaleMergeBuild)));
        assert_eq!(t.generation(), gen);
        assert_eq!(t.rows().collect::<Vec<_>>(), rows);
        // aborting with nothing pending is a no-op
        assert!(!t.abort_merge());
    }

    #[test]
    fn abort_merge_epoch_only_aborts_its_own() {
        let mut t = seeded();
        t.insert(&[Value::Int32(61), Value::Str("e".into()), Value::Null])
            .unwrap();
        let stale_epoch = t.begin_merge().unwrap().epoch();
        t.merge().unwrap(); // preempts the pending build and completes
        let ticket2 = t.begin_merge().unwrap();
        assert!(
            !t.abort_merge_epoch(stale_epoch),
            "a preempted owner must not abort someone else's newer merge"
        );
        assert!(t.has_pending_merge());
        assert!(t.abort_merge_epoch(ticket2.epoch()));
        assert!(!t.has_pending_merge());
    }

    #[test]
    fn post_cut_ops_remain_as_delta_after_swap() {
        let mut t = seeded();
        let ticket = t.begin_merge().unwrap();
        t.insert(&[Value::Int32(80), Value::Str("a".into()), Value::Null])
            .unwrap();
        t.delete(1).unwrap();
        let built = ticket.build(Layout::row(3)).unwrap();
        t.finish_merge(built).unwrap();
        // the swap folded only the cut; the two post-cut ops are the new delta
        assert_eq!(t.delta_ops(), 2);
        assert_eq!(t.delta_rows(), 1);
        assert_eq!(t.len(), 10); // 10 − 1 + 1
        assert!(t.has_delta());
    }

    #[test]
    fn long_lived_snapshot_pins_only_its_own_version() {
        let mut t = seeded();
        let pin = t.snapshot();
        let pinned_gen = pin.generation();
        for i in 0..6 {
            t.insert(&[Value::Int32(200 + i), Value::Str("m".into()), Value::Null])
                .unwrap();
            t.merge().unwrap();
        }
        let s = t.version_stats();
        assert_eq!(s.pinned_versions, 1, "only the long-lived reader's gen");
        assert_eq!(
            s.live_mains, 2,
            "pinned version + current — intermediates reclaimed"
        );
        assert!(s.pinned_bytes > 0);
        assert_eq!(pin.generation(), pinned_gen);
        drop(pin);
        let s = t.version_stats();
        assert_eq!(s.pinned_versions, 0);
        assert_eq!(s.live_mains, 1, "only the current main remains");
        assert_eq!(s.pinned_bytes, 0);
    }

    #[test]
    fn main_mut_requires_empty_delta() {
        let mut t = seeded();
        assert!(t.main_mut().is_ok());
        t.insert(&[Value::Int32(1), Value::Str("x".into()), Value::Null])
            .unwrap();
        assert!(t.main_mut().is_err());
        t.merge().unwrap();
        assert!(t.main_mut().is_ok());
    }
}
