//! Per-table durability: the glue between the in-memory
//! [`VersionedTable`] and the on-disk primitives of
//! `pdsm-store`.
//!
//! One [`TableDurability`] owns a table's slice of the data directory:
//!
//! ```text
//! <data_dir>/<table>/main.<G>.tbl   checkpointed main store, generation G
//! <data_dir>/<table>/wal.<G>.log    the WAL sitting on top of main.<G>
//! <data_dir>/MANIFEST               table -> current generation (shared)
//! ```
//!
//! Every committed DML batch is appended to the live WAL *before the
//! table's write lock is released* ([`TableDurability::log`], called from
//! the `VersionedTable` DML methods). A merge checkpoint
//! ([`TableDurability::checkpoint`], called from `finish_merge` after the
//! swap) persists the fresh main, rewrites the WAL **in the new id
//! space** as delta-reconstruction ops — deletes of tombstoned main rows,
//! one batch insert of the live tail, deletes of tombstoned tail rows —
//! and flips the manifest entry, which is the single atomic commit point.
//! The WAL therefore never outlives its main store's id space, and its
//! length is always O(delta), not O(history).
//!
//! Recovery ([`TableDurability::recover`]) inverts this: load the
//! manifest generation's main blob, decode the WAL up to the last whole
//! checksum-valid record (a torn tail is the crash point, not an error),
//! and hand the ops back for replay through the normal DML path.

use crate::table::VersionedTable;
use pdsm_storage::{persist, Error, Result, Row, Table};
use pdsm_store::{
    decode_stream, fsync_dir, remove_temp_files, sanitize_name, write_atomic, FsyncMode, Manifest,
    Wal, WalOp, WalStats,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Durability counters for one table (aggregated per-database by
/// `pdsm-core`'s `storage_stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL counters, summed across every WAL generation this table has
    /// had since open (appends, bytes, fsyncs, group sizes).
    pub wal: WalStats,
    /// Bytes currently in the live WAL file.
    pub wal_len: u64,
    /// Checkpoints taken (one per merge while durable).
    pub checkpoints: u64,
    /// WAL records replayed by the most recent recovery.
    pub last_recovery_replay_ops: u64,
}

/// What [`TableDurability::recover`] found on disk: the checkpointed main
/// store plus the WAL tail to replay through normal DML. Replay must run
/// *before* the durability handle is attached to the table, so the
/// replayed ops are not logged again.
pub struct RecoveredTable {
    /// The main store at the manifest's generation.
    pub table: Table,
    /// Whole, checksum-valid WAL records, in append order.
    pub ops: Vec<WalOp>,
    /// The handle to attach once replay is done (its WAL is already open
    /// for appending at the end of the valid prefix).
    pub durability: TableDurability,
}

/// One table's WAL + checkpoint + manifest glue. Shared as
/// `Arc<TableDurability>` between the owning `VersionedTable` and the
/// database-level stats aggregation; all methods take `&self`.
pub struct TableDurability {
    dir: PathBuf,
    name: String,
    manifest: Arc<Manifest>,
    fsync: FsyncMode,
    /// The live WAL (for generation `G` = the manifest entry). Replaced
    /// at every checkpoint; the mutex also covers the swap.
    wal: Mutex<Wal>,
    /// Counters folded in from WALs retired by checkpoints.
    retired: Mutex<WalStats>,
    checkpoints: AtomicU64,
    last_recovery_replay_ops: AtomicU64,
}

impl std::fmt::Debug for TableDurability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableDurability")
            .field("dir", &self.dir)
            .field("name", &self.name)
            .field("fsync", &self.fsync)
            .finish_non_exhaustive()
    }
}

fn io_err(ctx: &str, e: std::io::Error) -> Error {
    Error::Io(format!("{ctx}: {e}"))
}

fn main_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("main.{generation}.tbl"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal.{generation}.log"))
}

/// The pre-persisted build blob for merge epoch `epoch` (see
/// [`TableDurability::pre_persist`]). Contains `.tmp`, so crash leftovers
/// are scrubbed by [`remove_temp_files`].
fn pre_persist_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("main.tmp.{epoch}.tbl"))
}

/// Parse `main.<G>.tbl` / `wal.<G>.log` file names back to generations.
fn parse_generation(name: &str) -> Option<u64> {
    let rest = name
        .strip_prefix("main.")
        .and_then(|r| r.strip_suffix(".tbl"))
        .or_else(|| {
            name.strip_prefix("wal.")
                .and_then(|r| r.strip_suffix(".log"))
        })?;
    rest.parse().ok()
}

/// Drop every generation-stamped file except generation `keep`, plus any
/// temp leftovers. Best-effort: old generations are garbage either way.
fn cleanup(dir: &Path, keep: u64) {
    remove_temp_files(dir);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let name = name.to_string_lossy();
        if parse_generation(&name).is_some_and(|g| g != keep) {
            let _ = std::fs::remove_file(e.path());
        }
    }
}

impl TableDurability {
    /// Bootstrap durability for a table that exists only in memory:
    /// persist its main store at `generation`, start an empty WAL, and
    /// commit the manifest entry. The table's delta must be empty (the
    /// caller attaches durability at creation or right after a merge).
    pub fn create(
        data_dir: &Path,
        name: &str,
        manifest: Arc<Manifest>,
        fsync: FsyncMode,
        table: &Table,
        generation: u64,
    ) -> Result<TableDurability> {
        let dir = data_dir.join(sanitize_name(name));
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create table dir", e))?;
        let bytes = persist::to_bytes(table, generation);
        let dest = main_path(&dir, generation);
        write_atomic(
            &dest,
            &dir.join(format!("main.{generation}.tbl.tmp")),
            &bytes,
        )
        .map_err(|e| io_err("persist main store", e))?;
        let wal =
            Wal::create(&wal_path(&dir, generation), fsync).map_err(|e| io_err("create wal", e))?;
        fsync_dir(&dir).map_err(|e| io_err("fsync table dir", e))?;
        manifest
            .set(name, generation)
            .map_err(|e| io_err("commit manifest", e))?;
        cleanup(&dir, generation);
        Ok(TableDurability {
            dir,
            name: name.to_string(),
            manifest,
            fsync,
            wal: Mutex::new(wal),
            retired: Mutex::new(WalStats::default()),
            checkpoints: AtomicU64::new(0),
            last_recovery_replay_ops: AtomicU64::new(0),
        })
    }

    /// Load the table's durable state at `generation` (the manifest
    /// entry): the checkpointed main store, and the WAL decoded up to the
    /// last whole checksum-valid record. A short or corrupt WAL *tail* is
    /// the crash point and is truncated away; a corrupt *committed* blob
    /// (main store, or a record before the tail) is a hard error.
    pub fn recover(
        data_dir: &Path,
        name: &str,
        generation: u64,
        manifest: Arc<Manifest>,
        fsync: FsyncMode,
    ) -> Result<RecoveredTable> {
        let dir = data_dir.join(sanitize_name(name));
        // Temp files are crash artifacts of unfinished writes: scrub them
        // before they can be mistaken for real state.
        remove_temp_files(&dir);
        let bytes =
            std::fs::read(main_path(&dir, generation)).map_err(|e| io_err("read main store", e))?;
        let (table, on_disk_gen) = persist::from_bytes(&bytes)?;
        if on_disk_gen != generation {
            return Err(Error::Io(format!(
                "main store generation mismatch for table {name}: manifest says {generation}, \
                 blob says {on_disk_gen}"
            )));
        }
        let wpath = wal_path(&dir, generation);
        let (ops, wal) = match std::fs::read(&wpath) {
            Ok(wal_bytes) => {
                let (ops, valid) = decode_stream(&wal_bytes);
                // Reopening at `valid` truncates the torn tail away.
                let wal = Wal::open_append(&wpath, valid as u64, fsync)
                    .map_err(|e| io_err("reopen wal", e))?;
                (ops, wal)
            }
            // The WAL is written before the manifest flips, so a missing
            // file should be impossible — but an empty log is the safe
            // reading, and starting one keeps the invariant for later.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let wal = Wal::create(&wpath, fsync).map_err(|e| io_err("create wal", e))?;
                (Vec::new(), wal)
            }
            Err(e) => return Err(io_err("read wal", e)),
        };
        cleanup(&dir, generation);
        let replayed = ops.len() as u64;
        Ok(RecoveredTable {
            table,
            ops,
            durability: TableDurability {
                dir,
                name: name.to_string(),
                manifest,
                fsync,
                wal: Mutex::new(wal),
                retired: Mutex::new(WalStats::default()),
                checkpoints: AtomicU64::new(0),
                last_recovery_replay_ops: AtomicU64::new(replayed),
            },
        })
    }

    fn wal_lock(&self) -> MutexGuard<'_, Wal> {
        self.wal.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append one committed op to the live WAL. Called from the
    /// `VersionedTable` DML methods while the table write lock is held,
    /// after the in-memory apply succeeded.
    pub fn log(&self, op: &WalOp) -> Result<()> {
        self.wal_lock()
            .append(&op.encode_record())
            .map_err(|e| io_err("wal append", e))
    }

    /// Force the live WAL to disk regardless of fsync mode (clean
    /// shutdown, checkpoint barriers).
    pub fn sync(&self) -> Result<()> {
        self.wal_lock().sync().map_err(|e| io_err("wal sync", e))
    }

    /// Serialize a freshly built main store to the epoch-stamped temp
    /// blob, off the table lock, so the checkpoint inside `finish_merge`
    /// can rename it instead of serializing under the write lock. On any
    /// error the partial file is removed — a half-written blob must never
    /// be renamed into a committed name — and the checkpoint falls back
    /// to inline serialization.
    pub fn pre_persist(&self, table: &Table, generation: u64, epoch: u64) -> Result<()> {
        let path = pre_persist_path(&self.dir, epoch);
        let bytes = persist::to_bytes(table, generation);
        let res = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&path)?;
            f.write_all(&bytes)?;
            f.sync_data()
        })();
        if res.is_err() {
            let _ = std::fs::remove_file(&path);
        }
        res.map_err(|e| io_err("pre-persist built main", e))
    }

    /// Checkpoint the post-merge state. Called from `finish_merge` with
    /// the table write lock held, *after* the swap: `main` is the fresh
    /// main store at `generation`, and `dead_main`/`tail`/`tail_alive`
    /// are the new (post-cut) delta.
    ///
    /// Steps, in crash-safe order: (1) the main blob lands under its
    /// generation-stamped name — by renaming the pre-persisted build of
    /// `build_epoch` when present, else by serializing inline; (2) the
    /// WAL for the new generation is written as reconstruction ops in the
    /// new id space; (3) the manifest entry flips — the commit point;
    /// (4) the live WAL handle moves to the new file; (5) stale
    /// generations are scrubbed. A crash anywhere before (3) recovers
    /// from the previous generation, whose main + WAL are an equivalent
    /// un-merged description of the same rows.
    pub fn checkpoint(
        &self,
        main: &Table,
        generation: u64,
        build_epoch: u64,
        dead_main: &[bool],
        tail: &[Row],
        tail_alive: &[bool],
    ) -> Result<()> {
        // (1) main.<G>.tbl — rename the pre-persisted build if the
        // background path left one (already fsynced), else serialize now.
        let dest = main_path(&self.dir, generation);
        let pre = pre_persist_path(&self.dir, build_epoch);
        if std::fs::rename(&pre, &dest).is_ok() {
            fsync_dir(&self.dir).map_err(|e| io_err("fsync table dir", e))?;
        } else {
            let bytes = persist::to_bytes(main, generation);
            write_atomic(
                &dest,
                &self.dir.join(format!("main.{generation}.tbl.tmp")),
                &bytes,
            )
            .map_err(|e| io_err("persist main store", e))?;
        }
        // (2) wal.<G>.log — rebuild the delta in the new id space:
        // deletes of tombstoned main rows, then one insert batch of every
        // tail row, then deletes of the tombstoned tail rows. Replaying
        // these through normal DML reproduces the overlay exactly, with
        // the same row ids, so later records keep addressing correctly.
        let mut buf = Vec::new();
        for (i, dead) in dead_main.iter().enumerate() {
            if *dead {
                buf.extend_from_slice(&WalOp::Delete { row: i as u64 }.encode_record());
            }
        }
        if !tail.is_empty() {
            buf.extend_from_slice(&WalOp::InsertBatch(tail.to_vec()).encode_record());
        }
        for (j, alive) in tail_alive.iter().enumerate() {
            if !*alive {
                let row = (main.len() + j) as u64;
                buf.extend_from_slice(&WalOp::Delete { row }.encode_record());
            }
        }
        let wal_dest = wal_path(&self.dir, generation);
        write_atomic(
            &wal_dest,
            &self.dir.join(format!("wal.{generation}.log.tmp")),
            &buf,
        )
        .map_err(|e| io_err("write checkpoint wal", e))?;
        // (3) the commit point.
        self.manifest
            .set(&self.name, generation)
            .map_err(|e| io_err("commit manifest", e))?;
        // (4) swap the live WAL handle; fold the retired one's counters.
        let new_wal = Wal::open_append(&wal_dest, buf.len() as u64, self.fsync)
            .map_err(|e| io_err("reopen checkpoint wal", e))?;
        {
            let mut g = self.wal_lock();
            let old_stats = g.stats();
            self.retired
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .merge(&old_stats);
            *g = new_wal;
        }
        // (5) previous generations are now unreachable.
        cleanup(&self.dir, generation);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Atomically replace the main blob for the *current* generation —
    /// the hook for direct `main_mut` bulk edits, which are only legal
    /// while the delta (and therefore the live WAL) is empty, so the blob
    /// swap alone keeps disk and memory consistent.
    pub fn persist_main(&self, table: &Table, generation: u64) -> Result<()> {
        let bytes = persist::to_bytes(table, generation);
        write_atomic(
            &main_path(&self.dir, generation),
            &self.dir.join(format!("main.{generation}.tbl.tmp")),
            &bytes,
        )
        .map_err(|e| io_err("persist main store", e))
    }

    /// Current counters (live WAL + everything retired by checkpoints).
    pub fn stats(&self) -> DurabilityStats {
        let wal = self.wal_lock();
        let mut merged = *self.retired.lock().unwrap_or_else(|e| e.into_inner());
        merged.merge(&wal.stats());
        DurabilityStats {
            wal: merged,
            wal_len: wal.len(),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            last_recovery_replay_ops: self.last_recovery_replay_ops.load(Ordering::Relaxed),
        }
    }

    /// The fsync discipline this table runs under.
    pub fn fsync_mode(&self) -> FsyncMode {
        self.fsync
    }

    /// The table's directory inside the data dir.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Replay recovered WAL ops through the normal DML path. The table must
/// not have durability attached yet (replay must not be re-logged);
/// attach it after this returns.
pub fn replay(table: &mut VersionedTable, ops: &[WalOp]) -> Result<()> {
    debug_assert!(table.durability().is_none(), "replay would be re-logged");
    for op in ops {
        match op {
            WalOp::InsertBatch(rows) => {
                let rows: Vec<Vec<pdsm_storage::Value>> =
                    rows.iter().map(|r| r.values().to_vec()).collect();
                table.insert_batch(&rows)?;
            }
            WalOp::Update { row, col, value } => {
                table.update(*row as usize, *col as usize, value)?;
            }
            WalOp::Delete { row } => table.delete(*row as usize)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_storage::{ColumnDef, DataType, Layout, Schema, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pdsm-dur-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int32),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::nullable("price", DataType::Float64),
        ])
    }

    fn durable_table(dir: &Path, name: &str) -> (VersionedTable, Arc<Manifest>) {
        let manifest = Arc::new(Manifest::open(dir.join("MANIFEST")).unwrap());
        let mut t = VersionedTable::new(name, schema());
        let d = TableDurability::create(
            dir,
            name,
            Arc::clone(&manifest),
            FsyncMode::Off,
            t.main(),
            t.generation(),
        )
        .unwrap();
        t.set_durability(Arc::new(d));
        (t, manifest)
    }

    /// A fresh process would do exactly this: reload the manifest, load
    /// the blob, replay the WAL, then attach durability.
    fn reopen(dir: &Path, name: &str) -> VersionedTable {
        let manifest = Arc::new(Manifest::open(dir.join("MANIFEST")).unwrap());
        let generation = manifest.get(name).unwrap();
        let rec =
            TableDurability::recover(dir, name, generation, manifest, FsyncMode::Off).unwrap();
        let mut t = VersionedTable::from_recovered(rec.table, generation);
        replay(&mut t, &rec.ops).unwrap();
        t.set_durability(Arc::new(rec.durability));
        t
    }

    fn all_rows(t: &VersionedTable) -> Vec<Row> {
        t.rows().collect()
    }

    #[test]
    fn dml_survives_reopen() {
        let dir = tmpdir("dml");
        let (mut t, _manifest) = durable_table(&dir, "orders");
        t.insert(&[Value::Int32(1), Value::Str("a".into()), Value::Null])
            .unwrap();
        t.insert(&[Value::Int32(2), Value::Str("b".into()), Value::Float64(2.5)])
            .unwrap();
        let id = t
            .insert(&[Value::Int32(3), Value::Str("c".into()), Value::Null])
            .unwrap();
        t.delete(id).unwrap();
        t.update(0, 1, &Value::Str("a2".into())).unwrap();
        let before = all_rows(&t);
        drop(t);
        let r = reopen(&dir, "orders");
        assert_eq!(all_rows(&r), before);
        assert_eq!(r.durability().unwrap().stats().last_recovery_replay_ops, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_on_merge_shrinks_wal_and_survives() {
        let dir = tmpdir("ckpt");
        let (mut t, manifest) = durable_table(&dir, "t");
        for i in 0..50 {
            t.insert(&[Value::Int32(i), Value::Str(format!("r{i}")), Value::Null])
                .unwrap();
        }
        t.delete(3).unwrap();
        let wal_before = t.durability().unwrap().stats().wal_len;
        assert!(wal_before > 0);
        t.merge().unwrap();
        let d = t.durability().unwrap();
        assert_eq!(d.stats().checkpoints, 1);
        assert_eq!(d.stats().wal_len, 0, "empty delta => empty wal");
        assert_eq!(manifest.get("t"), Some(1));
        // post-checkpoint ops land in the new WAL and replay on reopen
        t.update(0, 1, &Value::Str("post".into())).unwrap();
        let before = all_rows(&t);
        drop(d);
        drop(t);
        let r = reopen(&dir, "t");
        assert_eq!(r.generation(), 1);
        assert_eq!(all_rows(&r), before);
        // replay is O(ops since checkpoint): exactly the one update
        assert_eq!(r.durability().unwrap().stats().last_recovery_replay_ops, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_merge_checkpoint_carries_post_cut_delta() {
        let dir = tmpdir("bg");
        let (mut t, _manifest) = durable_table(&dir, "t");
        for i in 0..10 {
            t.insert(&[Value::Int32(i), Value::Str("x".into()), Value::Null])
                .unwrap();
        }
        let ticket = t.begin_merge().unwrap();
        // ops landing during the build: a delete of a cut row, an insert,
        // and an update — all must survive the checkpointed swap.
        t.delete(2).unwrap();
        t.insert(&[Value::Int32(100), Value::Str("post".into()), Value::Null])
            .unwrap();
        t.update(4, 2, &Value::Float64(9.5)).unwrap();
        let built = ticket.build(Layout::column(3)).unwrap();
        t.finish_merge(built).unwrap();
        let before = all_rows(&t);
        drop(t);
        let r = reopen(&dir, "t");
        assert_eq!(r.generation(), 1);
        assert_eq!(all_rows(&r), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_recovers_to_last_whole_record() {
        let dir = tmpdir("torn");
        let (mut t, _manifest) = durable_table(&dir, "t");
        t.insert(&[Value::Int32(1), Value::Str("a".into()), Value::Null])
            .unwrap();
        t.insert(&[Value::Int32(2), Value::Str("b".into()), Value::Null])
            .unwrap();
        let survivors = all_rows(&t);
        t.insert(&[Value::Int32(3), Value::Str("lost".into()), Value::Null])
            .unwrap();
        let wal = wal_path(&dir.join(sanitize_name("t")), 0);
        drop(t);
        // tear the last record: recovery must stop before it
        let len = std::fs::metadata(&wal).unwrap().len();
        pdsm_store::truncate_at(&wal, len - 3).unwrap();
        let r = reopen(&dir, "t");
        assert_eq!(all_rows(&r), survivors);
        assert_eq!(r.durability().unwrap().stats().last_recovery_replay_ops, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_logs_a_single_op() {
        let dir = tmpdir("oneop");
        let (mut t, _manifest) = durable_table(&dir, "t");
        t.insert(&[Value::Int32(1), Value::Str("a".into()), Value::Null])
            .unwrap();
        let appends_before = t.durability().unwrap().stats().wal.appends;
        t.update(0, 1, &Value::Str("b".into())).unwrap();
        let appends_after = t.durability().unwrap().stats().wal.appends;
        assert_eq!(
            appends_after - appends_before,
            1,
            "update must log one op, not its delete + append decomposition"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn half_written_pre_persist_blob_is_never_committed() {
        let dir = tmpdir("halfblob");
        let (mut t, _manifest) = durable_table(&dir, "t");
        for i in 0..5 {
            t.insert(&[Value::Int32(i), Value::Str("x".into()), Value::Null])
                .unwrap();
        }
        // Simulate a crash that left a torn pre-persist temp file from an
        // abandoned build epoch: recovery must scrub it, not read it.
        let tdir = dir.join(sanitize_name("t"));
        std::fs::write(pre_persist_path(&tdir, 7), b"torn garbage").unwrap();
        let before = all_rows(&t);
        drop(t);
        let r = reopen(&dir, "t");
        assert_eq!(all_rows(&r), before);
        assert!(!pre_persist_path(&tdir, 7).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn main_mut_edits_persist() {
        let dir = tmpdir("mainmut");
        let (mut t, _manifest) = durable_table(&dir, "t");
        t.main_mut()
            .unwrap()
            .insert(&[Value::Int32(9), Value::Str("bulk".into()), Value::Null])
            .unwrap();
        t.persist_main().unwrap();
        let before = all_rows(&t);
        assert_eq!(before.len(), 1);
        drop(t);
        let r = reopen(&dir, "t");
        assert_eq!(all_rows(&r), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_committed_main_blob_is_a_hard_error() {
        let dir = tmpdir("hard");
        let (t, _manifest) = durable_table(&dir, "t");
        drop(t);
        let blob = main_path(&dir.join(sanitize_name("t")), 0);
        pdsm_store::flip_bit(&blob, 12).unwrap();
        let manifest = Arc::new(Manifest::open(dir.join("MANIFEST")).unwrap());
        let res = TableDurability::recover(&dir, "t", 0, manifest, FsyncMode::Off);
        assert!(res.is_err(), "bit rot in a committed blob must not pass");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_scrubs_previous_generation() {
        let dir = tmpdir("scrub");
        let (mut t, _manifest) = durable_table(&dir, "t");
        t.insert(&[Value::Int32(1), Value::Str("a".into()), Value::Null])
            .unwrap();
        t.merge().unwrap();
        let tdir = dir.join(sanitize_name("t"));
        assert!(main_path(&tdir, 1).exists());
        assert!(!main_path(&tdir, 0).exists(), "gen 0 blob scrubbed");
        assert!(!wal_path(&tdir, 0).exists(), "gen 0 wal scrubbed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
