//! Per-table durability: the glue between the in-memory
//! [`VersionedTable`] and the on-disk primitives of
//! `pdsm-store`.
//!
//! One [`TableDurability`] owns a table's slice of the data directory:
//!
//! ```text
//! <data_dir>/<table>/main.<G>.tbl   checkpointed main store, generation G
//! <data_dir>/<table>/wal.<G>.log    the WAL sitting on top of main.<G>
//! <data_dir>/MANIFEST               table -> current generation (shared)
//! ```
//!
//! Every committed DML batch is appended to the live WAL *before the
//! table's write lock is released* ([`TableDurability::log`], called from
//! the `VersionedTable` DML methods). A merge checkpoint
//! ([`TableDurability::checkpoint`], called from `finish_merge` after the
//! swap) persists the fresh main, rewrites the WAL **in the new id
//! space** as delta-reconstruction ops — deletes of tombstoned main rows,
//! one batch insert of the live tail, deletes of tombstoned tail rows —
//! and flips the manifest entry, which is the single atomic commit point.
//! The WAL therefore never outlives its main store's id space, and its
//! length is always O(delta), not O(history).
//!
//! Recovery ([`TableDurability::recover`]) inverts this: load the
//! manifest generation's main blob, decode the WAL up to the last whole
//! checksum-valid record (a torn tail is the crash point, not an error),
//! and hand the ops back for replay through the normal DML path.

use crate::table::VersionedTable;
use pdsm_pool::{BufferPool, ColdTable};
use pdsm_storage::{persist, Error, Result, Row, Table};
use pdsm_store::{
    decode_stream, fsync_dir, remove_temp_files, sanitize_name, write_atomic, FsyncMode, Manifest,
    Wal, WalOp, WalStats,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Durability counters for one table (aggregated per-database by
/// `pdsm-core`'s `storage_stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL counters, summed across every WAL generation this table has
    /// had since open (appends, bytes, fsyncs, group sizes).
    pub wal: WalStats,
    /// Bytes currently in the live WAL file.
    pub wal_len: u64,
    /// Checkpoints taken (one per merge while durable).
    pub checkpoints: u64,
    /// WAL records replayed by the most recent recovery.
    pub last_recovery_replay_ops: u64,
    /// Completed WAL segments rolled over (`PDSM_WAL_SEGMENT_BYTES`).
    pub wal_segments_rotated: u64,
}

/// What [`TableDurability::recover`] found on disk: the checkpointed main
/// store plus the WAL tail to replay through normal DML. Replay must run
/// *before* the durability handle is attached to the table, so the
/// replayed ops are not logged again.
pub struct RecoveredTable {
    /// The main store at the manifest's generation.
    pub table: Table,
    /// Whole, checksum-valid WAL records, in append order.
    pub ops: Vec<WalOp>,
    /// The handle to attach once replay is done (its WAL is already open
    /// for appending at the end of the valid prefix).
    pub durability: TableDurability,
}

/// Cold-path twin of [`RecoveredTable`]: the main store stays on disk as a
/// header-only [`ColdTable`]; extents fault in through the buffer pool on
/// first touch. WAL handling is identical.
pub struct RecoveredColdTable {
    /// The checkpointed main at the manifest's generation, unhydrated.
    pub cold: Arc<ColdTable>,
    /// Whole, checksum-valid WAL records, in append order.
    pub ops: Vec<WalOp>,
    pub durability: TableDurability,
}

/// One table's WAL + checkpoint + manifest glue. Shared as
/// `Arc<TableDurability>` between the owning `VersionedTable` and the
/// database-level stats aggregation; all methods take `&self`.
pub struct TableDurability {
    dir: PathBuf,
    name: String,
    manifest: Arc<Manifest>,
    fsync: FsyncMode,
    /// The live WAL segment (for generation `G` = the manifest entry).
    /// Replaced at every checkpoint and rotation; the mutex also covers
    /// the swaps.
    wal: Mutex<LiveWal>,
    /// Counters folded in from WALs retired by checkpoints/rotations.
    retired: Mutex<WalStats>,
    /// Roll the live segment when it reaches this many bytes (0 = never).
    /// Seeded from `PDSM_WAL_SEGMENT_BYTES`.
    segment_bytes: AtomicU64,
    /// The generation the live WAL belongs to (names rotated segments).
    generation: AtomicU64,
    checkpoints: AtomicU64,
    segments_rotated: AtomicU64,
    last_recovery_replay_ops: AtomicU64,
    /// The in-flight background deletion pass, if any (old generations
    /// are scrubbed off the checkpoint path).
    cleaner: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// The appendable WAL segment plus its index within the generation.
struct LiveWal {
    wal: Wal,
    seg: u32,
}

/// `PDSM_WAL_SEGMENT_BYTES` (0 / unset = no rotation).
fn wal_segment_bytes_from_env() -> u64 {
    std::env::var("PDSM_WAL_SEGMENT_BYTES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

impl std::fmt::Debug for TableDurability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableDurability")
            .field("dir", &self.dir)
            .field("name", &self.name)
            .field("fsync", &self.fsync)
            .finish_non_exhaustive()
    }
}

fn io_err(ctx: &str, e: std::io::Error) -> Error {
    Error::Io(format!("{ctx}: {e}"))
}

fn main_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("main.{generation}.tbl"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal.{generation}.log"))
}

/// Segment `seg` of generation `generation`'s WAL. Segment 0 keeps the
/// classic `wal.<G>.log` name; rotation appends `wal.<G>.<n>.log`.
fn wal_seg_path(dir: &Path, generation: u64, seg: u32) -> PathBuf {
    if seg == 0 {
        wal_path(dir, generation)
    } else {
        dir.join(format!("wal.{generation}.{seg}.log"))
    }
}

/// The pre-persisted build blob for merge epoch `epoch` (see
/// [`TableDurability::pre_persist`]). Contains `.tmp`, so crash leftovers
/// are scrubbed by [`remove_temp_files`].
fn pre_persist_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("main.tmp.{epoch}.tbl"))
}

/// Parse `main.<G>.tbl` / `wal.<G>.log` / `wal.<G>.<n>.log` file names
/// back to generations.
fn parse_generation(name: &str) -> Option<u64> {
    if let Some(rest) = name
        .strip_prefix("main.")
        .and_then(|r| r.strip_suffix(".tbl"))
    {
        return rest.parse().ok();
    }
    let mid = name.strip_prefix("wal.")?.strip_suffix(".log")?;
    match mid.split_once('.') {
        None => mid.parse().ok(),
        Some((g, seg)) => {
            seg.parse::<u32>().ok()?;
            g.parse().ok()
        }
    }
}

/// Drop every generation-stamped file except generation `keep`, plus any
/// temp leftovers. Best-effort: old generations are garbage either way.
fn cleanup(dir: &Path, keep: u64) {
    remove_temp_files(dir);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let name = name.to_string_lossy();
        if parse_generation(&name).is_some_and(|g| g != keep) {
            let _ = std::fs::remove_file(e.path());
        }
    }
}

impl TableDurability {
    /// Bootstrap durability for a table that exists only in memory:
    /// persist its main store at `generation`, start an empty WAL, and
    /// commit the manifest entry. The table's delta must be empty (the
    /// caller attaches durability at creation or right after a merge).
    pub fn create(
        data_dir: &Path,
        name: &str,
        manifest: Arc<Manifest>,
        fsync: FsyncMode,
        table: &Table,
        generation: u64,
    ) -> Result<TableDurability> {
        let dir = data_dir.join(sanitize_name(name));
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create table dir", e))?;
        let bytes = persist::to_bytes_extents(table, generation, persist::extent_rows_from_env());
        let dest = main_path(&dir, generation);
        write_atomic(
            &dest,
            &dir.join(format!("main.{generation}.tbl.tmp")),
            &bytes,
        )
        .map_err(|e| io_err("persist main store", e))?;
        let wal =
            Wal::create(&wal_path(&dir, generation), fsync).map_err(|e| io_err("create wal", e))?;
        fsync_dir(&dir).map_err(|e| io_err("fsync table dir", e))?;
        manifest
            .set(name, generation)
            .map_err(|e| io_err("commit manifest", e))?;
        cleanup(&dir, generation);
        Ok(Self::handle(
            dir, name, manifest, fsync, wal, 0, generation, 0,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn handle(
        dir: PathBuf,
        name: &str,
        manifest: Arc<Manifest>,
        fsync: FsyncMode,
        wal: Wal,
        seg: u32,
        generation: u64,
        replayed: u64,
    ) -> TableDurability {
        TableDurability {
            dir,
            name: name.to_string(),
            manifest,
            fsync,
            wal: Mutex::new(LiveWal { wal, seg }),
            retired: Mutex::new(WalStats::default()),
            segment_bytes: AtomicU64::new(wal_segment_bytes_from_env()),
            generation: AtomicU64::new(generation),
            checkpoints: AtomicU64::new(0),
            segments_rotated: AtomicU64::new(0),
            last_recovery_replay_ops: AtomicU64::new(replayed),
            cleaner: Mutex::new(None),
        }
    }

    /// Load the table's durable state at `generation` (the manifest
    /// entry): the checkpointed main store, and the WAL decoded up to the
    /// last whole checksum-valid record. A short or corrupt WAL *tail* is
    /// the crash point and is truncated away; a corrupt *committed* blob
    /// (main store, or a record before the tail) is a hard error.
    pub fn recover(
        data_dir: &Path,
        name: &str,
        generation: u64,
        manifest: Arc<Manifest>,
        fsync: FsyncMode,
    ) -> Result<RecoveredTable> {
        let dir = data_dir.join(sanitize_name(name));
        // Temp files are crash artifacts of unfinished writes: scrub them
        // before they can be mistaken for real state.
        remove_temp_files(&dir);
        let bytes =
            std::fs::read(main_path(&dir, generation)).map_err(|e| io_err("read main store", e))?;
        let (table, on_disk_gen) = persist::from_bytes(&bytes)?;
        if on_disk_gen != generation {
            return Err(Error::Io(format!(
                "main store generation mismatch for table {name}: manifest says {generation}, \
                 blob says {on_disk_gen}"
            )));
        }
        let (ops, wal, seg) = recover_wal_segments(&dir, generation, fsync)?;
        cleanup(&dir, generation);
        let replayed = ops.len() as u64;
        Ok(RecoveredTable {
            table,
            ops,
            durability: Self::handle(dir, name, manifest, fsync, wal, seg, generation, replayed),
        })
    }

    /// Like [`TableDurability::recover`], but the main store is *not*
    /// read: a header-only [`ColdTable`] is mounted over the v3 extent
    /// checkpoint and row data faults in through `pool` on demand. Fails
    /// on pre-extent (v2) blobs — callers fall back to the resident path.
    pub fn recover_cold(
        data_dir: &Path,
        name: &str,
        generation: u64,
        manifest: Arc<Manifest>,
        fsync: FsyncMode,
        pool: Arc<BufferPool>,
    ) -> Result<RecoveredColdTable> {
        let dir = data_dir.join(sanitize_name(name));
        remove_temp_files(&dir);
        let cold = ColdTable::open(&main_path(&dir, generation), pool)?;
        if cold.generation() != generation {
            return Err(Error::Io(format!(
                "main store generation mismatch for table {name}: manifest says {generation}, \
                 blob says {}",
                cold.generation()
            )));
        }
        let (ops, wal, seg) = recover_wal_segments(&dir, generation, fsync)?;
        cleanup(&dir, generation);
        let replayed = ops.len() as u64;
        Ok(RecoveredColdTable {
            cold: Arc::new(cold),
            ops,
            durability: Self::handle(dir, name, manifest, fsync, wal, seg, generation, replayed),
        })
    }

    fn wal_lock(&self) -> MutexGuard<'_, LiveWal> {
        self.wal.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append one committed op to the live WAL. Called from the
    /// `VersionedTable` DML methods while the table write lock is held,
    /// after the in-memory apply succeeded. Rolls the segment over when it
    /// reaches `PDSM_WAL_SEGMENT_BYTES`.
    pub fn log(&self, op: &WalOp) -> Result<()> {
        let mut g = self.wal_lock();
        g.wal
            .append(&op.encode_record())
            .map_err(|e| io_err("wal append", e))?;
        let limit = self.segment_bytes.load(Ordering::Relaxed);
        if limit > 0 && g.wal.len() >= limit {
            self.rotate_segment(&mut g)?;
        }
        Ok(())
    }

    /// Roll the live WAL to the next numbered segment. The completed
    /// segment is fsynced first (it is now immutable history), so replay
    /// order — segment 0, 1, 2, … — can never see a torn middle.
    fn rotate_segment(&self, g: &mut LiveWal) -> Result<()> {
        g.wal
            .sync()
            .map_err(|e| io_err("sync full wal segment", e))?;
        let generation = self.generation.load(Ordering::Relaxed);
        let next = g.seg + 1;
        let wal = Wal::create(&wal_seg_path(&self.dir, generation, next), self.fsync)
            .map_err(|e| io_err("create wal segment", e))?;
        fsync_dir(&self.dir).map_err(|e| io_err("fsync table dir", e))?;
        let old_stats = g.wal.stats();
        self.retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(&old_stats);
        g.wal = wal;
        g.seg = next;
        self.segments_rotated.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Override the rotation threshold (0 disables). Mostly for tests and
    /// benchmarks; production reads `PDSM_WAL_SEGMENT_BYTES` at open.
    pub fn set_wal_segment_bytes(&self, bytes: u64) {
        self.segment_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Force the live WAL to disk regardless of fsync mode (clean
    /// shutdown, checkpoint barriers).
    pub fn sync(&self) -> Result<()> {
        self.wal_lock()
            .wal
            .sync()
            .map_err(|e| io_err("wal sync", e))
    }

    /// Serialize a freshly built main store to the epoch-stamped temp
    /// blob, off the table lock, so the checkpoint inside `finish_merge`
    /// can rename it instead of serializing under the write lock. On any
    /// error the partial file is removed — a half-written blob must never
    /// be renamed into a committed name — and the checkpoint falls back
    /// to inline serialization.
    pub fn pre_persist(&self, table: &Table, generation: u64, epoch: u64) -> Result<()> {
        let path = pre_persist_path(&self.dir, epoch);
        let bytes = persist::to_bytes_extents(table, generation, persist::extent_rows_from_env());
        let res = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&path)?;
            f.write_all(&bytes)?;
            f.sync_data()
        })();
        if res.is_err() {
            let _ = std::fs::remove_file(&path);
        }
        res.map_err(|e| io_err("pre-persist built main", e))
    }

    /// Checkpoint the post-merge state. Called from `finish_merge` with
    /// the table write lock held, *after* the swap: `main` is the fresh
    /// main store at `generation`, and `dead_main`/`tail`/`tail_alive`
    /// are the new (post-cut) delta.
    ///
    /// Steps, in crash-safe order: (1) the main blob lands under its
    /// generation-stamped name — by renaming the pre-persisted build of
    /// `build_epoch` when present, else by serializing inline; (2) the
    /// WAL for the new generation is written as reconstruction ops in the
    /// new id space; (3) the manifest entry flips — the commit point;
    /// (4) the live WAL handle moves to the new file; (5) stale
    /// generations are scrubbed. A crash anywhere before (3) recovers
    /// from the previous generation, whose main + WAL are an equivalent
    /// un-merged description of the same rows.
    pub fn checkpoint(
        &self,
        main: &Table,
        generation: u64,
        build_epoch: u64,
        dead_main: &[bool],
        tail: &[Row],
        tail_alive: &[bool],
    ) -> Result<()> {
        // (1) main.<G>.tbl — rename the pre-persisted build if the
        // background path left one (already fsynced), else serialize now.
        let dest = main_path(&self.dir, generation);
        let pre = pre_persist_path(&self.dir, build_epoch);
        if std::fs::rename(&pre, &dest).is_ok() {
            fsync_dir(&self.dir).map_err(|e| io_err("fsync table dir", e))?;
        } else {
            let bytes =
                persist::to_bytes_extents(main, generation, persist::extent_rows_from_env());
            write_atomic(
                &dest,
                &self.dir.join(format!("main.{generation}.tbl.tmp")),
                &bytes,
            )
            .map_err(|e| io_err("persist main store", e))?;
        }
        // (2) wal.<G>.log — rebuild the delta in the new id space:
        // deletes of tombstoned main rows, then one insert batch of every
        // tail row, then deletes of the tombstoned tail rows. Replaying
        // these through normal DML reproduces the overlay exactly, with
        // the same row ids, so later records keep addressing correctly.
        let mut buf = Vec::new();
        for (i, dead) in dead_main.iter().enumerate() {
            if *dead {
                buf.extend_from_slice(&WalOp::Delete { row: i as u64 }.encode_record());
            }
        }
        if !tail.is_empty() {
            buf.extend_from_slice(&WalOp::InsertBatch(tail.to_vec()).encode_record());
        }
        for (j, alive) in tail_alive.iter().enumerate() {
            if !*alive {
                let row = (main.len() + j) as u64;
                buf.extend_from_slice(&WalOp::Delete { row }.encode_record());
            }
        }
        let wal_dest = wal_path(&self.dir, generation);
        write_atomic(
            &wal_dest,
            &self.dir.join(format!("wal.{generation}.log.tmp")),
            &buf,
        )
        .map_err(|e| io_err("write checkpoint wal", e))?;
        // (3) the commit point.
        self.manifest
            .set(&self.name, generation)
            .map_err(|e| io_err("commit manifest", e))?;
        // (4) swap the live WAL handle; fold the retired one's counters.
        let new_wal = Wal::open_append(&wal_dest, buf.len() as u64, self.fsync)
            .map_err(|e| io_err("reopen checkpoint wal", e))?;
        {
            let mut g = self.wal_lock();
            let old_stats = g.wal.stats();
            self.retired
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .merge(&old_stats);
            *g = LiveWal {
                wal: new_wal,
                seg: 0,
            };
        }
        self.generation.store(generation, Ordering::Relaxed);
        // (5) previous generations are now unreachable: the old main blob
        // and every fully-checkpointed WAL segment die on a background
        // thread, off the merge-swap critical path.
        {
            let dir = self.dir.clone();
            let mut cleaner = self.cleaner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(h) = cleaner.take() {
                let _ = h.join();
            }
            *cleaner = Some(std::thread::spawn(move || cleanup(&dir, generation)));
        }
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Block until the background deletion pass from the last checkpoint
    /// (if any) has finished. Tests and clean shutdown use this.
    pub fn wait_cleanup(&self) {
        let mut cleaner = self.cleaner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = cleaner.take() {
            let _ = h.join();
        }
    }

    /// Atomically replace the main blob for the *current* generation —
    /// the hook for direct `main_mut` bulk edits, which are only legal
    /// while the delta (and therefore the live WAL) is empty, so the blob
    /// swap alone keeps disk and memory consistent.
    pub fn persist_main(&self, table: &Table, generation: u64) -> Result<()> {
        let bytes = persist::to_bytes_extents(table, generation, persist::extent_rows_from_env());
        write_atomic(
            &main_path(&self.dir, generation),
            &self.dir.join(format!("main.{generation}.tbl.tmp")),
            &bytes,
        )
        .map_err(|e| io_err("persist main store", e))
    }

    /// Current counters (live WAL + everything retired by checkpoints).
    pub fn stats(&self) -> DurabilityStats {
        let g = self.wal_lock();
        let mut merged = *self.retired.lock().unwrap_or_else(|e| e.into_inner());
        merged.merge(&g.wal.stats());
        DurabilityStats {
            wal: merged,
            wal_len: g.wal.len(),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            last_recovery_replay_ops: self.last_recovery_replay_ops.load(Ordering::Relaxed),
            wal_segments_rotated: self.segments_rotated.load(Ordering::Relaxed),
        }
    }

    /// The fsync discipline this table runs under.
    pub fn fsync_mode(&self) -> FsyncMode {
        self.fsync
    }

    /// The table's directory inside the data dir.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for TableDurability {
    fn drop(&mut self) {
        self.wait_cleanup();
    }
}

/// Decode generation `generation`'s WAL segments in order (0, 1, 2, …),
/// concatenating their ops. Replay stops at the first torn record — that
/// segment is reopened (truncated) as the live WAL, and any later
/// segments are dropped (rotation fsyncs a segment *before* creating its
/// successor, so bytes past a tear were never acknowledged).
fn recover_wal_segments(
    dir: &Path,
    generation: u64,
    fsync: FsyncMode,
) -> Result<(Vec<WalOp>, Wal, u32)> {
    let mut ops = Vec::new();
    let mut seg: u32 = 0;
    loop {
        let path = wal_seg_path(dir, generation, seg);
        match std::fs::read(&path) {
            Ok(bytes) => {
                let (mut seg_ops, valid) = decode_stream(&bytes);
                ops.append(&mut seg_ops);
                let torn = valid < bytes.len();
                let next = wal_seg_path(dir, generation, seg + 1);
                if torn || !next.exists() {
                    let mut k = seg + 1;
                    loop {
                        let p = wal_seg_path(dir, generation, k);
                        if !p.exists() || std::fs::remove_file(&p).is_err() {
                            break;
                        }
                        k += 1;
                    }
                    let wal = Wal::open_append(&path, valid as u64, fsync)
                        .map_err(|e| io_err("reopen wal", e))?;
                    return Ok((ops, wal, seg));
                }
                seg += 1;
            }
            // The WAL is written before the manifest flips, so a missing
            // segment 0 should be impossible — but an empty log is the
            // safe reading, and starting one keeps the invariant.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && seg == 0 => {
                let wal = Wal::create(&path, fsync).map_err(|e| io_err("create wal", e))?;
                return Ok((ops, wal, 0));
            }
            Err(e) => return Err(io_err("read wal", e)),
        }
    }
}

/// Replay recovered WAL ops through the normal DML path. The table must
/// not have durability attached yet (replay must not be re-logged);
/// attach it after this returns.
pub fn replay(table: &mut VersionedTable, ops: &[WalOp]) -> Result<()> {
    debug_assert!(table.durability().is_none(), "replay would be re-logged");
    for op in ops {
        match op {
            WalOp::InsertBatch(rows) => {
                let rows: Vec<Vec<pdsm_storage::Value>> =
                    rows.iter().map(|r| r.values().to_vec()).collect();
                table.insert_batch(&rows)?;
            }
            WalOp::Update { row, col, value } => {
                table.update(*row as usize, *col as usize, value)?;
            }
            WalOp::Delete { row } => table.delete(*row as usize)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_storage::{ColumnDef, DataType, Layout, Schema, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pdsm-dur-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int32),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::nullable("price", DataType::Float64),
        ])
    }

    fn durable_table(dir: &Path, name: &str) -> (VersionedTable, Arc<Manifest>) {
        let manifest = Arc::new(Manifest::open(dir.join("MANIFEST")).unwrap());
        let mut t = VersionedTable::new(name, schema());
        let d = TableDurability::create(
            dir,
            name,
            Arc::clone(&manifest),
            FsyncMode::Off,
            t.main(),
            t.generation(),
        )
        .unwrap();
        t.set_durability(Arc::new(d));
        (t, manifest)
    }

    /// A fresh process would do exactly this: reload the manifest, load
    /// the blob, replay the WAL, then attach durability.
    fn reopen(dir: &Path, name: &str) -> VersionedTable {
        let manifest = Arc::new(Manifest::open(dir.join("MANIFEST")).unwrap());
        let generation = manifest.get(name).unwrap();
        let rec =
            TableDurability::recover(dir, name, generation, manifest, FsyncMode::Off).unwrap();
        let mut t = VersionedTable::from_recovered(rec.table, generation);
        replay(&mut t, &rec.ops).unwrap();
        t.set_durability(Arc::new(rec.durability));
        t
    }

    fn all_rows(t: &VersionedTable) -> Vec<Row> {
        t.rows().collect()
    }

    #[test]
    fn dml_survives_reopen() {
        let dir = tmpdir("dml");
        let (mut t, _manifest) = durable_table(&dir, "orders");
        t.insert(&[Value::Int32(1), Value::Str("a".into()), Value::Null])
            .unwrap();
        t.insert(&[Value::Int32(2), Value::Str("b".into()), Value::Float64(2.5)])
            .unwrap();
        let id = t
            .insert(&[Value::Int32(3), Value::Str("c".into()), Value::Null])
            .unwrap();
        t.delete(id).unwrap();
        t.update(0, 1, &Value::Str("a2".into())).unwrap();
        let before = all_rows(&t);
        drop(t);
        let r = reopen(&dir, "orders");
        assert_eq!(all_rows(&r), before);
        assert_eq!(r.durability().unwrap().stats().last_recovery_replay_ops, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_on_merge_shrinks_wal_and_survives() {
        let dir = tmpdir("ckpt");
        let (mut t, manifest) = durable_table(&dir, "t");
        for i in 0..50 {
            t.insert(&[Value::Int32(i), Value::Str(format!("r{i}")), Value::Null])
                .unwrap();
        }
        t.delete(3).unwrap();
        let wal_before = t.durability().unwrap().stats().wal_len;
        assert!(wal_before > 0);
        t.merge().unwrap();
        let d = t.durability().unwrap();
        assert_eq!(d.stats().checkpoints, 1);
        assert_eq!(d.stats().wal_len, 0, "empty delta => empty wal");
        assert_eq!(manifest.get("t"), Some(1));
        // post-checkpoint ops land in the new WAL and replay on reopen
        t.update(0, 1, &Value::Str("post".into())).unwrap();
        let before = all_rows(&t);
        drop(d);
        drop(t);
        let r = reopen(&dir, "t");
        assert_eq!(r.generation(), 1);
        assert_eq!(all_rows(&r), before);
        // replay is O(ops since checkpoint): exactly the one update
        assert_eq!(r.durability().unwrap().stats().last_recovery_replay_ops, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_merge_checkpoint_carries_post_cut_delta() {
        let dir = tmpdir("bg");
        let (mut t, _manifest) = durable_table(&dir, "t");
        for i in 0..10 {
            t.insert(&[Value::Int32(i), Value::Str("x".into()), Value::Null])
                .unwrap();
        }
        let ticket = t.begin_merge().unwrap();
        // ops landing during the build: a delete of a cut row, an insert,
        // and an update — all must survive the checkpointed swap.
        t.delete(2).unwrap();
        t.insert(&[Value::Int32(100), Value::Str("post".into()), Value::Null])
            .unwrap();
        t.update(4, 2, &Value::Float64(9.5)).unwrap();
        let built = ticket.build(Layout::column(3)).unwrap();
        t.finish_merge(built).unwrap();
        let before = all_rows(&t);
        drop(t);
        let r = reopen(&dir, "t");
        assert_eq!(r.generation(), 1);
        assert_eq!(all_rows(&r), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_recovers_to_last_whole_record() {
        let dir = tmpdir("torn");
        let (mut t, _manifest) = durable_table(&dir, "t");
        t.insert(&[Value::Int32(1), Value::Str("a".into()), Value::Null])
            .unwrap();
        t.insert(&[Value::Int32(2), Value::Str("b".into()), Value::Null])
            .unwrap();
        let survivors = all_rows(&t);
        t.insert(&[Value::Int32(3), Value::Str("lost".into()), Value::Null])
            .unwrap();
        let wal = wal_path(&dir.join(sanitize_name("t")), 0);
        drop(t);
        // tear the last record: recovery must stop before it
        let len = std::fs::metadata(&wal).unwrap().len();
        pdsm_store::truncate_at(&wal, len - 3).unwrap();
        let r = reopen(&dir, "t");
        assert_eq!(all_rows(&r), survivors);
        assert_eq!(r.durability().unwrap().stats().last_recovery_replay_ops, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_logs_a_single_op() {
        let dir = tmpdir("oneop");
        let (mut t, _manifest) = durable_table(&dir, "t");
        t.insert(&[Value::Int32(1), Value::Str("a".into()), Value::Null])
            .unwrap();
        let appends_before = t.durability().unwrap().stats().wal.appends;
        t.update(0, 1, &Value::Str("b".into())).unwrap();
        let appends_after = t.durability().unwrap().stats().wal.appends;
        assert_eq!(
            appends_after - appends_before,
            1,
            "update must log one op, not its delete + append decomposition"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn half_written_pre_persist_blob_is_never_committed() {
        let dir = tmpdir("halfblob");
        let (mut t, _manifest) = durable_table(&dir, "t");
        for i in 0..5 {
            t.insert(&[Value::Int32(i), Value::Str("x".into()), Value::Null])
                .unwrap();
        }
        // Simulate a crash that left a torn pre-persist temp file from an
        // abandoned build epoch: recovery must scrub it, not read it.
        let tdir = dir.join(sanitize_name("t"));
        std::fs::write(pre_persist_path(&tdir, 7), b"torn garbage").unwrap();
        let before = all_rows(&t);
        drop(t);
        let r = reopen(&dir, "t");
        assert_eq!(all_rows(&r), before);
        assert!(!pre_persist_path(&tdir, 7).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn main_mut_edits_persist() {
        let dir = tmpdir("mainmut");
        let (mut t, _manifest) = durable_table(&dir, "t");
        t.main_mut()
            .unwrap()
            .insert(&[Value::Int32(9), Value::Str("bulk".into()), Value::Null])
            .unwrap();
        t.persist_main().unwrap();
        let before = all_rows(&t);
        assert_eq!(before.len(), 1);
        drop(t);
        let r = reopen(&dir, "t");
        assert_eq!(all_rows(&r), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_committed_main_blob_is_a_hard_error() {
        let dir = tmpdir("hard");
        let (t, _manifest) = durable_table(&dir, "t");
        drop(t);
        let blob = main_path(&dir.join(sanitize_name("t")), 0);
        pdsm_store::flip_bit(&blob, 12).unwrap();
        let manifest = Arc::new(Manifest::open(dir.join("MANIFEST")).unwrap());
        let res = TableDurability::recover(&dir, "t", 0, manifest, FsyncMode::Off);
        assert!(res.is_err(), "bit rot in a committed blob must not pass");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_scrubs_previous_generation() {
        let dir = tmpdir("scrub");
        let (mut t, _manifest) = durable_table(&dir, "t");
        t.insert(&[Value::Int32(1), Value::Str("a".into()), Value::Null])
            .unwrap();
        t.merge().unwrap();
        t.durability().unwrap().wait_cleanup();
        let tdir = dir.join(sanitize_name("t"));
        assert!(main_path(&tdir, 1).exists());
        assert!(!main_path(&tdir, 0).exists(), "gen 0 blob scrubbed");
        assert!(!wal_path(&tdir, 0).exists(), "gen 0 wal scrubbed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_rotation_splits_segments_and_replays_in_order() {
        let dir = tmpdir("rotate");
        let (mut t, _manifest) = durable_table(&dir, "t");
        // Tiny threshold: every few appends roll a new segment.
        t.durability().unwrap().set_wal_segment_bytes(256);
        for i in 0..200 {
            t.insert(&[Value::Int32(i), Value::Str(format!("r{i}")), Value::Null])
                .unwrap();
        }
        t.update(7, 1, &Value::Str("seven".into())).unwrap();
        t.delete(3).unwrap();
        let stats = t.durability().unwrap().stats();
        assert!(
            stats.wal_segments_rotated >= 2,
            "rotated: {}",
            stats.wal_segments_rotated
        );
        let tdir = dir.join(sanitize_name("t"));
        assert!(wal_seg_path(&tdir, 0, 1).exists(), "segment 1 on disk");
        // Rotation must not lose the retired segments' counters.
        assert_eq!(stats.wal.appends, 202);
        let before = all_rows(&t);
        drop(t);
        let r = reopen(&dir, "t");
        assert_eq!(all_rows(&r), before);
        assert_eq!(
            r.durability().unwrap().stats().last_recovery_replay_ops,
            202
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_scrubs_rotated_segments() {
        let dir = tmpdir("rotscrub");
        let (mut t, _manifest) = durable_table(&dir, "t");
        t.durability().unwrap().set_wal_segment_bytes(128);
        for i in 0..100 {
            t.insert(&[Value::Int32(i), Value::Str("x".into()), Value::Null])
                .unwrap();
        }
        let tdir = dir.join(sanitize_name("t"));
        assert!(wal_seg_path(&tdir, 0, 1).exists());
        t.merge().unwrap();
        t.durability().unwrap().wait_cleanup();
        // All generation-0 segments are fully checkpointed — gone.
        for seg in 0..5 {
            assert!(
                !wal_seg_path(&tdir, 0, seg).exists(),
                "gen-0 segment {seg} survived the checkpoint"
            );
        }
        assert!(wal_path(&tdir, 1).exists(), "fresh gen-1 wal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_middle_segment_stops_replay_at_the_tear() {
        let dir = tmpdir("torn-seg");
        let (mut t, _manifest) = durable_table(&dir, "t");
        t.durability().unwrap().set_wal_segment_bytes(256);
        for i in 0..60 {
            t.insert(&[Value::Int32(i), Value::Str(format!("r{i}")), Value::Null])
                .unwrap();
        }
        let tdir = dir.join(sanitize_name("t"));
        assert!(wal_seg_path(&tdir, 0, 1).exists());
        drop(t);
        // Tear the *first* segment: replay must stop there and drop the
        // later segments instead of replaying across the gap.
        let seg0 = wal_seg_path(&tdir, 0, 0);
        let len = std::fs::metadata(&seg0).unwrap().len();
        pdsm_store::truncate_at(&seg0, len - 3).unwrap();
        let r = reopen(&dir, "t");
        let replayed = r.durability().unwrap().stats().last_recovery_replay_ops;
        assert!(replayed < 60, "replayed {replayed} past the tear");
        assert!(
            !wal_seg_path(&tdir, 0, 1).exists(),
            "post-tear segment kept"
        );
        assert_eq!(all_rows(&r).len(), replayed as usize);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Reopen over a cold main: replay must run without hydration, reads
    /// must match the resident path byte-for-byte, and a merge must retire
    /// the superseded generation's frames from the pool.
    #[test]
    fn cold_recovery_replays_unhydrated_and_matches_resident() {
        let dir = tmpdir("cold");
        let (mut t, _manifest) = durable_table(&dir, "t");
        for i in 0..40 {
            t.insert(&[Value::Int32(i), Value::Str(format!("r{i}")), Value::Null])
                .unwrap();
        }
        t.merge().unwrap(); // checkpoint at generation 1
        t.insert(&[Value::Int32(100), Value::Str("post".into()), Value::Null])
            .unwrap();
        t.delete(3).unwrap();
        t.update(5, 1, &Value::Str("upd".into())).unwrap();
        let before = all_rows(&t);
        t.durability().unwrap().wait_cleanup();
        drop(t);

        let reopen_cold = || {
            let pool = pdsm_pool::BufferPool::new(16 << 20);
            let manifest = Arc::new(Manifest::open(dir.join("MANIFEST")).unwrap());
            let generation = manifest.get("t").unwrap();
            let rec = TableDurability::recover_cold(
                &dir,
                "t",
                generation,
                manifest,
                FsyncMode::Off,
                Arc::clone(&pool),
            )
            .unwrap();
            let mut t = VersionedTable::from_cold(rec.cold, generation);
            replay(&mut t, &rec.ops).unwrap();
            t.set_durability(Arc::new(rec.durability));
            (t, pool)
        };

        let (t, pool) = reopen_cold();
        assert!(
            t.cold_main().is_some(),
            "WAL replay must not hydrate the cold main"
        );
        let scan = t.cold_scan().expect("cold scan available while unhydrated");
        assert_eq!(scan.generation, 1);
        assert_eq!(t.len(), before.len());
        assert_eq!(t.schema(), &schema());
        // Full scan hydrates once and matches the resident replay exactly.
        assert_eq!(all_rows(&t), before);
        assert!(t.cold_main().is_none(), "scan should have hydrated");
        assert!(pool.stats().misses > 0, "hydration faults through the pool");
        drop(t);

        // A merge over a still-cold main retires the old generation's
        // frames; nothing stays pinned at quiesce.
        let (mut t, pool) = reopen_cold();
        t.merge().unwrap();
        assert_eq!(t.generation(), 2);
        assert_eq!(all_rows(&t), before);
        assert_eq!(pool.resident_frames("t", 1), 0, "gen-1 frames retired");
        assert_eq!(pool.stats().pinned_frames, 0, "pin leak");
        t.durability().unwrap().wait_cleanup();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
