//! # pdsm-txn — the versioned write path
//!
//! The paper's partially decomposed layouts trade scan cost against update
//! cost, so a reproduction needs an update side: this crate makes every
//! table writable *while it is being queried*, following the
//! delta-plus-read-optimized-main design of push-based storage managers.
//!
//! A [`VersionedTable`] is:
//!
//! * an **immutable main store** — the existing partitioned
//!   [`pdsm_storage::Table`], shared by `Arc` so merges never copy it under
//!   a reader;
//! * an **append-only delta** — decoded rows ([`pdsm_storage::Row`])
//!   appended after the main store, plus tombstone masks over both the main
//!   store and the delta itself. Updates are delete + re-insert, so the
//!   delta never mutates in place;
//! * a **merge** operation ([`VersionedTable::merge`] /
//!   [`VersionedTable::merge_with_layout`]) that folds the delta into a
//!   fresh main store — optionally under a different layout, which is how
//!   the layout advisor re-optimizes a table as its workload evolves — and
//!   bumps the version generation.
//!
//! ## Snapshots
//!
//! Readers take [`Snapshot`] handles: a snapshot pins the main store `Arc`
//! plus a frozen copy of the delta overlay, so queries running on a
//! snapshot see a consistent version no matter what writers do afterwards.
//! Snapshots of an unchanged version share one overlay allocation (the
//! per-version cache in [`VersionedTable::snapshot`]), making repeat
//! snapshot acquisition O(1).
//!
//! Engines never learn about versioning: a snapshot (or a live
//! `VersionedTable` behind `&self`) presents itself through
//! [`pdsm_exec::TableProvider`], whose [`pdsm_exec::Overlay`] extension
//! tells each engine which main rows are tombstoned and which decoded tail
//! rows follow the main store. Scanning `main − tombstones` then the live
//! tail yields exactly the rows — in exactly the order — of a
//! merged-then-scanned table.
//!
//! ## Background merges
//!
//! A synchronous [`VersionedTable::merge`] pays the whole O(table) fold on
//! the caller's thread. The three-phase pipeline (module [`merge`])
//! decouples that: [`VersionedTable::begin_merge`] pins a snapshot *cut*
//! and starts a replay log, [`MergeTicket::build`] folds the cut into a
//! fresh main store on any thread, and [`VersionedTable::finish_merge`]
//! replays the ops that landed meanwhile (O(ops since cut)) and swaps the
//! new main in. The synchronous `merge` is itself implemented as the three
//! phases back-to-back, so both paths are byte-identical by construction.
//! An epoch stamped on each ticket makes stale builds fail harmlessly if
//! an explicit merge preempts them.
//!
//! ## Version reclamation
//!
//! Each table owns a [`VersionRegistry`] (module [`registry`]): every
//! published main store is tracked by generation, every snapshot registers
//! as a reader of its generation until its last clone drops. Superseded
//! main stores are reclaimed as soon as their last reader releases them,
//! so a long-lived snapshot across N merges pins exactly one old version —
//! [`VersionedTable::version_stats`] is the witness (live main stores,
//! pinned generations, bytes held by superseded versions), asserted by the
//! test suites.
//!
//! ## Concurrency
//!
//! [`SharedTable`] wraps a `VersionedTable` in an `RwLock`: writers take
//! the write lock per operation (appends are O(1)); readers take the read
//! lock only long enough to clone a snapshot and then query entirely
//! lock-free. A synchronous merge holds the write lock for the fold;
//! [`SharedTable::background_merge`] holds it only for the begin and
//! finish phases, folding off-lock while writers and readers proceed.
//!
//! ```
//! use pdsm_txn::VersionedTable;
//! use pdsm_storage::{ColumnDef, DataType, Schema, Value};
//!
//! let schema = Schema::new(vec![
//!     ColumnDef::new("k", DataType::Int32),
//!     ColumnDef::new("v", DataType::Int64),
//! ]);
//! let mut t = VersionedTable::new("kv", schema);
//! let a = t.insert(&[Value::Int32(1), Value::Int64(10)]).unwrap();
//! let snap = t.snapshot(); // pins version: sees exactly one row
//! t.delete(a).unwrap();
//! t.insert(&[Value::Int32(2), Value::Int64(20)]).unwrap();
//! assert_eq!(snap.len(), 1);
//! assert_eq!(t.len(), 1);
//! let stats = t.merge().unwrap(); // fold delta into a fresh main store
//! assert_eq!(stats.rows_after, 1);
//! assert_eq!(snap.len(), 1); // old snapshot unaffected
//! ```

pub mod durability;
pub mod merge;
pub mod registry;
pub mod shared;
pub mod table;
pub mod version;

pub use durability::{DurabilityStats, RecoveredColdTable, RecoveredTable, TableDurability};
pub use merge::{BuiltMain, MergeTicket};
pub use registry::{VersionRegistry, VersionStats};
pub use shared::SharedTable;
pub use table::{ColdScan, MergeStats, RowId, VersionedTable, WriteStats};
pub use version::{OverlayData, Snapshot};
