//! Epoch-based version reclamation: the [`VersionRegistry`] every
//! [`crate::VersionedTable`] owns.
//!
//! Each merge publishes a new immutable main store; snapshots pin the one
//! they were cut from via `Arc`. Reclamation itself is therefore automatic
//! — when the last snapshot of a superseded version drops, so does that
//! version's main store. What `Arc` alone cannot answer is *whether that is
//! actually happening*: how many full main stores are allocated right now,
//! which generations still have readers, and how many bytes the superseded
//! ones pin. The registry is that witness:
//!
//! * every published main store registers a `Weak<Table>` under its
//!   generation — upgradeable iff the version is still allocated;
//! * every snapshot holds a [`VersionTicket`] that counts it as a reader of
//!   its generation until the last clone drops;
//! * [`VersionRegistry::stats`] folds both into a [`VersionStats`], and the
//!   test suites assert the bound the design promises: the number of live
//!   main stores never exceeds *distinct pinned generations + 1* (the
//!   current one), no matter how many merges a long-lived snapshot spans.

use pdsm_storage::Table;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, Weak};

/// One generation's record: how many readers pin it, and a weak handle to
/// its main store that tells whether the allocation is still alive.
#[derive(Debug)]
struct VersionEntry {
    readers: usize,
    main: Weak<Table>,
}

/// Aggregate view of a table's version chain right now.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionStats {
    /// Snapshot handles currently registered (clones of one snapshot count
    /// once; distinct snapshots of the same version count separately).
    pub registered_readers: usize,
    /// Distinct generations with at least one registered reader.
    pub pinned_versions: usize,
    /// Distinct main stores still allocated, including the current one.
    pub live_mains: usize,
    /// Bytes held by *superseded* main stores that are still allocated
    /// (the current generation's main is excluded: it is not garbage).
    pub pinned_bytes: usize,
}

/// Per-table version bookkeeping. Shared by the table and all its
/// snapshots via `Arc`; all operations are O(versions alive), and the set
/// of versions alive is bounded by the reclamation property this registry
/// exists to assert.
#[derive(Debug, Default)]
pub struct VersionRegistry {
    inner: Mutex<HashMap<u64, VersionEntry>>,
}

impl VersionRegistry {
    /// Record a newly published main store for `generation` (table
    /// creation and every merge call this). Entries whose version is both
    /// reader-free and deallocated are pruned on the way.
    pub(crate) fn publish(&self, generation: u64, main: &Arc<Table>) {
        let mut m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        m.retain(|_, e| e.readers > 0 || e.main.strong_count() > 0);
        let weak = Arc::downgrade(main);
        match m.entry(generation) {
            std::collections::hash_map::Entry::Occupied(mut o) => o.get_mut().main = weak,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(VersionEntry {
                    readers: 0,
                    main: weak,
                });
            }
        }
    }

    /// Register one reader of `generation`, returning the ticket whose
    /// drop releases it. `main` backfills the weak handle when the version
    /// was published before the registry existed (clones).
    pub(crate) fn register(
        self: &Arc<Self>,
        generation: u64,
        main: &Arc<Table>,
    ) -> Arc<VersionTicket> {
        {
            let mut m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let e = m.entry(generation).or_insert_with(|| VersionEntry {
                readers: 0,
                main: Arc::downgrade(main),
            });
            e.readers += 1;
        }
        Arc::new(VersionTicket {
            registry: self.clone(),
            generation,
        })
    }

    fn release(&self, generation: u64) {
        let mut m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = m.get_mut(&generation) {
            e.readers = e.readers.saturating_sub(1);
            if e.readers == 0 && e.main.strong_count() == 0 {
                m.remove(&generation);
            }
        }
    }

    /// Current chain statistics. `current_generation` marks which live
    /// main is the table's own (excluded from `pinned_bytes`).
    pub fn stats(&self, current_generation: u64) -> VersionStats {
        let m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut s = VersionStats::default();
        for (gen, e) in m.iter() {
            s.registered_readers += e.readers;
            if e.readers > 0 {
                s.pinned_versions += 1;
            }
            if let Some(t) = e.main.upgrade() {
                s.live_mains += 1;
                if *gen != current_generation {
                    s.pinned_bytes += t.byte_size();
                }
            }
        }
        s
    }
}

/// A reader registration: one per snapshot acquisition, shared by clones
/// of that snapshot, released (decrementing the version's reader count)
/// when the last clone drops.
#[derive(Debug)]
pub struct VersionTicket {
    registry: Arc<VersionRegistry>,
    generation: u64,
}

impl Drop for VersionTicket {
    fn drop(&mut self) {
        self.registry.release(self.generation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_storage::{ColumnDef, DataType, Schema};

    fn table() -> Arc<Table> {
        Arc::new(Table::new(
            "t",
            Schema::new(vec![ColumnDef::new("x", DataType::Int32)]),
        ))
    }

    #[test]
    fn tickets_count_and_release() {
        let reg = Arc::new(VersionRegistry::default());
        let t0 = table();
        reg.publish(0, &t0);
        let a = reg.register(0, &t0);
        let b = a.clone(); // clone of the same snapshot: same ticket
        let c = reg.register(0, &t0); // a distinct snapshot
        assert_eq!(reg.stats(0).registered_readers, 2);
        drop(b);
        assert_eq!(reg.stats(0).registered_readers, 2, "clone shares ticket");
        drop(a);
        drop(c);
        let s = reg.stats(0);
        assert_eq!(s.registered_readers, 0);
        assert_eq!(s.pinned_versions, 0);
        assert_eq!(s.live_mains, 1, "current main still allocated");
    }

    #[test]
    fn superseded_unpinned_versions_vanish() {
        let reg = Arc::new(VersionRegistry::default());
        let t0 = table();
        reg.publish(0, &t0);
        let pin = reg.register(0, &t0);
        let t1 = table();
        reg.publish(1, &t1);
        drop(t0); // table swapped its Arc; only `pin`'s... nothing pins it
        assert_eq!(reg.stats(1).live_mains, 1, "gen-0 main reclaimed");
        assert_eq!(reg.stats(1).pinned_versions, 1, "reader still registered");
        drop(pin);
        assert_eq!(reg.stats(1).pinned_versions, 0);
    }
}
