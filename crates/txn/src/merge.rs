//! The decoupled merge pipeline: build-from-snapshot off the write path.
//!
//! [`VersionedTable::merge`](crate::VersionedTable::merge) used to do all
//! its work — an O(table) fold — on the writer's thread. The three-phase
//! pipeline splits that so only O(1)-ish work stays on the write path:
//!
//! 1. **begin** ([`crate::VersionedTable::begin_merge`]) — pin a snapshot
//!    of the current version (the *cut*) and start recording post-cut
//!    tombstones in a replay log. O(delta) to freeze the overlay.
//! 2. **build** ([`MergeTicket::build`]) — fold the pinned snapshot into a
//!    fresh main store under any layout, recording a remap from cut row
//!    ids to fresh positions. Lock-free: runs on any thread, off the
//!    writer's critical path, while writes keep landing in the delta.
//! 3. **finish** ([`crate::VersionedTable::finish_merge`]) — replay the
//!    ops that arrived during the build (tombstones re-applied through the
//!    remap; post-cut tail rows carried into the new delta) and swap the
//!    fresh main in. O(ops since cut), *not* O(table).
//!
//! The epoch stamped on the ticket guards the swap: if another merge
//! completed (or the pending build was aborted) in between, `finish_merge`
//! fails with [`pdsm_storage::Error::StaleMergeBuild`] and the table is
//! untouched — the caller just discards the build.

use crate::version::Snapshot;
use pdsm_storage::{Layout, Result, Table};

/// Phase-1 output: the pinned cut plus the epoch that must still be
/// current at swap time. `Send + Sync`, cheap to move to a worker thread.
#[derive(Debug, Clone)]
pub struct MergeTicket {
    pub(crate) snapshot: Snapshot,
    pub(crate) epoch: u64,
}

impl MergeTicket {
    /// The pinned cut this build will fold.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The merge epoch this ticket belongs to (what
    /// [`crate::VersionedTable::finish_merge`] checks, and what
    /// [`crate::VersionedTable::abort_merge_epoch`] takes so an owner
    /// aborts only its *own* pending merge).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Phase 2: fold the cut into a fresh main store under `layout`.
    /// Lock-free — touches only the pinned snapshot.
    pub fn build(&self, layout: Layout) -> Result<BuiltMain> {
        let main = self.snapshot.main();
        let overlay = self.snapshot.overlay();
        let mut fresh = Table::with_layout(main.name().to_string(), main.schema().clone(), layout)?;
        fresh.reserve(self.snapshot.len());
        // Remap cut-space row ids (main positions, then tail ordinals) to
        // positions in the fresh main; `None` = dead at the cut.
        let cut_tail = overlay.as_ref().map(|o| o.tail.len()).unwrap_or(0);
        let mut remap: Vec<Option<u32>> = vec![None; main.len() + cut_tail];
        let mut pos = 0u32;
        let mut dead_at_cut = 0usize;
        for (i, slot) in remap.iter_mut().enumerate().take(main.len()) {
            if overlay.as_ref().is_some_and(|o| o.is_dead(i)) {
                dead_at_cut += 1;
                continue;
            }
            fresh.insert(main.row(i)?.values())?;
            *slot = Some(pos);
            pos += 1;
        }
        let mut tail_folded = 0usize;
        if let Some(o) = overlay {
            for (j, row) in o.tail.iter().enumerate() {
                if !o.tail_alive.is_empty() && !o.tail_alive[j] {
                    dead_at_cut += 1;
                    continue;
                }
                fresh.insert(row.values())?;
                remap[main.len() + j] = Some(pos);
                pos += 1;
                tail_folded += 1;
            }
        }
        // Warm the zone map here, off the writer lock: the fold above
        // already touched every value, and the checkpoint taken by
        // `finish_merge` persists the zones alongside the partitions. (A
        // post-cut replay invalidates them; they then rebuild lazily.)
        fresh.zone_map();
        Ok(BuiltMain {
            epoch: self.epoch,
            table: fresh,
            remap,
            cut_main_rows: main.len(),
            cut_tail,
            dead_at_cut,
            tail_folded,
        })
    }
}

/// Phase-2 output: the fresh main store plus everything `finish_merge`
/// needs to replay post-cut ops onto it.
#[derive(Debug)]
pub struct BuiltMain {
    pub(crate) epoch: u64,
    pub(crate) table: Table,
    /// Cut-space row id → position in `table`; `None` = dead at the cut.
    pub(crate) remap: Vec<Option<u32>>,
    pub(crate) cut_main_rows: usize,
    pub(crate) cut_tail: usize,
    pub(crate) dead_at_cut: usize,
    pub(crate) tail_folded: usize,
}

impl BuiltMain {
    /// The freshly built main store (what `finish_merge` will swap in).
    /// Build owners use this to pre-serialize the checkpoint blob off the
    /// table lock (see `TableDurability::pre_persist`).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Rows in the fresh main store.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True iff the fresh main store is empty.
    pub fn is_empty(&self) -> bool {
        self.table.len() == 0
    }
}
