//! Frozen version state: the overlay data snapshots pin, and the
//! [`Snapshot`] handle itself.

use crate::registry::VersionTicket;
use pdsm_exec::{Overlay, TableProvider};
use pdsm_storage::row::Row;
use pdsm_storage::Table;
use std::sync::Arc;

/// An owned, immutable copy of one version's delta overlay: which main rows
/// are tombstoned and which decoded rows follow the main store. Shared by
/// every snapshot of the same version via `Arc`.
#[derive(Debug, Clone, Default)]
pub struct OverlayData {
    /// `dead[i]` → main row `i` is invisible. Empty = no tombstones.
    pub dead: Vec<bool>,
    /// Rows appended after the main store (decoded, full schema width).
    pub tail: Vec<Row>,
    /// Liveness of tail rows. Empty = all live.
    pub tail_alive: Vec<bool>,
}

impl OverlayData {
    /// The borrowed view engines consume.
    pub fn as_overlay(&self) -> Overlay<'_> {
        Overlay {
            dead: &self.dead,
            tail: &self.tail,
            tail_alive: &self.tail_alive,
        }
    }

    /// Number of live tail rows.
    pub fn live_tail_len(&self) -> usize {
        self.as_overlay().live_tail_len()
    }

    /// Number of tombstoned main rows.
    pub fn dead_main_len(&self) -> usize {
        self.dead.iter().filter(|d| **d).count()
    }
}

/// A consistent, immutable view of one table version: the pinned main store
/// plus (when the version has pending writes) a frozen overlay.
///
/// Snapshots are cheap to clone, `Send + Sync`, and independent of the
/// writer: queries against a snapshot are wait-free. A snapshot is also a
/// single-table [`TableProvider`], so it can be handed directly to any
/// engine.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) main: Arc<Table>,
    pub(crate) overlay: Option<Arc<OverlayData>>,
    pub(crate) generation: u64,
    /// Reader registration in the table's version registry; released
    /// (decrementing this generation's reader count) when the last clone
    /// of this snapshot drops.
    pub(crate) _ticket: Option<Arc<VersionTicket>>,
}

impl Snapshot {
    /// The pinned read-optimized main store.
    pub fn main(&self) -> &Table {
        &self.main
    }

    /// The pinned overlay, if this version has pending delta rows or
    /// tombstones.
    pub fn overlay(&self) -> Option<Overlay<'_>> {
        self.overlay.as_ref().map(|o| o.as_overlay())
    }

    /// Merge generation this snapshot pins (bumped by every merge).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of rows visible to this snapshot.
    pub fn len(&self) -> usize {
        match &self.overlay {
            None => self.main.len(),
            Some(o) => self.main.len() - o.dead_main_len() + o.live_tail_len(),
        }
    }

    /// True iff no rows are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All visible rows in scan order (main-store order, then tail append
    /// order), decoded. Intended for tests and verification, not hot paths.
    pub fn rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.len());
        let overlay = self.overlay.as_ref().map(|o| o.as_overlay());
        for i in 0..self.main.len() {
            if overlay.as_ref().map(|o| o.is_dead(i)).unwrap_or(false) {
                continue;
            }
            out.push(self.main.row(i).expect("in-range"));
        }
        if let Some(o) = overlay {
            out.extend(o.live_tail().cloned());
        }
        out
    }
}

impl TableProvider for Snapshot {
    fn table(&self, name: &str) -> Option<&Table> {
        (name == self.main.name()).then_some(&*self.main)
    }

    fn overlay(&self, name: &str) -> Option<Overlay<'_>> {
        if name == self.main.name() {
            self.overlay.as_ref().map(|o| o.as_overlay())
        } else {
            None
        }
    }
}
