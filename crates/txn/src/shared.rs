//! [`SharedTable`]: single-writer / multi-reader concurrency over a
//! [`VersionedTable`].
//!
//! The lock discipline is deliberately coarse and short: writers take the
//! write lock per operation (delta appends are O(1)); readers take the read
//! lock only to clone a [`Snapshot`] and then run queries entirely outside
//! the lock. A merge holds the write lock while it builds the new main
//! store; readers that grabbed a snapshot before the merge keep their
//! pinned `Arc`s and are never blocked mid-query or torn.

use crate::table::{MergeStats, RowId, VersionedTable, WriteStats};
use crate::version::Snapshot;
use pdsm_storage::{ColId, Layout, Result, Value};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A cloneable handle to a concurrently usable versioned table.
#[derive(Debug, Clone)]
pub struct SharedTable {
    inner: Arc<RwLock<VersionedTable>>,
}

impl SharedTable {
    /// Share `table`.
    pub fn new(table: VersionedTable) -> Self {
        SharedTable {
            inner: Arc::new(RwLock::new(table)),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, VersionedTable> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, VersionedTable> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Take a consistent snapshot. The read lock is held only for the
    /// clone; queries on the returned snapshot run lock-free.
    pub fn snapshot(&self) -> Snapshot {
        self.read().snapshot()
    }

    /// Append one row.
    pub fn insert(&self, values: &[Value]) -> Result<RowId> {
        self.write().insert(values)
    }

    /// Append many rows as one atomic operation (readers see all or none).
    pub fn insert_batch(&self, rows: &[Vec<Value>]) -> Result<Vec<RowId>> {
        self.write().insert_batch(rows)
    }

    /// Overwrite one cell (tombstone + re-append); returns the new row id.
    pub fn update(&self, id: RowId, c: ColId, v: &Value) -> Result<RowId> {
        self.write().update(id, c, v)
    }

    /// Tombstone one row.
    pub fn delete(&self, id: RowId) -> Result<()> {
        self.write().delete(id)
    }

    /// Fold the delta into a fresh main store (current layout).
    pub fn merge(&self) -> Result<MergeStats> {
        self.write().merge()
    }

    /// Fold the delta into a fresh main store under `layout`.
    pub fn merge_with_layout(&self, layout: Layout) -> Result<MergeStats> {
        self.write().merge_with_layout(layout)
    }

    /// Visible row count right now.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// True iff no rows are visible right now.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Delta rows pending merge right now.
    pub fn delta_rows(&self) -> usize {
        self.read().delta_rows()
    }

    /// Cumulative write counters.
    pub fn write_stats(&self) -> WriteStats {
        self.read().write_stats()
    }

    /// Run `f` under the read lock (e.g. to inspect the main store).
    pub fn with_read<R>(&self, f: impl FnOnce(&VersionedTable) -> R) -> R {
        f(&self.read())
    }

    /// Run `f` under the write lock (compound write operations).
    pub fn with_write<R>(&self, f: impl FnOnce(&mut VersionedTable) -> R) -> R {
        f(&mut self.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_storage::{ColumnDef, DataType, Schema, Table};

    #[test]
    fn shared_roundtrip() {
        let t = VersionedTable::from_table(Table::new(
            "s",
            Schema::new(vec![ColumnDef::new("x", DataType::Int64)]),
        ));
        let shared = SharedTable::new(t);
        let writer = shared.clone();
        writer.insert(&[Value::Int64(1)]).unwrap();
        let snap = shared.snapshot();
        writer.insert(&[Value::Int64(2)]).unwrap();
        assert_eq!(snap.len(), 1);
        assert_eq!(shared.len(), 2);
        writer.merge().unwrap();
        assert_eq!(shared.delta_rows(), 0);
        assert_eq!(snap.len(), 1, "snapshot outlives the merge");
    }
}
