//! [`SharedTable`]: single-writer / multi-reader concurrency over a
//! [`VersionedTable`].
//!
//! The lock discipline is deliberately coarse and short: writers take the
//! write lock per operation (delta appends are O(1)); readers take the read
//! lock only to clone a [`Snapshot`] and then run queries entirely outside
//! the lock. A merge holds the write lock while it builds the new main
//! store; readers that grabbed a snapshot before the merge keep their
//! pinned `Arc`s and are never blocked mid-query or torn.

use crate::merge::{BuiltMain, MergeTicket};
use crate::registry::VersionStats;
use crate::table::{MergeStats, RowId, VersionedTable, WriteStats};
use crate::version::Snapshot;
use pdsm_storage::{ColId, Error, Layout, Result, Value};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A cloneable handle to a concurrently usable versioned table.
#[derive(Debug, Clone)]
pub struct SharedTable {
    inner: Arc<RwLock<VersionedTable>>,
}

impl SharedTable {
    /// Share `table`.
    pub fn new(table: VersionedTable) -> Self {
        SharedTable {
            inner: Arc::new(RwLock::new(table)),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, VersionedTable> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, VersionedTable> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Take a consistent snapshot. The read lock is held only for the
    /// clone; queries on the returned snapshot run lock-free.
    pub fn snapshot(&self) -> Snapshot {
        self.read().snapshot()
    }

    /// Append one row.
    pub fn insert(&self, values: &[Value]) -> Result<RowId> {
        self.write().insert(values)
    }

    /// Append many rows as one atomic operation (readers see all or none).
    pub fn insert_batch(&self, rows: &[Vec<Value>]) -> Result<Vec<RowId>> {
        self.write().insert_batch(rows)
    }

    /// Overwrite one cell (tombstone + re-append); returns the new row id.
    pub fn update(&self, id: RowId, c: ColId, v: &Value) -> Result<RowId> {
        self.write().update(id, c, v)
    }

    /// Tombstone one row.
    pub fn delete(&self, id: RowId) -> Result<()> {
        self.write().delete(id)
    }

    /// Fold the delta into a fresh main store (current layout),
    /// synchronously: the write lock is held for the whole fold. Prefer
    /// [`SharedTable::background_merge`] when writers must not stall.
    pub fn merge(&self) -> Result<MergeStats> {
        self.write().merge()
    }

    /// Fold the delta into a fresh main store under `layout` (write lock
    /// held for the whole fold).
    pub fn merge_with_layout(&self, layout: Layout) -> Result<MergeStats> {
        self.write().merge_with_layout(layout)
    }

    /// Phase 1 of a background merge: pin the cut and start the replay
    /// log. The write lock is held only for the O(delta) overlay freeze.
    pub fn begin_merge(&self) -> Result<MergeTicket> {
        self.write().begin_merge()
    }

    /// Phase 3 of a background merge: replay post-cut ops and swap. The
    /// write lock is held only for the O(ops since cut) replay.
    pub fn finish_merge(&self, built: BuiltMain) -> Result<MergeStats> {
        self.write().finish_merge(built)
    }

    /// [`SharedTable::finish_merge`], then run `f` under the *same* write
    /// lock — the hook a maintenance scheduler uses to capture post-swap
    /// state (the fresh main `Arc`, the new generation) atomically with the
    /// swap, e.g. to rebuild secondary indexes off-lock afterwards. `f` is
    /// not called when the build is stale.
    pub fn finish_merge_then<R>(
        &self,
        built: BuiltMain,
        f: impl FnOnce(&VersionedTable) -> R,
    ) -> Result<(MergeStats, R)> {
        let mut t = self.write();
        let stats = t.finish_merge(built)?;
        let r = f(&t);
        Ok((stats, r))
    }

    /// Synchronous [`SharedTable::merge_with_layout`], then run `f` under
    /// the same write lock (see [`SharedTable::finish_merge_then`]).
    pub fn merge_with_layout_then<R>(
        &self,
        layout: Layout,
        f: impl FnOnce(&VersionedTable) -> R,
    ) -> Result<(MergeStats, R)> {
        let mut t = self.write();
        let stats = t.merge_with_layout(layout)?;
        let r = f(&t);
        Ok((stats, r))
    }

    /// Drop any pending merge build (its `finish_merge` turns stale).
    pub fn abort_merge(&self) -> bool {
        self.write().abort_merge()
    }

    /// Drop the pending merge build only if `epoch` stamps it (the safe
    /// abort for a build owner that may have been preempted).
    pub fn abort_merge_epoch(&self, epoch: u64) -> bool {
        self.write().abort_merge_epoch(epoch)
    }

    /// Run one full background merge from this thread: begin (short write
    /// lock) → build off-lock, writers and readers proceed → finish (short
    /// write lock). This is the maintenance-thread entry point.
    ///
    /// Returns `Ok(None)` without touching the table when a build is
    /// already pending or the swap lost to a concurrent explicit merge.
    pub fn background_merge(&self) -> Result<Option<MergeStats>> {
        self.background_merge_with(None)
    }

    /// [`SharedTable::background_merge`], folding into `layout` (e.g. the
    /// layout advisor's pick) instead of the current one.
    pub fn background_merge_with(&self, layout: Option<Layout>) -> Result<Option<MergeStats>> {
        let ticket = match self.write().begin_merge() {
            Ok(t) => t,
            Err(Error::MergeInProgress) => return Ok(None),
            Err(e) => return Err(e),
        };
        let layout = layout.unwrap_or_else(|| ticket.snapshot().main().layout().clone());
        let built = match ticket.build(layout) {
            Ok(b) => b,
            Err(e) => {
                // Epoch-guarded: abort only our own pending merge — a
                // sync merge may have preempted us and someone else may
                // have begun a newer one meanwhile.
                self.write().abort_merge_epoch(ticket.epoch());
                return Err(e);
            }
        };
        // Durable tables: serialize the built main to its epoch-stamped
        // temp blob off-lock, so the checkpoint inside finish_merge can
        // rename it instead of serializing under the write lock. Errors
        // are ignored — a failed (and self-removed) pre-persist just
        // means the checkpoint falls back to inline serialization.
        if let Some(d) = self.read().durability() {
            let generation = ticket.snapshot().generation() + 1;
            let _ = d.pre_persist(&built.table, generation, ticket.epoch());
        }
        match self.write().finish_merge(built) {
            Ok(s) => Ok(Some(s)),
            Err(Error::StaleMergeBuild) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Merge generation right now.
    pub fn generation(&self) -> u64 {
        self.read().generation()
    }

    /// Version-chain statistics right now (see [`crate::registry`]).
    pub fn version_stats(&self) -> VersionStats {
        self.read().version_stats()
    }

    /// Visible row count right now.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// True iff no rows are visible right now.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Delta rows pending merge right now.
    pub fn delta_rows(&self) -> usize {
        self.read().delta_rows()
    }

    /// Write operations since the last merge right now (the merge-threshold
    /// metric maintenance schedulers watch).
    pub fn delta_ops(&self) -> u64 {
        self.read().delta_ops()
    }

    /// True iff any write happened since the last merge.
    pub fn has_delta(&self) -> bool {
        self.read().has_delta()
    }

    /// True iff a background merge build is in flight.
    pub fn has_pending_merge(&self) -> bool {
        self.read().has_pending_merge()
    }

    /// Shared handle to the current main store.
    pub fn main_arc(&self) -> std::sync::Arc<pdsm_storage::Table> {
        self.read().main_arc()
    }

    /// Cumulative write counters.
    pub fn write_stats(&self) -> WriteStats {
        self.read().write_stats()
    }

    /// The durability handle, if this table is durable.
    pub fn durability(&self) -> Option<std::sync::Arc<crate::TableDurability>> {
        self.read().durability()
    }

    /// Run `f` under the read lock (e.g. to inspect the main store).
    pub fn with_read<R>(&self, f: impl FnOnce(&VersionedTable) -> R) -> R {
        f(&self.read())
    }

    /// Run `f` under the write lock (compound write operations).
    pub fn with_write<R>(&self, f: impl FnOnce(&mut VersionedTable) -> R) -> R {
        f(&mut self.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_storage::{ColumnDef, DataType, Schema, Table};

    #[test]
    fn shared_roundtrip() {
        let t = VersionedTable::from_table(Table::new(
            "s",
            Schema::new(vec![ColumnDef::new("x", DataType::Int64)]),
        ));
        let shared = SharedTable::new(t);
        let writer = shared.clone();
        writer.insert(&[Value::Int64(1)]).unwrap();
        let snap = shared.snapshot();
        writer.insert(&[Value::Int64(2)]).unwrap();
        assert_eq!(snap.len(), 1);
        assert_eq!(shared.len(), 2);
        writer.merge().unwrap();
        assert_eq!(shared.delta_rows(), 0);
        assert_eq!(snap.len(), 1, "snapshot outlives the merge");
    }
}
