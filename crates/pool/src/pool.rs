//! The buffer pool proper: a frame table over decoded checkpoint extents,
//! pin counts, an LRU-K replacer, and a byte budget (`PDSM_POOL_BYTES`).
//!
//! A *frame* holds one decoded `(extent, layout group)` payload of a
//! checkpointed main store. Queries pin the frames they scan and unpin on
//! pipeline exit (RAII — [`PinnedFrame`]); the pool evicts unpinned frames
//! in LRU-K order whenever resident bytes exceed the budget. If every
//! frame is pinned the pool *overcommits* rather than deadlocks — the
//! budget is a target, correctness never depends on it.

use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Condvar, Mutex};

use pdsm_storage::persist::ExtentData;

use crate::lru_k::LruKReplacer;
use crate::scheduler::DiskScheduler;

/// Identity of one pool frame: a single layout group of a single extent of
/// a generation-stamped checkpoint. Generations are immutable, so a frame
/// never needs invalidation — stale generations are dropped wholesale by
/// [`BufferPool::retire`] after a merge publishes a fresh checkpoint.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FrameKey {
    pub table: String,
    pub generation: u64,
    pub extent: u32,
    pub group: u32,
}

/// Counters exposed through `Database::pool_stats()` and SQL `STATS`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    pub budget_bytes: usize,
    pub resident_bytes: usize,
    pub peak_resident_bytes: usize,
    pub frames: usize,
    pub pinned_frames: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Times the pool exceeded its budget because every frame was pinned.
    pub overcommits: u64,
    /// Extents a scan skipped entirely (zone-refuted — never faulted).
    pub skipped_faults: u64,
    pub fault_ns_total: u64,
    pub fault_ns_max: u64,
}

struct Frame {
    data: Arc<ExtentData>,
    bytes: usize,
    pins: u32,
}

enum Slot {
    /// A fault for this key is in flight; waiters block on the condvar.
    Loading,
    Ready(Frame),
}

#[derive(Default)]
struct Counters {
    hits: u64,
    misses: u64,
    evictions: u64,
    overcommits: u64,
    skipped_faults: u64,
    fault_ns_total: u64,
    fault_ns_max: u64,
}

struct Inner {
    frames: HashMap<FrameKey, Slot>,
    replacer: LruKReplacer<FrameKey>,
    resident: usize,
    peak: usize,
    stats: Counters,
}

pub struct BufferPool {
    budget: usize,
    inner: Mutex<Inner>,
    cond: Condvar,
    sched: DiskScheduler,
}

impl BufferPool {
    pub fn new(budget_bytes: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            budget: budget_bytes,
            inner: Mutex::new(Inner {
                frames: HashMap::new(),
                replacer: LruKReplacer::new(2),
                resident: 0,
                peak: 0,
                stats: Counters::default(),
            }),
            cond: Condvar::new(),
            sched: DiskScheduler::new(),
        })
    }

    /// `PDSM_POOL_BYTES` (plain bytes, or with a `k`/`m`/`g` suffix).
    /// Unset, unparsable, or zero = pooling disabled.
    pub fn from_env() -> Option<Arc<BufferPool>> {
        let raw = std::env::var("PDSM_POOL_BYTES").ok()?;
        let budget = parse_bytes(&raw)?;
        if budget == 0 {
            return None;
        }
        Some(BufferPool::new(budget))
    }

    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// The shared read thread — cold tables route their faults through it.
    pub fn scheduler(&self) -> &DiskScheduler {
        &self.sched
    }

    /// Pin the frame for `key`, faulting it in via `load` on a miss.
    /// `load` runs without the pool lock held and returns the decoded
    /// payload plus the observed fault latency in nanoseconds.
    pub fn pin(
        self: &Arc<Self>,
        key: &FrameKey,
        load: impl FnOnce(&DiskScheduler) -> io::Result<(ExtentData, u64)>,
    ) -> io::Result<PinnedFrame> {
        let mut g = self.inner.lock().unwrap();
        loop {
            match g.frames.get_mut(key) {
                Some(Slot::Ready(f)) => {
                    f.pins += 1;
                    let data = Arc::clone(&f.data);
                    g.replacer.record_access(key);
                    g.replacer.set_evictable(key, false);
                    g.stats.hits += 1;
                    return Ok(PinnedFrame {
                        pool: Arc::clone(self),
                        key: key.clone(),
                        data,
                    });
                }
                Some(Slot::Loading) => g = self.cond.wait(g).unwrap(),
                None => break,
            }
        }
        g.frames.insert(key.clone(), Slot::Loading);
        g.stats.misses += 1;
        drop(g);
        let loaded = load(&self.sched);
        let mut g = self.inner.lock().unwrap();
        match loaded {
            Err(e) => {
                g.frames.remove(key);
                self.cond.notify_all();
                Err(e)
            }
            Ok((data, fault_ns)) => {
                g.stats.fault_ns_total += fault_ns;
                g.stats.fault_ns_max = g.stats.fault_ns_max.max(fault_ns);
                let bytes = data.byte_size();
                let data = Arc::new(data);
                g.frames.insert(
                    key.clone(),
                    Slot::Ready(Frame {
                        data: Arc::clone(&data),
                        bytes,
                        pins: 1,
                    }),
                );
                g.resident += bytes;
                g.peak = g.peak.max(g.resident);
                g.replacer.record_access(key);
                g.replacer.set_evictable(key, false);
                Self::evict_over_budget(self.budget, &mut g);
                self.cond.notify_all();
                Ok(PinnedFrame {
                    pool: Arc::clone(self),
                    key: key.clone(),
                    data,
                })
            }
        }
    }

    fn unpin(&self, key: &FrameKey) {
        let mut g = self.inner.lock().unwrap();
        if let Some(Slot::Ready(f)) = g.frames.get_mut(key) {
            debug_assert!(f.pins > 0, "unpin without pin");
            f.pins -= 1;
            if f.pins == 0 {
                g.replacer.set_evictable(key, true);
                Self::evict_over_budget(self.budget, &mut g);
            }
        }
    }

    /// Evict unpinned frames in LRU-K order until resident ≤ budget. When
    /// everything left is pinned, give up and count the overcommit — the
    /// budget bounds steady state, never correctness.
    fn evict_over_budget(budget: usize, g: &mut Inner) {
        while g.resident > budget {
            match g.replacer.evict() {
                Some(victim) => {
                    if let Some(Slot::Ready(f)) = g.frames.remove(&victim) {
                        debug_assert_eq!(f.pins, 0, "evicted a pinned frame");
                        g.resident -= f.bytes;
                        g.stats.evictions += 1;
                    }
                }
                None => {
                    g.stats.overcommits += 1;
                    break;
                }
            }
        }
    }

    /// Record a fault a scan avoided entirely (zone-refuted cold extent).
    pub fn note_skipped_fault(&self) {
        self.inner.lock().unwrap().stats.skipped_faults += 1;
    }

    /// Drop every unpinned frame of `(table, generation)` — called when a
    /// merge retires a checkpoint generation.
    pub fn retire(&self, table: &str, generation: u64) {
        let mut g = self.inner.lock().unwrap();
        let victims: Vec<FrameKey> = g
            .frames
            .iter()
            .filter(|(k, slot)| {
                k.table == table
                    && k.generation == generation
                    && matches!(slot, Slot::Ready(f) if f.pins == 0)
            })
            .map(|(k, _)| k.clone())
            .collect();
        for k in victims {
            if let Some(Slot::Ready(f)) = g.frames.remove(&k) {
                g.resident -= f.bytes;
            }
            g.replacer.remove(&k);
        }
    }

    /// Count of Ready (decoded, resident) frames per extent of
    /// `(table, generation)`. An extent is fully resident when its count
    /// equals the layout group count. Advisory — residency can change the
    /// moment the lock drops — used by the planner's disk pricing.
    pub fn ready_groups(&self, table: &str, generation: u64) -> HashMap<u32, usize> {
        let g = self.inner.lock().unwrap();
        let mut m = HashMap::new();
        for (k, slot) in &g.frames {
            if k.table == table && k.generation == generation && matches!(slot, Slot::Ready(_)) {
                *m.entry(k.extent).or_insert(0) += 1;
            }
        }
        m
    }

    /// Resident frame count for `(table, generation)` — the planner's
    /// residency estimate.
    pub fn resident_frames(&self, table: &str, generation: u64) -> usize {
        let g = self.inner.lock().unwrap();
        g.frames
            .keys()
            .filter(|k| k.table == table && k.generation == generation)
            .count()
    }

    pub fn stats(&self) -> PoolStats {
        let g = self.inner.lock().unwrap();
        let pinned = g
            .frames
            .values()
            .filter(|s| matches!(s, Slot::Ready(f) if f.pins > 0))
            .count();
        PoolStats {
            budget_bytes: self.budget,
            resident_bytes: g.resident,
            peak_resident_bytes: g.peak,
            frames: g.frames.len(),
            pinned_frames: pinned,
            hits: g.stats.hits,
            misses: g.stats.misses,
            evictions: g.stats.evictions,
            overcommits: g.stats.overcommits,
            skipped_faults: g.stats.skipped_faults,
            fault_ns_total: g.stats.fault_ns_total,
            fault_ns_max: g.stats.fault_ns_max,
        }
    }
}

fn parse_bytes(raw: &str) -> Option<usize> {
    let s = raw.trim().to_ascii_lowercase();
    let (digits, mult) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(d) => (
            d,
            match s.as_bytes()[s.len() - 1] {
                b'k' => 1usize << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            },
        ),
        None => (s.as_str(), 1),
    };
    digits.trim().parse::<usize>().ok().map(|n| n * mult)
}

/// RAII pin on one pool frame. While alive the frame cannot be evicted;
/// dropping it unpins (and may trigger eviction if the pool is over
/// budget). The payload `Arc` stays valid even across eviction.
pub struct PinnedFrame {
    pool: Arc<BufferPool>,
    key: FrameKey,
    data: Arc<ExtentData>,
}

impl PinnedFrame {
    pub fn data(&self) -> &Arc<ExtentData> {
        &self.data
    }

    pub fn key(&self) -> &FrameKey {
        &self.key
    }
}

impl Drop for PinnedFrame {
    fn drop(&mut self) {
        self.pool.unpin(&self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(e: u32) -> FrameKey {
        FrameKey {
            table: "t".into(),
            generation: 1,
            extent: e,
            group: 0,
        }
    }

    fn payload(bytes: usize) -> ExtentData {
        ExtentData {
            arena: vec![0xAB; bytes],
            validity: vec![],
        }
    }

    #[test]
    fn eviction_keeps_resident_within_budget_once_unpinned() {
        let pool = BufferPool::new(250);
        for e in 0..5 {
            let f = pool.pin(&key(e), |_| Ok((payload(100), 5))).unwrap();
            drop(f);
        }
        let s = pool.stats();
        assert_eq!(s.misses, 5);
        assert!(s.evictions >= 3, "evictions: {}", s.evictions);
        assert!(s.resident_bytes <= 250);
        assert_eq!(s.pinned_frames, 0);
        assert_eq!(s.fault_ns_total, 25);
    }

    #[test]
    fn pinned_frames_overcommit_instead_of_deadlocking() {
        let pool = BufferPool::new(150);
        let a = pool.pin(&key(0), |_| Ok((payload(100), 0))).unwrap();
        let b = pool.pin(&key(1), |_| Ok((payload(100), 0))).unwrap();
        let s = pool.stats();
        assert_eq!(s.resident_bytes, 200); // over budget, both pinned
        assert!(s.overcommits >= 1);
        drop(a);
        drop(b);
        assert!(pool.stats().resident_bytes <= 150);
    }

    #[test]
    fn repinning_is_a_hit_and_returns_the_same_payload() {
        let pool = BufferPool::new(1 << 20);
        let a = pool.pin(&key(3), |_| Ok((payload(64), 0))).unwrap();
        let p1 = Arc::as_ptr(a.data());
        drop(a);
        let b = pool.pin(&key(3), |_| panic!("must not refault")).unwrap();
        assert_eq!(Arc::as_ptr(b.data()), p1);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn retire_drops_a_generation() {
        let pool = BufferPool::new(1 << 20);
        drop(pool.pin(&key(0), |_| Ok((payload(10), 0))).unwrap());
        drop(pool.pin(&key(1), |_| Ok((payload(10), 0))).unwrap());
        assert_eq!(pool.resident_frames("t", 1), 2);
        pool.retire("t", 1);
        assert_eq!(pool.resident_frames("t", 1), 0);
        assert_eq!(pool.stats().resident_bytes, 0);
    }

    #[test]
    fn failed_fault_clears_the_loading_slot() {
        let pool = BufferPool::new(1 << 20);
        let err = pool.pin(&key(9), |_| Err(io::Error::other("boom")));
        assert!(err.is_err());
        // A retry faults cleanly instead of waiting forever on Loading.
        let ok = pool.pin(&key(9), |_| Ok((payload(8), 0))).unwrap();
        assert_eq!(ok.data().arena.len(), 8);
    }

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("64k"), Some(64 << 10));
        assert_eq!(parse_bytes("8M"), Some(8 << 20));
        assert_eq!(parse_bytes("2g"), Some(2 << 30));
        assert_eq!(parse_bytes("nope"), None);
    }
}
