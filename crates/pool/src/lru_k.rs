//! LRU-K replacement policy (K = 2 by default).
//!
//! Classic backward-k-distance eviction: the victim is the evictable frame
//! whose K-th most recent access lies furthest in the past. Frames with
//! fewer than K recorded accesses have infinite backward distance and are
//! evicted first (oldest first access breaks ties), which gives scans the
//! "touched once, drop first" behaviour plain LRU lacks.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::Hash;

pub struct LruKReplacer<T> {
    k: usize,
    clock: u64,
    frames: HashMap<T, Entry>,
}

struct Entry {
    history: VecDeque<u64>,
    evictable: bool,
}

impl<T: Eq + Hash + Clone> LruKReplacer<T> {
    pub fn new(k: usize) -> Self {
        LruKReplacer {
            k: k.max(1),
            clock: 0,
            frames: HashMap::new(),
        }
    }

    /// Record an access to `id`, registering the frame if new.
    /// New frames start non-evictable (the caller holds a pin).
    pub fn record_access(&mut self, id: &T) {
        self.clock += 1;
        let now = self.clock;
        let k = self.k;
        let e = self.frames.entry(id.clone()).or_insert_with(|| Entry {
            history: VecDeque::with_capacity(k),
            evictable: false,
        });
        if e.history.len() == k {
            e.history.pop_front();
        }
        e.history.push_back(now);
    }

    pub fn set_evictable(&mut self, id: &T, evictable: bool) {
        if let Some(e) = self.frames.get_mut(id) {
            e.evictable = evictable;
        }
    }

    /// Drop `id` from the replacer entirely (frame evicted or retired).
    pub fn remove(&mut self, id: &T) {
        self.frames.remove(id);
    }

    /// Pick and remove the eviction victim: the evictable frame with the
    /// largest backward-k-distance. Frames with < K accesses count as
    /// infinitely distant and are preferred, oldest first access first.
    pub fn evict(&mut self) -> Option<T> {
        let mut best: Option<(&T, bool, u64)> = None; // (id, inf, key)
        for (id, e) in &self.frames {
            if !e.evictable {
                continue;
            }
            let inf = e.history.len() < self.k;
            // For +inf frames the tiebreak is the *earliest* first access;
            // for full-history frames the key is the K-th-recent access
            // time — smaller = further in the past = better victim.
            let key = *e.history.front().unwrap_or(&0);
            let better = match &best {
                None => true,
                Some((_, binf, bkey)) => (inf, u64::MAX - key) > (*binf, u64::MAX - *bkey),
            };
            if better {
                best = Some((id, inf, key));
            }
        }
        let victim = best.map(|(id, _, _)| id.clone())?;
        self.frames.remove(&victim);
        Some(victim)
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_frames_evict_before_hot_frames() {
        let mut r = LruKReplacer::new(2);
        for id in 0..4 {
            r.record_access(&id);
            r.set_evictable(&id, true);
        }
        // 0 and 1 get a second access — full history, large distance only
        // if accessed long ago. 2 and 3 have <K accesses: +inf distance.
        r.record_access(&0);
        r.record_access(&1);
        assert_eq!(r.evict(), Some(2));
        assert_eq!(r.evict(), Some(3));
        // Among full-history frames, the one whose 2nd-recent access is
        // oldest goes first: 0 was re-accessed before 1.
        assert_eq!(r.evict(), Some(0));
        assert_eq!(r.evict(), Some(1));
        assert_eq!(r.evict(), None);
    }

    #[test]
    fn pinned_frames_are_never_victims() {
        let mut r = LruKReplacer::new(2);
        r.record_access(&7);
        assert_eq!(r.evict(), None); // starts non-evictable
        r.set_evictable(&7, true);
        assert_eq!(r.evict(), Some(7));
    }
}
