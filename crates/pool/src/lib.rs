//! # pdsm-pool
//!
//! Partition-granular buffer pool over the v3 extent checkpoints written
//! by `pdsm-store`/`pdsm-txn` — the "larger than memory" layer. The
//! decomposition is the classical one (frame table + replacer + disk
//! scheduler): a [`BufferPool`] with a `PDSM_POOL_BYTES` budget hands out
//! pinned frames holding decoded `(extent, layout group)` payloads, an
//! LRU-K replacer picks eviction victims among unpinned frames, and a
//! single scheduler thread drains the fault queue.
//!
//! [`ColdTable`] is the integration point: a checkpoint opened header-only
//! whose extents fault in on first touch. `pdsm-txn` mounts one as the
//! unhydrated main store of a recovered table; `pdsm-core` streams scans
//! over it extent-at-a-time (skipping zone-refuted extents without
//! faulting them) and the planner prices the cold fraction via the disk
//! tier in `pdsm-cost`.

pub mod cold;
pub mod lru_k;
pub mod pool;
pub mod scheduler;

pub use cold::ColdTable;
pub use lru_k::LruKReplacer;
pub use pool::{BufferPool, FrameKey, PinnedFrame, PoolStats};
pub use scheduler::DiskScheduler;
