//! The disk-scheduler thread: a single background worker draining a read
//! queue. Faulting threads enqueue `(file, offset, len)` requests and block
//! on a per-request reply channel; centralizing the reads keeps cold-scan
//! I/O sequential even when several pipelines fault concurrently, and gives
//! one place to measure fault latency.

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

struct Request {
    file: Arc<File>,
    offset: u64,
    len: usize,
    reply: mpsc::SyncSender<io::Result<Vec<u8>>>,
}

pub struct DiskScheduler {
    tx: Option<mpsc::Sender<Request>>,
    worker: Option<thread::JoinHandle<()>>,
}

impl DiskScheduler {
    pub fn new() -> Self {
        let (tx, rx) = mpsc::channel::<Request>();
        let worker = thread::Builder::new()
            .name("pdsm-disk-sched".into())
            .spawn(move || {
                while let Ok(req) = rx.recv() {
                    let mut buf = vec![0u8; req.len];
                    let res = req.file.read_exact_at(&mut buf, req.offset).map(|()| buf);
                    // Receiver gone = faulting thread died; nothing to do.
                    let _ = req.reply.send(res);
                }
            })
            .expect("spawn disk scheduler");
        DiskScheduler {
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Schedule a read and block until it completes. Returns the bytes and
    /// the wall-clock fault latency (queueing included — that is the
    /// latency the query actually observed).
    pub fn read(&self, file: &Arc<File>, offset: u64, len: usize) -> io::Result<(Vec<u8>, u64)> {
        let started = Instant::now();
        let (reply, rx) = mpsc::sync_channel(1);
        self.tx
            .as_ref()
            .expect("scheduler running")
            .send(Request {
                file: Arc::clone(file),
                offset,
                len,
                reply,
            })
            .map_err(|_| io::Error::other("disk scheduler stopped"))?;
        let bytes = rx
            .recv()
            .map_err(|_| io::Error::other("disk scheduler dropped request"))??;
        Ok((bytes, started.elapsed().as_nanos() as u64))
    }
}

impl Default for DiskScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for DiskScheduler {
    fn drop(&mut self) {
        drop(self.tx.take()); // closes the channel, worker loop exits
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn reads_land_byte_exact() {
        let dir = std::env::temp_dir().join(format!("pdsm-sched-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob");
        let mut f = File::create(&path).unwrap();
        f.write_all(&(0..=255u8).collect::<Vec<_>>()).unwrap();
        f.sync_all().unwrap();
        let f = Arc::new(File::open(&path).unwrap());
        let s = DiskScheduler::new();
        let (bytes, _ns) = s.read(&f, 10, 5).unwrap();
        assert_eq!(bytes, vec![10, 11, 12, 13, 14]);
        assert!(s.read(&f, 250, 10).is_err()); // past EOF
        let _ = std::fs::remove_dir_all(&dir);
    }
}
