//! [`ColdTable`]: a checkpointed main store opened *header-only*. Row data
//! stays on disk until a query pins the extents it scans (or the table is
//! hydrated wholesale). The open file handle is kept for the table's
//! lifetime, so a later checkpoint unlinking this generation's file cannot
//! invalidate in-flight faults (POSIX keeps the inode alive).

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

use pdsm_storage::persist::{self, ExtentData, TableHeader};
use pdsm_storage::{Error, Result, Row, Table, ZonePred};

use crate::pool::{BufferPool, FrameKey, PinnedFrame};

pub struct ColdTable {
    header: Arc<TableHeader>,
    file: Arc<File>,
    pool: Arc<BufferPool>,
}

fn io_err(e: io::Error) -> Error {
    Error::Io(format!("cold table read: {e}"))
}

impl ColdTable {
    /// Open a v3 extent checkpoint without reading any payload: the header
    /// (schema, layout, dicts, zone map, extent directory) is validated
    /// against its CRC; everything else faults in on demand.
    pub fn open(path: &Path, pool: Arc<BufferPool>) -> Result<ColdTable> {
        let file = File::open(path).map_err(io_err)?;
        let mut prefix = [0u8; 16];
        file.read_exact_at(&mut prefix, 0).map_err(io_err)?;
        let header_len = u32::from_le_bytes(prefix[12..16].try_into().unwrap()) as usize;
        let mut head = vec![0u8; header_len.clamp(16, 1 << 28)];
        file.read_exact_at(&mut head, 0).map_err(io_err)?;
        let header = persist::read_header(&head)?;
        Ok(ColdTable {
            header: Arc::new(header),
            file: Arc::new(file),
            pool,
        })
    }

    pub fn header(&self) -> &Arc<TableHeader> {
        &self.header
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    pub fn name(&self) -> &str {
        &self.header.name
    }

    pub fn generation(&self) -> u64 {
        self.header.generation
    }

    pub fn len(&self) -> usize {
        self.header.len
    }

    pub fn is_empty(&self) -> bool {
        self.header.len == 0
    }

    pub fn n_extents(&self) -> usize {
        self.header.n_extents()
    }

    /// Is extent `e` refuted for the conjunction `preds`? True only when
    /// *every* zone block the extent covers is refuted — the scan can then
    /// skip the extent without faulting a single byte of it.
    pub fn extent_refuted(&self, e: usize, preds: &[ZonePred]) -> bool {
        if preds.is_empty() {
            return false;
        }
        let zones = match &self.header.zones {
            Some(z) => z,
            None => return false,
        };
        let (lo, hi) = self.header.extent_row_range(e);
        let b0 = lo / pdsm_storage::ZONE_BLOCK_ROWS;
        let b1 = hi.div_ceil(pdsm_storage::ZONE_BLOCK_ROWS);
        (b0..b1).all(|b| zones.block_refuted(b, preds))
    }

    /// Zero-row table carrying this checkpoint's name, schema and layout —
    /// enough for code that only needs column metadata (zone-predicate
    /// translation, planner views) without faulting a single byte.
    pub fn skeleton(&self) -> Table {
        Table::with_layout(
            self.header.name.clone(),
            self.header.schema.clone(),
            self.header.layout.clone(),
        )
        .expect("checkpoint header carries a valid layout")
    }

    /// Which extents are fully resident right now (every layout group has
    /// a Ready frame in the pool)? Indexed by extent, length
    /// [`ColdTable::n_extents`]. Advisory: residency can change as soon as
    /// the pool lock drops — used only for planner pricing and `explain`.
    pub fn resident_extents(&self) -> Vec<bool> {
        let ready = self
            .pool
            .ready_groups(&self.header.name, self.header.generation);
        let ng = self.header.n_groups();
        (0..self.n_extents())
            .map(|e| ready.get(&(e as u32)).copied().unwrap_or(0) == ng)
            .collect()
    }

    fn frame_key(&self, e: usize, g: usize) -> FrameKey {
        FrameKey {
            table: self.header.name.clone(),
            generation: self.header.generation,
            extent: e as u32,
            group: g as u32,
        }
    }

    /// Pin every layout group of extent `e`. All groups are pinned (not
    /// just the scanned columns) because the engines' typed readers assume
    /// a fully materialized mini table — a partial arena would be UB.
    pub fn pin_extent(&self, e: usize) -> Result<Vec<PinnedFrame>> {
        (0..self.header.n_groups())
            .map(|g| {
                let key = self.frame_key(e, g);
                let (off, plen) = self.header.dir[e][g];
                let header = Arc::clone(&self.header);
                let file = Arc::clone(&self.file);
                self.pool
                    .pin(&key, move |sched| {
                        let (bytes, ns) = sched.read(&file, off, plen as usize)?;
                        let data =
                            persist::decode_extent(&header, e, g, &bytes).map_err(|err| {
                                io::Error::new(io::ErrorKind::InvalidData, err.to_string())
                            })?;
                        Ok((data, ns))
                    })
                    .map_err(io_err)
            })
            .collect()
    }

    /// Materialize extent `e` as a self-contained mini [`Table`] plus the
    /// pins keeping its frames resident. Scans hold the pins for exactly
    /// the time they spend on the extent.
    pub fn extent_table(&self, e: usize) -> Result<(Table, Vec<PinnedFrame>)> {
        let pins = self.pin_extent(e)?;
        let datas: Vec<Arc<ExtentData>> = pins.iter().map(|p| Arc::clone(p.data())).collect();
        let t = persist::extent_table(&self.header, e, &datas)?;
        Ok((t, pins))
    }

    /// Fault in the whole table and reassemble the resident main store —
    /// bit-identical to a v2 `from_bytes` load. Every extent still moves
    /// through the pool (so budgets, stats, and eviction apply), but the
    /// assembled table itself is owned by the caller.
    pub fn hydrate(&self) -> Result<Table> {
        let mut exts = Vec::with_capacity(self.n_extents());
        for e in 0..self.n_extents() {
            let pins = self.pin_extent(e)?;
            exts.push(
                pins.iter()
                    .map(|p| Arc::clone(p.data()))
                    .collect::<Vec<_>>(),
            );
            // Pins drop here: the Arc'd payloads stay alive for assembly
            // even if the pool evicts the frames immediately.
        }
        persist::assemble_table(&self.header, &exts)
    }

    /// Point read of main-store row `id` — faults only the one extent the
    /// row lives in. Used by the delta layer for cold `get`/`update`.
    pub fn row(&self, id: usize) -> Result<Row> {
        if id >= self.header.len {
            return Err(Error::RowOutOfRange {
                row: id,
                len: self.header.len,
            });
        }
        let e = id / self.header.extent_rows;
        let (lo, _) = self.header.extent_row_range(e);
        let (mini, _pins) = self.extent_table(e)?;
        mini.row(id - lo)
    }

    /// Drop this generation's unpinned frames from the pool (merge retired
    /// the checkpoint).
    pub fn retire(&self) {
        self.pool.retire(&self.header.name, self.header.generation);
    }
}

impl std::fmt::Debug for ColdTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColdTable")
            .field("name", &self.header.name)
            .field("generation", &self.header.generation)
            .field("len", &self.header.len)
            .field("extents", &self.n_extents())
            .finish()
    }
}
