//! Fluent construction of logical plans.

use crate::expr::Expr;
use crate::logical::{AggExpr, LogicalPlan, SortKey};

/// Builder over a growing plan. Each method wraps the current plan in one
/// operator; `build` returns the finished [`LogicalPlan`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    plan: LogicalPlan,
}

impl QueryBuilder {
    /// Start from a base-table scan.
    pub fn scan(table: impl Into<String>) -> Self {
        QueryBuilder {
            plan: LogicalPlan::Scan {
                table: table.into(),
            },
        }
    }

    /// Continue from an existing plan.
    pub fn from_plan(plan: LogicalPlan) -> Self {
        QueryBuilder { plan }
    }

    /// `WHERE pred`.
    pub fn filter(self, pred: Expr) -> Self {
        QueryBuilder {
            plan: LogicalPlan::Select {
                input: Box::new(self.plan),
                pred,
                sel_hint: None,
            },
        }
    }

    /// `WHERE pred`, with the predicate's selectivity pinned for the cost
    /// model (the benchmarks sweep selectivity explicitly).
    pub fn filter_with_selectivity(self, pred: Expr, sel: f64) -> Self {
        QueryBuilder {
            plan: LogicalPlan::Select {
                input: Box::new(self.plan),
                pred,
                sel_hint: Some(sel),
            },
        }
    }

    /// `SELECT exprs`.
    pub fn project(self, exprs: Vec<Expr>) -> Self {
        QueryBuilder {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                exprs,
            },
        }
    }

    /// `GROUP BY group_by` with aggregates (empty `group_by` = scalar agg).
    pub fn aggregate(self, group_by: Vec<Expr>, aggs: Vec<AggExpr>) -> Self {
        QueryBuilder {
            plan: LogicalPlan::Aggregate {
                input: Box::new(self.plan),
                group_by,
                aggs,
            },
        }
    }

    /// Hash equi-join with `right`; key expressions are in each side's own
    /// column space. Output columns: left's then right's.
    pub fn join(self, right: LogicalPlan, left_key: Expr, right_key: Expr) -> Self {
        QueryBuilder {
            plan: LogicalPlan::Join {
                left: Box::new(self.plan),
                right: Box::new(right),
                left_key,
                right_key,
            },
        }
    }

    /// `ORDER BY expr [ASC]`.
    pub fn sort(self, keys: Vec<(Expr, bool)>) -> Self {
        QueryBuilder {
            plan: LogicalPlan::Sort {
                input: Box::new(self.plan),
                keys: keys
                    .into_iter()
                    .map(|(expr, asc)| SortKey { expr, asc })
                    .collect(),
            },
        }
    }

    /// `LIMIT n`.
    pub fn limit(self, n: usize) -> Self {
        QueryBuilder {
            plan: LogicalPlan::Limit {
                input: Box::new(self.plan),
                n,
            },
        }
    }

    /// Finish.
    pub fn build(self) -> LogicalPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::AggFunc;

    #[test]
    fn builds_nested_plan() {
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(0).gt(Expr::lit(5)))
            .project(vec![Expr::col(1), Expr::col(2)])
            .sort(vec![(Expr::col(0), true)])
            .limit(10)
            .build();
        match plan {
            LogicalPlan::Limit { input, n: 10 } => match *input {
                LogicalPlan::Sort { input, .. } => match *input {
                    LogicalPlan::Project { input, exprs } => {
                        assert_eq!(exprs.len(), 2);
                        assert!(matches!(*input, LogicalPlan::Select { .. }));
                    }
                    other => panic!("expected Project, got {other:?}"),
                },
                other => panic!("expected Sort, got {other:?}"),
            },
            other => panic!("expected Limit, got {other:?}"),
        }
    }

    #[test]
    fn selectivity_hint_stored() {
        let plan = QueryBuilder::scan("t")
            .filter_with_selectivity(Expr::col(0).eq(Expr::lit(1)), 0.01)
            .build();
        match plan {
            LogicalPlan::Select { sel_hint, .. } => assert_eq!(sel_hint, Some(0.01)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregate_shape() {
        let plan = QueryBuilder::scan("t")
            .aggregate(
                vec![Expr::col(0)],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Max, Expr::col(1)),
                ],
            )
            .build();
        match plan {
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                assert_eq!(group_by.len(), 1);
                assert_eq!(aggs.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }
}
