//! Plan → access-pattern translation (§IV-D, Table II).
//!
//! The relational plan is traversed and each operator "emits" the atoms that
//! describe its memory behaviour, producing a [`Pattern`] program for the
//! cost model. Two properties of the paper's scheme are preserved exactly:
//!
//! * **Pipelines are concurrent.** Operators fused into one loop by the
//!   compiled engine contribute atoms joined by `⊙`; pipeline breakers
//!   (hash build, aggregation, sort) append `⊕`.
//! * **Push vs pull.** Operators above a hash join do not re-read their
//!   input from base tables — probe hits push tuples into the pipeline
//!   (§IV-D); only the probe-side scan and the hash table itself are
//!   touched.
//!
//! Emission is parameterized by [`TableView`]s (row count, column widths and
//! a **candidate layout**), so the same query can be priced under arbitrary
//! hypothetical layouts — which is precisely how the BPi optimizer evaluates
//! cuts. Alongside the pattern, emission reports [`AccessGroup`]s: which
//! base columns are touched together, how (sequential/conditional/random),
//! and with what probability — the raw material of §V-A's *extended
//! reasonable cuts*.

use crate::expr::Expr;
use crate::logical::LogicalPlan;
use crate::selectivity::{estimate_selectivity, TableStatsView};
use pdsm_cost::{Atom, Pattern};
use pdsm_storage::{ColId, Layout, Table};
use std::collections::HashMap;

/// How a set of columns is accessed within one atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Unconditional sequential traversal (`s_trav`).
    Sequential,
    /// Conditional sequential traversal (`s_trav_cr`).
    Conditional,
    /// Random traversal / repetitive random access.
    Random,
}

/// A group of base-table columns accessed together by one atom.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessGroup {
    pub table: String,
    pub cols: Vec<ColId>,
    pub kind: AccessKind,
    /// Probability that a given row's values are read (1.0 for full scans).
    pub prob: f64,
}

/// The emission result for a whole query.
#[derive(Debug, Clone)]
pub struct EmittedQuery {
    /// The access-pattern program.
    pub pattern: Pattern,
    /// Column co-access groups (input to the layout optimizer).
    pub groups: Vec<AccessGroup>,
    /// Estimated output cardinality.
    pub out_rows: f64,
}

/// A table as the cost model sees it: cardinality, column widths, candidate
/// layout and optional statistics. Decoupled from [`Table`] so hypothetical
/// layouts can be priced without rebuilding data.
#[derive(Debug, Clone)]
pub struct TableView {
    pub name: String,
    pub n_rows: u64,
    pub col_widths: Vec<u64>,
    pub layout: Layout,
    pub stats: Option<TableStatsView>,
}

impl TableView {
    /// View of an actual table (no statistics; see [`TableView::with_stats`]).
    pub fn from_table(t: &Table) -> Self {
        TableView {
            name: t.name().to_string(),
            n_rows: t.len() as u64,
            col_widths: t
                .schema()
                .columns()
                .iter()
                .map(|c| c.ty.width() as u64)
                .collect(),
            layout: t.layout().clone(),
            stats: None,
        }
    }

    /// Same table under a different candidate layout.
    pub fn with_layout(&self, layout: Layout) -> Self {
        TableView {
            layout,
            ..self.clone()
        }
    }

    /// Attach statistics.
    pub fn with_stats(mut self, stats: TableStatsView) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Fragment stride of the layout group containing `cols[0]`'s group —
    /// reproduces the storage layer's alignment rules.
    pub fn group_stride(&self, group: &[ColId]) -> u64 {
        let mut off = 0u64;
        let mut max_align = 1u64;
        for &c in group {
            let w = self.col_widths[c];
            max_align = max_align.max(w);
            off = off.next_multiple_of(w.max(1));
            off += w;
        }
        off.next_multiple_of(max_align)
    }

    /// Distinct count of column `c` if statistics are attached.
    fn distinct_of(&self, c: ColId) -> Option<usize> {
        self.stats
            .as_ref()
            .and_then(|s| s.distinct.get(c).copied().flatten())
    }
}

/// Open pipeline over one base table.
#[derive(Debug, Clone)]
struct PipeState {
    table: String,
    /// Base-table cardinality (`R.n` of the scans).
    n: u64,
    /// Probability that a base row reaches the current operator.
    prob: f64,
    /// Current output position → base column (None = computed or
    /// join-materialized).
    map: Vec<Option<ColId>>,
}

#[derive(Debug, Clone)]
struct NodeOut {
    /// Completed pipeline segments (sequence-composed).
    closed: Vec<Pattern>,
    /// Atoms of the still-open pipeline (concurrent).
    open: Vec<Pattern>,
    /// Estimated rows flowing out of this node.
    card: f64,
    /// Open pipeline state, if rows still stream from a base table.
    pipe: Option<PipeState>,
}

impl NodeOut {
    fn seal(mut self) -> Vec<Pattern> {
        if !self.open.is_empty() {
            let open = std::mem::take(&mut self.open);
            self.closed.push(Pattern::conc(open));
        }
        self.closed
    }
}

struct Ctx<'a> {
    views: &'a HashMap<String, TableView>,
    groups: Vec<AccessGroup>,
}

/// Translate `plan` into its access-pattern program under the layouts in
/// `views` (one entry per referenced table).
pub fn emit_pattern(plan: &LogicalPlan, views: &HashMap<String, TableView>) -> EmittedQuery {
    let mut ctx = Ctx {
        views,
        groups: Vec::new(),
    };
    let width = |t: &str| views.get(t).map(|v| v.col_widths.len()).unwrap_or(0);
    let arity = plan.arity(&width);
    let out = emit_rec(plan, (0..arity).collect(), &mut ctx);
    let card = out.card;
    let segments = out.seal();
    EmittedQuery {
        pattern: Pattern::seq(segments),
        groups: ctx.groups,
        out_rows: card,
    }
}

/// Decompose a predicate into sequential evaluation steps with short-circuit
/// probabilities: `And(a,b)` evaluates `b` only when `a` held, `Or(a,b)`
/// only when `a` failed. Returns `(steps, pass)` where each step is
/// `(columns, relative probability of being evaluated)`.
fn predicate_steps(pred: &Expr, stats: Option<&TableStatsView>) -> (Vec<(Vec<ColId>, f64)>, f64) {
    match pred {
        Expr::And(a, b) => {
            let (mut sa, pa) = predicate_steps(a, stats);
            let (sb, pb) = predicate_steps(b, stats);
            sa.extend(sb.into_iter().map(|(c, p)| (c, p * pa)));
            (sa, pa * pb)
        }
        Expr::Or(a, b) => {
            let (mut sa, pa) = predicate_steps(a, stats);
            let (sb, pb) = predicate_steps(b, stats);
            sa.extend(sb.into_iter().map(|(c, p)| (c, p * (1.0 - pa))));
            (sa, pa + pb - pa * pb)
        }
        Expr::Not(a) => {
            let (sa, pa) = predicate_steps(a, stats);
            (sa, 1.0 - pa)
        }
        leaf => {
            let cols = leaf.columns();
            let sel = estimate_selectivity(leaf, stats);
            if cols.is_empty() {
                (Vec::new(), sel)
            } else {
                (vec![(cols, 1.0)], sel)
            }
        }
    }
}

/// Emit the scan atoms that read `base_cols` of `pipe`'s table at
/// probability `prob`, one atom per touched partition.
///
/// The recorded [`AccessGroup`] is **step-level** (the full column set of
/// this logical read, independent of the current layout): the layout
/// optimizer derives extended reasonable cuts from these groups and must see
/// which attributes are accessed *together*, not how the candidate layout
/// happens to split them.
fn emit_reads(ctx: &mut Ctx, pipe: &PipeState, base_cols: &[ColId], prob: f64) -> Vec<Pattern> {
    let view = &ctx.views[&pipe.table];
    let mut step_cols: Vec<ColId> = base_cols.to_vec();
    step_cols.sort_unstable();
    step_cols.dedup();
    ctx.groups.push(AccessGroup {
        table: pipe.table.clone(),
        cols: step_cols.clone(),
        kind: if prob >= 0.999 {
            AccessKind::Sequential
        } else {
            AccessKind::Conditional
        },
        prob: prob.clamp(0.0, 1.0),
    });
    let mut by_group: HashMap<usize, Vec<ColId>> = HashMap::new();
    for &c in step_cols.iter() {
        by_group.entry(view.layout.group_of(c)).or_default().push(c);
    }
    let mut parts: Vec<(usize, Vec<ColId>)> = by_group.into_iter().collect();
    parts.sort_by_key(|(g, _)| *g);
    let mut out = Vec::new();
    for (g, cols) in parts {
        let group = &view.layout.groups()[g];
        let stride = view.group_stride(group);
        let u: u64 = cols.iter().map(|&c| view.col_widths[c]).sum();
        let atom = if prob >= 0.999 {
            Atom::s_trav_partial(pipe.n, stride, u.min(stride))
        } else {
            Atom::s_trav_cr(pipe.n, stride, u.min(stride), prob.max(0.0))
        };
        out.push(Pattern::atom(atom));
    }
    out
}

/// Translate output-space columns to base columns through the pipe map.
fn to_base(pipe: &PipeState, cols: &[ColId]) -> Vec<ColId> {
    let mut out: Vec<ColId> = cols
        .iter()
        .filter_map(|&c| pipe.map.get(c).copied().flatten())
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn emit_rec(plan: &LogicalPlan, required: Vec<ColId>, ctx: &mut Ctx) -> NodeOut {
    let width = |t: &str| ctx.views.get(t).map(|v| v.col_widths.len()).unwrap_or(0);
    match plan {
        LogicalPlan::Scan { table } => {
            let view = ctx
                .views
                .get(table)
                .unwrap_or_else(|| panic!("no TableView for table {table:?}"));
            let n = view.n_rows;
            NodeOut {
                closed: Vec::new(),
                open: Vec::new(),
                card: n as f64,
                pipe: Some(PipeState {
                    table: table.clone(),
                    n,
                    prob: 1.0,
                    map: (0..view.col_widths.len()).map(Some).collect(),
                }),
            }
        }
        LogicalPlan::Select {
            input,
            pred,
            sel_hint,
        } => {
            let mut out = emit_rec(input, required, ctx);
            if let Some(pipe) = out.pipe.as_mut() {
                let stats = ctx.views[&pipe.table].stats.clone();
                let (steps, mut pass) = predicate_steps(pred, stats.as_ref());
                if let Some(h) = sel_hint {
                    pass = *h;
                }
                // Evaluate steps in short-circuit order; later steps run at
                // lower probability => NAME1/NAME2-style splits (Table IV).
                let pipe_snapshot = pipe.clone();
                for (cols, rel_prob) in steps {
                    let base = to_base(&pipe_snapshot, &cols);
                    if base.is_empty() {
                        continue;
                    }
                    let atoms =
                        emit_reads(ctx, &pipe_snapshot, &base, pipe_snapshot.prob * rel_prob);
                    out.open.extend(atoms);
                }
                let pipe = out.pipe.as_mut().unwrap();
                pipe.prob = (pipe.prob * pass).clamp(0.0, 1.0);
                out.card *= pass.clamp(0.0, 1.0);
            } else {
                // Post-materialization filter: rows are already in registers.
                let stats = None;
                let (_, pass) = predicate_steps(pred, stats);
                out.card *= sel_hint.unwrap_or(pass).clamp(0.0, 1.0);
            }
            out
        }
        LogicalPlan::Project { input, exprs } => {
            // Columns feeding the required output expressions.
            let mut need: Vec<ColId> = Vec::new();
            for &i in &required {
                if let Some(e) = exprs.get(i) {
                    need.extend(e.columns());
                }
            }
            need.sort_unstable();
            need.dedup();
            let mut out = emit_rec(input, need.clone(), ctx);
            if let Some(pipe) = out.pipe.as_mut() {
                let snapshot = pipe.clone();
                let base = to_base(&snapshot, &need);
                if !base.is_empty() {
                    let atoms = emit_reads(ctx, &snapshot, &base, snapshot.prob);
                    out.open.extend(atoms);
                }
                // remap: projected position i corresponds to exprs[i]
                let new_map: Vec<Option<ColId>> = exprs
                    .iter()
                    .map(|e| match e {
                        Expr::Col(c) => snapshot.map.get(*c).copied().flatten(),
                        _ => None,
                    })
                    .collect();
                out.pipe.as_mut().unwrap().map = new_map;
            }
            out
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let mut need: Vec<ColId> = Vec::new();
            for g in group_by {
                need.extend(g.columns());
            }
            for a in aggs {
                if let Some(e) = &a.arg {
                    need.extend(e.columns());
                }
            }
            need.sort_unstable();
            need.dedup();
            let mut out = emit_rec(input, need.clone(), ctx);
            let in_card = out.card;
            let group_card = estimate_groups(group_by, out.pipe.as_ref(), ctx, in_card);
            let out_w = 8 * (group_by.len() + aggs.len()).max(1) as u64;
            if let Some(pipe) = out.pipe.take() {
                let base = to_base(&pipe, &need);
                if !base.is_empty() {
                    let atoms = emit_reads(ctx, &pipe, &base, pipe.prob);
                    out.open.extend(atoms);
                }
            }
            // The aggregation table is updated once per surviving row.
            out.open.push(Pattern::atom(Atom::rr_acc(
                group_card.max(1.0) as u64,
                out_w,
                in_card.max(0.0) as u64,
            )));
            // Aggregation materializes: pipeline breaker.
            let open = std::mem::take(&mut out.open);
            out.closed.push(Pattern::conc(open));
            out.card = group_card;
            out.pipe = None;
            out
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            let lw = left.arity(&width);
            let mut lreq: Vec<ColId> = required.iter().filter(|&&c| c < lw).copied().collect();
            let mut rreq: Vec<ColId> = required
                .iter()
                .filter(|&&c| c >= lw)
                .map(|&c| c - lw)
                .collect();
            lreq.extend(left_key.columns());
            lreq.sort_unstable();
            lreq.dedup();
            rreq.extend(right_key.columns());
            rreq.sort_unstable();
            rreq.dedup();

            // --- build phase (pull): read left's needed columns, fill ht ---
            let mut lout = emit_rec(left, lreq.clone(), ctx);
            let left_card = lout.card;
            let mut ht_w = 16u64; // hash + next pointer
            if let Some(pipe) = lout.pipe.take() {
                let base = to_base(&pipe, &lreq);
                ht_w += base
                    .iter()
                    .map(|&c| ctx.views[&pipe.table].col_widths[c])
                    .sum::<u64>();
                if !base.is_empty() {
                    let atoms = emit_reads(ctx, &pipe, &base, pipe.prob);
                    lout.open.extend(atoms);
                }
            } else {
                ht_w += 8 * lreq.len().max(1) as u64;
            }
            let ht_n = (left_card.max(1.0)) as u64;
            lout.open.push(Pattern::atom(Atom::r_trav(ht_n, ht_w)));
            let mut closed = std::mem::take(&mut lout.closed);
            let lopen = std::mem::take(&mut lout.open);
            closed.push(Pattern::conc(lopen)); // ⊕ breaker after build

            // --- probe phase (push) ---
            let mut rout = emit_rec(right, rreq, ctx);
            closed.extend(std::mem::take(&mut rout.closed));
            let probes = rout.card.max(0.0) as u64;
            rout.open
                .push(Pattern::atom(Atom::rr_acc(ht_n, ht_w, probes)));

            // A probe matches iff its build row survived upstream filters.
            let left_base = left_base_rows(left, ctx).max(1.0);
            let match_prob = (left_card / left_base).clamp(0.0, 1.0);
            let card = rout.card * match_prob;
            let pipe = rout.pipe.take().map(|mut p| {
                p.prob = (p.prob * match_prob).clamp(0.0, 1.0);
                // output space: left part materialized in ht (None), right
                // part keeps its base mapping
                let mut map: Vec<Option<ColId>> = vec![None; lw];
                map.extend(p.map);
                p.map = map;
                p
            });
            NodeOut {
                closed,
                open: rout.open,
                card,
                pipe,
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let mut need = required.clone();
            for k in keys {
                need.extend(k.expr.columns());
            }
            need.sort_unstable();
            need.dedup();
            let mut out = emit_rec(input, need.clone(), ctx);
            let card = out.card;
            let mut out_w = 8u64 * need.len().max(1) as u64;
            if let Some(pipe) = out.pipe.take() {
                let base = to_base(&pipe, &need);
                out_w = base
                    .iter()
                    .map(|&c| ctx.views[&pipe.table].col_widths[c])
                    .sum::<u64>()
                    .max(8);
                if !base.is_empty() {
                    let atoms = emit_reads(ctx, &pipe, &base, pipe.prob);
                    out.open.extend(atoms);
                }
            }
            let n = card.max(1.0) as u64;
            // materialize the sort buffer concurrently with the input reads
            out.open.push(Pattern::atom(Atom::s_trav(n, out_w)));
            let open = std::mem::take(&mut out.open);
            out.closed.push(Pattern::conc(open));
            // the sort itself: n log n random accesses into the buffer
            let cmps = (card.max(2.0) * card.max(2.0).log2()).ceil() as u64;
            out.closed.push(Pattern::atom(Atom::rr_acc(n, out_w, cmps)));
            out.pipe = None;
            out
        }
        LogicalPlan::Limit { input, n } => {
            let mut out = emit_rec(input, required, ctx);
            out.card = out.card.min(*n as f64);
            out
        }
    }
}

/// Cardinality of the base table feeding `plan`'s leftmost pipeline (used
/// for join match probability).
fn left_base_rows(plan: &LogicalPlan, ctx: &Ctx) -> f64 {
    match plan {
        LogicalPlan::Scan { table } => ctx.views.get(table).map(|v| v.n_rows as f64).unwrap_or(1.0),
        LogicalPlan::Select { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => left_base_rows(input, ctx),
        LogicalPlan::Join { left, .. } => left_base_rows(left, ctx),
    }
}

/// Estimate the number of groups a grouped aggregation produces.
fn estimate_groups(group_by: &[Expr], pipe: Option<&PipeState>, ctx: &Ctx, in_card: f64) -> f64 {
    if group_by.is_empty() {
        return 1.0;
    }
    let mut product = 1.0f64;
    for g in group_by {
        let d = match (g, pipe) {
            (Expr::Col(c), Some(p)) => p
                .map
                .get(*c)
                .copied()
                .flatten()
                .and_then(|base| ctx.views[&p.table].distinct_of(base))
                .map(|d| d as f64),
            _ => None,
        };
        product *= d.unwrap_or(100.0);
    }
    product.min(in_card.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::logical::{AggExpr, AggFunc};

    /// The paper's running example: R(A..P) as 16 4-byte ints, layout
    /// {A}{B,C,D,E}{F..P}, `select sum(B),sum(C),sum(D),sum(E) where A=$1`.
    fn example_views(n: u64) -> HashMap<String, TableView> {
        let layout =
            Layout::from_groups(vec![vec![0], (1..=4).collect(), (5..16).collect()], 16).unwrap();
        let mut m = HashMap::new();
        m.insert(
            "R".to_string(),
            TableView {
                name: "R".into(),
                n_rows: n,
                col_widths: vec![4; 16],
                layout,
                stats: None,
            },
        );
        m
    }

    fn example_plan(sel: f64) -> LogicalPlan {
        QueryBuilder::scan("R")
            .filter_with_selectivity(Expr::col(0).eq(Expr::lit(1)), sel)
            .aggregate(
                vec![],
                (1..=4)
                    .map(|c| AggExpr::new(AggFunc::Sum, Expr::col(c)))
                    .collect(),
            )
            .build()
    }

    #[test]
    fn example_query_matches_table_1b() {
        // Table I(b): s_trav(26214400,4) ⊙ s_trav_cr([B..E],s=0.01) ⊙ rr_acc(1,·,262144)
        let views = example_views(26_214_400);
        let q = emit_pattern(&example_plan(0.01), &views);
        let s = q.pattern.to_string();
        assert!(
            s.contains("s_trav(26214400,4)"),
            "condition scan missing: {s}"
        );
        assert!(
            s.contains("s_trav_cr(26214400,16,s=0.01)"),
            "conditional payload read missing: {s}"
        );
        assert!(s.contains("rr_acc(1,32,262144)"), "agg update missing: {s}");
        assert!(!s.contains('⊕'), "single pipeline must not break: {s}");
        assert_eq!(q.out_rows, 1.0);
    }

    #[test]
    fn row_layout_merges_condition_and_payload_strides() {
        let mut views = example_views(1000);
        let v = views.get_mut("R").unwrap();
        *v = v.with_layout(Layout::row(16));
        let q = emit_pattern(&example_plan(0.5), &views);
        let s = q.pattern.to_string();
        // both atoms now traverse the 64-byte fragments
        assert!(s.contains("s_trav(1000,64,u=4)"), "{s}");
        assert!(s.contains("s_trav_cr(1000,64,u=16,s=0.5)"), "{s}");
    }

    #[test]
    fn access_groups_distinguish_condition_from_payload() {
        let views = example_views(1000);
        let q = emit_pattern(&example_plan(0.01), &views);
        let seq: Vec<_> = q
            .groups
            .iter()
            .filter(|g| g.kind == AccessKind::Sequential)
            .collect();
        let cond: Vec<_> = q
            .groups
            .iter()
            .filter(|g| g.kind == AccessKind::Conditional)
            .collect();
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].cols, vec![0]);
        assert_eq!(cond.len(), 1);
        assert_eq!(cond[0].cols, vec![1, 2, 3, 4]);
        assert!((cond[0].prob - 0.01).abs() < 1e-12);
    }

    #[test]
    fn short_circuit_and_gives_conditional_second_step() {
        // WHERE c0 = 1 AND c1 = 2: c1 read only when c0 matched.
        let views = example_views(10_000);
        let plan = QueryBuilder::scan("R")
            .filter(
                Expr::col(0)
                    .eq(Expr::lit(1))
                    .and(Expr::col(1).eq(Expr::lit(2))),
            )
            .aggregate(vec![], vec![AggExpr::count_star()])
            .build();
        let q = emit_pattern(&plan, &views);
        let c0 = q.groups.iter().find(|g| g.cols == vec![0]).unwrap();
        let c1 = q.groups.iter().find(|g| g.cols == vec![1]).unwrap();
        assert_eq!(c0.kind, AccessKind::Sequential);
        assert_eq!(c1.kind, AccessKind::Conditional);
        assert!((c1.prob - 0.01).abs() < 1e-9, "p={}", c1.prob);
    }

    #[test]
    fn or_second_branch_runs_on_failure() {
        // WHERE c0 = 1 OR c1 = 2: c1 read when c0 did NOT match (p = 0.99).
        let views = example_views(10_000);
        let plan = QueryBuilder::scan("R")
            .filter(
                Expr::col(0)
                    .eq(Expr::lit(1))
                    .or(Expr::col(1).eq(Expr::lit(2))),
            )
            .aggregate(vec![], vec![AggExpr::count_star()])
            .build();
        let q = emit_pattern(&plan, &views);
        let c1 = q.groups.iter().find(|g| g.cols == vec![1]).unwrap();
        assert!((c1.prob - 0.99).abs() < 1e-9, "p={}", c1.prob);
    }

    #[test]
    fn join_emits_build_breaker_and_probe() {
        let mut views = example_views(1_000);
        views.insert(
            "S".to_string(),
            TableView {
                name: "S".into(),
                n_rows: 50_000,
                col_widths: vec![4; 4],
                layout: Layout::column(4),
                stats: None,
            },
        );
        // R ⋈ S on R.c0 = S.c0, count(*)
        let plan = QueryBuilder::scan("R")
            .join(QueryBuilder::scan("S").build(), Expr::col(0), Expr::col(0))
            .aggregate(vec![], vec![AggExpr::count_star()])
            .build();
        let q = emit_pattern(&plan, &views);
        let s = q.pattern.to_string();
        assert!(s.contains('⊕'), "join must break the pipeline: {s}");
        assert!(s.contains("r_trav"), "hash build missing: {s}");
        assert!(s.contains("rr_acc"), "hash probe missing: {s}");
        // probe count equals right cardinality
        assert!(s.contains("50000"), "{s}");
    }

    #[test]
    fn projection_reads_only_required_columns() {
        let views = example_views(5_000);
        let plan = QueryBuilder::scan("R")
            .project(vec![Expr::col(3), Expr::col(7)])
            .build();
        let q = emit_pattern(&plan, &views);
        let touched: Vec<ColId> = q.groups.iter().flat_map(|g| g.cols.clone()).collect();
        assert_eq!(touched, vec![3, 7]);
    }

    #[test]
    fn sort_materializes_and_shuffles() {
        let views = example_views(5_000);
        let plan = QueryBuilder::scan("R")
            .project(vec![Expr::col(0)])
            .sort(vec![(Expr::col(0), true)])
            .build();
        let q = emit_pattern(&plan, &views);
        let s = q.pattern.to_string();
        assert!(s.contains('⊕'), "sort breaks the pipeline: {s}");
        assert!(s.contains("rr_acc"), "sort shuffle missing: {s}");
    }

    #[test]
    fn limit_caps_cardinality() {
        let views = example_views(5_000);
        let plan = QueryBuilder::scan("R")
            .project(vec![Expr::col(0)])
            .limit(10)
            .build();
        let q = emit_pattern(&plan, &views);
        assert_eq!(q.out_rows, 10.0);
    }
}
