//! SQL-flavoured rendering of expressions and output column names.
//!
//! Two consumers share this module: result framing (`Database::execute`
//! returns a `QueryResult` whose header names come from
//! [`LogicalPlan::output_names`]) and the SQL renderer in `pdsm-sql`
//! (which rebuilds query text from a plan for the `.sql` differential
//! suites). Keeping the expression syntax in one place is what makes the
//! render→parse round trip structural: every binary operator is
//! parenthesised, so the parse tree of the rendering is exactly the
//! original expression tree.

use crate::expr::{ArithOp, CmpOp, Expr};
use crate::logical::{AggExpr, LogicalPlan};
use pdsm_storage::{ColId, Value};

/// Render a literal as a SQL token: strings are single-quoted with `''`
/// escaping, floats keep their shortest round-trip form (always with a
/// fractional part or exponent, so they re-parse as floats).
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int32(x) => x.to_string(),
        Value::Int64(x) => x.to_string(),
        Value::Float64(x) => {
            let s = format!("{x:?}");
            if s.contains('.') || s.contains('e') || s.contains('E') || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

fn cmp_token(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn arith_token(op: ArithOp) -> &'static str {
    match op {
        ArithOp::Add => "+",
        ArithOp::Sub => "-",
        ArithOp::Mul => "*",
        ArithOp::Div => "/",
        ArithOp::Mod => "%",
    }
}

/// Render an expression as SQL, resolving column ids through `name_of`.
/// Every compound node is parenthesised so the rendering parses back to
/// the identical tree.
pub fn render_expr(e: &Expr, name_of: &impl Fn(ColId) -> String) -> String {
    match e {
        Expr::Col(c) => name_of(*c),
        Expr::Lit(v) => sql_literal(v),
        Expr::Cmp { op, left, right } => format!(
            "({} {} {})",
            render_expr(left, name_of),
            cmp_token(*op),
            render_expr(right, name_of)
        ),
        Expr::Like { expr, pattern } => format!(
            "({} LIKE '{}')",
            render_expr(expr, name_of),
            pattern.replace('\'', "''")
        ),
        Expr::And(a, b) => format!(
            "({} AND {})",
            render_expr(a, name_of),
            render_expr(b, name_of)
        ),
        Expr::Or(a, b) => format!(
            "({} OR {})",
            render_expr(a, name_of),
            render_expr(b, name_of)
        ),
        Expr::Not(a) => format!("(NOT {})", render_expr(a, name_of)),
        Expr::IsNull(a) => format!("({} IS NULL)", render_expr(a, name_of)),
        Expr::Arith { op, left, right } => format!(
            "({} {} {})",
            render_expr(left, name_of),
            arith_token(*op),
            render_expr(right, name_of)
        ),
    }
}

/// Render one aggregate as SQL (`count(*)` / `sum(NETWR)` / …).
pub fn render_agg(a: &AggExpr, name_of: &impl Fn(ColId) -> String) -> String {
    match &a.arg {
        None => format!("{}(*)", a.func),
        Some(e) => format!("{}({})", a.func, render_expr(e, name_of)),
    }
}

/// The display name of a projected expression: bare column references keep
/// their column name, anything else is its SQL rendering.
fn item_name(e: &Expr, input: &[String]) -> String {
    let name_of = |c: ColId| input.get(c).cloned().unwrap_or_else(|| format!("col{c}"));
    render_expr(e, &name_of)
}

impl LogicalPlan {
    /// Output column names of this plan, resolving base tables through
    /// `names_of` (table name → its schema's column names). Unknown tables
    /// fall back to positional `col<N>` placeholders, so the result always
    /// has the plan's arity when the plan is well-formed.
    pub fn output_names(&self, names_of: &impl Fn(&str) -> Option<Vec<String>>) -> Vec<String> {
        match self {
            LogicalPlan::Scan { table } => names_of(table).unwrap_or_default(),
            LogicalPlan::Select { input, .. } | LogicalPlan::Limit { input, .. } => {
                input.output_names(names_of)
            }
            LogicalPlan::Sort { input, .. } => input.output_names(names_of),
            LogicalPlan::Project { input, exprs } => {
                let inner = input.output_names(names_of);
                exprs.iter().map(|e| item_name(e, &inner)).collect()
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let inner = input.output_names(names_of);
                let name_of = |c: ColId| inner.get(c).cloned().unwrap_or_else(|| format!("col{c}"));
                group_by
                    .iter()
                    .map(|g| item_name(g, &inner))
                    .chain(aggs.iter().map(|a| render_agg(a, &name_of)))
                    .collect()
            }
            LogicalPlan::Join { left, right, .. } => {
                let mut names = left.output_names(names_of);
                names.extend(right.output_names(names_of));
                names
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::logical::AggFunc;

    fn resolver(t: &str) -> Option<Vec<String>> {
        match t {
            "R" => Some(vec!["A".into(), "B".into(), "C".into()]),
            "S" => Some(vec!["X".into(), "Y".into()]),
            _ => None,
        }
    }

    #[test]
    fn literals_round_trip_their_type() {
        assert_eq!(sql_literal(&Value::Int32(5)), "5");
        assert_eq!(sql_literal(&Value::Float64(5.0)), "5.0");
        assert_eq!(sql_literal(&Value::Str("it's".into())), "'it''s'");
        assert_eq!(sql_literal(&Value::Null), "NULL");
    }

    #[test]
    fn expr_rendering_parenthesises_structure() {
        let e = Expr::col(0).eq(Expr::lit(1)).and(Expr::col(1).like("x%"));
        let names = ["A".to_string(), "B".to_string()];
        assert_eq!(
            render_expr(&e, &|c| names[c].clone()),
            "((A = 1) AND (B LIKE 'x%'))"
        );
    }

    #[test]
    fn output_names_through_operators() {
        let plan = QueryBuilder::scan("R")
            .filter(Expr::col(0).eq(Expr::lit(1)))
            .aggregate(
                vec![Expr::col(2)],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(1)),
                ],
            )
            .build();
        assert_eq!(
            plan.output_names(&resolver),
            vec!["C", "count(*)", "sum(B)"]
        );
    }

    #[test]
    fn join_names_concatenate() {
        let plan = QueryBuilder::scan("R")
            .join(QueryBuilder::scan("S").build(), Expr::col(0), Expr::col(0))
            .project(vec![Expr::col(4), Expr::col(1)])
            .build();
        assert_eq!(plan.output_names(&resolver), vec!["Y", "B"]);
    }
}
