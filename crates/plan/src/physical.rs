//! Physical query plans: the planner's output.
//!
//! A [`PhysicalPlan`] is a [`LogicalPlan`] annotated with the decisions the
//! cost-based planner made for it: which execution engine runs the query
//! ([`EngineChoice`]), which access path feeds each pipeline
//! ([`AccessPath`] — a full scan through the engine, or a main-store index
//! probe unioned with a scan of the live delta tail), and what the
//! prefetch-aware cost model (`pdsm_cost::estimate`) predicted for the
//! chosen and the rejected alternatives. [`PhysicalPlan::explain`] renders
//! the whole decision for humans — the `EXPLAIN` of this system.
//!
//! The types here are pure data: lowering (`pdsm-core`'s `planner` module)
//! consults the catalog, the table statistics and the live delta sizes;
//! execution (`Database::execute_physical`) interprets the annotations.

use crate::logical::LogicalPlan;
use pdsm_storage::{ColId, Value};

/// Which engine the planner selected. Mirrors `pdsm-core`'s `EngineKind`
/// (which adds the engine objects themselves); the planner layer only needs
/// the name, so the enum lives here where `pdsm-exec` is not a dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineChoice {
    /// Tuple-at-a-time iterators (high per-tuple interpretation cost).
    Volcano,
    /// Column-at-a-time primitives with full materialization.
    Bulk,
    /// Block-at-a-time processing with cache-resident selection vectors.
    /// Only eligible for single-table scan pipelines.
    Vectorized,
    /// Data-centric fused pipelines (the paper's model).
    Compiled,
    /// Morsel-driven parallel execution of the compiled pipelines.
    Parallel,
}

impl EngineChoice {
    /// Lower-case engine name, as used in `explain()` and reports.
    pub fn name(&self) -> &'static str {
        match self {
            EngineChoice::Volcano => "volcano",
            EngineChoice::Bulk => "bulk",
            EngineChoice::Vectorized => "vectorized",
            EngineChoice::Compiled => "compiled",
            EngineChoice::Parallel => "parallel",
        }
    }
}

impl std::fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How rows enter a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan main ∪ delta through the engine's overlay-aware scan.
    FullScan,
    /// Probe the main-store index on `column` for `key`, drop tombstoned
    /// hits, then union a predicate-filtered scan of the live delta tail.
    IndexPoint { column: ColId, key: Value },
    /// Range probe (`lo..=hi`, ordered index required) with the same
    /// tombstone handling and delta-tail union as [`AccessPath::IndexPoint`].
    IndexRange { column: ColId, lo: i64, hi: i64 },
}

impl AccessPath {
    /// True for the index-probe variants.
    pub fn is_indexed(&self) -> bool {
        !matches!(self, AccessPath::FullScan)
    }

    /// Short label for `explain()` output.
    pub fn describe(&self) -> String {
        match self {
            AccessPath::FullScan => "full scan".to_string(),
            AccessPath::IndexPoint { column, key } => {
                format!("index probe col {column} = {key}")
            }
            AccessPath::IndexRange { column, lo, hi } => {
                format!("index range col {column} in [{lo}, {hi}]")
            }
        }
    }
}

/// One pipeline of the physical plan: the base table driving it and the
/// access path chosen for its scan.
#[derive(Debug, Clone)]
pub struct PipelinePlan {
    /// Base table feeding the pipeline.
    pub table: String,
    /// Chosen access path.
    pub access: AccessPath,
    /// Rows the access path is expected to deliver into the pipeline.
    pub est_rows: f64,
    /// Total rows visible in the table (main − tombstones + live tail).
    pub table_rows: u64,
    /// Live delta-tail rows an index probe must union in (0 = merged).
    pub delta_rows: usize,
    /// Zone blocks of the main store this scan consulted for pruning
    /// (0 = zone map not consulted — no refutable predicate or index path).
    pub zone_blocks: usize,
    /// Zone blocks the planner expects the scan to skip outright.
    pub zone_pruned: usize,
    /// Checkpoint extents of a still-cold main store (0 = fully resident
    /// table; the three fields below are then all zero too).
    pub extents_total: usize,
    /// Cold extents already resident in the buffer pool (no fault needed).
    pub extents_resident: usize,
    /// Cold extents the zone map refutes outright — the scan skips them
    /// without faulting a byte.
    pub extents_pruned: usize,
}

impl PipelinePlan {
    /// Fraction of zone blocks the scan must actually touch (1 when the
    /// zone map was not consulted) — the cost model's pruning term.
    pub fn survived_fraction(&self) -> f64 {
        if self.zone_blocks == 0 {
            1.0
        } else {
            (self.zone_blocks - self.zone_pruned) as f64 / self.zone_blocks as f64
        }
    }
}

/// Model-predicted cycles, split the way the paper splits them: memory
/// stalls (Eq. 5–6 over the emitted access pattern) and CPU work (per-tuple
/// processing cost of the chosen engine).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostSummary {
    /// Memory-hierarchy cycles from `pdsm_cost::estimate`.
    pub mem_cycles: f64,
    /// Per-tuple CPU cycles of the chosen engine's processing model.
    pub cpu_cycles: f64,
    /// Disk-tier cycles (`pdsm_cost::DiskTier`) to fault the cold,
    /// non-pruned checkpoint extents this scan must touch. Zero for fully
    /// resident tables — the common case — so the classic two-term
    /// breakdown is unchanged until a table actually lives on disk.
    pub disk_cycles: f64,
}

impl CostSummary {
    /// Total predicted cycles.
    pub fn total(&self) -> f64 {
        self.mem_cycles + self.cpu_cycles + self.disk_cycles
    }
}

/// A fully lowered query: logical plan + engine + access paths + the cost
/// estimates that justified them.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// The logical plan this was lowered from.
    pub logical: LogicalPlan,
    /// Engine the plan executes on (ignored for pure index probes, which
    /// bypass the engines entirely).
    pub engine: EngineChoice,
    /// One entry per pipeline, in scan order.
    pub pipelines: Vec<PipelinePlan>,
    /// Predicted cost of the chosen (engine, access path) combination.
    pub cost: CostSummary,
    /// Every alternative the planner priced, as `(label, total cycles)`,
    /// sorted cheapest first. Labels are `"scan/<engine>"` and `"index"`;
    /// the first entry is the chosen one.
    pub alternatives: Vec<(String, f64)>,
    /// Estimated result cardinality.
    pub est_out_rows: f64,
    /// Result-cache admission: `true` iff the model priced re-executing
    /// this plan above materializing and re-reading its result
    /// (`copy_out_cycles`) — the Dursun-style cache-vs-recompute test.
    /// `false` plans bypass the result cache entirely.
    pub cache_admit: bool,
    /// Model-predicted cycles to copy the materialized result out of a
    /// cache (one sequential write + one re-read of the estimated result
    /// bytes) — what admission weighed `cost` against.
    pub copy_out_cycles: f64,
}

impl PhysicalPlan {
    /// The access path of the root (outermost) pipeline; `FullScan` for
    /// plans whose pipelines were not index-eligible.
    pub fn access(&self) -> &AccessPath {
        self.pipelines
            .first()
            .map(|p| &p.access)
            .unwrap_or(&AccessPath::FullScan)
    }

    /// Predicted total cycles of the alternative labelled `label`
    /// (e.g. `"scan/compiled"`, `"index"`), if it was priced.
    pub fn cost_of(&self, label: &str) -> Option<f64> {
        self.alternatives
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, c)| *c)
    }

    /// Cheapest full-scan alternative (the cost the chosen path had to
    /// beat when an index path was selected).
    pub fn best_scan_cost(&self) -> Option<f64> {
        self.alternatives
            .iter()
            .filter(|(l, _)| l.starts_with("scan/"))
            .map(|(_, c)| *c)
            .fold(None, |acc: Option<f64>, c| {
                Some(acc.map_or(c, |a| a.min(c)))
            })
    }

    /// Human-readable rendering of the plan: chosen engine and access path
    /// per pipeline, the model's cost breakdown, and every priced
    /// alternative. This is the system's `EXPLAIN`.
    pub fn explain(&self) -> String {
        self.explain_with(None)
    }

    /// [`PhysicalPlan::explain`] plus a `cache:` line reporting the result
    /// cache's live status for this plan (`hit`, `miss` or `bypass`).
    /// Status is dynamic — the same cached plan can be a miss now and a
    /// hit next time — so callers (e.g. `Database::explain`) probe the
    /// cache at explain time and pass the answer in; `None` omits the
    /// line, keeping the bare rendering byte-stable for snapshots.
    pub fn explain_with(&self, cache: Option<&str>) -> String {
        let mut s = String::new();
        s.push_str("physical plan\n");
        s.push_str(&format!("  engine: {}\n", self.engine));
        for (i, p) in self.pipelines.iter().enumerate() {
            s.push_str(&format!(
                "  pipeline {i}: {} via {} — est {:.0} of {} rows",
                p.table,
                p.access.describe(),
                p.est_rows,
                p.table_rows,
            ));
            if p.access.is_indexed() {
                s.push_str(&format!(" (+{} delta)", p.delta_rows));
            }
            if p.zone_blocks > 0 {
                s.push_str(&format!(
                    ", partitions: {}/{}/{} (scanned/pruned/total)",
                    p.zone_blocks - p.zone_pruned,
                    p.zone_pruned,
                    p.zone_blocks,
                ));
            }
            if p.extents_total > 0 {
                s.push_str(&format!(
                    ", extents: {}/{}/{}/{} (resident/cold/pruned/total)",
                    p.extents_resident,
                    p.extents_total - p.extents_resident - p.extents_pruned,
                    p.extents_pruned,
                    p.extents_total,
                ));
            }
            s.push('\n');
        }
        if self.cost.disk_cycles > 0.0 {
            s.push_str(&format!(
                "  cost: {:.0} cycles (mem {:.0} + cpu {:.0} + disk {:.0}), est {:.0} output rows\n",
                self.cost.total(),
                self.cost.mem_cycles,
                self.cost.cpu_cycles,
                self.cost.disk_cycles,
                self.est_out_rows,
            ));
        } else {
            s.push_str(&format!(
                "  cost: {:.0} cycles (mem {:.0} + cpu {:.0}), est {:.0} output rows\n",
                self.cost.total(),
                self.cost.mem_cycles,
                self.cost.cpu_cycles,
                self.est_out_rows,
            ));
        }
        s.push_str("  alternatives:");
        for (label, cycles) in &self.alternatives {
            s.push_str(&format!(" {label}={cycles:.0}"));
        }
        s.push('\n');
        if let Some(status) = cache {
            s.push_str(&format!("  cache: {status}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;

    fn sample() -> PhysicalPlan {
        PhysicalPlan {
            logical: QueryBuilder::scan("t").build(),
            engine: EngineChoice::Compiled,
            pipelines: vec![PipelinePlan {
                table: "t".into(),
                access: AccessPath::IndexPoint {
                    column: 0,
                    key: Value::Int32(7),
                },
                est_rows: 2.0,
                table_rows: 100,
                delta_rows: 3,
                zone_blocks: 0,
                zone_pruned: 0,
                extents_total: 0,
                extents_resident: 0,
                extents_pruned: 0,
            }],
            cost: CostSummary {
                mem_cycles: 900.0,
                cpu_cycles: 100.0,
                disk_cycles: 0.0,
            },
            alternatives: vec![
                ("index".to_string(), 1000.0),
                ("scan/compiled".to_string(), 5000.0),
                ("scan/volcano".to_string(), 90000.0),
            ],
            est_out_rows: 2.0,
            cache_admit: false,
            copy_out_cycles: 0.0,
        }
    }

    #[test]
    fn explain_shows_path_and_cost() {
        let p = sample();
        let e = p.explain();
        assert!(e.contains("engine: compiled"), "{e}");
        assert!(e.contains("index probe col 0 = 7"), "{e}");
        assert!(e.contains("(+3 delta)"), "{e}");
        assert!(e.contains("cost: 1000 cycles (mem 900 + cpu 100)"), "{e}");
        assert!(e.contains("scan/volcano=90000"), "{e}");
    }

    #[test]
    fn explain_reports_partition_pruning() {
        let mut p = sample();
        p.pipelines[0].access = AccessPath::FullScan;
        p.pipelines[0].zone_blocks = 40;
        p.pipelines[0].zone_pruned = 30;
        let e = p.explain();
        assert!(
            e.contains("partitions: 10/30/40 (scanned/pruned/total)"),
            "{e}"
        );
        assert!((p.pipelines[0].survived_fraction() - 0.25).abs() < 1e-12);
        // unconsulted zone map reports nothing and scales nothing
        let q = sample();
        assert!(!q.explain().contains("partitions:"), "{}", q.explain());
        assert_eq!(q.pipelines[0].survived_fraction(), 1.0);
    }

    #[test]
    fn explain_reports_cold_extents_and_disk_cost() {
        let mut p = sample();
        p.pipelines[0].access = AccessPath::FullScan;
        p.pipelines[0].extents_total = 16;
        p.pipelines[0].extents_resident = 4;
        p.pipelines[0].extents_pruned = 10;
        p.cost.disk_cycles = 500.0;
        let e = p.explain();
        assert!(
            e.contains("extents: 4/2/10/16 (resident/cold/pruned/total)"),
            "{e}"
        );
        assert!(
            e.contains("cost: 1500 cycles (mem 900 + cpu 100 + disk 500)"),
            "{e}"
        );
        // resident tables render neither the extent line nor the disk term
        let q = sample();
        assert!(!q.explain().contains("extents:"), "{}", q.explain());
        assert!(!q.explain().contains("disk"), "{}", q.explain());
    }

    #[test]
    fn explain_with_appends_cache_line() {
        let p = sample();
        assert!(!p.explain().contains("cache:"), "{}", p.explain());
        assert_eq!(p.explain_with(None), p.explain());
        let e = p.explain_with(Some("hit"));
        assert!(e.ends_with("  cache: hit\n"), "{e}");
        assert!(e.starts_with(&p.explain()), "{e}");
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert!(p.access().is_indexed());
        assert_eq!(p.cost_of("scan/compiled"), Some(5000.0));
        assert_eq!(p.best_scan_cost(), Some(5000.0));
        assert_eq!(p.cost.total(), 1000.0);
        assert_eq!(EngineChoice::Parallel.to_string(), "parallel");
    }
}
