//! Canonical plan fingerprints — the result cache's key.
//!
//! [`plan_fingerprint`] renders a [`LogicalPlan`] to a canonical string
//! that identifies *what the plan computes*, normalizing away annotations
//! that cannot change the result. Today that is exactly one thing: the
//! `sel_hint` on [`LogicalPlan::Select`] — benchmarks sweep hints on
//! otherwise-identical plans, and a result computed under one hint is
//! byte-identical to the same plan under another. Everything
//! result-relevant (tables, predicates, expressions, literal *types* —
//! an `Int32` literal coerces differently from an `Int64` one) stays in
//! the rendering verbatim.
//!
//! The companion helpers [`pipeline_fragment`] and [`substitute_fragment`]
//! identify and splice out the *filtered-scan fragment* of a single-table
//! pipeline — the `Select(Scan)` subtree every operator above it consumes.
//! A cached fragment keyed by `plan_fingerprint(fragment)` can then serve
//! any later plan over the same fragment (e.g. an aggregate over a
//! previously-run filter) by substituting a scan of the materialized rows.

use crate::logical::LogicalPlan;

/// Canonical fingerprint of `plan`: a deterministic rendering with
/// result-irrelevant annotations (`sel_hint`) normalized away. Two plans
/// with equal fingerprints compute identical results over identical table
/// versions.
pub fn plan_fingerprint(plan: &LogicalPlan) -> String {
    let mut s = String::new();
    render(plan, &mut s);
    s
}

fn render(plan: &LogicalPlan, out: &mut String) {
    match plan {
        LogicalPlan::Scan { table } => {
            out.push_str("scan(");
            out.push_str(table);
            out.push(')');
        }
        LogicalPlan::Select { input, pred, .. } => {
            // sel_hint deliberately omitted: it prices, it never filters.
            out.push_str(&format!("select({pred:?})["));
            render(input, out);
            out.push(']');
        }
        LogicalPlan::Project { input, exprs } => {
            out.push_str(&format!("project({exprs:?})["));
            render(input, out);
            out.push(']');
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            out.push_str(&format!("aggregate(group={group_by:?}, aggs={aggs:?})["));
            render(input, out);
            out.push(']');
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            out.push_str(&format!("join(lk={left_key:?}, rk={right_key:?})["));
            render(left, out);
            out.push_str("]×[");
            render(right, out);
            out.push(']');
        }
        LogicalPlan::Sort { input, keys } => {
            out.push_str(&format!("sort({keys:?})["));
            render(input, out);
            out.push(']');
        }
        LogicalPlan::Limit { input, n } => {
            out.push_str(&format!("limit({n})["));
            render(input, out);
            out.push(']');
        }
    }
}

/// The plan's *filtered-scan fragment*: the `Select(Scan)` subtree feeding
/// every operator above it, reached through single-input operators only.
/// `None` for joins (two pipelines, no single fragment), for bare scans
/// (nothing filtered to reuse) and for plans with no selection. The
/// returned node may be the plan itself — callers deciding whether a
/// *sub*-result exists should compare addresses.
pub fn pipeline_fragment(plan: &LogicalPlan) -> Option<&LogicalPlan> {
    match plan {
        LogicalPlan::Select { input, .. } => {
            if matches!(input.as_ref(), LogicalPlan::Scan { .. }) {
                Some(plan)
            } else {
                pipeline_fragment(input)
            }
        }
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => pipeline_fragment(input),
        LogicalPlan::Scan { .. } | LogicalPlan::Join { .. } => None,
    }
}

/// Rebuild `plan` with its filtered-scan fragment (the node
/// [`pipeline_fragment`] finds) replaced by a scan of `table` — the
/// consuming side of fragment reuse. The fragment preserves the base
/// table's full schema, so every column reference above it stays valid.
pub fn substitute_fragment(plan: &LogicalPlan, table: &str) -> LogicalPlan {
    match plan {
        LogicalPlan::Select {
            input,
            pred,
            sel_hint,
        } => {
            if matches!(input.as_ref(), LogicalPlan::Scan { .. }) {
                LogicalPlan::Scan {
                    table: table.to_string(),
                }
            } else {
                LogicalPlan::Select {
                    input: Box::new(substitute_fragment(input, table)),
                    pred: pred.clone(),
                    sel_hint: *sel_hint,
                }
            }
        }
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(substitute_fragment(input, table)),
            exprs: exprs.clone(),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(substitute_fragment(input, table)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(substitute_fragment(input, table)),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(substitute_fragment(input, table)),
            n: *n,
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::expr::Expr;
    use crate::logical::AggExpr;

    fn filtered(sel_hint: Option<f64>) -> LogicalPlan {
        let mut plan = QueryBuilder::scan("t")
            .filter(Expr::col(0).eq(Expr::lit(7)))
            .build();
        if let LogicalPlan::Select { sel_hint: h, .. } = &mut plan {
            *h = sel_hint;
        }
        plan
    }

    #[test]
    fn hints_are_normalized_away() {
        assert_eq!(
            plan_fingerprint(&filtered(None)),
            plan_fingerprint(&filtered(Some(0.01)))
        );
    }

    #[test]
    fn result_relevant_parts_distinguish() {
        let a = QueryBuilder::scan("t")
            .filter(Expr::col(0).eq(Expr::lit(7)))
            .build();
        let b = QueryBuilder::scan("t")
            .filter(Expr::col(0).eq(Expr::lit(8)))
            .build();
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&b));
        // literal type matters: Int32(7) vs Int64(7) coerce differently
        let c = QueryBuilder::scan("t")
            .filter(Expr::col(0).eq(Expr::lit(7i64)))
            .build();
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&c));
        // table name matters
        let d = QueryBuilder::scan("u")
            .filter(Expr::col(0).eq(Expr::lit(7)))
            .build();
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&d));
    }

    #[test]
    fn fragment_found_through_consumers() {
        let frag = filtered(None);
        let agg = QueryBuilder::scan("t")
            .filter(Expr::col(0).eq(Expr::lit(7)))
            .aggregate(vec![], vec![AggExpr::count_star()])
            .build();
        let found = pipeline_fragment(&agg).expect("fragment under aggregate");
        assert_eq!(plan_fingerprint(found), plan_fingerprint(&frag));
        // the fragment of a bare Select(Scan) is the plan itself
        let this = pipeline_fragment(&frag).unwrap();
        assert!(std::ptr::eq(this, &frag));
        // bare scans and joins have none
        assert!(pipeline_fragment(&QueryBuilder::scan("t").build()).is_none());
    }

    #[test]
    fn substitution_splices_a_scan() {
        let agg = QueryBuilder::scan("t")
            .filter(Expr::col(0).eq(Expr::lit(7)))
            .aggregate(vec![], vec![AggExpr::count_star()])
            .build();
        let rewritten = substitute_fragment(&agg, "#frag");
        match &rewritten {
            LogicalPlan::Aggregate { input, .. } => match input.as_ref() {
                LogicalPlan::Scan { table } => assert_eq!(table, "#frag"),
                other => panic!("expected scan under aggregate, got {other:?}"),
            },
            other => panic!("expected aggregate, got {other:?}"),
        }
        assert_eq!(rewritten.tables(), vec!["#frag"]);
    }
}
