//! Relational query plans.
//!
//! Plans are positional: an operator's output row is a flat `Vec<Value>` and
//! `Expr::Col(i)` indexes it. A scan produces the full table schema (column
//! pruning is a *physical* concern: the compiled and bulk engines read only
//! the columns the plan requires, which is what makes layouts matter). A
//! join produces `left columns ++ right columns`.

use crate::expr::Expr;
use pdsm_storage::ColId;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        })
    }
}

/// One aggregate: `func(arg)`, or `count(*)` when `arg` is `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    pub arg: Option<Expr>,
}

impl AggExpr {
    /// `count(*)`.
    pub fn count_star() -> Self {
        AggExpr {
            func: AggFunc::Count,
            arg: None,
        }
    }

    /// `func(expr)`.
    pub fn new(func: AggFunc, arg: Expr) -> Self {
        AggExpr {
            func,
            arg: Some(arg),
        }
    }
}

/// A sort key: expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: Expr,
    pub asc: bool,
}

/// A logical query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan producing the full schema row.
    Scan { table: String },
    /// Filter; `sel_hint` optionally pins the predicate's selectivity for
    /// the cost model (benchmarks sweep it explicitly, §VI).
    Select {
        input: Box<LogicalPlan>,
        pred: Expr,
        sel_hint: Option<f64>,
    },
    /// Projection to arbitrary expressions.
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<Expr>,
    },
    /// Hash aggregate. Output = group expressions ++ aggregates.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<Expr>,
        aggs: Vec<AggExpr>,
    },
    /// Hash equi-join: build on `left`, probe with `right`.
    /// Output = left columns ++ right columns. Key expressions are evaluated
    /// against their own side's rows.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        left_key: Expr,
        right_key: Expr,
    },
    /// Sort by keys.
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    /// Keep the first `n` rows.
    Limit { input: Box<LogicalPlan>, n: usize },
}

impl LogicalPlan {
    /// Number of columns this node outputs, given a resolver from table name
    /// to schema width.
    pub fn arity(&self, table_width: &impl Fn(&str) -> usize) -> usize {
        match self {
            LogicalPlan::Scan { table } => table_width(table),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.arity(table_width),
            LogicalPlan::Project { exprs, .. } => exprs.len(),
            LogicalPlan::Aggregate { group_by, aggs, .. } => group_by.len() + aggs.len(),
            LogicalPlan::Join { left, right, .. } => {
                left.arity(table_width) + right.arity(table_width)
            }
        }
    }

    /// The tables referenced by this plan, in scan order.
    pub fn tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            LogicalPlan::Scan { table } => out.push(table),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.collect_tables(out),
            LogicalPlan::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }

    /// Columns of `table`'s base schema this plan actually touches —
    /// the driver of column pruning and of the layout optimizer's
    /// "reasonable cuts". Only meaningful for plans over a single occurrence
    /// of each table; join plans attribute columns to sides positionally.
    pub fn required_columns(
        &self,
        table_width: &impl Fn(&str) -> usize,
    ) -> Vec<(String, Vec<ColId>)> {
        let mut acc: Vec<(String, Vec<ColId>)> = Vec::new();
        // Every output column of the plan root is required by the consumer.
        let mut all: Vec<ColId> = (0..self.arity(table_width)).collect();
        self.collect_required(table_width, &mut acc, &mut all);
        for (_, cols) in &mut acc {
            cols.sort_unstable();
            cols.dedup();
        }
        acc
    }

    /// Recursive helper: `upstream` carries the column indexes (in this
    /// node's output space) that ancestors require.
    fn collect_required(
        &self,
        table_width: &impl Fn(&str) -> usize,
        acc: &mut Vec<(String, Vec<ColId>)>,
        upstream: &mut Vec<ColId>,
    ) {
        match self {
            LogicalPlan::Scan { table } => {
                let entry = match acc.iter_mut().find(|(t, _)| t == table) {
                    Some((_, cols)) => cols,
                    None => {
                        acc.push((table.clone(), Vec::new()));
                        &mut acc.last_mut().unwrap().1
                    }
                };
                entry.extend(upstream.iter().copied());
            }
            LogicalPlan::Select { input, pred, .. } => {
                let mut need = upstream.clone();
                need.extend(pred.columns());
                input.collect_required(table_width, acc, &mut need);
            }
            LogicalPlan::Project { input, exprs } => {
                let mut need = Vec::new();
                for &i in upstream.iter() {
                    if let Some(e) = exprs.get(i) {
                        need.extend(e.columns());
                    }
                }
                input.collect_required(table_width, acc, &mut need);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                // aggregation consumes its inputs regardless of which outputs
                // are used upstream
                let mut need = Vec::new();
                for g in group_by {
                    need.extend(g.columns());
                }
                for a in aggs {
                    if let Some(e) = &a.arg {
                        need.extend(e.columns());
                    }
                }
                input.collect_required(table_width, acc, &mut need);
            }
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let lw = left.arity(table_width);
                let mut lneed: Vec<ColId> = upstream.iter().filter(|&&c| c < lw).copied().collect();
                let mut rneed: Vec<ColId> = upstream
                    .iter()
                    .filter(|&&c| c >= lw)
                    .map(|&c| c - lw)
                    .collect();
                lneed.extend(left_key.columns());
                rneed.extend(right_key.columns());
                left.collect_required(table_width, acc, &mut lneed);
                right.collect_required(table_width, acc, &mut rneed);
            }
            LogicalPlan::Sort { input, keys } => {
                let mut need = upstream.clone();
                for k in keys {
                    need.extend(k.expr.columns());
                }
                input.collect_required(table_width, acc, &mut need);
            }
            LogicalPlan::Limit { input, .. } => {
                input.collect_required(table_width, acc, upstream);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;

    fn width(t: &str) -> usize {
        match t {
            "R" => 16,
            "S" => 4,
            _ => 0,
        }
    }

    #[test]
    fn arity_through_operators() {
        let plan = QueryBuilder::scan("R")
            .filter(Expr::col(0).eq(Expr::lit(1)))
            .aggregate(
                vec![],
                vec![
                    AggExpr::new(AggFunc::Sum, Expr::col(1)),
                    AggExpr::new(AggFunc::Sum, Expr::col(2)),
                ],
            )
            .build();
        assert_eq!(plan.arity(&width), 2);
        let p2 = QueryBuilder::scan("R").project(vec![Expr::col(3)]).build();
        assert_eq!(p2.arity(&width), 1);
    }

    #[test]
    fn join_output_is_concatenation() {
        let plan = QueryBuilder::scan("R")
            .join(QueryBuilder::scan("S").build(), Expr::col(0), Expr::col(0))
            .build();
        assert_eq!(plan.arity(&width), 20);
        assert_eq!(plan.tables(), vec!["R", "S"]);
    }

    #[test]
    fn required_columns_pruned_through_projection() {
        // select sum(B) from R where A = 1 — touches only cols 0 and 1.
        let plan = QueryBuilder::scan("R")
            .filter(Expr::col(0).eq(Expr::lit(1)))
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(1))])
            .build();
        let req = plan.required_columns(&width);
        assert_eq!(req, vec![("R".to_string(), vec![0, 1])]);
    }

    #[test]
    fn required_columns_across_join_sides() {
        // R join S on R.c2 = S.c1, then keep S.c3 (output col 16+3=19)
        let plan = QueryBuilder::scan("R")
            .join(QueryBuilder::scan("S").build(), Expr::col(2), Expr::col(1))
            .project(vec![Expr::col(19)])
            .build();
        let req = plan.required_columns(&width);
        let r = req.iter().find(|(t, _)| t == "R").unwrap();
        let s = req.iter().find(|(t, _)| t == "S").unwrap();
        assert_eq!(r.1, vec![2]);
        assert_eq!(s.1, vec![1, 3]);
    }
}
