//! # pdsm-plan
//!
//! Query representation and the paper's plan→access-pattern translation.
//!
//! * [`expr`] — scalar expression language (comparisons, `LIKE`, arithmetic,
//!   boolean connectives) with an interpreter used by the Volcano engine and
//!   the test oracles.
//! * [`logical`] — relational plans: scan, select, project, aggregate,
//!   hash-join, sort, limit.
//! * [`builder`] — fluent construction of plans.
//! * [`selectivity`] — cardinality heuristics plus per-query hints.
//! * [`patterns`] — §IV-D: pre-order traversal of the plan emitting the
//!   memory-access-pattern "program" of Table II, parameterized by a
//!   [`patterns::TableView`] (row count + candidate layout), so the same
//!   query can be priced under any hypothetical layout — the mechanism the
//!   BPi layout optimizer drives.
//! * [`physical`] — the planner's output: a logical plan annotated with the
//!   model-chosen engine and per-pipeline access path, plus an `explain()`
//!   rendering. Lowering lives in `pdsm-core::planner`.
//! * [`names`] — SQL-flavoured rendering of expressions and the output
//!   column names of a plan (result framing, SQL renderer).

pub mod builder;
pub mod expr;
pub mod fingerprint;
pub mod logical;
pub mod names;
pub mod patterns;
pub mod physical;
pub mod selectivity;

pub use builder::QueryBuilder;
pub use expr::{ArithOp, CmpOp, Expr};
pub use fingerprint::{pipeline_fragment, plan_fingerprint, substitute_fragment};
pub use logical::{AggExpr, AggFunc, LogicalPlan, SortKey};
pub use names::{render_agg, render_expr, sql_literal};
pub use patterns::{emit_pattern, AccessGroup, AccessKind, TableView};
pub use physical::{AccessPath, CostSummary, EngineChoice, PhysicalPlan, PipelinePlan};
pub use selectivity::estimate_selectivity;
