//! Scalar expressions and their interpreter.
//!
//! The interpreter works on dynamically typed [`Value`]s and is deliberately
//! the *slow* path: the Volcano engine calls it per tuple (that is the
//! point of the baseline), while the bulk and compiled engines lower
//! expressions to typed kernels and never touch it in inner loops.

use pdsm_storage::types::{cmp_values, Value};
use pdsm_storage::ColId;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Apply to an ordering.
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// Arithmetic operators (`(price/10)*10` in the CNET queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// A scalar expression over the columns of one (logical) input row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column by position.
    Col(ColId),
    /// Literal value.
    Lit(Value),
    /// Binary comparison; NULL operands compare to false (two-valued
    /// simplification of SQL's 3VL, adequate for the benchmark queries).
    Cmp {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// SQL LIKE with `%`/`_` against a string column expression.
    Like { expr: Box<Expr>, pattern: String },
    /// Logical conjunction (short-circuiting left to right).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction (short-circuiting left to right).
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// NULL test.
    IsNull(Box<Expr>),
    /// Integer/float arithmetic; NULL propagates.
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
}

// The builder API deliberately uses SQL-flavoured method names (`add`,
// `not`, ...) rather than operator traits: plans read as plans.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Column reference.
    pub fn col(c: ColId) -> Expr {
        Expr::Col(c)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self op other`.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Eq, other)
    }

    /// `self != other`.
    pub fn ne(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Ne, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Lt, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Le, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Gt, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Ge, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// `self LIKE pattern`.
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
        }
    }

    /// `self op other` arithmetic.
    pub fn arith(self, op: ArithOp, other: Expr) -> Expr {
        Expr::Arith {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self + other`.
    pub fn add(self, other: Expr) -> Expr {
        self.arith(ArithOp::Add, other)
    }

    /// `self - other`.
    pub fn sub(self, other: Expr) -> Expr {
        self.arith(ArithOp::Sub, other)
    }

    /// `self * other`.
    pub fn mul(self, other: Expr) -> Expr {
        self.arith(ArithOp::Mul, other)
    }

    /// `self / other`.
    pub fn div(self, other: Expr) -> Expr {
        self.arith(ArithOp::Div, other)
    }

    /// Evaluate to a [`Value`].
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            Expr::Col(c) => row[*c].clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp { op, left, right } => {
                let l = left.eval(row);
                let r = right.eval(row);
                if l.is_null() || r.is_null() {
                    return Value::Int32(0);
                }
                Value::Int32(op.matches(cmp_values(&l, &r)) as i32)
            }
            Expr::Like { expr, pattern } => {
                let v = expr.eval(row);
                match v.as_str() {
                    Some(s) => {
                        Value::Int32(pdsm_storage::dictionary::like_match(pattern, s) as i32)
                    }
                    None => Value::Int32(0),
                }
            }
            Expr::And(a, b) => {
                if !a.eval(row).truthy() {
                    Value::Int32(0)
                } else {
                    Value::Int32(b.eval(row).truthy() as i32)
                }
            }
            Expr::Or(a, b) => {
                if a.eval(row).truthy() {
                    Value::Int32(1)
                } else {
                    Value::Int32(b.eval(row).truthy() as i32)
                }
            }
            Expr::Not(a) => Value::Int32(!a.eval(row).truthy() as i32),
            Expr::IsNull(a) => Value::Int32(a.eval(row).is_null() as i32),
            Expr::Arith { op, left, right } => {
                let l = left.eval(row);
                let r = right.eval(row);
                if l.is_null() || r.is_null() {
                    return Value::Null;
                }
                arith(*op, &l, &r)
            }
        }
    }

    /// Evaluate as a predicate.
    pub fn eval_bool(&self, row: &[Value]) -> bool {
        self.eval(row).truthy()
    }

    /// All referenced input columns (deduplicated, sorted).
    pub fn columns(&self) -> Vec<ColId> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<ColId>) {
        match self {
            Expr::Col(c) => out.push(*c),
            Expr::Lit(_) => {}
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) | Expr::IsNull(a) | Expr::Like { expr: a, .. } => a.collect_columns(out),
        }
    }

    /// Rewrite all column references through `f` (used to shift join sides).
    pub fn map_columns(&self, f: &impl Fn(ColId) -> ColId) -> Expr {
        match self {
            Expr::Col(c) => Expr::Col(f(*c)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(left.map_columns(f)),
                right: Box::new(right.map_columns(f)),
            },
            Expr::Like { expr, pattern } => Expr::Like {
                expr: Box::new(expr.map_columns(f)),
                pattern: pattern.clone(),
            },
            Expr::And(a, b) => Expr::And(Box::new(a.map_columns(f)), Box::new(b.map_columns(f))),
            Expr::Or(a, b) => Expr::Or(Box::new(a.map_columns(f)), Box::new(b.map_columns(f))),
            Expr::Not(a) => Expr::Not(Box::new(a.map_columns(f))),
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.map_columns(f))),
            Expr::Arith { op, left, right } => Expr::Arith {
                op: *op,
                left: Box::new(left.map_columns(f)),
                right: Box::new(right.map_columns(f)),
            },
        }
    }
}

fn arith(op: ArithOp, l: &Value, r: &Value) -> Value {
    // Integer op integer stays integer; anything involving floats is float.
    match (l, r) {
        (Value::Float64(_), _) | (_, Value::Float64(_)) => {
            let (a, b) = (l.as_f64().unwrap(), r.as_f64().unwrap());
            Value::Float64(match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => a / b,
                ArithOp::Mod => a % b,
            })
        }
        _ => {
            let (a, b) = (l.as_i64().unwrap_or(0), r.as_i64().unwrap_or(0));
            match op {
                ArithOp::Add => Value::Int64(a.wrapping_add(b)),
                ArithOp::Sub => Value::Int64(a.wrapping_sub(b)),
                ArithOp::Mul => Value::Int64(a.wrapping_mul(b)),
                ArithOp::Div => {
                    if b == 0 {
                        Value::Null
                    } else {
                        Value::Int64(a / b)
                    }
                }
                ArithOp::Mod => {
                    if b == 0 {
                        Value::Null
                    } else {
                        Value::Int64(a % b)
                    }
                }
            }
        }
    }
}

/// Truthiness of a value used as a predicate result.
trait Truthy {
    fn truthy(&self) -> bool;
}

impl Truthy for Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Int32(v) => *v != 0,
            Value::Int64(v) => *v != 0,
            Value::Float64(v) => *v != 0.0,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![
            Value::Int32(10),
            Value::Str("hello world".into()),
            Value::Float64(2.5),
            Value::Null,
        ]
    }

    #[test]
    fn comparisons() {
        let r = row();
        assert!(Expr::col(0).eq(Expr::lit(10)).eval_bool(&r));
        assert!(Expr::col(0).lt(Expr::lit(11)).eval_bool(&r));
        assert!(Expr::col(0).ge(Expr::lit(10)).eval_bool(&r));
        assert!(!Expr::col(0).ne(Expr::lit(10)).eval_bool(&r));
        assert!(Expr::col(2).gt(Expr::lit(2.0)).eval_bool(&r));
    }

    #[test]
    fn null_comparisons_are_false() {
        let r = row();
        assert!(!Expr::col(3).eq(Expr::lit(0)).eval_bool(&r));
        assert!(!Expr::col(3).ne(Expr::lit(0)).eval_bool(&r));
        assert!(Expr::col(3).is_null().eval_bool(&r));
        assert!(!Expr::col(0).is_null().eval_bool(&r));
    }

    #[test]
    fn boolean_connectives() {
        let r = row();
        let t = Expr::col(0).eq(Expr::lit(10));
        let f = Expr::col(0).eq(Expr::lit(11));
        assert!(t.clone().and(t.clone()).eval_bool(&r));
        assert!(!t.clone().and(f.clone()).eval_bool(&r));
        assert!(t.clone().or(f.clone()).eval_bool(&r));
        assert!(f.clone().or(t.clone()).eval_bool(&r));
        assert!(!f.clone().or(f.clone()).eval_bool(&r));
        assert!(f.not().eval_bool(&r));
    }

    #[test]
    fn like_predicate() {
        let r = row();
        assert!(Expr::col(1).like("hello%").eval_bool(&r));
        assert!(Expr::col(1).like("%world").eval_bool(&r));
        assert!(!Expr::col(1).like("%xyz%").eval_bool(&r));
        // LIKE over non-string is false
        assert!(!Expr::col(0).like("1%").eval_bool(&r));
    }

    #[test]
    fn arithmetic_and_nulls() {
        let r = row();
        // (10 / 3) * 3 = 9 (integer division, the CNET price-bucket idiom)
        let bucket = Expr::col(0).div(Expr::lit(3)).mul(Expr::lit(3));
        assert_eq!(bucket.eval(&r), Value::Int64(9));
        assert_eq!(
            Expr::col(2).add(Expr::lit(0.5)).eval(&r),
            Value::Float64(3.0)
        );
        assert_eq!(Expr::col(3).add(Expr::lit(1)).eval(&r), Value::Null);
        assert_eq!(Expr::col(0).div(Expr::lit(0)).eval(&r), Value::Null);
    }

    #[test]
    fn columns_and_mapping() {
        let e = Expr::col(2)
            .gt(Expr::lit(1))
            .and(Expr::col(0).eq(Expr::col(2)))
            .or(Expr::col(5).like("x%"));
        assert_eq!(e.columns(), vec![0, 2, 5]);
        let shifted = e.map_columns(&|c| c + 10);
        assert_eq!(shifted.columns(), vec![10, 12, 15]);
    }
}
