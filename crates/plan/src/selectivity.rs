//! Selectivity heuristics.
//!
//! The cost model (§IV) needs predicate selectivities (`s` of `s_trav_cr`).
//! Benchmarks pin them with [`crate::builder::QueryBuilder::filter_with_selectivity`];
//! otherwise these System-R-style heuristics apply, informed by per-column
//! distinct counts when the caller supplies them.

use crate::expr::{CmpOp, Expr};
use pdsm_storage::ColId;

/// Per-column statistics available to the estimator. All fields optional —
/// missing information falls back to conventional constants.
#[derive(Debug, Clone, Default)]
pub struct TableStatsView {
    /// Distinct count per column id.
    pub distinct: Vec<Option<usize>>,
    /// Non-NULL fraction per column id.
    pub density: Vec<Option<f64>>,
}

impl TableStatsView {
    fn distinct_of(&self, c: ColId) -> Option<usize> {
        self.distinct.get(c).copied().flatten()
    }

    fn density_of(&self, c: ColId) -> Option<f64> {
        self.density.get(c).copied().flatten()
    }
}

const DEFAULT_EQ: f64 = 0.01;
const DEFAULT_RANGE: f64 = 1.0 / 3.0;
const DEFAULT_LIKE: f64 = 0.05;
const DEFAULT_NULL_FRAC: f64 = 0.05;
const DEFAULT_OTHER: f64 = 1.0 / 3.0;

/// Estimate the fraction of rows satisfying `pred`.
pub fn estimate_selectivity(pred: &Expr, stats: Option<&TableStatsView>) -> f64 {
    let s = match pred {
        Expr::Cmp { op, left, right } => {
            let col = single_column(left).or_else(|| single_column(right));
            match op {
                CmpOp::Eq => col
                    .and_then(|c| stats.and_then(|s| s.distinct_of(c)))
                    .map(|d| 1.0 / d.max(1) as f64)
                    .unwrap_or(DEFAULT_EQ),
                CmpOp::Ne => {
                    1.0 - estimate_selectivity(
                        &Expr::Cmp {
                            op: CmpOp::Eq,
                            left: left.clone(),
                            right: right.clone(),
                        },
                        stats,
                    )
                }
                _ => DEFAULT_RANGE,
            }
        }
        Expr::Like { .. } => DEFAULT_LIKE,
        Expr::And(a, b) => estimate_selectivity(a, stats) * estimate_selectivity(b, stats),
        Expr::Or(a, b) => {
            let (sa, sb) = (
                estimate_selectivity(a, stats),
                estimate_selectivity(b, stats),
            );
            sa + sb - sa * sb
        }
        Expr::Not(a) => 1.0 - estimate_selectivity(a, stats),
        Expr::IsNull(a) => single_column(a)
            .and_then(|c| stats.and_then(|s| s.density_of(c)))
            .map(|d| 1.0 - d)
            .unwrap_or(DEFAULT_NULL_FRAC),
        Expr::Lit(v) => {
            if v.as_i64().unwrap_or(0) != 0 {
                1.0
            } else {
                0.0
            }
        }
        _ => DEFAULT_OTHER,
    };
    s.clamp(0.0, 1.0)
}

/// If `e` references exactly one column, return it.
fn single_column(e: &Expr) -> Option<ColId> {
    let cols = e.columns();
    if cols.len() == 1 {
        Some(cols[0])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_uses_distinct_counts() {
        let stats = TableStatsView {
            distinct: vec![Some(200)],
            density: vec![Some(1.0)],
        };
        let s = estimate_selectivity(&Expr::col(0).eq(Expr::lit(5)), Some(&stats));
        assert!((s - 0.005).abs() < 1e-12);
        let s = estimate_selectivity(&Expr::col(0).eq(Expr::lit(5)), None);
        assert_eq!(s, DEFAULT_EQ);
    }

    #[test]
    fn connectives_combine() {
        let a = Expr::col(0).eq(Expr::lit(1));
        let b = Expr::col(1).eq(Expr::lit(2));
        let and = estimate_selectivity(&a.clone().and(b.clone()), None);
        let or = estimate_selectivity(&a.clone().or(b.clone()), None);
        assert!((and - 0.0001).abs() < 1e-12);
        assert!((or - (0.02 - 0.0001)).abs() < 1e-12);
        let not = estimate_selectivity(&a.not(), None);
        assert!((not - 0.99).abs() < 1e-12);
    }

    #[test]
    fn results_always_in_unit_interval() {
        let weird = Expr::col(0)
            .eq(Expr::lit(1))
            .or(Expr::col(1).ne(Expr::lit(2)))
            .or(Expr::col(2).le(Expr::lit(3)))
            .and(Expr::col(3).like("%x%").not());
        let s = estimate_selectivity(&weird, None);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn is_null_uses_density() {
        let stats = TableStatsView {
            distinct: vec![None],
            density: vec![Some(0.8)],
        };
        let s = estimate_selectivity(&Expr::col(0).is_null(), Some(&stats));
        assert!((s - 0.2).abs() < 1e-12);
    }
}
