//! **fig_update_mix** — the delta-store trade-off the versioned write path
//! (`pdsm-txn`) introduces, *before and after* decoupling maintenance from
//! the write path: read/write mixes (100/0, 95/5, 50/50) swept across
//! merge thresholds, in both merge modes:
//!
//! * `sync` — the pre-scheduler behavior: the writer's thread pays the
//!   whole O(table) fold whenever the delta crosses the threshold. Small
//!   thresholds ⇒ the 50/50 mix falls off a cliff (the p99 write latency
//!   *is* a full merge).
//! * `background` — the three-phase pipeline: the writer runs
//!   `begin_merge` (O(delta) cut) and later `finish_merge` (O(ops since
//!   cut) replay + swap); the fold itself runs on a worker thread. The
//!   writer never blocks on a full merge, so p99 write latency stays
//!   bounded at every threshold.
//!
//! Background mode applies the same **backpressure** rule the
//! `Database` write path uses (`PDSM_MERGE_MAX_LAG`-style): when the
//! delta outruns the in-flight build by `8 ×` the threshold, the writer
//! merges inline and the stale build is discarded — so `maxΔ` is bounded
//! at `8 × threshold` instead of growing with however far a 1-core
//! builder lags.
//!
//! A second scenario exercises the shared-handle API itself: N writer
//! threads ingesting into N **disjoint** tables through one
//! `Arc<Database>`, background scheduler merging under them — recording
//! cross-table write throughput per writer count (flat per-writer rows/s
//! on multi-core hosts = cross-table scaling).
//!
//! Besides the tables, the run emits a machine-readable
//! `BENCH_update_mix.json` (throughput + p99 write latency per
//! mix × threshold × mode, plus the multi-table scaling runs) so the
//! perf trajectory is recorded run over run.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig_update_mix
//!         [--rows 200000] [--ops 4000] [--sel 0.05] [--engine compiled]
//!         [--json BENCH_update_mix.json]`

use pdsm_bench::{fmt_num, percentile, print_table, Args, Json};
use pdsm_core::{Database, EngineKind, MaintenanceConfig, MaintenanceMode};
use pdsm_storage::{Layout, Value};
use pdsm_txn::{BuiltMain, MergeTicket, VersionedTable};
use pdsm_workloads::microbench;
use pdsm_workloads::mixed::{self, MixedOp, MIXES};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// Backpressure factor the background mode applies (mirrors the
/// `Database` write path's `PDSM_MERGE_MAX_LAG` default).
const MAX_LAG: usize = 8;

fn engine_of(name: &str) -> EngineKind {
    match name {
        "volcano" => EngineKind::Volcano,
        "bulk" => EngineKind::Bulk,
        "parallel" => EngineKind::Parallel,
        _ => EngineKind::Compiled,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Sync,
    Background,
}

impl Mode {
    fn name(&self) -> &'static str {
        match self {
            Mode::Sync => "sync",
            Mode::Background => "background",
        }
    }
}

struct MixResult {
    mix: &'static str,
    threshold: usize,
    mode: Mode,
    reads: u64,
    writes: u64,
    merges: u64,
    read_qps: f64,
    write_ops: f64,
    /// 99th-percentile single-write-op latency, microseconds. In sync
    /// mode this includes inline merges; in background mode it includes
    /// begin (cut) and finish (replay + swap) but never the fold.
    p99_write_us: f64,
    max_delta: usize,
}

/// The off-thread fold worker a background-mode run uses.
struct Builder {
    tx: Sender<(MergeTicket, Layout)>,
    rx: Receiver<pdsm_storage::Result<BuiltMain>>,
    _handle: std::thread::JoinHandle<()>,
}

impl Builder {
    fn spawn() -> Builder {
        let (tx, job_rx) = channel::<(MergeTicket, Layout)>();
        let (done_tx, rx) = channel();
        let handle = std::thread::spawn(move || {
            while let Ok((ticket, layout)) = job_rx.recv() {
                if done_tx.send(ticket.build(layout)).is_err() {
                    break;
                }
            }
        });
        Builder {
            tx,
            rx,
            _handle: handle,
        }
    }
}

fn run_mix(
    rows: usize,
    ops: usize,
    sel: f64,
    mix: (&'static str, f64),
    threshold: usize,
    kind: EngineKind,
    mode: Mode,
) -> MixResult {
    let base = microbench::generate(rows, sel, microbench::pdsm_layout(), 42);
    let mut t = VersionedTable::from_table(base);
    let mut live = mixed::live_ids(&t);
    let w = mixed::microbench_mix(ops, mix.1, sel, 7);
    let engine = kind.engine();
    let builder = match mode {
        Mode::Background => Some(Builder::spawn()),
        Mode::Sync => None,
    };
    let mut in_flight = false;

    let mut read_time = 0f64;
    let mut write_time = 0f64;
    let mut write_lats: Vec<f64> = Vec::new();
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut max_delta = 0usize;
    for op in &w.ops {
        match op {
            MixedOp::Read { plan } => {
                let t0 = Instant::now();
                let out = engine.execute(&w.plans[*plan].1, &t).expect("read");
                read_time += t0.elapsed().as_secs_f64();
                std::hint::black_box(out);
                reads += 1;
            }
            _ => {
                let gen_before = t.generation();
                let t0 = Instant::now();
                mixed::apply_write(&mut t, &mut live, op).expect("write");
                match (&builder, mode) {
                    (_, Mode::Sync) => {
                        if t.delta_rows() >= threshold {
                            t.merge().expect("merge");
                        }
                    }
                    (Some(b), Mode::Background) => {
                        // catch up a finished fold: replay + swap only
                        // (tolerating staleness — a backpressure merge may
                        // have preempted the build)
                        if in_flight {
                            if let Ok(built) = b.rx.try_recv() {
                                match t.finish_merge(built.expect("build")) {
                                    Ok(_) | Err(pdsm_storage::Error::StaleMergeBuild) => {}
                                    Err(e) => panic!("finish: {e}"),
                                }
                                in_flight = false;
                            }
                        }
                        // backpressure: the delta outran the builder by
                        // MAX_LAG thresholds — merge inline, stale the build
                        if in_flight && t.delta_rows() >= threshold.saturating_mul(MAX_LAG) {
                            t.merge().expect("backpressure merge");
                        }
                        if !in_flight && t.delta_rows() >= threshold {
                            let ticket = t.begin_merge().expect("begin");
                            let layout = ticket.snapshot().main().layout().clone();
                            b.tx.send((ticket, layout)).expect("send job");
                            in_flight = true;
                        }
                    }
                    (None, Mode::Background) => unreachable!(),
                }
                let dt = t0.elapsed().as_secs_f64();
                write_time += dt;
                write_lats.push(dt);
                writes += 1;
                // bookkeeping outside the timed section: a completed merge
                // renumbers ids, so the driver's live set must refresh
                if t.generation() != gen_before {
                    live = mixed::live_ids(&t);
                }
            }
        }
        max_delta = max_delta.max(t.delta_rows());
    }
    // quiesce: land any straggling fold before reading the counters
    // (stale if a backpressure merge preempted it)
    if in_flight {
        if let Some(b) = &builder {
            let built = b.rx.recv().expect("final build").expect("build");
            match t.finish_merge(built) {
                Ok(_) | Err(pdsm_storage::Error::StaleMergeBuild) => {}
                Err(e) => panic!("final finish: {e}"),
            }
        }
    }
    MixResult {
        mix: mix.0,
        threshold,
        mode,
        reads,
        writes,
        merges: t.write_stats().merges,
        read_qps: if read_time > 0.0 {
            reads as f64 / read_time
        } else {
            0.0
        },
        write_ops: if write_time > 0.0 {
            writes as f64 / write_time
        } else {
            0.0
        },
        p99_write_us: percentile(&write_lats, 0.99) * 1e6,
        max_delta,
    }
}

/// One multi-table scaling run: `writers` threads, each ingesting
/// `rows_each` rows into its own table through one shared
/// `Arc<Database>`, background scheduler merging under them.
struct MtResult {
    writers: usize,
    rows_each: usize,
    elapsed_s: f64,
    write_ops: f64,
    merges_applied: u64,
}

fn run_multi_table(writers: usize, rows_each: usize, threshold: usize) -> MtResult {
    let db = Arc::new(Database::with_maintenance(MaintenanceConfig {
        mode: MaintenanceMode::Background,
        merge_threshold: threshold as u64,
        advise_on_merge: false,
        ..Default::default()
    }));
    for w in 0..writers {
        db.create_table(
            &format!("t{w}"),
            pdsm_storage::Schema::new(vec![
                pdsm_storage::ColumnDef::new("k", pdsm_storage::DataType::Int32),
                pdsm_storage::ColumnDef::new("v", pdsm_storage::DataType::Int64),
            ]),
        )
        .expect("create");
    }
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..writers {
            let db = Arc::clone(&db);
            s.spawn(move || {
                let table = format!("t{w}");
                for i in 0..rows_each {
                    db.insert(
                        &table,
                        &[
                            Value::Int32(i as i32),
                            Value::Int64((w * rows_each + i) as i64),
                        ],
                    )
                    .expect("insert");
                }
            });
        }
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    db.flush_maintenance().expect("flush");
    let stats = db.maintenance_stats();
    MtResult {
        writers,
        rows_each,
        elapsed_s,
        write_ops: (writers * rows_each) as f64 / elapsed_s,
        merges_applied: stats.builds_applied + stats.sync_merges,
    }
}

fn main() {
    let args = Args::parse();
    let rows: usize = args.get("rows", 200_000);
    let ops: usize = args.get("ops", 4_000);
    let sel: f64 = args.get("sel", 0.05);
    let kind = engine_of(&args.get::<String>("engine", "compiled".into()));
    let json_path: String = args.get("json", "BENCH_update_mix.json".into());

    println!(
        "fig_update_mix — {rows} base rows, {ops} ops, sel {sel}, engine {:?}\n",
        kind
    );
    println!("read/write mixes x merge thresholds x merge mode (sync = fold on the writer's");
    println!("thread; background = three-phase pipeline, fold on a worker):\n");

    let thresholds = [64usize, 1_024, 16_384, usize::MAX];
    let mut results = Vec::new();
    let mut out_rows = Vec::new();
    for mix in MIXES {
        for &threshold in &thresholds {
            // pure-read mix never merges; one threshold/mode row suffices
            if mix.1 >= 1.0 && threshold != thresholds[0] {
                continue;
            }
            for mode in [Mode::Sync, Mode::Background] {
                if mix.1 >= 1.0 && mode == Mode::Background {
                    continue;
                }
                let r = run_mix(rows, ops, sel, mix, threshold, kind, mode);
                out_rows.push(vec![
                    r.mix.to_string(),
                    if mix.1 >= 1.0 {
                        "-".into()
                    } else if r.threshold == usize::MAX {
                        "never".into()
                    } else {
                        r.threshold.to_string()
                    },
                    if mix.1 >= 1.0 {
                        "-".into()
                    } else {
                        r.mode.name().into()
                    },
                    r.reads.to_string(),
                    r.writes.to_string(),
                    r.merges.to_string(),
                    r.max_delta.to_string(),
                    fmt_num(r.read_qps),
                    if r.writes == 0 {
                        "-".into()
                    } else {
                        fmt_num(r.write_ops)
                    },
                    if r.writes == 0 {
                        "-".into()
                    } else {
                        format!("{:.0}", r.p99_write_us)
                    },
                ]);
                results.push(r);
            }
        }
    }
    print_table(
        &[
            "mix",
            "merge@",
            "mode",
            "reads",
            "writes",
            "merges",
            "maxΔ",
            "read/s",
            "write/s",
            "p99wr(µs)",
        ],
        &out_rows,
    );
    println!(
        "\n(read/s excludes write+merge time and vice versa; maxΔ = largest delta a scan saw;"
    );
    println!("p99wr = 99th-pct write-op latency — sync mode pays whole folds inline, background");
    println!("mode pays only cut + replay + swap)");

    // --- multi-table cross-table write scaling (shared Database handle) ---
    let rows_each = (rows / 4).max(10_000);
    println!("\nmulti-table ingest: N writers x N disjoint tables through one Arc<Database>");
    println!("(background merges @16384; flat per-writer rows/s = cross-table scaling):\n");
    let mut mt_results = Vec::new();
    let mut mt_rows = Vec::new();
    for writers in [1usize, 2, 4] {
        let r = run_multi_table(writers, rows_each, 16_384);
        mt_rows.push(vec![
            r.writers.to_string(),
            r.rows_each.to_string(),
            format!("{:.0}", r.elapsed_s * 1e3),
            fmt_num(r.write_ops),
            fmt_num(r.write_ops / r.writers as f64),
            r.merges_applied.to_string(),
        ]);
        mt_results.push(r);
    }
    print_table(
        &[
            "writers",
            "rows/writer",
            "ms",
            "write/s",
            "write/s/writer",
            "merges",
        ],
        &mt_rows,
    );

    let json = Json::obj(vec![
        ("bench", Json::Str("fig_update_mix".into())),
        ("rows", Json::Int(rows as i64)),
        ("ops", Json::Int(ops as i64)),
        ("sel", Json::Num(sel)),
        ("engine", Json::Str(format!("{kind:?}"))),
        (
            "results",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("mix", Json::Str(r.mix.into())),
                            (
                                "threshold",
                                if r.threshold == usize::MAX {
                                    Json::Str("never".into())
                                } else {
                                    Json::Int(r.threshold as i64)
                                },
                            ),
                            ("mode", Json::Str(r.mode.name().into())),
                            ("reads", Json::Int(r.reads as i64)),
                            ("writes", Json::Int(r.writes as i64)),
                            ("merges", Json::Int(r.merges as i64)),
                            ("read_per_s", Json::Num(r.read_qps)),
                            ("write_per_s", Json::Num(r.write_ops)),
                            ("p99_write_us", Json::Num(r.p99_write_us)),
                            ("max_delta", Json::Int(r.max_delta as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "multi_table",
            Json::Arr(
                mt_results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("writers", Json::Int(r.writers as i64)),
                            ("rows_per_writer", Json::Int(r.rows_each as i64)),
                            ("elapsed_s", Json::Num(r.elapsed_s)),
                            ("write_per_s", Json::Num(r.write_ops)),
                            (
                                "write_per_s_per_writer",
                                Json::Num(r.write_ops / r.writers as f64),
                            ),
                            ("merges_applied", Json::Int(r.merges_applied as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    match std::fs::write(&json_path, json.render() + "\n") {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }
}
