//! **fig_update_mix** — the delta-store trade-off the versioned write path
//! (`pdsm-txn`) introduces: read/write mixes (100/0, 95/5, 50/50) swept
//! across merge thresholds, reporting read and write throughput.
//!
//! A bigger merge threshold amortizes merge cost over more writes but
//! makes every scan carry a bigger interpreted delta tail; a threshold of
//! one keeps scans pure but pays a full main-store rebuild per write batch.
//! The sweep exposes the crossover, per mix, against the pure-scan
//! (100/0, empty delta) baseline.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig_update_mix
//!         [--rows 200000] [--ops 4000] [--sel 0.05] [--engine compiled]`

use pdsm_bench::{fmt_num, print_table, Args};
use pdsm_core::EngineKind;
use pdsm_txn::VersionedTable;
use pdsm_workloads::microbench;
use pdsm_workloads::mixed::{self, MixedOp, MIXES};
use std::time::Instant;

fn engine_of(name: &str) -> EngineKind {
    match name {
        "volcano" => EngineKind::Volcano,
        "bulk" => EngineKind::Bulk,
        "parallel" => EngineKind::Parallel,
        _ => EngineKind::Compiled,
    }
}

struct MixResult {
    mix: &'static str,
    threshold: usize,
    reads: u64,
    writes: u64,
    merges: u64,
    read_qps: f64,
    write_ops: f64,
    max_delta: usize,
}

fn run_mix(
    rows: usize,
    ops: usize,
    sel: f64,
    mix: (&'static str, f64),
    threshold: usize,
    kind: EngineKind,
) -> MixResult {
    let base = microbench::generate(rows, sel, microbench::pdsm_layout(), 42);
    let mut t = VersionedTable::from_table(base);
    let mut live = mixed::live_ids(&t);
    let w = mixed::microbench_mix(ops, mix.1, sel, 7);
    let engine = kind.engine();

    let mut read_time = 0f64;
    let mut write_time = 0f64;
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut max_delta = 0usize;
    for op in &w.ops {
        match op {
            MixedOp::Read { plan } => {
                let t0 = Instant::now();
                let out = engine.execute(&w.plans[*plan].1, &t).expect("read");
                read_time += t0.elapsed().as_secs_f64();
                std::hint::black_box(out);
                reads += 1;
            }
            _ => {
                let t0 = Instant::now();
                mixed::apply_write(&mut t, &mut live, op).expect("write");
                if t.delta_rows() >= threshold {
                    t.merge().expect("merge");
                    live = mixed::live_ids(&t);
                }
                write_time += t0.elapsed().as_secs_f64();
                writes += 1;
            }
        }
        max_delta = max_delta.max(t.delta_rows());
    }
    MixResult {
        mix: mix.0,
        threshold,
        reads,
        writes,
        merges: t.write_stats().merges,
        read_qps: if read_time > 0.0 {
            reads as f64 / read_time
        } else {
            0.0
        },
        write_ops: if write_time > 0.0 {
            writes as f64 / write_time
        } else {
            0.0
        },
        max_delta,
    }
}

fn main() {
    let args = Args::parse();
    let rows: usize = args.get("rows", 200_000);
    let ops: usize = args.get("ops", 4_000);
    let sel: f64 = args.get("sel", 0.05);
    let kind = engine_of(&args.get::<String>("engine", "compiled".into()));

    println!(
        "fig_update_mix — {rows} base rows, {ops} ops, sel {sel}, engine {:?}\n",
        kind
    );
    println!(
        "read/write mixes x merge thresholds (threshold = delta rows that trigger a merge):\n"
    );

    let thresholds = [64usize, 1_024, 16_384, usize::MAX];
    let mut out_rows = Vec::new();
    for mix in MIXES {
        for &threshold in &thresholds {
            // pure-read mix never merges; one threshold row suffices
            if mix.1 >= 1.0 && threshold != thresholds[0] {
                continue;
            }
            let r = run_mix(rows, ops, sel, mix, threshold, kind);
            out_rows.push(vec![
                r.mix.to_string(),
                if mix.1 >= 1.0 {
                    "-".into()
                } else if r.threshold == usize::MAX {
                    "never".into()
                } else {
                    r.threshold.to_string()
                },
                r.reads.to_string(),
                r.writes.to_string(),
                r.merges.to_string(),
                r.max_delta.to_string(),
                fmt_num(r.read_qps),
                if r.writes == 0 {
                    "-".into()
                } else {
                    fmt_num(r.write_ops)
                },
            ]);
        }
    }
    print_table(
        &[
            "mix", "merge@", "reads", "writes", "merges", "maxΔ", "read/s", "write/s",
        ],
        &out_rows,
    );
    println!(
        "\n(read/s excludes write+merge time and vice versa; maxΔ = largest delta a scan saw)"
    );
}
