//! **fig_update_mix** — the delta-store trade-off the versioned write path
//! (`pdsm-txn`) introduces, *before and after* decoupling maintenance from
//! the write path: read/write mixes (100/0, 95/5, 50/50) swept across
//! merge thresholds, in both merge modes:
//!
//! * `sync` — the pre-scheduler behavior: the writer's thread pays the
//!   whole O(table) fold whenever the delta crosses the threshold. Small
//!   thresholds ⇒ the 50/50 mix falls off a cliff (the p99 write latency
//!   *is* a full merge).
//! * `background` — the three-phase pipeline: the writer runs
//!   `begin_merge` (O(delta) cut) and later `finish_merge` (O(ops since
//!   cut) replay + swap); the fold itself runs on a worker thread. The
//!   writer never blocks on a full merge, so p99 write latency stays
//!   bounded at every threshold.
//!
//! Besides the table, the run emits a machine-readable
//! `BENCH_update_mix.json` (throughput + p99 write latency per
//! mix × threshold × mode) so the perf trajectory is recorded run over
//! run.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig_update_mix
//!         [--rows 200000] [--ops 4000] [--sel 0.05] [--engine compiled]
//!         [--json BENCH_update_mix.json]`

use pdsm_bench::{fmt_num, percentile, print_table, Args, Json};
use pdsm_core::EngineKind;
use pdsm_storage::Layout;
use pdsm_txn::{BuiltMain, MergeTicket, VersionedTable};
use pdsm_workloads::microbench;
use pdsm_workloads::mixed::{self, MixedOp, MIXES};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Instant;

fn engine_of(name: &str) -> EngineKind {
    match name {
        "volcano" => EngineKind::Volcano,
        "bulk" => EngineKind::Bulk,
        "parallel" => EngineKind::Parallel,
        _ => EngineKind::Compiled,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Sync,
    Background,
}

impl Mode {
    fn name(&self) -> &'static str {
        match self {
            Mode::Sync => "sync",
            Mode::Background => "background",
        }
    }
}

struct MixResult {
    mix: &'static str,
    threshold: usize,
    mode: Mode,
    reads: u64,
    writes: u64,
    merges: u64,
    read_qps: f64,
    write_ops: f64,
    /// 99th-percentile single-write-op latency, microseconds. In sync
    /// mode this includes inline merges; in background mode it includes
    /// begin (cut) and finish (replay + swap) but never the fold.
    p99_write_us: f64,
    max_delta: usize,
}

/// The off-thread fold worker a background-mode run uses.
struct Builder {
    tx: Sender<(MergeTicket, Layout)>,
    rx: Receiver<pdsm_storage::Result<BuiltMain>>,
    _handle: std::thread::JoinHandle<()>,
}

impl Builder {
    fn spawn() -> Builder {
        let (tx, job_rx) = channel::<(MergeTicket, Layout)>();
        let (done_tx, rx) = channel();
        let handle = std::thread::spawn(move || {
            while let Ok((ticket, layout)) = job_rx.recv() {
                if done_tx.send(ticket.build(layout)).is_err() {
                    break;
                }
            }
        });
        Builder {
            tx,
            rx,
            _handle: handle,
        }
    }
}

fn run_mix(
    rows: usize,
    ops: usize,
    sel: f64,
    mix: (&'static str, f64),
    threshold: usize,
    kind: EngineKind,
    mode: Mode,
) -> MixResult {
    let base = microbench::generate(rows, sel, microbench::pdsm_layout(), 42);
    let mut t = VersionedTable::from_table(base);
    let mut live = mixed::live_ids(&t);
    let w = mixed::microbench_mix(ops, mix.1, sel, 7);
    let engine = kind.engine();
    let builder = match mode {
        Mode::Background => Some(Builder::spawn()),
        Mode::Sync => None,
    };
    let mut in_flight = false;

    let mut read_time = 0f64;
    let mut write_time = 0f64;
    let mut write_lats: Vec<f64> = Vec::new();
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut max_delta = 0usize;
    for op in &w.ops {
        match op {
            MixedOp::Read { plan } => {
                let t0 = Instant::now();
                let out = engine.execute(&w.plans[*plan].1, &t).expect("read");
                read_time += t0.elapsed().as_secs_f64();
                std::hint::black_box(out);
                reads += 1;
            }
            _ => {
                let gen_before = t.generation();
                let t0 = Instant::now();
                mixed::apply_write(&mut t, &mut live, op).expect("write");
                match (&builder, mode) {
                    (_, Mode::Sync) => {
                        if t.delta_rows() >= threshold {
                            t.merge().expect("merge");
                        }
                    }
                    (Some(b), Mode::Background) => {
                        // catch up a finished fold: replay + swap only
                        if in_flight {
                            if let Ok(built) = b.rx.try_recv() {
                                t.finish_merge(built.expect("build")).expect("finish");
                                in_flight = false;
                            }
                        }
                        if !in_flight && t.delta_rows() >= threshold {
                            let ticket = t.begin_merge().expect("begin");
                            let layout = ticket.snapshot().main().layout().clone();
                            b.tx.send((ticket, layout)).expect("send job");
                            in_flight = true;
                        }
                    }
                    (None, Mode::Background) => unreachable!(),
                }
                let dt = t0.elapsed().as_secs_f64();
                write_time += dt;
                write_lats.push(dt);
                writes += 1;
                // bookkeeping outside the timed section: a completed merge
                // renumbers ids, so the driver's live set must refresh
                if t.generation() != gen_before {
                    live = mixed::live_ids(&t);
                }
            }
        }
        max_delta = max_delta.max(t.delta_rows());
    }
    // quiesce: land any straggling fold before reading the counters
    if in_flight {
        if let Some(b) = &builder {
            let built = b.rx.recv().expect("final build").expect("build");
            t.finish_merge(built).expect("final finish");
        }
    }
    MixResult {
        mix: mix.0,
        threshold,
        mode,
        reads,
        writes,
        merges: t.write_stats().merges,
        read_qps: if read_time > 0.0 {
            reads as f64 / read_time
        } else {
            0.0
        },
        write_ops: if write_time > 0.0 {
            writes as f64 / write_time
        } else {
            0.0
        },
        p99_write_us: percentile(&write_lats, 0.99) * 1e6,
        max_delta,
    }
}

fn main() {
    let args = Args::parse();
    let rows: usize = args.get("rows", 200_000);
    let ops: usize = args.get("ops", 4_000);
    let sel: f64 = args.get("sel", 0.05);
    let kind = engine_of(&args.get::<String>("engine", "compiled".into()));
    let json_path: String = args.get("json", "BENCH_update_mix.json".into());

    println!(
        "fig_update_mix — {rows} base rows, {ops} ops, sel {sel}, engine {:?}\n",
        kind
    );
    println!("read/write mixes x merge thresholds x merge mode (sync = fold on the writer's");
    println!("thread; background = three-phase pipeline, fold on a worker):\n");

    let thresholds = [64usize, 1_024, 16_384, usize::MAX];
    let mut results = Vec::new();
    let mut out_rows = Vec::new();
    for mix in MIXES {
        for &threshold in &thresholds {
            // pure-read mix never merges; one threshold/mode row suffices
            if mix.1 >= 1.0 && threshold != thresholds[0] {
                continue;
            }
            for mode in [Mode::Sync, Mode::Background] {
                if mix.1 >= 1.0 && mode == Mode::Background {
                    continue;
                }
                let r = run_mix(rows, ops, sel, mix, threshold, kind, mode);
                out_rows.push(vec![
                    r.mix.to_string(),
                    if mix.1 >= 1.0 {
                        "-".into()
                    } else if r.threshold == usize::MAX {
                        "never".into()
                    } else {
                        r.threshold.to_string()
                    },
                    if mix.1 >= 1.0 {
                        "-".into()
                    } else {
                        r.mode.name().into()
                    },
                    r.reads.to_string(),
                    r.writes.to_string(),
                    r.merges.to_string(),
                    r.max_delta.to_string(),
                    fmt_num(r.read_qps),
                    if r.writes == 0 {
                        "-".into()
                    } else {
                        fmt_num(r.write_ops)
                    },
                    if r.writes == 0 {
                        "-".into()
                    } else {
                        format!("{:.0}", r.p99_write_us)
                    },
                ]);
                results.push(r);
            }
        }
    }
    print_table(
        &[
            "mix",
            "merge@",
            "mode",
            "reads",
            "writes",
            "merges",
            "maxΔ",
            "read/s",
            "write/s",
            "p99wr(µs)",
        ],
        &out_rows,
    );
    println!(
        "\n(read/s excludes write+merge time and vice versa; maxΔ = largest delta a scan saw;"
    );
    println!("p99wr = 99th-pct write-op latency — sync mode pays whole folds inline, background");
    println!("mode pays only cut + replay + swap)");

    let json = Json::obj(vec![
        ("bench", Json::Str("fig_update_mix".into())),
        ("rows", Json::Int(rows as i64)),
        ("ops", Json::Int(ops as i64)),
        ("sel", Json::Num(sel)),
        ("engine", Json::Str(format!("{kind:?}"))),
        (
            "results",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("mix", Json::Str(r.mix.into())),
                            (
                                "threshold",
                                if r.threshold == usize::MAX {
                                    Json::Str("never".into())
                                } else {
                                    Json::Int(r.threshold as i64)
                                },
                            ),
                            ("mode", Json::Str(r.mode.name().into())),
                            ("reads", Json::Int(r.reads as i64)),
                            ("writes", Json::Int(r.writes as i64)),
                            ("merges", Json::Int(r.merges as i64)),
                            ("read_per_s", Json::Num(r.read_qps)),
                            ("write_per_s", Json::Num(r.write_ops)),
                            ("p99_write_us", Json::Num(r.p99_write_us)),
                            ("max_delta", Json::Int(r.max_delta as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    match std::fs::write(&json_path, json.render() + "\n") {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }
}
