//! **Fig. 11** — CH-benchmark query evaluation times (queries 1–6, 8, 10)
//! under row / column / hybrid storage with the compiled processor.
//!
//! Paper shape: decomposition helps *modestly* here (~30 % even for full
//! DSM) — the compiled row-store loops are already tight, so bandwidth
//! savings are the only lever, unlike the bulk-vs-volcano orders-of-
//! magnitude gaps elsewhere.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig11_ch
//!         [--warehouses 4] [--reps 3]`

use pdsm_bench::{measure, print_table, Args};
use pdsm_core::{Database, EngineKind, LayoutAdvisor};
use pdsm_layout::workload::{Workload, WorkloadQuery};
use pdsm_storage::Layout;
use pdsm_workloads::ch;

fn build_db(w: usize, layouts: Option<&[(String, Layout)]>) -> Database {
    let db = Database::new();
    for t in ch::tables(w, 13) {
        db.register(t);
    }
    if let Some(layouts) = layouts {
        for (name, layout) in layouts {
            db.relayout(name, layout.clone()).expect("relayout");
        }
    }
    db
}

fn main() {
    let args = Args::parse();
    let warehouses: usize = args.get("warehouses", 4);
    let reps: usize = args.get("reps", 3);
    let queries = ch::queries();

    println!("Fig. 11 — CH-benchmark, {warehouses} warehouses\n");

    let row_db = build_db(warehouses, None);
    let mut workload = Workload::new();
    for q in &queries {
        workload.push(WorkloadQuery::new(
            q.name.clone(),
            q.as_plan().unwrap().clone(),
        ));
    }
    let report = LayoutAdvisor::default().advise(&row_db, &workload);
    println!("advisor layouts:");
    for a in &report.tables {
        println!("  {:10} -> {}", a.table, a.layout);
    }
    println!();
    let hybrid: Vec<(String, Layout)> = report
        .tables
        .iter()
        .map(|a| (a.table.clone(), a.layout.clone()))
        .collect();
    let col_layouts: Vec<(String, Layout)> = row_db
        .table_names()
        .iter()
        .map(|n| {
            let w = row_db.get_table(n).unwrap().schema().len();
            (n.to_string(), Layout::column(w))
        })
        .collect();

    let dbs: Vec<(&str, Database)> = vec![
        ("row", row_db),
        ("column", build_db(warehouses, Some(&col_layouts))),
        ("hybrid", build_db(warehouses, Some(&hybrid))),
    ];

    let mut rows = Vec::new();
    for q in &queries {
        let plan = q.as_plan().unwrap();
        let mut cells = vec![q.name.clone()];
        for (_lname, db) in &dbs {
            let (_, ns) = measure(reps, || db.run(plan, EngineKind::Compiled).expect("query"));
            cells.push(format!("{:.3}", ns as f64 / 1e6));
        }
        rows.push(cells);
    }
    print_table(&["query", "row (ms)", "column (ms)", "hybrid (ms)"], &rows);
    println!("\nExpected shape (paper): differences between layouts stay within ~tens of");
    println!("percent; hybrid tracks the better of row/column per query.");
}
