//! **fig_sql_overhead** — what the SQL frontend costs on top of the plan
//! path. For every query the text path is render → parse → bind → the
//! *same* `Database::execute` the programmatic path calls, so the only
//! added work is the frontend. Three numbers per query:
//!
//! * `frontend` — parse + bind alone (`compile(text)`), in isolation;
//! * `plan e2e` — programmatic `execute(&plan)`;
//! * `sql e2e`  — `compile(text)` then `execute(&bound)`.
//!
//! The headline claim (README): on scan-heavy work the text path adds
//! under 5% — parsing a hundred bytes of SQL is noise next to scanning
//! hundreds of thousands of rows. On point lookups the relative overhead
//! is honest-to-goodness visible (the query itself is microseconds);
//! the absolute frontend cost stays flat either way.
//!
//! Emits `BENCH_sql_overhead.json` with all three numbers per query so
//! the trajectory is recorded run over run.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig_sql_overhead
//!         [--rows 500000] [--scale 400] [--reps 30]
//!         [--json BENCH_sql_overhead.json]`

use pdsm_bench::{fmt_num, measure, print_table, Args, Json};
use pdsm_core::Database;
use pdsm_plan::LogicalPlan;
use pdsm_sql::{compile, plan_to_sql, Statement};
use pdsm_storage::Layout;
use pdsm_workloads::{microbench, sapsd};

struct Row {
    name: String,
    sql_bytes: usize,
    frontend_ns: u64,
    plan_ns: u64,
    sql_ns: u64,
    scan_heavy: bool,
}

impl Row {
    fn overhead_pct(&self) -> f64 {
        if self.plan_ns == 0 {
            return 0.0;
        }
        (self.sql_ns as f64 - self.plan_ns as f64) / self.plan_ns as f64 * 100.0
    }
}

/// Execution work below this dwarfs nothing: relative overhead on a
/// microsecond point lookup is an honest but uninteresting number. The
/// <5% target applies above the threshold.
const SCAN_HEAVY_NS: u64 = 50_000;

fn bench_query(db: &Database, name: &str, plan: &LogicalPlan, reps: usize) -> Row {
    let sql = plan_to_sql(plan, db).unwrap_or_else(|e| panic!("{name} must render: {e}"));
    let bound = match compile(&sql, db) {
        Ok(Statement::Query(p)) => p,
        other => panic!("{name}: {sql:?} did not compile to a query: {other:?}"),
    };
    // Sanity: both paths agree (differential suites prove this at length;
    // a bench that measures two different answers is worthless).
    db.execute(plan)
        .unwrap()
        .assert_same(&db.execute(&bound).unwrap(), name);

    let (_, frontend_ns) = measure(reps, || compile(&sql, db).unwrap());
    // Baseline executes the *same* hint-free plan the text path produces,
    // so the delta isolates the frontend (SQL cannot carry `sel_hint`;
    // what a hint is worth is a planner question, not a parser one).
    let (_, plan_ns) = measure(reps, || db.execute(&bound).unwrap());
    let (_, sql_ns) = measure(reps, || {
        let Ok(Statement::Query(p)) = compile(&sql, db) else {
            unreachable!()
        };
        db.execute(&p).unwrap()
    });

    Row {
        name: name.to_string(),
        sql_bytes: sql.len(),
        frontend_ns,
        plan_ns,
        sql_ns,
        scan_heavy: plan_ns >= SCAN_HEAVY_NS,
    }
}

fn main() {
    let args = Args::parse();
    let rows: usize = args.get("rows", 500_000);
    let scale: usize = args.get("scale", 400);
    let reps: usize = args.get("reps", 30);
    let json_path: String = args.get("json", "BENCH_sql_overhead.json".into());

    let mut results: Vec<Row> = Vec::new();

    // Scan-heavy: the microbenchmark aggregation at several selectivities.
    let db = Database::new();
    db.register(microbench::generate(rows, 0.1, Layout::row(16), 7));
    for sel in [0.001, 0.1, 0.5] {
        let plan = microbench::query(sel);
        results.push(bench_query(&db, &format!("micro sel={sel}"), &plan, reps));
    }

    // The SAP-SD read suite: a mix of scans, joins, and point lookups.
    let db = Database::new();
    for t in sapsd::tables(scale, 42) {
        db.register(t);
    }
    for q in sapsd::queries(scale) {
        let Some(plan) = q.as_plan() else { continue };
        results.push(bench_query(&db, &q.name, plan, reps));
    }

    let table: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{}", r.sql_bytes),
                fmt_num(r.frontend_ns as f64),
                fmt_num(r.plan_ns as f64),
                fmt_num(r.sql_ns as f64),
                format!("{:+.2}%", r.overhead_pct()),
                if r.scan_heavy { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    print_table(
        &[
            "query",
            "sql bytes",
            "frontend ns",
            "plan e2e ns",
            "sql e2e ns",
            "overhead",
            "scan-heavy",
        ],
        &table,
    );

    // The headline number: worst overhead across scan-heavy queries.
    let worst = results
        .iter()
        .filter(|r| r.scan_heavy)
        .map(|r| r.overhead_pct())
        .fold(f64::MIN, f64::max);
    println!("\nworst scan-heavy overhead: {worst:+.2}% (target < 5%)");

    let json = Json::obj(vec![
        ("bench", Json::Str("fig_sql_overhead".into())),
        ("rows", Json::Int(rows as i64)),
        ("scale", Json::Int(scale as i64)),
        ("reps", Json::Int(reps as i64)),
        ("worst_scan_heavy_overhead_pct", Json::Num(worst)),
        (
            "queries",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.clone())),
                            ("sql_bytes", Json::Int(r.sql_bytes as i64)),
                            ("frontend_ns", Json::Int(r.frontend_ns as i64)),
                            ("plan_e2e_ns", Json::Int(r.plan_ns as i64)),
                            ("sql_e2e_ns", Json::Int(r.sql_ns as i64)),
                            ("overhead_pct", Json::Num(r.overhead_pct())),
                            ("scan_heavy", Json::Bool(r.scan_heavy)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    match std::fs::write(&json_path, json.render() + "\n") {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
