//! **fig_planner** — planner-chosen execution vs every fixed engine.
//!
//! The dispatch-layer claim behind `Database::execute`: routing every query
//! through the cost-based planner should track the best fixed engine (and
//! beat any single fixed choice across a mixed workload), because the model
//! picks scan-vs-index per access path and the cheapest engine per plan.
//!
//! Two workloads:
//! * the Fig.-3 microbenchmark across selectivities and layouts,
//! * the SAP-SD query set with the paper's indexes (hash on `KNA1.KUNNR`,
//!   RB-tree on `VBAP.VBELN`).
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig_planner
//!         [--rows 1000000] [--scale 20000] [--reps 3]`

use pdsm_bench::{fmt_num, measure, print_table, Args};
use pdsm_core::{Database, EngineKind, IndexKind};
use pdsm_workloads::{microbench, sapsd};

/// Median cycles of planner-routed execution plus each fixed engine that
/// supports the plan; returns `(planner, per-engine)` rows.
fn race(
    db: &Database,
    plan: &pdsm_plan::logical::LogicalPlan,
    reps: usize,
) -> (u64, Vec<(EngineKind, u64)>) {
    let (planner_cyc, _) = measure(reps, || db.execute(plan).expect("planner run"));
    let mut fixed = Vec::new();
    for kind in EngineKind::all() {
        if !kind.supports(plan) {
            continue;
        }
        let (cyc, _) = measure(reps, || db.run(plan, kind).expect("fixed run"));
        fixed.push((kind, cyc));
    }
    (planner_cyc, fixed)
}

/// All fixed-engine timings rendered into one table cell.
fn engine_cell(fixed: &[(EngineKind, u64)]) -> String {
    fixed
        .iter()
        .map(|(kind, cyc)| format!("{kind:?}={}", fmt_num(*cyc as f64)))
        .collect::<Vec<_>>()
        .join(" ")
}

fn headline(db: &Database, plan: &pdsm_plan::logical::LogicalPlan) -> String {
    let phys = db.plan_query(plan).expect("plan");
    let access = if phys.access().is_indexed() {
        "index"
    } else {
        "scan"
    };
    format!("{access}/{}", phys.engine)
}

fn main() {
    let args = Args::parse();
    let rows: usize = args.get("rows", 1_000_000);
    let scale: usize = args.get("scale", 20_000);
    let reps: usize = args.get("reps", 3);

    println!("fig_planner — planner-chosen vs fixed engines\n");

    // --- microbenchmark: selectivity sweep × layouts ---
    let mut table = Vec::new();
    for (lname, layout) in microbench::layouts() {
        let db = Database::new();
        db.register(microbench::generate(rows, 0.05, layout, 1));
        for sel in [0.001, 0.01, 0.1, 0.5] {
            let plan = microbench::query(sel);
            let (planner_cyc, fixed) = race(&db, &plan, reps);
            let best = fixed.iter().map(|(_, c)| *c).min().unwrap_or(planner_cyc);
            table.push(vec![
                format!("micro sel={sel}"),
                lname.to_string(),
                headline(&db, &plan),
                fmt_num(planner_cyc as f64),
                format!("{:.2}", planner_cyc as f64 / best.max(1) as f64),
                engine_cell(&fixed),
            ]);
        }
    }
    print_table(
        &[
            "query",
            "layout",
            "chosen",
            "planner cyc",
            "vs best",
            "fixed engines",
        ],
        &table,
    );

    // --- SAP-SD with the paper's indexes ---
    let db = Database::new();
    for t in sapsd::tables(scale, 7) {
        db.register(t);
    }
    db.create_index("KNA1", "KUNNR", IndexKind::Hash).unwrap();
    db.create_index("VBAP", "VBELN", IndexKind::RBTree).unwrap();

    let mut table = Vec::new();
    for q in sapsd::queries(scale) {
        let Some(plan) = q.as_plan() else { continue };
        let (planner_cyc, fixed) = race(&db, plan, reps);
        let best = fixed.iter().map(|(_, c)| *c).min().unwrap_or(planner_cyc);
        table.push(vec![
            q.name.clone(),
            headline(&db, plan),
            fmt_num(planner_cyc as f64),
            format!("{:.2}", planner_cyc as f64 / best.max(1) as f64),
            engine_cell(&fixed),
        ]);
    }
    println!("\nSAP-SD (scale {scale}, indexed):");
    print_table(
        &["query", "chosen", "planner cyc", "vs best", "fixed engines"],
        &table,
    );

    println!("\nExpected shape: 'vs best' stays near 1.0 everywhere (the planner tracks");
    println!("the fastest fixed engine), and identity selects route through the index.");
}
