//! **Fig. 8 / Table III** — the "configuring experiment": cycles per
//! dependent access as a function of the accessed region size, and the
//! latency parameters fitted from the staircase.
//!
//! Runs on the host CPU via `rdtsc` (this experiment *is* the hardware
//! measurement; the simulator has no latency notion). The fitted latencies
//! are printed next to the paper's Table III values for the Nehalem
//! reference machine.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig8_calibration
//!         [--max-mb 128] [--accesses 2000000]`

use pdsm_bench::{print_table, Args};
use pdsm_cost::calibrate::{fit_latencies, staircase};
use pdsm_cost::Hierarchy;

fn main() {
    let args = Args::parse();
    let max_mb: usize = args.get("max-mb", 128);
    let accesses: usize = args.get("accesses", 2_000_000);

    println!("Fig. 8 — pointer-chase staircase, {accesses} dependent accesses per point\n");
    let points = staircase(1 << 10, max_mb << 20, accesses);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                if p.region_bytes >= 1 << 20 {
                    format!("{} MB", p.region_bytes >> 20)
                } else {
                    format!("{} kB", p.region_bytes >> 10)
                },
                format!("{:.1}", p.cycles_per_access),
            ]
        })
        .collect();
    print_table(&["region", "cycles/access"], &rows);

    let hw = Hierarchy::nehalem();
    let fitted = fit_latencies(&points, &hw);
    println!("\nTable III — fitted vs paper parameters:");
    let rows: Vec<Vec<String>> = hw
        .levels()
        .iter()
        .zip(&fitted)
        .map(|(l, &f)| {
            vec![
                l.name.to_string(),
                format!("{}", l.capacity),
                format!("{}", l.block),
                format!("{:.0}", l.latency),
                format!("{:.1}", f),
            ]
        })
        .collect();
    print_table(
        &[
            "level",
            "capacity(B)",
            "block(B)",
            "paper latency",
            "fitted latency",
        ],
        &rows,
    );
    println!("\nExpected shape (paper): plateaus inside each cache level; knees at the");
    println!("capacities; latencies rise monotonically toward memory.");
}
