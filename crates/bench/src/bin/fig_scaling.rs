//! **Thread scaling** — rows/sec of the morsel-driven parallel engine on a
//! scan-heavy query, swept over worker counts, against the sequential
//! compiled engine as the 1x reference.
//!
//! Query: the Fig.-3 microbenchmark (`select sum(B),sum(C),sum(D),sum(E)
//! from R where A = 0`) — one fused scan-filter-aggregate pipeline, the
//! shape where morsel parallelism should approach linear scaling until the
//! memory bus saturates.
//!
//! Expected shape (on a multi-core box): ≥2x at 4 threads over 1 thread;
//! the hybrid PDSM layout scales best because each morsel's working set is
//! smallest. On a single-core container every row collapses to ~1x — the
//! fixture still validates the machinery (morsel claiming, merging) and
//! result equality.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig_scaling
//!         [--rows 2000000] [--sel 0.02] [--reps 3] [--threads 1,2,4,8,16]`

use pdsm_bench::{fmt_num, measure, print_table, Args};
use pdsm_exec::engine::{CompiledEngine, Engine};
use pdsm_par::ParallelEngine;
use pdsm_storage::Table;
use pdsm_workloads::microbench;
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let rows: usize = args.get("rows", 2_000_000);
    let sel: f64 = args.get("sel", 0.02);
    let reps: usize = args.get("reps", 3);
    let threads_arg: String = args.get("threads", String::from("1,2,4,8"));
    let thread_counts: Vec<usize> = threads_arg
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();

    println!(
        "Thread scaling — {} rows, selectivity {}, {} hardware threads available\n",
        rows,
        sel,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let plan = microbench::query(sel);
    let mut out_rows = Vec::new();
    for (lname, layout) in microbench::layouts() {
        let t: Table = microbench::generate(rows, sel, layout, 42);
        let mut db = HashMap::new();
        db.insert("R".to_string(), t);

        let (_, seq_ns) = measure(reps, || CompiledEngine.execute(&plan, &db).expect("run"));
        let seq_rps = rows as f64 / (seq_ns as f64 / 1e9);
        out_rows.push(vec![
            lname.to_string(),
            "compiled/seq".into(),
            fmt_num(seq_ns as f64),
            fmt_num(seq_rps),
            "1.00".into(),
            "-".into(),
        ]);

        // Always measure a true 1-worker baseline so the "vs 1 thread"
        // column is meaningful even when 1 is absent from --threads.
        let baseline = ParallelEngine::with_threads(1);
        let (_, base_ns) = measure(reps, || baseline.execute(&plan, &db).expect("run"));
        for &n in &thread_counts {
            let engine = ParallelEngine::with_threads(n);
            let reference = CompiledEngine.execute(&plan, &db).expect("run");
            let out = engine.execute(&plan, &db).expect("run");
            reference.assert_same(&out, "parallel result must match compiled");
            let ns = if n == 1 {
                base_ns
            } else {
                measure(reps, || engine.execute(&plan, &db).expect("run")).1
            };
            let rps = rows as f64 / (ns as f64 / 1e9);
            out_rows.push(vec![
                lname.to_string(),
                format!("parallel/{n}t"),
                fmt_num(ns as f64),
                fmt_num(rps),
                format!("{:.2}", seq_ns as f64 / ns as f64),
                format!("{:.2}", base_ns as f64 / ns as f64),
            ]);
        }
    }
    print_table(
        &[
            "layout",
            "engine",
            "ns/query",
            "rows/sec",
            "vs seq",
            "vs 1 thread",
        ],
        &out_rows,
    );
    println!("\nExpected shape: rows/sec grows with threads until cores or memory");
    println!("bandwidth run out; >=2x at 4 threads on a >=4-core machine. Results are");
    println!("asserted identical to the compiled engine at every thread count.");
}
