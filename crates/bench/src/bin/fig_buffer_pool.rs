//! **fig_buffer_pool** — larger-than-memory tables through the buffer
//! pool: a checkpointed table ~4× the pool budget is scanned repeatedly
//! with the streaming (extent-at-a-time) executor, and the run must stay
//! inside the budget instead of hydrating the whole main store:
//!
//! * `resident`    — no pool: recovery hydrates everything (the ceiling);
//! * `pool-fit`    — budget ≥ dataset: the pool caches every extent, so
//!   repeated scans should cost close to resident (the overhead leg);
//! * `pool-tight`  — budget ≈ dataset/4: every scan faults and evicts,
//!   peak RSS growth must stay near the budget, not the dataset;
//! * `selective`   — a ≤1 % *clustered* scan under the tight budget:
//!   zone maps must refute the cold extents outside the matching suffix,
//!   so the pool faults only the surviving extents.
//!
//! Every leg runs in a fresh child process (the binary re-execs itself)
//! so each leg's `VmHWM` — the kernel's own peak-RSS high-water mark —
//! is its own, not the previous leg's. Emits `BENCH_buffer_pool.json`.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig_buffer_pool
//!         [--rows 200000] [--iters 4] [--extent-rows 8192]
//!         [--json BENCH_buffer_pool.json]`

use pdsm_bench::{fmt_num, print_table, Args, Json};
use pdsm_core::{
    BufferPool, Database, DurabilityConfig, EngineKind, FsyncMode, MaintenanceConfig,
    MaintenanceMode,
};
use pdsm_plan::builder::QueryBuilder;
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::{AggExpr, AggFunc};
use pdsm_workloads::microbench;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

const PHASE_ENV: &str = "PDSM_FIG_POOL_PHASE";
const DIR_ENV: &str = "PDSM_FIG_POOL_DIR";

/// The data dir is minted once by the parent (keyed on *its* pid) and
/// handed to every child phase through the environment.
fn bench_dir() -> PathBuf {
    match std::env::var(DIR_ENV) {
        Ok(d) => PathBuf::from(d),
        Err(_) => std::env::temp_dir().join(format!("pdsm-fig-buffer-pool-{}", std::process::id())),
    }
}

/// The kernel's peak-RSS high-water mark for this process, in bytes.
fn vm_hwm_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse::<u64>().ok())
        })
        .unwrap_or(0)
        * 1024
}

/// Total bytes of the checkpoint blobs under `dir` — the on-disk dataset
/// size the pool budget is measured against.
fn checkpoint_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    if let Ok(tables) = std::fs::read_dir(dir) {
        for t in tables.flatten() {
            if let Ok(files) = std::fs::read_dir(t.path()) {
                for f in files.flatten() {
                    let name = f.file_name().to_string_lossy().into_owned();
                    if name.starts_with("main.") && name.ends_with(".tbl") {
                        total += f.metadata().map(|m| m.len()).unwrap_or(0);
                    }
                }
            }
        }
    }
    total
}

fn maint_off() -> MaintenanceConfig {
    MaintenanceConfig {
        mode: MaintenanceMode::Off,
        ..Default::default()
    }
}

fn open(dir: &Path, budget: Option<usize>) -> Database {
    Database::open_with_pool(
        DurabilityConfig::new(dir).with_fsync(FsyncMode::Off),
        maint_off(),
        budget.map(BufferPool::new),
    )
    .expect("open data dir")
}

/// A full-table streaming aggregate: every non-refuted extent faults.
fn full_scan_plan() -> pdsm_plan::logical::LogicalPlan {
    QueryBuilder::scan("R")
        .aggregate(
            vec![],
            vec![
                AggExpr::new(AggFunc::Sum, Expr::col(1)),
                AggExpr::new(AggFunc::Count, Expr::col(2)),
            ],
        )
        .build()
}

fn emit(k: &str, v: impl std::fmt::Display) {
    println!("RESULT {k}={v}");
}

/// Child: build the dataset once — checkpointed with small extents so a
/// few MB already spans dozens of them.
fn phase_seed(dir: &Path, rows: usize) {
    let _ = std::fs::remove_dir_all(dir);
    let db = open(dir, None);
    // sel 0.0: column A is the strictly decreasing -(i+1), so suffix
    // range predicates are exactly clustered and zone maps bite.
    db.register(microbench::generate(
        rows,
        0.0,
        microbench::pdsm_layout(),
        42,
    ));
    drop(db);
    emit("dataset_bytes", checkpoint_bytes(dir));
}

/// Child: scan the table `iters` times; report wall time, RSS growth
/// during the queries, and the pool counters.
fn phase_scan(dir: &Path, budget: Option<usize>, iters: usize, rows: usize) {
    let db = open(dir, budget);
    let plan = full_scan_plan();
    let hwm_before = vm_hwm_bytes();
    let t0 = Instant::now();
    let mut checksum = 0i64;
    for _ in 0..iters {
        let out = db.run(&plan, EngineKind::Compiled).expect("scan");
        checksum ^= match &out.rows[0][1] {
            pdsm_storage::Value::Int64(n) => *n,
            _ => 0,
        };
    }
    let elapsed = t0.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    emit("elapsed_s", format!("{:.6}", elapsed));
    emit(
        "rows_per_s",
        format!("{:.0}", (rows * iters) as f64 / elapsed),
    );
    emit(
        "rss_growth_bytes",
        vm_hwm_bytes().saturating_sub(hwm_before),
    );
    if let Some(p) = db.pool_stats() {
        emit("pool_budget", p.budget_bytes);
        emit("pool_peak_resident", p.peak_resident_bytes);
        emit("pool_hits", p.hits);
        emit("pool_misses", p.misses);
        emit("pool_evictions", p.evictions);
        emit("pool_overcommits", p.overcommits);
    }
}

/// Child: the clustered ≤1 % scan under the tight budget — zone maps
/// must keep cold extents cold.
fn phase_selective(dir: &Path, budget: usize, rows: usize) {
    let db = open(dir, Some(budget));
    let k = rows / 100; // 1 % suffix: A = -(i+1) < -(rows-k) ⇔ i ≥ rows-k
    let plan = QueryBuilder::scan("R")
        .filter(Expr::col(0).lt(Expr::lit(-((rows - k) as i32))))
        .aggregate(vec![], vec![AggExpr::new(AggFunc::Count, Expr::col(1))])
        .build();
    let out = db.run(&plan, EngineKind::Compiled).expect("selective scan");
    emit(
        "matched",
        match &out.rows[0][0] {
            pdsm_storage::Value::Int64(n) => *n,
            _ => -1,
        },
    );
    let (extents, groups) = db
        .with_table("R", |vt| {
            vt.cold_main()
                .map(|c| (c.n_extents(), c.header().layout.n_groups()))
                .unwrap_or((0, 0))
        })
        .expect("table");
    emit("extents_total", extents);
    emit("groups_per_extent", groups);
    let p = db.pool_stats().expect("pool stats");
    emit("pool_misses", p.misses);
    emit("pool_skipped_faults", p.skipped_faults);
}

fn run_child(dir: &Path, phase: &str, budget: Option<usize>) -> HashMap<String, String> {
    let exe = std::env::current_exe().expect("current exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.args(std::env::args().skip(1))
        .env(PHASE_ENV, phase)
        .env(DIR_ENV, dir);
    if let Some(b) = budget {
        cmd.env("PDSM_FIG_POOL_BUDGET", b.to_string());
    }
    let out = cmd.output().expect("spawn child phase");
    assert!(
        out.status.success(),
        "phase {phase} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter_map(|l| l.strip_prefix("RESULT "))
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn get<T: std::str::FromStr + Default>(m: &HashMap<String, String>, k: &str) -> T {
    m.get(k).and_then(|v| v.parse().ok()).unwrap_or_default()
}

fn main() {
    let args = Args::parse();
    let rows: usize = args.get("rows", 200_000);
    let iters: usize = args.get("iters", 4);
    let extent_rows: usize = args.get("extent-rows", 8_192);
    let json_path: String = args.get("json", "BENCH_buffer_pool.json".into());
    // Children inherit the knob, so seeding and scanning agree on extents.
    std::env::set_var("PDSM_EXTENT_ROWS", extent_rows.to_string());
    let dir = bench_dir();

    if let Ok(phase) = std::env::var(PHASE_ENV) {
        let budget: Option<usize> = std::env::var("PDSM_FIG_POOL_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok());
        match phase.as_str() {
            "seed" => phase_seed(&dir, rows),
            "resident" => phase_scan(&dir, None, iters, rows),
            "pooled" => phase_scan(&dir, budget, iters, rows),
            "selective" => phase_selective(&dir, budget.expect("budget"), rows),
            other => panic!("unknown phase {other}"),
        }
        return;
    }

    println!("fig_buffer_pool — {rows} rows, {iters} scan iters, {extent_rows}-row extents\n");
    let seed = run_child(&dir, "seed", None);
    let dataset: u64 = get(&seed, "dataset_bytes");
    let tight = (dataset / 4) as usize; // dataset ≈ 4× budget
    let fit = (dataset * 2) as usize;
    println!(
        "dataset {} on disk; tight budget {} (¼), fit budget {} (2×)\n",
        fmt_num(dataset as f64),
        fmt_num(tight as f64),
        fmt_num(fit as f64)
    );

    let resident = run_child(&dir, "resident", None);
    let pool_fit = run_child(&dir, "pooled", Some(fit));
    let pool_tight = run_child(&dir, "pooled", Some(tight));
    let selective = run_child(&dir, "selective", Some(tight));
    let _ = std::fs::remove_dir_all(&dir);

    let legs = [
        ("resident", &resident),
        ("pool-fit", &pool_fit),
        ("pool-tight", &pool_tight),
    ];
    let table: Vec<Vec<String>> = legs
        .iter()
        .map(|(name, m)| {
            vec![
                name.to_string(),
                fmt_num(get::<f64>(m, "rows_per_s")),
                fmt_num(get::<u64>(m, "rss_growth_bytes") as f64),
                fmt_num(get::<u64>(m, "pool_peak_resident") as f64),
                get::<u64>(m, "pool_hits").to_string(),
                get::<u64>(m, "pool_misses").to_string(),
                get::<u64>(m, "pool_evictions").to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "leg",
            "rows/s",
            "rss-growth",
            "pool-peak",
            "hits",
            "misses",
            "evict",
        ],
        &table,
    );

    // Acceptance: the tight leg's RSS growth stays near the budget, far
    // under the dataset; the selective scan faults only the suffix.
    let tight_rss: u64 = get(&pool_tight, "rss_growth_bytes");
    let rss_ok = tight_rss < dataset;
    let fit_overhead = get::<f64>(&resident, "elapsed_s").max(1e-9);
    let fit_ratio = get::<f64>(&pool_fit, "elapsed_s") / fit_overhead;

    let extents: u64 = get(&selective, "extents_total");
    let groups: u64 = get(&selective, "groups_per_extent");
    let skipped: u64 = get(&selective, "pool_skipped_faults");
    let sel_misses: u64 = get(&selective, "pool_misses");
    let faulted = extents.saturating_sub(skipped);
    let expect_faulted = ((rows / 100) as u64).div_ceil(extent_rows as u64) + 1;
    let sel_ok = faulted <= expect_faulted && sel_misses == faulted * groups;
    println!(
        "\npool-tight RSS growth {} vs dataset {} — bounded: {}",
        fmt_num(tight_rss as f64),
        fmt_num(dataset as f64),
        if rss_ok { "PASS" } else { "FAIL" }
    );
    println!("pool-fit elapsed vs resident: {fit_ratio:.2}x");
    println!(
        "selective 1% scan: {faulted}/{extents} extents faulted (≤ {expect_faulted} expected), \
         {skipped} zone-skipped, {sel_misses} group faults — {}",
        if sel_ok { "PASS" } else { "FAIL" }
    );

    let leg_json = |m: &HashMap<String, String>| {
        Json::obj(vec![
            ("elapsed_s", Json::Num(get(m, "elapsed_s"))),
            ("rows_per_s", Json::Num(get(m, "rows_per_s"))),
            (
                "rss_growth_bytes",
                Json::Int(get::<u64>(m, "rss_growth_bytes") as i64),
            ),
            (
                "pool_budget",
                Json::Int(get::<u64>(m, "pool_budget") as i64),
            ),
            (
                "pool_peak_resident",
                Json::Int(get::<u64>(m, "pool_peak_resident") as i64),
            ),
            ("pool_hits", Json::Int(get::<u64>(m, "pool_hits") as i64)),
            (
                "pool_misses",
                Json::Int(get::<u64>(m, "pool_misses") as i64),
            ),
            (
                "pool_evictions",
                Json::Int(get::<u64>(m, "pool_evictions") as i64),
            ),
            (
                "pool_overcommits",
                Json::Int(get::<u64>(m, "pool_overcommits") as i64),
            ),
        ])
    };
    let json = Json::obj(vec![
        ("bench", Json::Str("fig_buffer_pool".into())),
        ("rows", Json::Int(rows as i64)),
        ("iters", Json::Int(iters as i64)),
        ("extent_rows", Json::Int(extent_rows as i64)),
        ("dataset_bytes", Json::Int(dataset as i64)),
        ("tight_budget_bytes", Json::Int(tight as i64)),
        ("fit_budget_bytes", Json::Int(fit as i64)),
        ("resident", leg_json(&resident)),
        ("pool_fit", leg_json(&pool_fit)),
        ("pool_tight", leg_json(&pool_tight)),
        ("fit_vs_resident_ratio", Json::Num(fit_ratio)),
        ("tight_rss_bounded", Json::Str(rss_ok.to_string())),
        (
            "selective",
            Json::obj(vec![
                ("matched", Json::Int(get::<i64>(&selective, "matched"))),
                ("extents_total", Json::Int(extents as i64)),
                ("extents_faulted", Json::Int(faulted as i64)),
                ("extents_zone_skipped", Json::Int(skipped as i64)),
                ("group_faults", Json::Int(sel_misses as i64)),
                ("faults_only_survivors", Json::Str(sel_ok.to_string())),
            ]),
        ),
    ]);
    match std::fs::write(&json_path, json.render() + "\n") {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }
}
