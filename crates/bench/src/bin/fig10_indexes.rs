//! **Fig. 10** — hybrid storage with and without indexes: SAP-SD Q6
//! (insert, index maintenance), Q7 and Q8 (identity selects) on row /
//! column / hybrid layouts.
//!
//! Indexes per the paper: hash indexes on the primary keys (`KNA1.KUNNR`),
//! and one RB-tree on `VBAP(VBELN)`.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig10_indexes
//!         [--scale 20000] [--reps 5]`

use pdsm_bench::{fmt_num, measure, print_table, Args};
use pdsm_core::{Database, EngineKind, IndexKind};
use pdsm_storage::Layout;
use pdsm_workloads::sapsd;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn build_db(scale: usize, columnar: Option<&str>, indexed: bool) -> Database {
    let db = Database::new();
    for t in sapsd::tables(scale, 7) {
        db.register(t);
    }
    match columnar {
        Some("column") => {
            for name in db.table_names() {
                let w = db.get_table(&name).unwrap().schema().len();
                db.relayout(&name, Layout::column(w)).unwrap();
            }
        }
        Some("hybrid") => {
            // KNA1: key alone; VBAP: keys alone, rest together — a
            // representative PDSM decomposition for the lookup queries.
            let kna1_w = db.get_table("KNA1").unwrap().schema().len();
            let groups = vec![vec![0], (1..kna1_w).collect::<Vec<_>>()];
            db.relayout("KNA1", Layout::from_groups(groups, kna1_w).unwrap())
                .unwrap();
            let vbap_w = db.get_table("VBAP").unwrap().schema().len();
            let groups = vec![vec![0, 1], (2..vbap_w).collect::<Vec<_>>()];
            db.relayout("VBAP", Layout::from_groups(groups, vbap_w).unwrap())
                .unwrap();
        }
        _ => {}
    }
    if indexed {
        db.create_index("KNA1", "KUNNR", IndexKind::Hash).unwrap();
        db.create_index("VBAP", "VBELN", IndexKind::RBTree).unwrap();
    }
    db
}

fn main() {
    let args = Args::parse();
    let scale: usize = args.get("scale", 20_000);
    let reps: usize = args.get("reps", 5);
    let queries = sapsd::queries(scale);
    let q7 = queries[6].as_plan().unwrap().clone();
    let q8 = queries[7].as_plan().unwrap().clone();

    println!("Fig. 10 — indexed vs unindexed Q6/Q7/Q8, scale {scale}\n");
    let mut rows = Vec::new();
    for layout in ["row", "column", "hybrid"] {
        for indexed in [false, true] {
            let db = build_db(scale, Some(layout), indexed);
            let tag = if indexed { "indexed" } else { "unindexed" };

            // Q6: 1000 inserts incl. index maintenance; the database is
            // prepared outside the timed region.
            let db2 = build_db(scale, Some(layout), indexed);
            let mut rng = SmallRng::seed_from_u64(5);
            let base = db2.get_table("VBAP").unwrap().len() as i32;
            let ins_rows: Vec<_> = (0..1000)
                .map(|k| sapsd::vbap_row(&mut rng, base + k, 10))
                .collect();
            let c0 = pdsm_bench::cycles_now();
            for row in &ins_rows {
                db2.insert("VBAP", row).unwrap();
            }
            let cyc = pdsm_bench::cycles_now().wrapping_sub(c0);
            rows.push(vec![
                "Q6 (1000 ins)".into(),
                layout.into(),
                tag.into(),
                fmt_num(cyc as f64),
            ]);

            for (name, plan) in [("Q7", &q7), ("Q8", &q8)] {
                let (cyc, _) = measure(reps, || {
                    db.run_indexed(plan, EngineKind::Compiled).expect("query")
                });
                rows.push(vec![
                    name.into(),
                    layout.into(),
                    tag.into(),
                    fmt_num(cyc as f64),
                ]);
            }
        }
    }
    print_table(&["query", "layout", "mode", "cycles"], &rows);
    println!("\nExpected shape (paper): index maintenance cost on inserts is negligible;");
    println!("Q7/Q8 gain >1000x (column) and >10000x (row) from indexes; with indexes the");
    println!("row store beats the column store (tuple reconstruction dominates).");
}
