//! **Fig. 12 / Table V** — the CNET product-catalog workload: four queries
//! with frequencies 1 / 1 / 100 / 10 000 under row / column / hybrid
//! layouts; reported as frequency-weighted times, log-scale in the paper.
//!
//! Paper shape: analytics (1–3) favour decomposition; the identity select
//! (4) favours the row store but degrades only slightly on the hybrid;
//! overall the hybrid wins by >10x over row and ~4x over column.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig12_cnet
//!         [--rows 20000] [--attrs 600] [--reps 3]`

use pdsm_bench::{measure, print_table, Args};
use pdsm_core::{Database, EngineKind, LayoutAdvisor};
use pdsm_layout::workload::{Workload, WorkloadQuery};
use pdsm_storage::Layout;
use pdsm_workloads::cnet;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("rows", 20_000);
    let attrs: usize = args.get("attrs", 600);
    let reps: usize = args.get("reps", 3);
    let queries = cnet::queries("laptops", 40, (n / 2) as i32);

    println!(
        "Fig. 12 — CNET catalog: {n} products x {} columns ({} MB row-store tuples)\n",
        cnet::FIRST_SPARSE + attrs,
        n * (attrs * 4 + 32) / (1 << 20)
    );

    let base = cnet::generate(n, attrs, 11, 21);
    let width = base.schema().len();

    // hybrid via the advisor (weighted workload!)
    let row_db = Database::new();
    row_db.register(base.clone());
    let mut workload = Workload::new();
    for q in &queries {
        workload.push(
            WorkloadQuery::new(q.name.clone(), q.as_plan().unwrap().clone())
                .with_frequency(q.frequency),
        );
    }
    let advisor = LayoutAdvisor::default();
    let report = advisor.advise(&row_db, &workload);
    let hybrid_layout = report.tables[0].layout.clone();
    println!(
        "advisor layout: {} partitions (dense columns isolated from the sparse tail)\n",
        hybrid_layout.n_groups()
    );

    let mut dbs: Vec<(&str, Database)> = Vec::new();
    dbs.push(("row", row_db));
    let col_db = Database::new();
    col_db.register(base.relayout(Layout::column(width)).unwrap());
    dbs.push(("column", col_db));
    let hyb_db = Database::new();
    hyb_db.register(base.relayout(hybrid_layout).unwrap());
    dbs.push(("hybrid", hyb_db));

    let mut rows = Vec::new();
    let mut weighted = vec![0.0f64; dbs.len()];
    for q in &queries {
        let plan = q.as_plan().unwrap();
        let mut cells = vec![q.name.clone(), format!("{}", q.frequency)];
        for (i, (_lname, db)) in dbs.iter().enumerate() {
            let (_, ns) = measure(reps, || db.run(plan, EngineKind::Compiled).expect("query"));
            let ms = ns as f64 / 1e6;
            weighted[i] += ms * q.frequency;
            cells.push(format!("{:.3}", ms * q.frequency));
        }
        rows.push(cells);
    }
    let mut sum_cells = vec!["Sum".to_string(), String::new()];
    sum_cells.extend(weighted.iter().map(|w| format!("{:.3}", w)));
    rows.push(sum_cells);
    print_table(
        &["query", "freq", "row w-ms", "column w-ms", "hybrid w-ms"],
        &rows,
    );
    println!("\nExpected shape (paper): hybrid sum >10x better than row and ~4x better");
    println!("than column; query 4 best on row but only slightly degraded on hybrid.");
}
