//! **Table IV** — decomposition of the SAP-SD `ADRC` table from queries Q1
//! and Q3: the extended reasonable cuts the workload generates and the BPi
//! solution, printed with column names for comparison against the paper's
//! `{{NAME1},{NAME2},{KUNNR},{ADDRNUMBER,NAME_CO},{*}}`.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin table4_adrc [--rows 200000]`

use pdsm_bench::Args;
use pdsm_core::{Database, LayoutAdvisor};
use pdsm_layout::bpi::{optimize_table, OptimizerConfig};
use pdsm_layout::cuts::extended_reasonable_cuts;
use pdsm_layout::workload::{Workload, WorkloadQuery};
use pdsm_workloads::sapsd;

fn main() {
    let args = Args::parse();
    let rows: usize = args.get("rows", 200_000);
    let scale = rows / 2 * 10; // ADRC gets 2 rows per customer = scale/10*2

    let db = Database::new();
    for t in sapsd::tables(scale.max(100), 7) {
        db.register(t);
    }
    let queries = sapsd::queries(scale.max(100));
    let mut workload = Workload::new();
    for q in &queries {
        if q.name == "Q1" || q.name == "Q3" {
            workload.push(WorkloadQuery::new(
                q.name.clone(),
                q.as_plan().unwrap().clone(),
            ));
        }
    }

    let advisor = LayoutAdvisor {
        compute_stats: false,
        ..Default::default()
    };
    let views = advisor.views(&db);
    let names = sapsd::ADRC_COLS;
    let pretty = |cols: &[usize]| {
        let mut s = String::from("{");
        for (i, &c) in cols.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(names.get(c).copied().unwrap_or("?"));
        }
        s.push('}');
        s
    };

    println!("Table IV(a) — queries: Q1 (NAME1 like $1 [or] NAME2 like $2), Q3 (KUNNR = $1)\n");

    let groups = workload.access_groups(&views, "ADRC");
    let cuts = extended_reasonable_cuts(&groups);
    println!("Table IV(b) — extended reasonable cuts ({}):", cuts.len());
    for c in &cuts {
        println!("  {}", pretty(&c.0));
    }

    let opt = optimize_table(
        "ADRC",
        &views,
        &workload,
        &advisor.hierarchy,
        &OptimizerConfig::default(),
    );
    println!(
        "\nTable IV(c) — BPi solution ({} states explored):",
        opt.states_explored
    );
    for g in opt.layout.groups() {
        println!("  {}", pretty(g));
    }
    println!("\npaper:   {{NAME1}} {{NAME2}} {{KUNNR}} {{ADDRNUMBER,NAME_CO}} {{*}}");
    println!("(the {{*}} partition holds the columns no query touches)");
}
