//! **fig_result_cache** — what the mid-query result cache is worth, and
//! what it costs when it cannot help.
//!
//! Four experiments over the microbench table `R`:
//!
//! * **steady state** — one admitted scan-heavy aggregate executed
//!   repeatedly with the cache on vs. a cache-off twin database: p50/p99
//!   latency, hit rate, and the headline p50 speedup (target ≥ 5×, hit
//!   rate ≥ 90%).
//! * **off overhead** — cache disabled, `execute` vs. the emulated
//!   pre-cache path (`plan_query` + `run`): the cache machinery must cost
//!   ≤ 2% when it is off.
//! * **repeat rate** — round-robin pools of 1 / 4 / 16 distinct queries:
//!   hit rate and mean latency as reuse gets rarer.
//! * **invalidation churn** — a 95/5 read/write mix: every write moves the
//!   table's `(generation, delta_ops)` token and kills the resident
//!   entries, so the hit rate is bounded by the run length between writes.
//!
//! Emits `BENCH_result_cache.json`.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig_result_cache
//!         [--rows 200000] [--reps 200] [--json BENCH_result_cache.json]`

use pdsm_bench::{fmt_num, percentile, print_table, Args, Json};
use pdsm_core::{Database, ResultCacheConfig};
use pdsm_plan::builder::QueryBuilder;
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::{AggExpr, AggFunc, LogicalPlan};
use pdsm_storage::{Layout, Value};
use pdsm_workloads::microbench;
use std::time::Instant;

/// The `i`-th distinct admitted query: a filtered four-column sum whose
/// predicate touches a *data* column (values 0..1000), so zone maps can
/// never prune the scan to a free plan.
fn query(i: usize) -> LogicalPlan {
    let col = 1 + (i % 15);
    let bound = 100 + 50 * (i % 13) as i64;
    QueryBuilder::scan("R")
        .filter(Expr::col(col).lt(Expr::lit(bound)))
        .aggregate(
            vec![],
            (1..=4)
                .map(|c| AggExpr::new(AggFunc::Sum, Expr::col(c)))
                .collect(),
        )
        .build()
}

fn fresh_db(rows: usize, cfg: Option<ResultCacheConfig>) -> Database {
    let db = Database::new();
    db.register(microbench::generate(rows, 0.01, Layout::row(16), 7));
    if let Some(cfg) = cfg {
        db.set_result_cache(cfg);
    }
    db
}

/// Per-iteration wall latencies of `f` over `reps` runs (no warm-up: the
/// cold first iteration is the miss we want to see; steady-state numbers
/// slice it off).
fn sample(reps: usize, mut f: impl FnMut()) -> Vec<f64> {
    let mut out = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        out.push(t0.elapsed().as_nanos() as f64);
    }
    out
}

fn main() {
    let args = Args::parse();
    let rows: usize = args.get("rows", 200_000);
    let reps: usize = args.get("reps", 200);
    let json_path: String = args.get("json", "BENCH_result_cache.json".into());

    // --- steady state: one admitted query, on vs off -------------------
    let on = fresh_db(rows, None);
    let off = fresh_db(
        rows,
        Some(ResultCacheConfig {
            enabled: false,
            ..Default::default()
        }),
    );
    let plan = query(0);
    assert_eq!(
        on.execute(&plan).unwrap().rows,
        off.execute(&plan).unwrap().rows,
        "cache-on and cache-off must agree before any timing matters"
    );
    let on_lat = sample(reps, || {
        on.execute(&plan).unwrap();
    });
    let off_lat = sample(reps, || {
        off.execute(&plan).unwrap();
    });
    // Steady state starts after the first (miss) iteration.
    let steady = &on_lat[1..];
    let on_p50 = percentile(steady, 0.50);
    let on_p99 = percentile(steady, 0.99);
    let off_p50 = percentile(&off_lat, 0.50);
    let off_p99 = percentile(&off_lat, 0.99);
    let speedup = off_p50 / on_p50.max(1.0);
    let hit_rate = on.cache_stats().result.hit_rate();

    // --- off overhead: execute vs the emulated pre-cache path ----------
    let pre = fresh_db(
        rows,
        Some(ResultCacheConfig {
            enabled: false,
            ..Default::default()
        }),
    );
    let q = query(1);
    let exec_lat = sample(reps, || {
        pre.execute(&q).unwrap();
    });
    let emu_lat = sample(reps, || {
        // What `execute` did before the result cache existed: plan-cache
        // lookup, then dispatch.
        let p = pre.plan_query(&q).unwrap();
        pre.run(&p.logical, p.engine.into()).unwrap();
    });
    let exec_p50 = percentile(&exec_lat, 0.50);
    let emu_p50 = percentile(&emu_lat, 0.50);
    let off_overhead_pct = (exec_p50 - emu_p50) / emu_p50 * 100.0;

    // --- repeat rate: pools of distinct queries ------------------------
    let mut pool_rows: Vec<(usize, f64, f64)> = Vec::new(); // (pool, hit_rate, mean_ns)
    for pool in [1usize, 4, 16] {
        let db = fresh_db(rows, None);
        let plans: Vec<LogicalPlan> = (0..pool).map(query).collect();
        let iters = reps.max(pool * 4);
        let t0 = Instant::now();
        for i in 0..iters {
            db.execute(&plans[i % pool]).unwrap();
        }
        let mean = t0.elapsed().as_nanos() as f64 / iters as f64;
        pool_rows.push((pool, db.cache_stats().result.hit_rate(), mean));
    }

    // --- budgets: a 16-query pool under shrinking budgets --------------
    let mut budget_rows: Vec<(usize, f64, u64)> = Vec::new(); // (budget, hit_rate, evictions)
    for budget in [64usize << 20, 4 << 10, 1 << 10] {
        let db = fresh_db(
            rows,
            Some(ResultCacheConfig {
                enabled: true,
                budget_bytes: budget,
            }),
        );
        let plans: Vec<LogicalPlan> = (0..16).map(query).collect();
        for i in 0..reps.max(64) {
            db.execute(&plans[i % 16]).unwrap();
        }
        let s = db.cache_stats().result;
        budget_rows.push((budget, s.hit_rate(), s.evictions));
    }

    // --- invalidation churn: 95/5 read/write mix -----------------------
    let db = fresh_db(rows, None);
    let plans: Vec<LogicalPlan> = (0..4).map(query).collect();
    let iters = reps.max(100);
    let mut writes = 0u64;
    let mut row = vec![Value::Int32(0); 16];
    for i in 0..iters {
        // deterministic 95/5 mix
        if i % 20 == 19 {
            row[0] = Value::Int32(-(i as i32) - 1);
            db.insert("R", &row).unwrap();
            writes += 1;
        } else {
            db.execute(&plans[i % 4]).unwrap();
        }
    }
    let churn = db.cache_stats().result;

    // --- report --------------------------------------------------------
    print_table(
        &["experiment", "p50 ns", "p99 ns", "hit rate", "note"],
        &[
            vec![
                "steady cache-on".into(),
                fmt_num(on_p50),
                fmt_num(on_p99),
                format!("{:.1}%", hit_rate * 100.0),
                format!("{speedup:.1}x vs off"),
            ],
            vec![
                "steady cache-off".into(),
                fmt_num(off_p50),
                fmt_num(off_p99),
                "-".into(),
                "baseline".into(),
            ],
            vec![
                "cache-off overhead".into(),
                fmt_num(exec_p50),
                "-".into(),
                "-".into(),
                format!("{off_overhead_pct:+.2}% vs pre-cache path"),
            ],
        ],
    );
    println!();
    print_table(
        &["pool", "hit rate", "mean ns/query"],
        &pool_rows
            .iter()
            .map(|(p, h, m)| vec![format!("{p}"), format!("{:.1}%", h * 100.0), fmt_num(*m)])
            .collect::<Vec<_>>(),
    );
    println!();
    print_table(
        &["budget", "hit rate", "evictions"],
        &budget_rows
            .iter()
            .map(|(b, h, e)| vec![format!("{b}"), format!("{:.1}%", h * 100.0), format!("{e}")])
            .collect::<Vec<_>>(),
    );
    println!(
        "\n95/5 churn: {} writes, hit rate {:.1}%, {} invalidations, {} insertions",
        writes,
        churn.hit_rate() * 100.0,
        churn.invalidations,
        churn.insertions
    );
    println!(
        "\nsteady p50 speedup: {speedup:.1}x (target >= 5x), hit rate {:.1}% (target >= 90%), \
         off overhead {off_overhead_pct:+.2}% (target <= 2%)",
        hit_rate * 100.0
    );

    let json = Json::obj(vec![
        ("bench", Json::Str("fig_result_cache".into())),
        ("rows", Json::Int(rows as i64)),
        ("reps", Json::Int(reps as i64)),
        ("steady_on_p50_ns", Json::Num(on_p50)),
        ("steady_on_p99_ns", Json::Num(on_p99)),
        ("steady_off_p50_ns", Json::Num(off_p50)),
        ("steady_off_p99_ns", Json::Num(off_p99)),
        ("steady_speedup_p50", Json::Num(speedup)),
        ("steady_hit_rate", Json::Num(hit_rate)),
        ("off_overhead_pct", Json::Num(off_overhead_pct)),
        (
            "repeat_pools",
            Json::Arr(
                pool_rows
                    .iter()
                    .map(|(p, h, m)| {
                        Json::obj(vec![
                            ("pool", Json::Int(*p as i64)),
                            ("hit_rate", Json::Num(*h)),
                            ("mean_ns", Json::Num(*m)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "budgets",
            Json::Arr(
                budget_rows
                    .iter()
                    .map(|(b, h, e)| {
                        Json::obj(vec![
                            ("budget_bytes", Json::Int(*b as i64)),
                            ("hit_rate", Json::Num(*h)),
                            ("evictions", Json::Int(*e as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "churn_95_5",
            Json::obj(vec![
                ("writes", Json::Int(writes as i64)),
                ("hit_rate", Json::Num(churn.hit_rate())),
                ("invalidations", Json::Int(churn.invalidations as i64)),
                ("insertions", Json::Int(churn.insertions as i64)),
            ]),
        ),
    ]);
    match std::fs::write(&json_path, json.render() + "\n") {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
