//! **Fig. 9** — SAP-SD benchmark: the twelve queries under row / column /
//! hybrid storage, executed by the compiled ("HyPer") processor and the
//! bulk-with-function-calls ("HYRISE-style") processor, plus Volcano for
//! reference.
//!
//! The hybrid layout is not hand-picked: it is produced by the §V layout
//! advisor (extended reasonable cuts + BPi) from this very workload — the
//! full pipeline of the paper.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig9_sapsd
//!         [--scale 20000] [--reps 3]`

use pdsm_bench::{fmt_num, measure, print_table, Args};

use pdsm_core::LayoutAdvisor;
use pdsm_core::{Database, EngineKind};
use pdsm_layout::workload::{Workload, WorkloadQuery};
use pdsm_storage::Layout;
use pdsm_workloads::sapsd;
use pdsm_workloads::QueryKind;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn build_db(scale: usize, layouts: Option<&[(String, Layout)]>) -> Database {
    let db = Database::new();
    for t in sapsd::tables(scale, 7) {
        db.register(t);
    }
    if let Some(layouts) = layouts {
        for (name, layout) in layouts {
            db.relayout(name, layout.clone()).expect("relayout");
        }
    }
    db
}

fn main() {
    let args = Args::parse();
    let scale: usize = args.get("scale", 20_000);
    let reps: usize = args.get("reps", 3);
    let queries = sapsd::queries(scale);

    println!("Fig. 9 — SAP-SD, scale {scale} orders\n");

    // --- derive the hybrid layouts with the advisor -----------------------
    let row_db = build_db(scale, None);
    let mut workload = Workload::new();
    for q in &queries {
        if let Some(plan) = q.as_plan() {
            workload.push(WorkloadQuery::new(q.name.clone(), plan.clone()));
        }
    }
    let advisor = LayoutAdvisor::default();
    let report = advisor.advise(&row_db, &workload);
    println!("advisor layouts:");
    for a in &report.tables {
        println!(
            "  {:6} -> {} (est {:.2}x vs row)",
            a.table,
            a.layout,
            a.row_cost / a.estimated_cost.max(1.0)
        );
    }
    println!();
    let hybrid: Vec<(String, Layout)> = report
        .tables
        .iter()
        .map(|a| (a.table.clone(), a.layout.clone()))
        .collect();

    let col_layouts: Vec<(String, Layout)> = row_db
        .table_names()
        .iter()
        .map(|n| {
            let w = row_db.get_table(n).unwrap().schema().len();
            (n.to_string(), Layout::column(w))
        })
        .collect();

    let dbs: Vec<(&str, Database)> = vec![
        ("row", build_db(scale, None)),
        ("column", build_db(scale, Some(&col_layouts))),
        ("hybrid", build_db(scale, Some(&hybrid))),
    ];

    // HyPer = compiled; HYRISE-style = bulk (partition-at-a-time with
    // per-attribute calls); volcano for reference.
    let engines = [
        ("hyper", EngineKind::Compiled),
        ("hyrise", EngineKind::Bulk),
        ("volcano", EngineKind::Volcano),
    ];

    let mut rows = Vec::new();
    for q in &queries {
        match &q.kind {
            QueryKind::Plan(plan) => {
                for (lname, db) in &dbs {
                    for (ename, kind) in &engines {
                        let (cyc, _) = measure(reps, || db.run(plan, *kind).expect("query"));
                        rows.push(vec![
                            q.name.clone(),
                            lname.to_string(),
                            ename.to_string(),
                            fmt_num(cyc as f64),
                        ]);
                    }
                }
            }
            QueryKind::Insert { table, count } => {
                for (lname, db) in &dbs {
                    // clone outside the timed region; measure only inserts
                    let db2 = clone_db(db);
                    let mut rng = SmallRng::seed_from_u64(99);
                    let base = db2.get_table(table).unwrap().len() as i32;
                    let ins_rows: Vec<_> = (0..*count)
                        .map(|k| sapsd::vbap_row(&mut rng, base + k as i32, 10))
                        .collect();
                    let c0 = pdsm_bench::cycles_now();
                    for row in &ins_rows {
                        db2.insert(table, row).expect("insert");
                    }
                    let cyc = pdsm_bench::cycles_now().wrapping_sub(c0);
                    rows.push(vec![
                        format!("{} (ins {}x)", q.name, count),
                        lname.to_string(),
                        "dml".to_string(),
                        fmt_num(cyc as f64),
                    ]);
                }
            }
        }
    }
    print_table(&["query", "layout", "engine", "cycles"], &rows);
    println!("\nExpected shape (paper): hyper (compiled) beats the hyrise-style bulk");
    println!("processor by 1-2 orders of magnitude on scan-heavy queries; relative layout");
    println!("preferences agree across processors; insert (Q6) cheapest on row storage");
    println!("with a bounded penalty (~60%) for decomposed layouts.");
}

fn clone_db(db: &Database) -> Database {
    let out = Database::new();
    for name in db.table_names() {
        out.register(db.get_table(&name).unwrap().as_ref().clone());
    }
    out
}
