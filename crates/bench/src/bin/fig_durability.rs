//! **fig_durability** — what the write-ahead log costs, and what recovery
//! buys: the 50/50 update mix from `fig_update_mix` is replayed through
//! the *durable* `Database` write path under every fsync policy, against
//! the non-durable baseline:
//!
//! * `none`     — plain in-memory `Database` (the pre-WAL write path);
//! * `wal-off`  — WAL appended, never fsynced (durability up to the OS);
//! * `wal-batch`— group commit: appends return immediately, a background
//!   flusher coalesces fsyncs (the `PDSM_FSYNC=batch` default);
//! * `wal-always` — one fsync per committed op (classic synchronous WAL).
//!
//! Each durable run then drops the database and measures a cold
//! `Database::open` — recovery time and how many WAL ops it replayed
//! (bounded by checkpoint-on-merge, not by history).
//!
//! Emits `BENCH_durability.json` with write/read throughput, p99 write
//! latency, the `Database::storage_stats()` counters (WAL bytes, fsyncs,
//! group-commit sizes, checkpoints), and the recovery measurements. The
//! headline acceptance number: `wal-batch` write p99 within 2x of `none`.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig_durability
//!         [--rows 100000] [--ops 4000] [--sel 0.05] [--threshold 1024]
//!         [--json BENCH_durability.json]`

use pdsm_bench::{fmt_num, percentile, print_table, Args, Json};
use pdsm_core::{
    Database, DurabilityConfig, EngineKind, FsyncMode, MaintenanceConfig, MaintenanceMode,
    StorageStats,
};
use pdsm_workloads::microbench;
use pdsm_workloads::mixed::{self, MixedOp};
use std::path::PathBuf;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    None,
    Wal(FsyncMode),
}

impl Mode {
    fn name(&self) -> &'static str {
        match self {
            Mode::None => "none",
            Mode::Wal(FsyncMode::Off) => "wal-off",
            Mode::Wal(FsyncMode::Batch) => "wal-batch",
            Mode::Wal(FsyncMode::Always) => "wal-always",
            Mode::Wal(FsyncMode::Group) => "wal-group",
        }
    }
}

struct ModeResult {
    mode: Mode,
    reads: u64,
    writes: u64,
    read_qps: f64,
    write_ops: f64,
    p99_write_us: f64,
    stats: StorageStats,
    /// Cold `Database::open` on the directory the run left behind.
    recovery_ms: f64,
    recovery_replay_ops: u64,
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pdsm-fig-durability-{}-{tag}", std::process::id()))
}

fn open_mode(mode: Mode, dir: &PathBuf, threshold: usize) -> Database {
    let maintenance = MaintenanceConfig {
        mode: MaintenanceMode::Sync,
        merge_threshold: threshold as u64,
        advise_on_merge: false,
        ..Default::default()
    };
    match mode {
        Mode::None => Database::with_maintenance(maintenance),
        Mode::Wal(fsync) => {
            let _ = std::fs::remove_dir_all(dir);
            Database::open_with(DurabilityConfig::new(dir).with_fsync(fsync), maintenance)
                .expect("open data dir")
        }
    }
}

fn run_mode(mode: Mode, rows: usize, ops: usize, sel: f64, threshold: usize) -> ModeResult {
    let dir = bench_dir(mode.name());
    let db = open_mode(mode, &dir, threshold);
    db.register(microbench::generate(
        rows,
        sel,
        microbench::pdsm_layout(),
        42,
    ));
    let mut live: Vec<usize> = (0..db.get_table("R").unwrap().len()).collect();
    let w = mixed::microbench_mix(ops, 0.5, sel, 7);
    let engine = EngineKind::Compiled;

    let mut read_time = 0f64;
    let mut write_time = 0f64;
    let mut write_lats: Vec<f64> = Vec::new();
    let mut reads = 0u64;
    let mut writes = 0u64;
    for op in &w.ops {
        match op {
            MixedOp::Read { plan } => {
                let t0 = Instant::now();
                let out = db.run(&w.plans[*plan].1, engine).expect("read");
                read_time += t0.elapsed().as_secs_f64();
                std::hint::black_box(out);
                reads += 1;
            }
            _ => {
                // A merge renumbers ids; refresh the live set afterwards
                // (outside the timed section).
                let gen_before = db.shared("R").unwrap().generation();
                let t0 = Instant::now();
                db.with_table_write("R", |vt| match op {
                    MixedOp::Read { .. } => unreachable!(),
                    MixedOp::Insert { rows } => {
                        live.extend(vt.insert_batch(rows).expect("insert"));
                    }
                    MixedOp::Update {
                        row_hint,
                        col,
                        value,
                    } => {
                        if !live.is_empty() {
                            let slot = (*row_hint % live.len() as u64) as usize;
                            live[slot] = vt.update(live[slot], *col, value).expect("update");
                        }
                    }
                    MixedOp::Delete { row_hint } => {
                        if !live.is_empty() {
                            let slot = (*row_hint % live.len() as u64) as usize;
                            vt.delete(live[slot]).expect("delete");
                            live.swap_remove(slot);
                        }
                    }
                })
                .expect("table");
                // Merge policy lives on the insert path; drive it the way
                // `Database::insert` would, so checkpoints happen mid-run.
                let shared = db.shared("R").unwrap();
                if shared.delta_ops() >= threshold as u64 {
                    db.merge("R").expect("merge");
                }
                let dt = t0.elapsed().as_secs_f64();
                write_time += dt;
                write_lats.push(dt);
                writes += 1;
                if db.shared("R").unwrap().generation() != gen_before {
                    live = db
                        .with_table("R", |vt| {
                            (0..vt.main().len() + vt.delta_rows())
                                .filter(|&i| vt.is_visible(i))
                                .collect()
                        })
                        .unwrap();
                }
            }
        }
    }
    let stats = db.storage_stats();
    drop(db);

    // Cold recovery: reopen the directory the crash would find.
    let (recovery_ms, recovery_replay_ops) = match mode {
        Mode::None => (0.0, 0),
        Mode::Wal(fsync) => {
            let t0 = Instant::now();
            let db = Database::open_with(
                DurabilityConfig::new(&dir).with_fsync(fsync),
                MaintenanceConfig {
                    mode: MaintenanceMode::Off,
                    ..Default::default()
                },
            )
            .expect("recover");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let replayed = db.storage_stats().recovery_replay_ops;
            drop(db);
            let _ = std::fs::remove_dir_all(&dir);
            (ms, replayed)
        }
    };

    ModeResult {
        mode,
        reads,
        writes,
        read_qps: if read_time > 0.0 {
            reads as f64 / read_time
        } else {
            0.0
        },
        write_ops: if write_time > 0.0 {
            writes as f64 / write_time
        } else {
            0.0
        },
        p99_write_us: percentile(&write_lats, 0.99) * 1e6,
        stats,
        recovery_ms,
        recovery_replay_ops,
    }
}

fn main() {
    let args = Args::parse();
    let rows: usize = args.get("rows", 100_000);
    let ops: usize = args.get("ops", 4_000);
    let sel: f64 = args.get("sel", 0.05);
    let threshold: usize = args.get("threshold", 1_024);
    let json_path: String = args.get("json", "BENCH_durability.json".into());

    println!(
        "fig_durability — {rows} base rows, {ops} ops (50/50 mix), sel {sel}, merge@{threshold}\n"
    );
    println!("durability modes on the Database write path (none = pre-WAL baseline):\n");

    let modes = [
        Mode::None,
        Mode::Wal(FsyncMode::Off),
        Mode::Wal(FsyncMode::Batch),
        Mode::Wal(FsyncMode::Always),
        Mode::Wal(FsyncMode::Group),
    ];
    let results: Vec<ModeResult> = modes
        .iter()
        .map(|&m| run_mode(m, rows, ops, sel, threshold))
        .collect();

    let out_rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let s = &r.stats;
            vec![
                r.mode.name().to_string(),
                r.reads.to_string(),
                r.writes.to_string(),
                fmt_num(r.read_qps),
                fmt_num(r.write_ops),
                format!("{:.0}", r.p99_write_us),
                fmt_num(s.wal_bytes_appended as f64),
                s.wal_fsyncs.to_string(),
                if s.wal_fsyncs > 0 {
                    format!("{:.1}", s.wal_appends_synced as f64 / s.wal_fsyncs as f64)
                } else {
                    "-".into()
                },
                s.checkpoints.to_string(),
                if r.mode == Mode::None {
                    "-".into()
                } else {
                    format!("{:.1}", r.recovery_ms)
                },
                r.recovery_replay_ops.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "mode",
            "reads",
            "writes",
            "read/s",
            "write/s",
            "p99wr(µs)",
            "walB",
            "fsyncs",
            "grp",
            "ckpts",
            "recov(ms)",
            "replay",
        ],
        &out_rows,
    );

    let base_p99 = results[0].p99_write_us;
    let batch_p99 = results[2].p99_write_us;
    let ratio = if base_p99 > 0.0 {
        batch_p99 / base_p99
    } else {
        0.0
    };
    println!("\n(grp = mean group-commit size; replay = WAL ops the cold reopen replayed —");
    println!("bounded by checkpoint-on-merge, not by history)");
    println!(
        "\nwal-batch p99 vs none: {batch_p99:.0}µs / {base_p99:.0}µs = {ratio:.2}x (target ≤ 2x)"
    );

    let json = Json::obj(vec![
        ("bench", Json::Str("fig_durability".into())),
        ("rows", Json::Int(rows as i64)),
        ("ops", Json::Int(ops as i64)),
        ("sel", Json::Num(sel)),
        ("threshold", Json::Int(threshold as i64)),
        ("batch_vs_none_p99_ratio", Json::Num(ratio)),
        (
            "results",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        let s = &r.stats;
                        Json::obj(vec![
                            ("mode", Json::Str(r.mode.name().into())),
                            ("reads", Json::Int(r.reads as i64)),
                            ("writes", Json::Int(r.writes as i64)),
                            ("read_per_s", Json::Num(r.read_qps)),
                            ("write_per_s", Json::Num(r.write_ops)),
                            ("p99_write_us", Json::Num(r.p99_write_us)),
                            ("wal_bytes_appended", Json::Int(s.wal_bytes_appended as i64)),
                            ("wal_appends", Json::Int(s.wal_appends as i64)),
                            ("wal_fsyncs", Json::Int(s.wal_fsyncs as i64)),
                            ("wal_appends_synced", Json::Int(s.wal_appends_synced as i64)),
                            ("wal_max_group", Json::Int(s.wal_max_group as i64)),
                            ("checkpoints", Json::Int(s.checkpoints as i64)),
                            ("recovery_ms", Json::Num(r.recovery_ms)),
                            (
                                "recovery_replay_ops",
                                Json::Int(r.recovery_replay_ops as i64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    match std::fs::write(&json_path, json.render() + "\n") {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }
}
