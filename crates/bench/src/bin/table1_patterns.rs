//! **Table I(b)** — the access pattern of the example query, emitted by the
//! plan→pattern translator, plus its cost-model breakdown on the Nehalem
//! hierarchy of Table III.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin table1_patterns`

use pdsm_bench::{fmt_num, print_table};
use pdsm_cost::{cost, Hierarchy};
use pdsm_plan::patterns::{emit_pattern, TableView};
use pdsm_storage::Layout;
use pdsm_workloads::microbench;
use std::collections::HashMap;

fn main() {
    // the paper's 25M-tuple relation (1.6 GB) at selectivity 1%
    let n = 26_214_400u64;
    let mut views = HashMap::new();
    views.insert(
        "R".to_string(),
        TableView {
            name: "R".into(),
            n_rows: n,
            col_widths: vec![4; 16],
            layout: microbench::pdsm_layout(),
            stats: None,
        },
    );
    let plan = microbench::query(0.01);
    let emitted = emit_pattern(&plan, &views);
    println!("Table I(b) — example query at s = 1% on PDSM {{A}}{{B..E}}{{F..P}}:\n");
    println!("  emitted: {}", emitted.pattern);
    println!("  paper:   s_trav(26214400,4) ⊙ rr_acc(26214400,16,262144) ⊙ rr_acc(1,16,262144)");
    println!("           (the paper's rr_acc over B..E is exactly what §IV-C1 replaces");
    println!("            with s_trav_cr — the emitted form uses the corrected atom)\n");

    let hw = Hierarchy::nehalem();
    for (name, layout) in [
        ("row", Layout::row(16)),
        ("column", Layout::column(16)),
        ("hybrid", microbench::pdsm_layout()),
    ] {
        let v2: HashMap<String, TableView> = views
            .iter()
            .map(|(k, v)| (k.clone(), v.with_layout(layout.clone())))
            .collect();
        let e = emit_pattern(&plan, &v2);
        let est = cost::estimate(&e.pattern, &hw);
        println!(
            "layout {name:7} estimated cycles: {}",
            fmt_num(est.total_cycles)
        );
        let rows: Vec<Vec<String>> = est
            .levels
            .iter()
            .map(|l| {
                vec![
                    l.level.to_string(),
                    fmt_num(l.misses.sequential),
                    fmt_num(l.misses.random),
                    fmt_num(l.cycles),
                ]
            })
            .collect();
        print_table(&["level", "seq misses", "rand misses", "cycles"], &rows);
        println!();
    }
}
