//! **Fig. 6** — Prediction accuracy of the `s_trav_cr` atom vs. modeling the
//! same selective projection as `rr_acc`.
//!
//! For a sweep of selectivities, a selective projection (4-byte condition
//! column scanned, 16-byte payload read conditionally) is (a) priced by the
//! extended model's Eq. 1–4, and (b) replayed on the simulated Nehalem with
//! the paper's counter protocol (random = demand L3 misses, sequential =
//! L3 accesses − misses). Values are reported as fractions of the payload's
//! total cache lines, matching the figure's y-axis.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig6_model_accuracy
//!         [--rows 1000000]`

use pdsm_bench::{print_table, Args};
use pdsm_cachesim::trace::run_selective_projection;
use pdsm_cachesim::SimConfig;
use pdsm_cost::misses::atom_misses;
use pdsm_cost::{Atom, Hierarchy};

fn main() {
    let args = Args::parse();
    let n: u64 = args.get("rows", 1_000_000u64);
    let w = 16u64;
    let hw = Hierarchy::nehalem();
    let llc = hw.llc().clone();
    let total_lines = (n * w) as f64 / llc.block as f64;

    println!("Fig. 6 — s_trav_cr prediction vs simulated counters ({n} tuples, payload {w} B)");
    println!("(fractions of the payload region's {total_lines:.0} cache lines)\n");

    let sels = [
        0.001, 0.005, 0.01, 0.02, 0.03, 0.05, 0.075, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.625, 0.75,
        0.875, 1.0,
    ];
    let mut rows = Vec::new();
    for &s in &sels {
        let predicted = atom_misses(&Atom::s_trav_cr(n, w, w, s), &llc, 1.0);
        // the paper's inadequate alternative: model it as rr_acc
        let r = (s * n as f64) as u64;
        let rr = atom_misses(&Atom::rr_acc(n, w, r.max(1)), &llc, 1.0);
        let (payload, _total) =
            run_selective_projection(n, w, s, SimConfig::nehalem(), 1234 + (s * 1e4) as u64);
        rows.push(vec![
            format!("{s}"),
            format!("{:.3}", predicted.sequential / total_lines),
            format!("{:.3}", payload.paper_sequential() as f64 / total_lines),
            format!("{:.3}", predicted.random / total_lines),
            format!("{:.3}", payload.paper_random() as f64 / total_lines),
            format!("{:.3}", rr.total() / total_lines),
        ]);
    }
    print_table(
        &[
            "selectivity",
            "pred seq",
            "meas seq",
            "pred rand",
            "meas rand",
            "rr_acc (total)",
        ],
        &rows,
    );
    println!("\nExpected shape (paper): random misses spike below s~0.05 then decline in");
    println!("favour of sequential; rr_acc underestimates total misses and cannot split them.");
}
