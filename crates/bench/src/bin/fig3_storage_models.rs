//! **Fig. 3** — Costs of the example query on `R` (16 int columns) under
//! every combination of processing model (Volcano / bulk / compiled-"JiT")
//! and storage model (row / column / PDSM-hybrid), across a selectivity
//! sweep.
//!
//! Paper shape to reproduce: Volcano is orders of magnitude above both
//! other models at every selectivity and layout; bulk degrades as
//! selectivity grows (materialization); compiled-on-PDSM is the best line
//! across the sweep.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig3_storage_models
//!         [--rows 500000] [--reps 3] [--full]`

use pdsm_bench::{fmt_num, measure, print_table, Args};
use pdsm_exec::engine::{BulkEngine, CompiledEngine, Engine, VolcanoEngine};
use pdsm_exec::VectorizedEngine;
use pdsm_storage::Table;
use pdsm_workloads::microbench;
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let rows: usize = args.get("rows", 500_000);
    let reps: usize = args.get("reps", 3);
    let sels: Vec<f64> = if args.has("full") {
        vec![
            0.00001, 0.0001, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0,
        ]
    } else {
        vec![0.0001, 0.01, 0.1, 0.5, 1.0]
    };

    println!("Fig. 3 — storage model x processing model, {rows} tuples");
    println!(
        "(row tuple = 64 B; working set row store = {} MB)\n",
        rows * 64 / (1 << 20)
    );

    let vectorized = VectorizedEngine::default();
    let engines: Vec<(&str, &dyn Engine)> = vec![
        ("volcano", &VolcanoEngine),
        ("bulk", &BulkEngine),
        ("vector", &vectorized),
        ("jit", &CompiledEngine),
    ];

    let mut out_rows = Vec::new();
    for &sel in &sels {
        // data is regenerated per selectivity point (A = 0 matches `sel`)
        let base = microbench::generate(rows, sel, pdsm_storage::Layout::row(16), 42);
        let plan = microbench::query(sel);
        for (lname, layout) in microbench::layouts() {
            let t: Table = if lname == "row" {
                base.clone()
            } else {
                base.relayout(layout).expect("relayout")
            };
            let mut db = HashMap::new();
            db.insert("R".to_string(), t);
            for (ename, engine) in &engines {
                let (cyc, ns) = measure(reps, || engine.execute(&plan, &db).expect("run"));
                out_rows.push(vec![
                    format!("{sel}"),
                    lname.to_string(),
                    ename.to_string(),
                    fmt_num(cyc as f64),
                    fmt_num(ns as f64),
                    format!("{:.1}", cyc as f64 / rows as f64),
                ]);
            }
        }
    }
    print_table(
        &[
            "selectivity",
            "layout",
            "engine",
            "cycles",
            "ns",
            "cyc/tuple",
        ],
        &out_rows,
    );
    println!("\nExpected shape (paper): volcano >> bulk, jit; jit+hybrid lowest across sweep;");
    println!("bulk approaches jit at low selectivity, degrades toward s=1 (materialization).");
}
