//! **fig_simd** — the fused SIMD kernels and zone-map pruning, measured.
//!
//! Three hot compiled-engine kernels run the same query twice, once with
//! the chunked scalar baseline pinned (`SimdMode::Scalar`) and once with
//! runtime dispatch (`SimdMode::Auto` — SSE2/AVX2 on x86_64, the same
//! scalar chunks elsewhere):
//!
//! * **filter-count** — `count(B) where A = 0` at 1 % selectivity,
//! * **filter-sum**   — the paper's Fig. 2c shape: four fused sums under
//!   the same selection (the `fused_filter_sum_i32` kernel),
//! * **grouped-sum**  — `sum(C) group by B where A ≠ 0` (block-mask
//!   predicate evaluation feeding the raw-key grouped fold).
//!
//! The process-wide chunk counters verify the dispatch actually engaged —
//! a "speedup" with `simd_chunks == 0` would be noise, so the JSON records
//! both. A fourth scenario scans a clustered ≤1 %-selective range and
//! reports the zone blocks skipped (the pruning ratio the planner prices).
//!
//! Emits `BENCH_simd.json` (kernel medians + speedups + counter
//! engagement + pruning ratio) for the CI artifact trail.
//!
//! Usage: `cargo run -p pdsm-bench --release --bin fig_simd
//!         [--rows 1000000] [--reps 7] [--json BENCH_simd.json]`

use pdsm_bench::{fmt_num, measure, print_table, Args, Json};
use pdsm_core::{set_mode_override, Database, EngineKind, ScanCounters, SimdMode};
use pdsm_plan::builder::QueryBuilder;
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::{AggExpr, AggFunc, LogicalPlan};
use pdsm_storage::Layout;
use pdsm_workloads::microbench;

struct KernelRun {
    name: &'static str,
    scalar_ns: u64,
    simd_ns: u64,
    simd_chunks: u64,
    scalar_chunks: u64,
}

impl KernelRun {
    fn speedup(&self) -> f64 {
        if self.simd_ns == 0 {
            0.0
        } else {
            self.scalar_ns as f64 / self.simd_ns as f64
        }
    }
}

/// Median wall time of `plan` on the compiled engine under `mode`, plus
/// the chunk counters one run of it accumulates.
fn timed(db: &Database, plan: &LogicalPlan, mode: SimdMode, reps: usize) -> (u64, ScanCounters) {
    set_mode_override(Some(mode));
    let (_cycles, ns) = measure(reps, || db.run(plan, EngineKind::Compiled).expect("query"));
    db.reset_scan_stats();
    db.run(plan, EngineKind::Compiled).expect("query");
    let counters = db.scan_stats();
    (ns, counters)
}

fn main() {
    let args = Args::parse();
    let rows: usize = args.get("rows", 1_000_000);
    let reps: usize = args.get("reps", 7);
    let json_path: String = args.get("json", "BENCH_simd.json".into());
    let sel = 0.01;

    println!("fig_simd — {rows} rows, column layout, sel {sel}, compiled engine, {reps} reps\n");

    // Column layout gives every kernel a contiguous i32 slice — the shape
    // the fused kernels exist for. The equality matches are spread
    // uniformly by design, so these numbers isolate kernel throughput
    // from zone pruning (measured separately below).
    let db = Database::new();
    db.register(microbench::generate(
        rows,
        sel,
        Layout::column(microbench::N_COLS),
        42,
    ));

    let kernels: Vec<(&'static str, LogicalPlan)> = vec![
        (
            "filter-count",
            QueryBuilder::scan("R")
                .filter_with_selectivity(Expr::col(0).eq(Expr::lit(0)), sel)
                .aggregate(vec![], vec![AggExpr::new(AggFunc::Count, Expr::col(1))])
                .build(),
        ),
        ("filter-sum", microbench::query(sel)),
        (
            "grouped-sum",
            QueryBuilder::scan("R")
                .filter_with_selectivity(Expr::col(0).ne(Expr::lit(0)), 1.0 - sel)
                .aggregate(
                    vec![Expr::col(1)],
                    vec![AggExpr::new(AggFunc::Sum, Expr::col(2))],
                )
                .build(),
        ),
    ];

    let mut runs = Vec::new();
    for (name, plan) in &kernels {
        let (scalar_ns, sc) = timed(&db, plan, SimdMode::Scalar, reps);
        let (simd_ns, au) = timed(&db, plan, SimdMode::Auto, reps);
        assert_eq!(sc.simd_chunks, 0, "{name}: scalar mode ran SIMD chunks");
        runs.push(KernelRun {
            name,
            scalar_ns,
            simd_ns,
            simd_chunks: au.simd_chunks,
            scalar_chunks: au.scalar_chunks,
        });
    }

    let table: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.2}", r.scalar_ns as f64 / 1e6),
                format!("{:.2}", r.simd_ns as f64 / 1e6),
                format!("{:.2}x", r.speedup()),
                fmt_num(r.simd_chunks as f64),
                fmt_num(r.scalar_chunks as f64),
            ]
        })
        .collect();
    print_table(
        &[
            "kernel",
            "scalar(ms)",
            "auto(ms)",
            "speedup",
            "simd chunks",
            "scalar chunks",
        ],
        &table,
    );
    println!("\n(chunks counted over one run under auto dispatch; on non-x86_64 hosts auto");
    println!("resolves to the chunked scalar baseline and speedup is ~1.0 by construction)");

    // --- zone-map pruning: clustered ≤1% range scan ---
    // The non-matching A values are unique negatives in insertion order,
    // so this range predicate selects a clustered suffix — the shape zone
    // maps refute. (`A = 0` matches are uniform and defeat pruning.)
    set_mode_override(Some(SimdMode::Auto));
    let cut = -((rows as f64 * 0.99) as i32);
    let prune_plan = QueryBuilder::scan("R")
        .filter(Expr::col(0).le(Expr::lit(cut)))
        .aggregate(
            vec![],
            vec![
                AggExpr::new(AggFunc::Count, Expr::col(0)),
                AggExpr::new(AggFunc::Sum, Expr::col(1)),
            ],
        )
        .build();
    let (pruned_ns, _) = measure(reps, || {
        db.run(&prune_plan, EngineKind::Compiled).expect("query")
    });
    db.reset_scan_stats();
    db.run(&prune_plan, EngineKind::Compiled).expect("query");
    let pc = db.scan_stats();
    set_mode_override(None);
    let consulted = pc.partitions_scanned + pc.partitions_pruned;
    let pruned_ratio = if consulted == 0 {
        0.0
    } else {
        pc.partitions_pruned as f64 / consulted as f64
    };
    println!(
        "\nclustered 1% range scan: {:.2} ms, zone blocks {}/{} pruned ({:.0}%)",
        pruned_ns as f64 / 1e6,
        pc.partitions_pruned,
        consulted,
        pruned_ratio * 100.0
    );

    let json = Json::obj(vec![
        ("bench", Json::Str("fig_simd".into())),
        ("rows", Json::Int(rows as i64)),
        ("sel", Json::Num(sel)),
        ("arch", Json::Str(std::env::consts::ARCH.into())),
        (
            "kernels",
            Json::Arr(
                runs.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.into())),
                            ("scalar_ns", Json::Int(r.scalar_ns as i64)),
                            ("simd_ns", Json::Int(r.simd_ns as i64)),
                            ("speedup", Json::Num(r.speedup())),
                            ("simd_chunks", Json::Int(r.simd_chunks as i64)),
                            ("scalar_chunks", Json::Int(r.scalar_chunks as i64)),
                            ("simd_engaged", Json::Bool(r.simd_chunks > 0)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "pruning",
            Json::obj(vec![
                ("query_ns", Json::Int(pruned_ns as i64)),
                ("blocks_pruned", Json::Int(pc.partitions_pruned as i64)),
                ("blocks_total", Json::Int(consulted as i64)),
                ("pruned_ratio", Json::Num(pruned_ratio)),
            ]),
        ),
    ]);
    match std::fs::write(&json_path, json.render() + "\n") {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }
}
