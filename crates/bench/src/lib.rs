//! # pdsm-bench
//!
//! The benchmark harness: one binary per figure/table of the paper's
//! evaluation (see DESIGN.md §3 for the full index) plus Criterion
//! micro-benchmarks. This library holds the shared measurement utilities.

use std::time::Instant;

/// Read the timestamp counter (cycles); falls back to a scaled nanosecond
/// clock off x86 (see `pdsm_cost::calibrate::read_cycles`).
pub fn cycles_now() -> u64 {
    pdsm_cost::calibrate::read_cycles()
}

/// Measure `f`, returning (median cycles, median wall-nanoseconds) over
/// `reps` repetitions. The measured closure runs once as warm-up first.
pub fn measure<R>(reps: usize, mut f: impl FnMut() -> R) -> (u64, u64) {
    let mut cycles = Vec::with_capacity(reps);
    let mut nanos = Vec::with_capacity(reps);
    std::hint::black_box(f());
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let c0 = cycles_now();
        std::hint::black_box(f());
        let c1 = cycles_now();
        cycles.push(c1.wrapping_sub(c0));
        nanos.push(t0.elapsed().as_nanos() as u64);
    }
    cycles.sort_unstable();
    nanos.sort_unstable();
    (cycles[cycles.len() / 2], nanos[nanos.len() / 2])
}

/// Render an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// The `p`-quantile (0..=1) of an unsorted sample, by nearest-rank on a
/// sorted copy. Returns 0 for an empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p * s.len() as f64).ceil() as usize).clamp(1, s.len());
    s[rank - 1]
}

/// Minimal JSON value builder for the machine-readable bench artifacts
/// (no serde in the offline container). Numbers are emitted with enough
/// precision to round-trip; strings are escaped.
#[derive(Debug, Clone)]
pub enum Json {
    Num(f64),
    Int(i64),
    Str(String),
    Bool(bool),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience object constructor.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        match self {
            Json::Num(x) => {
                if x.is_finite() {
                    format!("{x}")
                } else {
                    "null".into()
                }
            }
            Json::Int(x) => format!("{x}"),
            Json::Bool(b) => format!("{b}"),
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
                out
            }
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{}", Json::Str(k.clone()).render(), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Human format for big numbers (`1.3e9` style stays readable in tables).
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if a >= 1e9 {
        format!("{:.2}e9", x / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if a >= 1e4 {
        format!("{:.1}k", x / 1e3)
    } else if a >= 1.0 {
        format!("{:.1}", x)
    } else {
        format!("{:.4}", x)
    }
}

/// Minimal `--flag value` argument parsing for the harness binaries.
pub struct Args(Vec<String>);

impl Args {
    /// Capture the process arguments.
    pub fn parse() -> Self {
        Args(std::env::args().skip(1).collect())
    }

    /// Value of `--name <v>`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.0
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.0.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// True iff `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.0.iter().any(|a| a == &flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive() {
        let (cyc, ns) = measure(3, || {
            let mut s = 0u64;
            for i in 0..10_000u64 {
                s = s.wrapping_add(i);
            }
            s
        });
        assert!(cyc > 0);
        assert!(ns > 0);
    }

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(2_500_000.0), "2.50M");
        assert_eq!(fmt_num(3.2e9), "3.20e9");
        assert_eq!(fmt_num(42_000.0), "42.0k");
        assert_eq!(fmt_num(7.5), "7.5");
        assert_eq!(fmt_num(0.01), "0.0100");
    }
}
