//! Criterion: the three processing models on the Fig.-3 microbenchmark
//! (per-layout, two selectivities) — the statistical companion to
//! `fig3_storage_models`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdsm_exec::engine::{BulkEngine, CompiledEngine, Engine, VolcanoEngine};
use pdsm_storage::Table;
use pdsm_workloads::microbench;
use std::collections::HashMap;

const ROWS: usize = 100_000;

fn db_for(layout_name: &str, sel: f64) -> HashMap<String, Table> {
    let layout = microbench::layouts()
        .into_iter()
        .find(|(n, _)| *n == layout_name)
        .unwrap()
        .1;
    let t = microbench::generate(ROWS, sel, layout, 42);
    let mut m = HashMap::new();
    m.insert("R".to_string(), t);
    m
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("engines_fig3");
    for sel in [0.01, 0.5] {
        for layout in ["row", "column", "hybrid"] {
            let db = db_for(layout, sel);
            let plan = microbench::query(sel);
            g.bench_with_input(
                BenchmarkId::new(format!("jit/{layout}"), sel),
                &sel,
                |b, _| b.iter(|| CompiledEngine.execute(&plan, &db).unwrap()),
            );
            g.bench_with_input(
                BenchmarkId::new(format!("bulk/{layout}"), sel),
                &sel,
                |b, _| b.iter(|| BulkEngine.execute(&plan, &db).unwrap()),
            );
        }
    }
    // Volcano only once (it is slow; one point suffices to show the gap).
    let db = db_for("row", 0.01);
    let plan = microbench::query(0.01);
    g.sample_size(10);
    g.bench_function("volcano/row/0.01", |b| {
        b.iter(|| VolcanoEngine.execute(&plan, &db).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
