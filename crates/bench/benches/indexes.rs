//! Criterion: index operations — the microscopic view of Fig. 10's >1000x
//! identity-select gains. `std::collections` equivalents are measured as
//! baselines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdsm_index::{HashIndex, RBTree};
use std::collections::{BTreeMap, HashMap};

const N: i64 = 100_000;

fn bench_indexes(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_build");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("hash_insert", |b| {
        b.iter(|| {
            let mut h = HashIndex::with_capacity(N as usize);
            for k in 0..N {
                h.insert(k * 7, k as u32);
            }
            h
        })
    });
    g.bench_function("std_hashmap_insert", |b| {
        b.iter(|| {
            let mut h: HashMap<i64, u32> = HashMap::with_capacity(N as usize);
            for k in 0..N {
                h.insert(k * 7, k as u32);
            }
            h
        })
    });
    g.bench_function("rbtree_insert", |b| {
        b.iter(|| {
            let mut t = RBTree::new();
            for k in 0..N {
                t.insert(k * 7, k as u32);
            }
            t
        })
    });
    g.bench_function("std_btreemap_insert", |b| {
        b.iter(|| {
            let mut t: BTreeMap<i64, u32> = BTreeMap::new();
            for k in 0..N {
                t.insert(k * 7, k as u32);
            }
            t
        })
    });
    g.finish();

    let mut h = HashIndex::with_capacity(N as usize);
    let mut t = RBTree::new();
    for k in 0..N {
        h.insert(k * 7, k as u32);
        t.insert(k * 7, k as u32);
    }
    let mut g = c.benchmark_group("index_probe");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("hash_get", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..N {
                acc += h.get(k * 7).len() as u64;
            }
            acc
        })
    });
    g.bench_function("rbtree_get", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..N {
                acc += t.get(k * 7).len() as u64;
            }
            acc
        })
    });
    g.bench_function("rbtree_range_1pct", |b| {
        b.iter(|| t.range(0, N * 7 / 100).map(|(_, r)| r.len()).sum::<usize>())
    });
    g.finish();
}

criterion_group!(benches, bench_indexes);
criterion_main!(benches);
