//! Criterion: the vectorization-vs-compilation ablation (§II-A's cited
//! Sompolski et al. study) plus the vector-size sweep — cache-resident
//! vectors have a sweet spot between per-tuple dispatch (size 1 ≈ Volcano
//! interpretation costs) and full materialization (size n ≈ bulk).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdsm_exec::engine::{BulkEngine, CompiledEngine, Engine};
use pdsm_exec::VectorizedEngine;
use pdsm_workloads::microbench;
use std::collections::HashMap;

const ROWS: usize = 200_000;

fn bench_vectorized(c: &mut Criterion) {
    let t = microbench::generate(ROWS, 0.2, microbench::pdsm_layout(), 5);
    let mut db = HashMap::new();
    db.insert("R".to_string(), t);
    let plan = microbench::query(0.2);

    let mut g = c.benchmark_group("vector_size_sweep");
    for vs in [1usize, 16, 128, 1024, 8192, 65536, ROWS] {
        g.bench_with_input(BenchmarkId::from_parameter(vs), &vs, |b, &vs| {
            let e = VectorizedEngine::with_vector_size(vs);
            b.iter(|| e.execute(&plan, &db).unwrap())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("vectorization_vs_compilation");
    g.bench_function("vectorized_1k", |b| {
        let e = VectorizedEngine::default();
        b.iter(|| e.execute(&plan, &db).unwrap())
    });
    g.bench_function("compiled", |b| {
        b.iter(|| CompiledEngine.execute(&plan, &db).unwrap())
    });
    g.bench_function("bulk", |b| {
        b.iter(|| BulkEngine.execute(&plan, &db).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_vectorized);
criterion_main!(benches);
