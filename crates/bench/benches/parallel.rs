//! Criterion: the morsel-driven parallel engine vs the sequential compiled
//! engine on the Fig.-3 microbenchmark, swept over worker counts — the
//! statistical companion to the `fig_scaling` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdsm_exec::engine::{CompiledEngine, Engine};
use pdsm_par::ParallelEngine;
use pdsm_storage::Table;
use pdsm_workloads::microbench;
use std::collections::HashMap;

const ROWS: usize = 200_000;
const SEL: f64 = 0.05;

fn db() -> HashMap<String, Table> {
    let t = microbench::generate(ROWS, SEL, microbench::pdsm_layout(), 42);
    let mut m = HashMap::new();
    m.insert("R".to_string(), t);
    m
}

fn bench_parallel_scan(c: &mut Criterion) {
    let db = db();
    let plan = microbench::query(SEL);
    let mut g = c.benchmark_group("parallel_scan_agg");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("compiled/seq", |b| {
        b.iter(|| CompiledEngine.execute(&plan, &db).unwrap())
    });
    for threads in [1usize, 2, 4, 8] {
        let engine = ParallelEngine::with_threads(threads);
        g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, _| {
            b.iter(|| engine.execute(&plan, &db).unwrap())
        });
    }
    g.finish();
}

fn bench_parallel_grouped(c: &mut Criterion) {
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_plan::expr::Expr;
    use pdsm_plan::logical::{AggExpr, AggFunc};
    let db = db();
    // group on a low-cardinality int column: exercises the per-worker hash
    // tables and the barrier merge
    let plan = QueryBuilder::scan("R")
        .aggregate(
            vec![Expr::col(1)],
            vec![
                AggExpr::count_star(),
                AggExpr::new(AggFunc::Sum, Expr::col(2)),
                AggExpr::new(AggFunc::Max, Expr::col(3)),
            ],
        )
        .build();
    let mut g = c.benchmark_group("parallel_grouped_agg");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("compiled/seq", |b| {
        b.iter(|| CompiledEngine.execute(&plan, &db).unwrap())
    });
    for threads in [1usize, 2, 4, 8] {
        let engine = ParallelEngine::with_threads(threads);
        g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, _| {
            b.iter(|| engine.execute(&plan, &db).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_scan, bench_parallel_grouped);
criterion_main!(benches);
