//! Criterion: layout-optimization cost — cut generation, BPi search (per
//! threshold), and the exhaustive OBP oracle, on the ADRC case of Table IV.

use criterion::{criterion_group, criterion_main, Criterion};
use pdsm_cost::Hierarchy;
use pdsm_layout::bpi::{obp_exhaustive, optimize_table, OptimizerConfig};
use pdsm_layout::cuts::extended_reasonable_cuts;
use pdsm_layout::workload::{Workload, WorkloadQuery};
use pdsm_plan::patterns::TableView;
use pdsm_storage::Layout;
use pdsm_workloads::sapsd;
use std::collections::HashMap;

fn setup() -> (HashMap<String, TableView>, Workload) {
    let mut views = HashMap::new();
    let schema = sapsd::adrc_schema();
    views.insert(
        "ADRC".to_string(),
        TableView {
            name: "ADRC".into(),
            n_rows: 200_000,
            col_widths: schema
                .columns()
                .iter()
                .map(|c| c.ty.width() as u64)
                .collect(),
            layout: Layout::row(schema.len()),
            stats: None,
        },
    );
    let mut w = Workload::new();
    for q in sapsd::queries(1_000_000) {
        if q.name == "Q1" || q.name == "Q3" {
            w.push(WorkloadQuery::new(
                q.name.clone(),
                q.as_plan().unwrap().clone(),
            ));
        }
    }
    (views, w)
}

fn bench_layout(c: &mut Criterion) {
    let (views, w) = setup();
    let hw = Hierarchy::nehalem();
    c.bench_function("cuts/adrc", |b| {
        b.iter(|| extended_reasonable_cuts(&w.access_groups(&views, "ADRC")))
    });
    for threshold in [1e-4, 1e-2] {
        c.bench_function(format!("bpi/adrc/t={threshold}"), |b| {
            b.iter(|| {
                optimize_table(
                    "ADRC",
                    &views,
                    &w,
                    &hw,
                    &OptimizerConfig {
                        threshold,
                        max_states: 100_000,
                    },
                )
            })
        });
    }
    c.bench_function("obp/adrc", |b| {
        b.iter(|| obp_exhaustive("ADRC", &views, &w, &hw))
    });
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
