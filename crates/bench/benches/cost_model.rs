//! Criterion: cost-model evaluation throughput and the prefetch-aware vs
//! constant-weight ablation (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, Criterion};
use pdsm_cost::{cost, misses, Atom, Hierarchy, Pattern};

fn example_pattern() -> Pattern {
    Pattern::conc(vec![
        Pattern::atom(Atom::s_trav(26_214_400, 4)),
        Pattern::atom(Atom::s_trav_cr(26_214_400, 16, 16, 0.01)),
        Pattern::atom(Atom::rr_acc(1, 32, 262_144)),
    ])
}

fn bench_cost(c: &mut Criterion) {
    let hw = Hierarchy::nehalem();
    let p = example_pattern();
    c.bench_function("estimate/prefetch_aware", |b| {
        b.iter(|| cost::estimate(&p, &hw))
    });
    c.bench_function("estimate/flat_ablation", |b| {
        b.iter(|| cost::estimate_flat(&p, &hw))
    });
    c.bench_function("cardenas", |b| {
        b.iter(|| misses::cardenas(std::hint::black_box(262_144.0), 26_214_400.0))
    });
    // a deep pattern (join-heavy plan shape)
    let deep = Pattern::seq(
        (0..32)
            .map(|i| {
                Pattern::conc(vec![
                    Pattern::atom(Atom::s_trav(1_000_000 + i, 8)),
                    Pattern::atom(Atom::rr_acc(100_000, 16, 1_000_000)),
                ])
            })
            .collect(),
    );
    c.bench_function("estimate/deep_pattern", |b| {
        b.iter(|| cost::estimate(&deep, &hw))
    });
}

criterion_group!(benches, bench_cost);
criterion_main!(benches);
