//! Criterion: simulator throughput (accesses/second) for the trace shapes
//! the Fig.-6 experiment replays.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdsm_cachesim::{run_atom, SimConfig, SimHierarchy};
use pdsm_cost::Atom;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("cachesim");
    let n = 200_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("s_trav", |b| {
        b.iter(|| run_atom(&Atom::s_trav(n, 8), SimConfig::nehalem(), 1))
    });
    g.bench_function("s_trav_cr_10pct", |b| {
        b.iter(|| run_atom(&Atom::s_trav_cr(n, 16, 16, 0.1), SimConfig::nehalem(), 2))
    });
    g.bench_function("rr_acc", |b| {
        b.iter(|| run_atom(&Atom::rr_acc(n / 10, 16, n), SimConfig::nehalem(), 3))
    });
    g.bench_function("raw_access_loop", |b| {
        b.iter(|| {
            let mut sim = SimHierarchy::new(SimConfig::nehalem());
            for i in 0..n {
                sim.access(i * 8, 8);
            }
            sim.llc_stats()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
