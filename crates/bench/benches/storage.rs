//! Criterion: storage-layer primitives — insert throughput per layout,
//! relayout cost, and typed-reader scans vs. decoded access (the reason the
//! engines never touch `Value` in inner loops).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdsm_storage::{Layout, Value};
use pdsm_workloads::microbench;

const ROWS: usize = 50_000;

fn bench_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage_insert");
    g.throughput(Throughput::Elements(ROWS as u64));
    for (name, layout) in microbench::layouts() {
        g.bench_with_input(BenchmarkId::new("insert", name), &layout, |b, layout| {
            b.iter(|| microbench::generate(ROWS, 0.1, layout.clone(), 1))
        });
    }
    g.finish();

    let row_t = microbench::generate(ROWS, 0.1, Layout::row(16), 1);
    let mut g = c.benchmark_group("storage_relayout");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("row_to_column", |b| {
        b.iter(|| row_t.relayout(Layout::column(16)).unwrap())
    });
    g.bench_function("row_to_hybrid", |b| {
        b.iter(|| row_t.relayout(microbench::pdsm_layout()).unwrap())
    });
    g.finish();

    let col_t = row_t.relayout(Layout::column(16)).unwrap();
    let mut g = c.benchmark_group("storage_scan");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("typed_reader_sum", |b| {
        let r = col_t.i32_reader(1);
        b.iter(|| {
            let mut s = 0i64;
            for i in 0..col_t.len() {
                s += r.get(i) as i64;
            }
            s
        })
    });
    g.bench_function("decoded_value_sum", |b| {
        b.iter(|| {
            let mut s = 0i64;
            for i in 0..col_t.len() {
                if let Value::Int32(v) = col_t.get(i, 1).unwrap() {
                    s += v as i64;
                }
            }
            s
        })
    });
    g.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
