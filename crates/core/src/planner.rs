//! The cost-based physical planner: `LogicalPlan` → [`PhysicalPlan`].
//!
//! This module closes the paper's loop — *model predicts, system acts*. For
//! every query the planner:
//!
//! 1. builds [`TableView`]s of the referenced tables (current layout, row
//!    counts including the live delta, optional statistics),
//! 2. emits the query's access-pattern program (`pdsm_plan::emit_pattern`,
//!    §IV-D) and prices it with the prefetch-aware cost function
//!    [`pdsm_cost::cost::estimate`] (Eq. 5–6) — the memory half `T_Mem`,
//! 3. adds a per-engine CPU term (per-tuple processing cycles of each
//!    processing model, calibrated against the Fig.-3 ratios) to score
//!    every *engine* alternative,
//! 4. prices a main-index probe + delta-tail union as an *access-path*
//!    alternative when the plan shape and catalog allow one,
//! 5. and returns the cheapest combination as a [`PhysicalPlan`], with
//!    every rejected alternative recorded for `explain()`.
//!
//! The planner never picks an index path the model scores worse than the
//! best full scan — that invariant is property-tested in
//! `tests/planner.rs`.

use crate::database::{Database, DbError, IndexCandidate};
use pdsm_cost::{cost, Atom, Hierarchy, Pattern};
use pdsm_exec::{zone_preds, VectorizedEngine};
use pdsm_index::Index;
use pdsm_plan::logical::LogicalPlan;
use pdsm_plan::patterns::{emit_pattern, TableView};
use pdsm_plan::physical::{AccessPath, CostSummary, EngineChoice, PhysicalPlan, PipelinePlan};
use pdsm_plan::selectivity::estimate_selectivity;
use std::collections::HashMap;

/// Per-tuple CPU cycles of the Volcano model: two virtual calls plus
/// `Value` boxing per operator per tuple (the paper's "function pointer
/// chasing"; Fig. 3 measures roughly this ratio over compiled).
pub const CPU_VOLCANO: f64 = 60.0;
/// Per-tuple CPU cycles of bulk processing: tight typed loops, but one
/// full pass (and materialized intermediate) per primitive.
pub const CPU_BULK: f64 = 10.0;
/// Per-tuple CPU cycles of vectorized processing: primitive dispatch
/// amortized over a vector, selection-vector bookkeeping per tuple.
pub const CPU_VECTORIZED: f64 = 4.0;
/// Per-tuple CPU cycles of the compiled (fused-pipeline) model.
pub const CPU_COMPILED: f64 = 1.5;
/// Fixed cycles to launch, barrier and join a parallel pipeline — the
/// reason tiny queries stay single-threaded.
pub const PAR_FIXED_OVERHEAD: f64 = 30_000.0;
/// Extra parallel cycles per worker (morsel-queue setup, partial merges).
pub const PAR_PER_THREAD: f64 = 2_000.0;
/// Cycles to reconstruct and residual-filter one index hit (full-row
/// decode through every layout group plus interpreted predicate).
pub const CPU_INDEX_HIT: f64 = 150.0;
/// Cycles to interpret the predicate against one decoded delta-tail row.
pub const CPU_TAIL_ROW: f64 = 60.0;
/// Result-cache admission: predicted re-execution must exceed the priced
/// copy-out (`pdsm_cost::copy_out_cycles` of the estimated result bytes)
/// by this factor. Keeps barely-profitable results out — cache churn costs
/// budget and eviction work that the model does not price.
pub const CACHE_ADMIT_FACTOR: f64 = 4.0;
/// Result-cache admission floor: plans predicted cheaper than this
/// re-execute faster than the cache's own bookkeeping (fingerprint, probe,
/// store), so they always bypass — point index probes land here.
pub const CACHE_MIN_REEXEC_CYCLES: f64 = 20_000.0;

/// The cost-based planner. [`Planner::default`] uses the calibrated
/// Nehalem hierarchy and the machine's worker count; pin `threads` for
/// deterministic plans (the explain snapshot test does).
pub struct Planner {
    /// Memory hierarchy the cost model prices against.
    pub hierarchy: Hierarchy,
    /// Worker threads the parallel engine would use.
    pub threads: usize,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            hierarchy: Hierarchy::nehalem(),
            threads: pdsm_par::default_threads(),
        }
    }
}

/// Cardinality + work propagation through one plan node.
struct WorkEst {
    /// Estimated rows flowing out of the node.
    card: f64,
    /// Total tuples processed (Σ over operators of their input rows) —
    /// the multiplier of the per-engine CPU constants.
    tuples: f64,
    /// Rows materialized at operator boundaries — what the bulk model
    /// additionally writes and re-reads.
    mat_rows: f64,
}

impl Planner {
    /// Lower `logical` against `db`'s catalog: choose engine and access
    /// path via the cost model and record every priced alternative.
    pub fn plan(&self, db: &Database, logical: &LogicalPlan) -> Result<PhysicalPlan, DbError> {
        let views = self.views_for(db, logical)?;
        let idx = db.index_candidate(logical);
        self.plan_with(db, logical, views, idx)
    }

    /// Lower against prebuilt views with no index catalog (the snapshot
    /// path): engine choice only.
    pub fn plan_views(
        &self,
        views: HashMap<String, TableView>,
        logical: &LogicalPlan,
    ) -> PhysicalPlan {
        self.build(None, logical, views, None)
    }

    fn plan_with(
        &self,
        db: &Database,
        logical: &LogicalPlan,
        views: HashMap<String, TableView>,
        idx: Option<IndexCandidate>,
    ) -> Result<PhysicalPlan, DbError> {
        Ok(self.build(Some(db), logical, views, idx))
    }

    /// [`TableView`]s of every table `logical` references: current main
    /// layout, row count covering main ∪ live delta.
    fn views_for(
        &self,
        db: &Database,
        logical: &LogicalPlan,
    ) -> Result<HashMap<String, TableView>, DbError> {
        let mut views = HashMap::new();
        for name in logical.tables() {
            if views.contains_key(name) {
                continue;
            }
            // A still-cold table plans from its checkpoint header alone
            // (schema, layout, row count) — hydrating it here would fault
            // the whole table in before the planner even decides whether
            // the scan can skip most of it.
            let view = db.with_table(name, |vt| match vt.cold_main() {
                Some(cold) => table_view(&cold.skeleton(), vt.len()),
                None => table_view(vt.main(), vt.len()),
            })?;
            views.insert(name.to_string(), view);
        }
        Ok(views)
    }

    fn build(
        &self,
        db: Option<&Database>,
        logical: &LogicalPlan,
        views: HashMap<String, TableView>,
        idx: Option<IndexCandidate>,
    ) -> PhysicalPlan {
        let emitted = emit_pattern(logical, &views);
        let mem = cost::estimate(&emitted.pattern, &self.hierarchy).total_cycles;
        let work = work_est(logical, &views);

        // --- zone-map pruning: the "partitions survived" term ---
        // Blocks the main store's zone map refutes under the root selection
        // are never touched by the compiled scan skeleton or dispensed by
        // the morsel queue, so those two engines' memory traffic and
        // per-tuple work shrink linearly with the surviving fraction.
        // Volcano/bulk/vectorized read every block and are priced unscaled.
        let (zone_blocks, zone_pruned) = zone_stats(db, logical);
        let survived = pdsm_cost::survived_fraction(zone_blocks, zone_pruned);

        // --- disk tier: faulting cold checkpoint extents ---
        // Every engine streams a cold table's extents through the buffer
        // pool the same way (zone-refuted extents skipped, resident ones
        // free), so the disk term is one constant added to every
        // alternative — it never flips an engine choice, it makes the
        // totals honest and prices scan-vs-index on equal footing.
        let (extents_total, extents_resident, extents_pruned, disk) = cold_stats(db, logical);

        // --- engine alternatives (all run the same full-scan pattern) ---
        let mut engines: Vec<(EngineChoice, CostSummary)> = Vec::new();
        engines.push((
            EngineChoice::Compiled,
            CostSummary {
                mem_cycles: mem * survived,
                cpu_cycles: CPU_COMPILED * work.tuples * survived,
                disk_cycles: disk,
            },
        ));
        if VectorizedEngine::supports(logical) {
            engines.push((
                EngineChoice::Vectorized,
                CostSummary {
                    mem_cycles: mem,
                    cpu_cycles: CPU_VECTORIZED * work.tuples,
                    disk_cycles: disk,
                },
            ));
        }
        // Bulk pays the shared pattern plus a write + re-read of every
        // materialized intermediate.
        let mat = bulk_materialization_cycles(work.mat_rows, &self.hierarchy);
        engines.push((
            EngineChoice::Bulk,
            CostSummary {
                mem_cycles: mem + mat,
                cpu_cycles: CPU_BULK * work.tuples,
                disk_cycles: disk,
            },
        ));
        engines.push((
            EngineChoice::Volcano,
            CostSummary {
                mem_cycles: mem,
                cpu_cycles: CPU_VOLCANO * work.tuples,
                disk_cycles: disk,
            },
        ));
        // Parallel splits the compiled pipeline across workers and pays a
        // fixed fork/join overhead.
        let threads = self.threads.max(1) as f64;
        engines.push((
            EngineChoice::Parallel,
            CostSummary {
                mem_cycles: mem * survived / threads,
                cpu_cycles: CPU_COMPILED * work.tuples * survived / threads
                    + PAR_FIXED_OVERHEAD
                    + PAR_PER_THREAD * threads,
                disk_cycles: disk,
            },
        ));

        let (best_engine, best_engine_cost) = engines
            .iter()
            .min_by(|a, b| a.1.total().partial_cmp(&b.1.total()).unwrap())
            .map(|(e, c)| (*e, *c))
            .expect("engine list is non-empty");

        let mut alternatives: Vec<(String, f64)> = engines
            .iter()
            .map(|(e, c)| (format!("scan/{e}"), c.total()))
            .collect();

        // --- access-path alternative: index probe + delta-tail union ---
        let mut chosen_access = AccessPath::FullScan;
        let mut chosen_cost = best_engine_cost;
        let mut probe_rows = 0.0;
        if let (Some(db), Some(cand)) = (db, idx) {
            if let Some((mut cost, hits)) = self.index_cost(db, logical, &cand, &views) {
                cost.disk_cycles = disk;
                alternatives.push(("index".to_string(), cost.total()));
                if cost.total() < chosen_cost.total() {
                    chosen_access = cand.access.clone();
                    chosen_cost = cost;
                    probe_rows = hits;
                }
            }
        }
        alternatives.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

        // --- pipelines: one per base-table scan, in scan order ---
        let mut pipelines = Vec::new();
        for (i, table) in logical.tables().into_iter().enumerate() {
            let view = &views[table];
            let delta_rows = db
                .and_then(|d| d.with_table(table, |vt| vt.live_delta_rows()).ok())
                .unwrap_or(0);
            let access = if i == 0 && chosen_access.is_indexed() {
                chosen_access.clone()
            } else {
                AccessPath::FullScan
            };
            let est_rows = if access.is_indexed() {
                probe_rows
            } else {
                view.n_rows as f64
            };
            // Zone stats belong to the scan the selection drives; an index
            // probe bypasses the scan and consults no zone map.
            let (zb, zp) = if i == 0 && !access.is_indexed() {
                (zone_blocks, zone_pruned)
            } else {
                (0, 0)
            };
            let (et, er, ep) = if i == 0 && !access.is_indexed() {
                (extents_total, extents_resident, extents_pruned)
            } else {
                (0, 0, 0)
            };
            pipelines.push(PipelinePlan {
                table: table.to_string(),
                access,
                est_rows,
                table_rows: view.n_rows,
                delta_rows,
                zone_blocks: zb,
                zone_pruned: zp,
                extents_total: et,
                extents_resident: er,
                extents_pruned: ep,
            });
        }

        // --- result-cache admission: recompute vs. copy-out ---
        // Estimated materialized size: output rows × output arity ×
        // ~16 bytes per Value. Admit only when re-running the chosen plan
        // is predicted CACHE_ADMIT_FACTOR× dearer than writing the result
        // once and reading it back — full-table SELECT *s (copy ≈ scan)
        // bypass, aggregates over big scans (copy ≈ one row) admit.
        let out_arity = logical.arity(&|t| views.get(t).map(|v| v.col_widths.len()).unwrap_or(0));
        let out_bytes = (emitted.out_rows.max(0.0) * out_arity.max(1) as f64 * 16.0) as u64;
        let copy_out = pdsm_cost::copy_out_cycles(out_bytes, &self.hierarchy);
        let cache_admit = chosen_cost.total() >= CACHE_MIN_REEXEC_CYCLES
            && chosen_cost.total() > CACHE_ADMIT_FACTOR * copy_out;

        PhysicalPlan {
            logical: logical.clone(),
            engine: best_engine,
            pipelines,
            cost: chosen_cost,
            alternatives,
            est_out_rows: emitted.out_rows,
            cache_admit,
            copy_out_cycles: copy_out,
        }
    }

    /// Price the index path: probe the index structure, reconstruct each
    /// surviving hit through every layout group, then sequentially scan
    /// the live delta tail. Returns `(cost, estimated hits)`, or `None`
    /// when the candidate's table vanished from the views.
    fn index_cost(
        &self,
        db: &Database,
        logical: &LogicalPlan,
        cand: &IndexCandidate,
        views: &HashMap<String, TableView>,
    ) -> Option<(CostSummary, f64)> {
        let view = views.get(&cand.table)?;
        let (main_rows, live_delta) = db
            .with_table(&cand.table, |vt| (vt.main().len(), vt.live_delta_rows()))
            .ok()?;
        let idx = db.index(&cand.table, cand.col)?;
        let n_main = main_rows.max(1) as u64;
        let keys = idx.key_count().max(1) as u64;
        let delta = live_delta as u64;

        // Estimated main-store hits. The probe fetches every row matching
        // the *indexed conjunct alone* — residual conjuncts filter only
        // after reconstruction — so hits must be priced from that
        // conjunct's selectivity, never the full predicate's (a highly
        // selective residual would otherwise make a near-full-table range
        // probe look cheap). A pinned hint stands in only when the
        // predicate *is* the single indexed conjunct.
        let sel = match &cand.access {
            // One key's bucket: the index's own distinct count is the best
            // estimate there is.
            AccessPath::IndexPoint { .. } => {
                single_conjunct_hint(logical).unwrap_or(1.0 / keys as f64)
            }
            _ => indexed_conjunct_selectivity(logical, cand, view).unwrap_or(1.0 / 3.0),
        };
        let hits = (sel.clamp(0.0, 1.0) * n_main as f64).ceil();
        let k = hits.max(1.0) as u64;

        let mut atoms: Vec<Pattern> = Vec::new();
        // The index structure itself.
        atoms.push(Pattern::atom(match idx.as_ref() {
            Index::Hash(_) => Atom::rr_acc(keys, 24, 1),
            Index::RBTree(_) => {
                let depth = (keys.max(2) as f64).log2().ceil() as u64;
                Atom::rr_acc(keys, 40, depth + k)
            }
        }));
        // Tuple reconstruction: every hit decodes the full row, touching
        // each layout group at a random position.
        for group in view.layout.groups() {
            let stride = view.group_stride(group);
            atoms.push(Pattern::atom(Atom::rr_acc(n_main, stride.max(1), k)));
        }
        // Delta-tail union: one sequential pass over the decoded tail.
        if delta > 0 {
            let row_w = 16 * view.col_widths.len().max(1) as u64;
            atoms.push(Pattern::atom(Atom::s_trav(delta, row_w)));
        }
        let mem = cost::estimate(&Pattern::seq(atoms), &self.hierarchy).total_cycles;
        let cpu = CPU_INDEX_HIT * hits + CPU_TAIL_ROW * delta as f64;
        Some((
            CostSummary {
                mem_cycles: mem,
                cpu_cycles: cpu,
                disk_cycles: 0.0,
            },
            hits,
        ))
    }
}

/// The planning view of one table: its main store's layout and widths
/// with the visible row count (main ∪ live delta) superimposed. Shared by
/// the database and snapshot planning paths so they can never diverge.
pub(crate) fn table_view(main: &pdsm_storage::Table, visible_rows: usize) -> TableView {
    let mut view = TableView::from_table(main);
    view.n_rows = visible_rows as u64;
    view
}

/// Zone blocks `(total, refuted)` of the root selection's main-store scan,
/// from the same `zone_preds` translation the engines prune with — so the
/// planner prices exactly the skipping that will happen. `(0, 0)` — zone
/// map not consulted — without a database, for multi-table plans (the
/// selection's columns would not be scan columns), with no refutable
/// conjunct, or over an empty main store; execution prunes nothing in
/// those cases either.
fn zone_stats(db: Option<&Database>, logical: &LogicalPlan) -> (usize, usize) {
    let (Some(db), Some(pred)) = (db, scan_selection(logical)) else {
        return (0, 0);
    };
    let tables = logical.tables();
    let [table] = tables.as_slice() else {
        return (0, 0);
    };
    db.with_table(table, |vt| {
        // Cold tables carry their zone map in the checkpoint header —
        // pruning stats come straight from it, no hydration. A zero-row
        // skeleton suffices for predicate translation, which needs only
        // column types.
        if let Some(cold) = vt.cold_main() {
            let h = cold.header();
            let (Some(zones), false) = (&h.zones, h.len == 0) else {
                return (0, 0);
            };
            let zp = zone_preds(&cold.skeleton(), std::slice::from_ref(pred));
            if zp.is_empty() {
                return (0, 0);
            }
            return zones.prune_stats(&zp);
        }
        let main = vt.main();
        if main.is_empty() {
            return (0, 0);
        }
        let zp = zone_preds(main, std::slice::from_ref(pred));
        if zp.is_empty() {
            return (0, 0);
        }
        main.zone_map().prune_stats(&zp)
    })
    .unwrap_or((0, 0))
}

/// Cold-extent residency of the root scan's table: `(extents_total,
/// resident, pruned, disk_cycles)` — all zeros for resident tables (the
/// common case), multi-table plans, or snapshot planning. Pruned extents
/// come from the same per-extent zone refutation the streaming executor
/// skips with, so the disk term prices exactly the faults the scan will
/// take: one request per layout group of each cold, non-refuted extent,
/// plus its payload bytes through [`pdsm_cost::DiskTier`].
fn cold_stats(db: Option<&Database>, logical: &LogicalPlan) -> (usize, usize, usize, f64) {
    let Some(db) = db else {
        return (0, 0, 0, 0.0);
    };
    let tables = logical.tables();
    let [table] = tables.as_slice() else {
        return (0, 0, 0, 0.0);
    };
    let Some(cold) = db
        .with_table(table, |vt| vt.cold_main().cloned())
        .ok()
        .flatten()
    else {
        return (0, 0, 0, 0.0);
    };
    let zp = scan_selection(logical)
        .map(|pred| zone_preds(&cold.skeleton(), std::slice::from_ref(pred)))
        .unwrap_or_default();
    let resident = cold.resident_extents();
    let h = cold.header();
    let (mut n_res, mut n_pruned, mut requests, mut bytes) = (0usize, 0usize, 0u64, 0u64);
    for (e, res) in resident.iter().enumerate() {
        if *res {
            n_res += 1;
        } else if cold.extent_refuted(e, &zp) {
            n_pruned += 1;
        } else {
            requests += h.dir[e].len() as u64;
            bytes += h.dir[e].iter().map(|&(_, plen)| plen).sum::<u64>();
        }
    }
    let disk = pdsm_cost::DiskTier::default().fault_cycles(requests, bytes);
    (cold.n_extents(), n_res, n_pruned, disk)
}

/// The predicate of the selection sitting *directly over the scan* —
/// its columns are scan columns, which is what `zone_preds` requires.
/// Descends through every single-input node; joins yield `None`.
fn scan_selection(plan: &LogicalPlan) -> Option<&pdsm_plan::expr::Expr> {
    match plan {
        LogicalPlan::Select { input, pred, .. } => {
            if matches!(input.as_ref(), LogicalPlan::Scan { .. }) {
                Some(pred)
            } else {
                scan_selection(input)
            }
        }
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => scan_selection(input),
        _ => None,
    }
}

/// The root selection's pinned selectivity, if the plan is a (possibly
/// projected) selection over a scan with a `sel_hint`.
fn selection_hint(plan: &LogicalPlan) -> Option<f64> {
    match plan {
        LogicalPlan::Project { input, .. } => selection_hint(input),
        LogicalPlan::Select { sel_hint, .. } => *sel_hint,
        _ => None,
    }
}

/// The root selection's predicate (the one an index candidate came from).
fn selection_pred(plan: &LogicalPlan) -> Option<&pdsm_plan::expr::Expr> {
    match plan {
        LogicalPlan::Project { input, .. } => selection_pred(input),
        LogicalPlan::Select { pred, .. } => Some(pred),
        _ => None,
    }
}

/// The root selection's pinned `sel_hint`, but only when the predicate is
/// a single conjunct — then the hint describes exactly what the probe
/// fetches. With residual conjuncts the hint covers the whole predicate
/// and would underprice the probe.
fn single_conjunct_hint(plan: &LogicalPlan) -> Option<f64> {
    let pred = selection_pred(plan)?;
    if crate::database::conjuncts(pred).len() == 1 {
        selection_hint(plan)
    } else {
        None
    }
}

/// Selectivity of the range conjunct the candidate's index serves,
/// estimated in isolation (see [`Planner::index_cost`] for why the full
/// predicate's selectivity must not be used).
fn indexed_conjunct_selectivity(
    plan: &LogicalPlan,
    cand: &IndexCandidate,
    view: &TableView,
) -> Option<f64> {
    if let Some(h) = single_conjunct_hint(plan) {
        return Some(h);
    }
    let pred = selection_pred(plan)?;
    for c in crate::database::conjuncts(pred) {
        let Some((col, op, _)) = crate::database::simple_cmp(c) else {
            continue;
        };
        if col == cand.col && !matches!(op, pdsm_plan::expr::CmpOp::Eq) {
            return Some(estimate_selectivity(c, view.stats.as_ref()));
        }
    }
    None
}

/// Cycles bulk processing spends writing and re-reading `rows`
/// materialized 8-byte intermediates.
fn bulk_materialization_cycles(rows: f64, hw: &Hierarchy) -> f64 {
    if rows < 1.0 {
        return 0.0;
    }
    let n = rows as u64;
    let p = Pattern::seq(vec![
        Pattern::atom(Atom::s_trav(n, 8)),
        Pattern::atom(Atom::s_trav(n, 8)),
    ]);
    cost::estimate(&p, hw).total_cycles
}

/// Leftmost base-table cardinality under `plan` (join match probability).
fn base_rows(plan: &LogicalPlan, views: &HashMap<String, TableView>) -> f64 {
    match plan {
        LogicalPlan::Scan { table } => views.get(table).map(|v| v.n_rows as f64).unwrap_or(1.0),
        LogicalPlan::Select { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => base_rows(input, views),
        LogicalPlan::Join { left, .. } => base_rows(left, views),
    }
}

/// Stats of the base table feeding `plan`'s pipeline, for selectivity.
fn base_stats<'a>(
    plan: &LogicalPlan,
    views: &'a HashMap<String, TableView>,
) -> Option<&'a pdsm_plan::selectivity::TableStatsView> {
    match plan {
        LogicalPlan::Scan { table } => views.get(table).and_then(|v| v.stats.as_ref()),
        LogicalPlan::Select { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => base_stats(input, views),
        LogicalPlan::Join { left, .. } => base_stats(left, views),
    }
}

/// Propagate cardinality, tuple-processing work and materialized rows
/// through the plan (the CPU side of engine scoring; the memory side comes
/// from the emitted pattern).
fn work_est(plan: &LogicalPlan, views: &HashMap<String, TableView>) -> WorkEst {
    match plan {
        LogicalPlan::Scan { table } => {
            let n = views.get(table).map(|v| v.n_rows as f64).unwrap_or(0.0);
            WorkEst {
                card: n,
                tuples: n,
                mat_rows: 0.0,
            }
        }
        LogicalPlan::Select {
            input,
            pred,
            sel_hint,
        } => {
            let mut w = work_est(input, views);
            let sel = sel_hint
                .unwrap_or_else(|| estimate_selectivity(pred, base_stats(input, views)))
                .clamp(0.0, 1.0);
            w.tuples += w.card;
            w.card *= sel;
            w.mat_rows += w.card;
            w
        }
        LogicalPlan::Project { input, .. } => {
            let mut w = work_est(input, views);
            w.tuples += w.card;
            w.mat_rows += w.card;
            w
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let mut w = work_est(input, views);
            w.tuples += w.card;
            let groups = if group_by.is_empty() {
                1.0
            } else {
                (100f64.powi(group_by.len() as i32)).min(w.card.max(1.0))
            };
            w.mat_rows += groups;
            w.card = groups;
            w
        }
        LogicalPlan::Join { left, right, .. } => {
            let l = work_est(left, views);
            let r = work_est(right, views);
            let match_prob = (l.card / base_rows(left, views).max(1.0)).clamp(0.0, 1.0);
            WorkEst {
                card: r.card * match_prob,
                tuples: l.tuples + r.tuples + l.card + r.card,
                mat_rows: l.mat_rows + r.mat_rows + l.card,
            }
        }
        LogicalPlan::Sort { input, .. } => {
            let mut w = work_est(input, views);
            w.tuples += w.card * w.card.max(2.0).log2();
            w.mat_rows += w.card;
            w
        }
        LogicalPlan::Limit { input, n } => {
            let mut w = work_est(input, views);
            w.card = w.card.min(*n as f64);
            w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::IndexKind;
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_plan::expr::Expr;
    use pdsm_plan::logical::{AggExpr, AggFunc};
    use pdsm_storage::{ColumnDef, DataType, Schema, Value};

    fn db(rows: i32) -> Database {
        let db = Database::new();
        let cols: Vec<ColumnDef> = (0..8)
            .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int32))
            .collect();
        db.create_table("r", Schema::new(cols)).unwrap();
        for i in 0..rows {
            let row: Vec<Value> = (0..8).map(|c| Value::Int32(i * 8 + c)).collect();
            db.insert("r", &row).unwrap();
        }
        db
    }

    fn planner() -> Planner {
        Planner {
            threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn scan_heavy_query_prefers_compiled_on_one_thread() {
        let db = db(5_000);
        let plan = QueryBuilder::scan("r")
            .filter(Expr::col(0).gt(Expr::lit(10)))
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(1))])
            .build();
        let phys = planner().plan(&db, &plan).unwrap();
        assert_eq!(phys.engine, EngineChoice::Compiled);
        assert_eq!(*phys.access(), AccessPath::FullScan);
        // every engine alternative priced
        for e in ["compiled", "vectorized", "bulk", "volcano", "parallel"] {
            assert!(
                phys.cost_of(&format!("scan/{e}")).is_some(),
                "missing alternative {e}"
            );
        }
    }

    #[test]
    fn many_threads_flip_large_scans_to_parallel() {
        let db = db(20_000);
        let plan = QueryBuilder::scan("r")
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(1))])
            .build();
        let many = Planner {
            threads: 16,
            ..Default::default()
        };
        let phys = many.plan(&db, &plan).unwrap();
        assert_eq!(phys.engine, EngineChoice::Parallel);
    }

    #[test]
    fn identity_select_takes_the_index() {
        let db = db(5_000);
        db.create_index("r", "c0", IndexKind::Hash).unwrap();
        let plan = QueryBuilder::scan("r")
            .filter(Expr::col(0).eq(Expr::lit(80)))
            .build();
        let phys = planner().plan(&db, &plan).unwrap();
        assert!(phys.access().is_indexed(), "{}", phys.explain());
        let scan = phys.best_scan_cost().unwrap();
        assert!(
            phys.cost.total() <= scan,
            "index chosen but scored worse: {} vs {scan}",
            phys.cost.total()
        );
    }

    #[test]
    fn unknown_table_is_reported() {
        let db = Database::new();
        let plan = QueryBuilder::scan("nope").build();
        assert!(matches!(
            planner().plan(&db, &plan),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn join_plans_get_one_pipeline_per_scan() {
        let db = {
            let db = db(500);
            let cols: Vec<ColumnDef> = (0..4)
                .map(|i| ColumnDef::new(format!("d{i}"), DataType::Int32))
                .collect();
            db.create_table("s", Schema::new(cols)).unwrap();
            for i in 0..200 {
                db.insert(
                    "s",
                    &(0..4).map(|c| Value::Int32(i * 4 + c)).collect::<Vec<_>>(),
                )
                .unwrap();
            }
            db
        };
        let plan = QueryBuilder::scan("r")
            .join(QueryBuilder::scan("s").build(), Expr::col(0), Expr::col(0))
            .aggregate(vec![], vec![AggExpr::count_star()])
            .build();
        let phys = planner().plan(&db, &plan).unwrap();
        assert_eq!(phys.pipelines.len(), 2);
        assert_eq!(phys.pipelines[0].table, "r");
        assert_eq!(phys.pipelines[1].table, "s");
        // vectorized cannot run joins, so it must not be priced
        assert!(phys.cost_of("scan/vectorized").is_none());
    }
}
