//! The database catalog: versioned tables, indexes, engines and DML.
//!
//! Every table lives as a [`pdsm_txn::VersionedTable`]: an immutable
//! read-optimized main store plus an append-only delta with tombstones.
//! DML ([`Database::insert`] / [`Database::update`] / [`Database::delete`])
//! appends to the delta; queries see main ∪ delta − tombstones through the
//! engines' [`pdsm_exec::Overlay`] support; [`Database::merge`] (or
//! [`Database::relayout`], which is a merge under a new layout) folds the
//! delta into a fresh main store and refreshes secondary indexes.
//!
//! Queries enter through [`Database::execute`]: the cost-based planner
//! (`crate::planner`) lowers the logical plan to a [`PhysicalPlan`] —
//! choosing engine and access path via `pdsm_cost::estimate` — caches it
//! keyed on the tables' merge generations, and dispatches. [`Database::run`]
//! remains as the forced-engine escape hatch benchmarks and differential
//! tests use.

use crate::maintenance::{
    choose_layout, AdviseInputs, BuildJob, MaintenanceConfig, MaintenanceMode,
    MaintenanceScheduler, MaintenanceStats,
};
use crate::planner::Planner;
use pdsm_exec::engine::{
    BulkEngine, CompiledEngine, Engine, ExecError, Overlay, TableProvider, VolcanoEngine,
};
use pdsm_exec::{QueryOutput, VectorizedEngine};
use pdsm_index::{HashIndex, Index, RBTree};
use pdsm_layout::workload::{Workload, WorkloadQuery};
use pdsm_par::ParallelEngine;
use pdsm_plan::expr::{CmpOp, Expr};
use pdsm_plan::logical::LogicalPlan;
use pdsm_plan::physical::{AccessPath, EngineChoice, PhysicalPlan};
use pdsm_storage::{ColId, DataType, Layout, Schema, Table, Value};
use pdsm_txn::{MergeStats, RowId, Snapshot, VersionStats, VersionedTable};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Which execution engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Tuple-at-a-time iterators (the paper's CPU-inefficient baseline).
    Volcano,
    /// Column-at-a-time primitives with full materialization.
    Bulk,
    /// Data-centric fused pipelines (the paper's model).
    Compiled,
    /// Block-at-a-time processing with cache-resident selection vectors
    /// (MonetDB/X100 model). Supports single-table scan pipelines only —
    /// check [`EngineKind::supports`] before dispatching joins or sorts.
    Vectorized,
    /// Morsel-driven parallel execution of the compiled pipelines
    /// (`pdsm-par`). Thread count comes from `PDSM_THREADS` or the
    /// machine; use [`pdsm_par::ParallelEngine::with_threads`] directly to
    /// pin it per query.
    Parallel,
}

/// The default parallel engine instance (automatic thread resolution).
static PARALLEL: ParallelEngine = ParallelEngine::new();
/// The default vectorized engine instance (X100's ~1k vector sweet spot).
static VECTORIZED: VectorizedEngine = VectorizedEngine { vector_size: 1024 };

impl EngineKind {
    /// The engine object.
    pub fn engine(&self) -> &'static dyn Engine {
        match self {
            EngineKind::Volcano => &VolcanoEngine,
            EngineKind::Bulk => &BulkEngine,
            EngineKind::Compiled => &CompiledEngine,
            EngineKind::Vectorized => &VECTORIZED,
            EngineKind::Parallel => &PARALLEL,
        }
    }

    /// All engines, for differential testing. Test helpers should iterate
    /// this rather than naming engines, so new engines are covered
    /// everywhere automatically.
    pub fn all() -> [EngineKind; 5] {
        [
            EngineKind::Volcano,
            EngineKind::Bulk,
            EngineKind::Compiled,
            EngineKind::Vectorized,
            EngineKind::Parallel,
        ]
    }

    /// Can this engine execute `plan`? Everything but the vectorized
    /// engine handles the full operator vocabulary; the vectorized engine
    /// is limited to single-table scan pipelines. Differential drivers
    /// iterate [`EngineKind::all`] and skip unsupported combinations; the
    /// planner never selects an engine that cannot run the plan.
    pub fn supports(&self, plan: &LogicalPlan) -> bool {
        match self {
            EngineKind::Vectorized => VectorizedEngine::supports(plan),
            _ => true,
        }
    }
}

impl From<EngineChoice> for EngineKind {
    fn from(c: EngineChoice) -> Self {
        match c {
            EngineChoice::Volcano => EngineKind::Volcano,
            EngineChoice::Bulk => EngineKind::Bulk,
            EngineChoice::Vectorized => EngineKind::Vectorized,
            EngineChoice::Compiled => EngineKind::Compiled,
            EngineChoice::Parallel => EngineKind::Parallel,
        }
    }
}

impl From<EngineKind> for EngineChoice {
    fn from(k: EngineKind) -> Self {
        match k {
            EngineKind::Volcano => EngineChoice::Volcano,
            EngineKind::Bulk => EngineChoice::Bulk,
            EngineKind::Vectorized => EngineChoice::Vectorized,
            EngineKind::Compiled => EngineChoice::Compiled,
            EngineKind::Parallel => EngineChoice::Parallel,
        }
    }
}

/// Index flavor (Fig. 10 uses hash indexes for primary keys and an RB-tree
/// on `VBAP(VBELN)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Hash,
    RBTree,
}

/// Database-level error.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    DuplicateTable(String),
    UnknownTable(String),
    Storage(pdsm_storage::Error),
    Exec(ExecError),
    /// Index requested on a non-indexable column (floats).
    NotIndexable {
        table: String,
        column: String,
    },
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::DuplicateTable(t) => write!(f, "table {t:?} already exists"),
            DbError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::Exec(e) => write!(f, "execution error: {e}"),
            DbError::NotIndexable { table, column } => {
                write!(f, "column {table}.{column} cannot be indexed")
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<pdsm_storage::Error> for DbError {
    fn from(e: pdsm_storage::Error) -> Self {
        DbError::Storage(e)
    }
}

impl From<ExecError> for DbError {
    fn from(e: ExecError) -> Self {
        DbError::Exec(e)
    }
}

/// Upper bound on cached physical plans; the cache is cleared wholesale
/// when it fills (plans are cheap to recompute).
const PLAN_CACHE_CAP: usize = 256;
/// Upper bound on *distinct* plans the observed workload records;
/// frequencies of already-recorded plans keep counting past it.
const OBSERVED_CAP: usize = 512;

/// One cached lowering: valid while the catalog shape and every referenced
/// table's `(generation, delta_ops)` fingerprint are unchanged — the merge
/// generation counter `pdsm-txn` maintains is exactly the invalidation
/// token the cache needs.
struct CachedPlan {
    epoch: u64,
    deps: Vec<(String, u64, u64)>,
    phys: Arc<PhysicalPlan>,
}

/// The observed workload plus an O(1) dedup index over it, so recording a
/// repeat plan on the execute hot path never walks the query list.
#[derive(Default)]
struct ObservedTraffic {
    workload: Workload,
    /// `format!("{plan:?}")` → position in `workload.queries`.
    by_key: HashMap<String, usize>,
}

/// An in-memory database: catalog of versioned tables + secondary indexes.
pub struct Database {
    tables: HashMap<String, VersionedTable>,
    /// `(table, column) → index`. Indexes cover the main store only and
    /// are rebuilt by [`Database::merge`]; the indexed execution path
    /// unions probe hits with a scan of the live delta tail, so identity
    /// selects stay indexed under write load.
    indexes: HashMap<(String, ColId), Index>,
    /// Bumped by every catalog-shape change (table created/registered,
    /// index created/dropped); part of the plan-cache validity key.
    catalog_epoch: u64,
    /// Physical plans keyed by the logical plan's rendering.
    plan_cache: Mutex<HashMap<String, CachedPlan>>,
    /// Every plan routed through [`Database::execute`], deduplicated with
    /// frequencies — the observed traffic `relayout`/merge re-advise from.
    observed: Mutex<ObservedTraffic>,
    /// The background merge scheduler (see [`crate::maintenance`]): every
    /// DML call consults it, so merges run off the write path.
    maintenance: MaintenanceScheduler,
}

impl Default for Database {
    /// Empty database; maintenance policy comes from the environment
    /// (`PDSM_MERGE`, `PDSM_MERGE_THRESHOLD`).
    fn default() -> Self {
        Self::with_maintenance(MaintenanceConfig::from_env())
    }
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty database with an explicit maintenance policy (tests and
    /// embedders that must not depend on the process environment).
    pub fn with_maintenance(cfg: MaintenanceConfig) -> Self {
        Database {
            tables: HashMap::new(),
            indexes: HashMap::new(),
            catalog_epoch: 0,
            plan_cache: Mutex::new(HashMap::new()),
            observed: Mutex::new(ObservedTraffic::default()),
            maintenance: MaintenanceScheduler::new(cfg),
        }
    }

    /// Create a table in row (N-ary) layout.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), DbError> {
        let layout = Layout::row(schema.len());
        self.create_table_with_layout(name, schema, layout)
    }

    /// Adopt an already-built table (e.g. from a workload generator) as the
    /// generation-0 main store. Replaces any existing table of the same
    /// name; indexes on the old table are dropped.
    pub fn register(&mut self, table: Table) {
        let name = table.name().to_string();
        self.indexes.retain(|(t, _), _| t != &name);
        self.tables.insert(name, VersionedTable::from_table(table));
        self.catalog_epoch += 1;
    }

    /// Create a table with an explicit layout.
    pub fn create_table_with_layout(
        &mut self,
        name: &str,
        schema: Schema,
        layout: Layout,
    ) -> Result<(), DbError> {
        if self.tables.contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_string()));
        }
        let t = VersionedTable::with_layout(name, schema, layout)?;
        self.tables.insert(name.to_string(), t);
        self.catalog_epoch += 1;
        Ok(())
    }

    /// The versioned table called `name`.
    pub fn versioned(&self, name: &str) -> Result<&VersionedTable, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    fn versioned_mut(&mut self, name: &str) -> Result<&mut VersionedTable, DbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// The read-optimized main store of `name`. Excludes pending delta
    /// rows — query through [`Database::run`] (or a snapshot) to see those.
    pub fn get_table(&self, name: &str) -> Result<&Table, DbError> {
        Ok(self.versioned(name)?.main())
    }

    /// Mutable access to the main store (bulk loading). A pending delta is
    /// merged first (rebuilding indexes), since delta row addressing is
    /// relative to the main store. Note that direct main-store edits are
    /// not reflected in existing indexes or snapshots.
    pub fn get_table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        if self.versioned(name)?.has_delta() {
            self.merge(name)?;
        }
        Ok(self.versioned_mut(name)?.main_mut()?)
    }

    /// Table names in the catalog.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Append a row to `table`'s delta. Returns its row id (stable until
    /// the next merge). Visible to every subsequent query.
    pub fn insert(&mut self, table: &str, values: &[Value]) -> Result<RowId, DbError> {
        self.maintain(table)?;
        Ok(self.versioned_mut(table)?.insert(values)?)
    }

    /// Append many rows atomically.
    pub fn insert_batch(
        &mut self,
        table: &str,
        rows: &[Vec<Value>],
    ) -> Result<Vec<RowId>, DbError> {
        self.maintain(table)?;
        Ok(self.versioned_mut(table)?.insert_batch(rows)?)
    }

    /// Overwrite one cell of a visible row (tombstone + re-append).
    /// Returns the row's new id.
    ///
    /// Never runs the maintenance step: `row` is a caller-held id, and a
    /// merge inside the call would renumber it out from under the caller
    /// (see [`Database::insert`] for where maintenance runs).
    pub fn update(
        &mut self,
        table: &str,
        row: RowId,
        column: &str,
        value: &Value,
    ) -> Result<RowId, DbError> {
        let vt = self.versioned_mut(table)?;
        let col = vt.schema().col_id(column)?;
        Ok(vt.update(row, col, value)?)
    }

    /// Tombstone one visible row of `table`. Like [`Database::update`],
    /// never runs the maintenance step (the id argument must stay valid).
    pub fn delete(&mut self, table: &str, row: RowId) -> Result<(), DbError> {
        Ok(self.versioned_mut(table)?.delete(row)?)
    }

    /// Fold `table`'s delta into a fresh main store (current layout) and
    /// rebuild its secondary indexes.
    pub fn merge(&mut self, table: &str) -> Result<MergeStats, DbError> {
        let stats = self.versioned_mut(table)?.merge()?;
        self.rebuild_indexes(table)?;
        Ok(stats)
    }

    /// Merge every table with a pending delta.
    pub fn merge_all(&mut self) -> Result<(), DbError> {
        let names: Vec<String> = self
            .tables
            .iter()
            .filter(|(_, vt)| vt.has_delta())
            .map(|(n, _)| n.clone())
            .collect();
        for n in names {
            self.merge(&n)?;
        }
        Ok(())
    }

    /// The maintenance step every *insert* runs before applying its op:
    /// catch up finished background builds (replay + swap, O(ops since
    /// cut)), then check the written table against its merge threshold —
    /// crossing it either merges inline ([`MaintenanceMode::Sync`]) or
    /// pins a cut and hands the O(table) fold to the background worker.
    ///
    /// Only id-free entry points (inserts, [`Database::poll_maintenance`],
    /// [`Database::flush_maintenance`]) run this, and they run it *before*
    /// their own op. That yields a workable id contract under automatic
    /// merging: row ids resolved after a call that can merge remain valid
    /// through any run of `update`/`delete` calls until the next such
    /// call. Drivers that cache ids longer must refresh them when
    /// [`VersionedTable::generation`] moves.
    fn maintain(&mut self, table: &str) -> Result<(), DbError> {
        self.poll_maintenance()?;
        let vt = self.versioned(table)?;
        if !self.maintenance.wants_merge(table, vt.delta_ops()) || vt.has_pending_merge() {
            return Ok(());
        }
        // `wants_merge` returned true, so the mode is Sync or Background.
        if self.maintenance.config().mode == MaintenanceMode::Sync {
            let advise = self.advise_inputs(table);
            let current = self.versioned(table)?.main().layout().clone();
            let (layout, advised) = choose_layout(
                table,
                current,
                advise.as_ref(),
                &pdsm_cost::Hierarchy::nehalem(),
                &pdsm_layout::bpi::OptimizerConfig::default(),
            );
            self.versioned_mut(table)?.merge_with_layout(layout)?;
            self.rebuild_indexes(table)?;
            self.maintenance.note_sync_merge(advised);
        } else {
            let advise = self.advise_inputs(table);
            let vt = self.versioned_mut(table)?;
            let layout = vt.main().layout().clone();
            let Ok(ticket) = vt.begin_merge() else {
                return Ok(()); // already pending (raced an explicit begin)
            };
            self.maintenance.launch(BuildJob {
                table: table.to_string(),
                ticket,
                layout,
                advise,
            });
        }
        Ok(())
    }

    /// The advisor inputs a merge of `table` ships to the worker: observed
    /// workload + statistics-free table views. `None` when advising is off
    /// or nothing observed touches the table.
    fn advise_inputs(&self, table: &str) -> Option<AdviseInputs> {
        if !self.maintenance.config().advise_on_merge {
            return None;
        }
        let workload = self.observed_workload();
        if !workload
            .queries
            .iter()
            .any(|q| q.plan.tables().contains(&table))
        {
            return None;
        }
        let views = crate::LayoutAdvisor::default().views(self);
        Some(AdviseInputs { views, workload })
    }

    /// Apply every background build that has finished, without blocking:
    /// replay post-cut ops, swap the fresh main in, rebuild indexes.
    /// Returns the merges applied. Stale builds (an explicit merge won the
    /// race) are discarded and counted in [`Database::maintenance_stats`].
    pub fn poll_maintenance(&mut self) -> Result<Vec<(String, MergeStats)>, DbError> {
        let mut out = Vec::new();
        let (finished, orphans) = self.maintenance.drain_done();
        // Tables whose worker died before delivering a build: clear their
        // pending cuts so automatic merging resumes (a fresh worker is
        // spawned on the next launch).
        for t in orphans {
            if let Some(vt) = self.tables.get_mut(&t) {
                vt.abort_merge();
            }
            self.maintenance.note_discarded();
        }
        for done in finished {
            match done.result {
                Ok(built) => match self.tables.get_mut(&done.table) {
                    Some(vt) => match vt.finish_merge(built) {
                        Ok(stats) => {
                            self.rebuild_indexes(&done.table)?;
                            self.maintenance.note_applied(done.advised);
                            out.push((done.table, stats));
                        }
                        Err(_) => self.maintenance.note_discarded(),
                    },
                    None => self.maintenance.note_discarded(), // table replaced
                },
                Err(_) => {
                    // Build failed; clear the pending cut so merges can run.
                    if let Some(vt) = self.tables.get_mut(&done.table) {
                        vt.abort_merge();
                    }
                    self.maintenance.note_discarded();
                }
            }
        }
        Ok(out)
    }

    /// Block until every in-flight background build is applied (or
    /// discarded). The deterministic quiesce point tests and benchmarks
    /// use; returns the merges applied.
    pub fn flush_maintenance(&mut self) -> Result<Vec<(String, MergeStats)>, DbError> {
        let mut out = self.poll_maintenance()?;
        while self.maintenance.in_flight() > 0 {
            if !self.maintenance.wait_one() {
                // Worker died: reclaim the orphaned cuts.
                for t in self.maintenance.take_in_flight() {
                    if let Some(vt) = self.tables.get_mut(&t) {
                        vt.abort_merge();
                    }
                    self.maintenance.note_discarded();
                }
                break;
            }
            out.extend(self.poll_maintenance()?);
        }
        Ok(out)
    }

    /// What the scheduler has done so far.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.maintenance.stats()
    }

    /// The active maintenance policy.
    pub fn maintenance_config(&self) -> &MaintenanceConfig {
        self.maintenance.config()
    }

    /// Adjust the maintenance policy in place (mode, thresholds, advice).
    /// Takes effect from the next write.
    pub fn maintenance_config_mut(&mut self) -> &mut MaintenanceConfig {
        self.maintenance.config_mut()
    }

    /// Set the merge threshold: globally (`table = None`) or for one table.
    pub fn set_merge_threshold(&mut self, table: Option<&str>, delta_ops: u64) {
        let cfg = self.maintenance.config_mut();
        match table {
            Some(t) => {
                cfg.per_table.insert(t.to_string(), delta_ops);
            }
            None => cfg.merge_threshold = delta_ops,
        }
    }

    /// Version-chain statistics for `table` (see `pdsm_txn::registry`):
    /// live main stores, pinned generations, bytes held by superseded
    /// versions.
    pub fn version_stats(&self, table: &str) -> Result<VersionStats, DbError> {
        Ok(self.versioned(table)?.version_stats())
    }

    /// Rebuild `table` under `layout`: a merge into the new layout. With an
    /// empty delta this is a pure relayout and row ids are stable (the
    /// property the index tests rely on); with a pending delta the delta is
    /// folded in and ids renumber. Indexes are rebuilt either way.
    pub fn relayout(&mut self, table: &str, layout: Layout) -> Result<(), DbError> {
        self.versioned_mut(table)?.merge_with_layout(layout)?;
        self.rebuild_indexes(table)?;
        Ok(())
    }

    /// Create (and backfill) an index on `table.column`. A pending delta is
    /// merged first so the index covers every visible row.
    pub fn create_index(
        &mut self,
        table: &str,
        column: &str,
        kind: IndexKind,
    ) -> Result<(), DbError> {
        if self.versioned(table)?.has_delta() {
            self.merge(table)?;
        }
        let t = self.get_table(table)?;
        let col = t.schema().col_id(column)?;
        let ty = t.schema().columns()[col].ty;
        if ty == DataType::Float64 {
            return Err(DbError::NotIndexable {
                table: table.to_string(),
                column: column.to_string(),
            });
        }
        let idx = build_index(t, col, kind);
        self.indexes.insert((table.to_string(), col), idx);
        self.catalog_epoch += 1;
        Ok(())
    }

    /// Re-derive every index on `table` from its (new) main store.
    fn rebuild_indexes(&mut self, table: &str) -> Result<(), DbError> {
        let cols: Vec<ColId> = self
            .indexes
            .keys()
            .filter(|(t, _)| t == table)
            .map(|(_, c)| *c)
            .collect();
        if cols.is_empty() {
            return Ok(());
        }
        let t = self.versioned(table)?.main();
        let rebuilt: Vec<(ColId, Index)> = cols
            .into_iter()
            .map(|c| {
                let kind = match self.indexes[&(table.to_string(), c)] {
                    Index::Hash(_) => IndexKind::Hash,
                    Index::RBTree(_) => IndexKind::RBTree,
                };
                (c, build_index(t, c, kind))
            })
            .collect();
        for (c, idx) in rebuilt {
            self.indexes.insert((table.to_string(), c), idx);
        }
        Ok(())
    }

    /// Drop the index on `table.column` if present.
    pub fn drop_index(&mut self, table: &str, column: &str) -> Result<(), DbError> {
        let t = self.get_table(table)?;
        let col = t.schema().col_id(column)?;
        self.indexes.remove(&(table.to_string(), col));
        self.catalog_epoch += 1;
        Ok(())
    }

    /// The index on `(table, col)`, if any.
    pub fn index(&self, table: &str, col: ColId) -> Option<&Index> {
        self.indexes.get(&(table.to_string(), col))
    }

    /// Execute `plan` with the chosen engine, without index acceleration —
    /// the forced-engine escape hatch benchmarks and differential tests
    /// use. Routine queries should go through [`Database::execute`].
    pub fn run(&self, plan: &LogicalPlan, engine: EngineKind) -> Result<QueryOutput, DbError> {
        Ok(engine.engine().execute(plan, self)?)
    }

    /// Execute `plan` through the cost-based planner: lower it to a
    /// [`PhysicalPlan`] (cached per catalog/generation fingerprint), record
    /// it in the observed workload, and dispatch to the chosen engine or
    /// index probe. Results are byte-identical to every fixed engine.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<QueryOutput, DbError> {
        // One rendering serves both the plan cache and the observed-
        // workload dedup — it is the only per-plan string work on a
        // cache-hit execute.
        let key = format!("{plan:?}");
        let phys = self.plan_query_keyed(plan, &key)?;
        self.record_observed(plan, key);
        self.execute_physical(&phys)
    }

    /// Lower `plan` to its [`PhysicalPlan`] without executing it. Cached:
    /// repeated calls return the same `Arc` until a referenced table's
    /// merge generation or delta fingerprint moves, or the catalog changes
    /// shape (table registered, index created/dropped).
    pub fn plan_query(&self, plan: &LogicalPlan) -> Result<Arc<PhysicalPlan>, DbError> {
        self.plan_query_keyed(plan, &format!("{plan:?}"))
    }

    fn plan_query_keyed(
        &self,
        plan: &LogicalPlan,
        key: &str,
    ) -> Result<Arc<PhysicalPlan>, DbError> {
        let mut deps: Vec<(String, u64, u64)> = Vec::new();
        for t in plan.tables() {
            if deps.iter().any(|(n, _, _)| n == t) {
                continue;
            }
            let vt = self.versioned(t)?;
            deps.push((t.to_string(), vt.generation(), vt.delta_ops()));
        }
        {
            let cache = self.plan_cache.lock().unwrap();
            if let Some(c) = cache.get(key) {
                if c.epoch == self.catalog_epoch && c.deps == deps {
                    return Ok(c.phys.clone());
                }
            }
        }
        let phys = Arc::new(Planner::default().plan(self, plan)?);
        let mut cache = self.plan_cache.lock().unwrap();
        if cache.len() >= PLAN_CACHE_CAP {
            cache.clear();
        }
        cache.insert(
            key.to_string(),
            CachedPlan {
                epoch: self.catalog_epoch,
                deps,
                phys: phys.clone(),
            },
        );
        Ok(phys)
    }

    /// The `EXPLAIN` of `plan`: the physical plan's rendering — chosen
    /// engine, per-pipeline access path, model cost and all priced
    /// alternatives.
    pub fn explain(&self, plan: &LogicalPlan) -> Result<String, DbError> {
        Ok(self.plan_query(plan)?.explain())
    }

    /// Execute an already-lowered plan: index-probe pipelines run the
    /// overlay-aware probe + delta-tail union; everything else dispatches
    /// to the chosen engine.
    pub fn execute_physical(&self, phys: &PhysicalPlan) -> Result<QueryOutput, DbError> {
        if phys.access().is_indexed() {
            if let Some(cand) = self.index_candidate(&phys.logical) {
                if let Some(out) = self.run_index_candidate(&phys.logical, &cand)? {
                    return Ok(out);
                }
            }
            // Index dropped (or reshaped) since planning — scan instead.
        }
        self.run(&phys.logical, phys.engine.into())
    }

    /// Execute `plan`, using an index for the outermost selection when one
    /// matches (the Fig.-10 "indexed" execution path); falls back to the
    /// engine otherwise. Probes are delta-aware: main-store hits minus
    /// tombstones, unioned with the filtered live tail.
    pub fn run_indexed(
        &self,
        plan: &LogicalPlan,
        engine: EngineKind,
    ) -> Result<QueryOutput, DbError> {
        if let Some(cand) = self.index_candidate(plan) {
            if let Some(out) = self.run_index_candidate(plan, &cand)? {
                return Ok(out);
            }
        }
        self.run(plan, engine)
    }

    /// Recognize `[Project] (Select (Scan))` plans whose predicate contains
    /// an indexed equality or range conjunct, and name the probe that
    /// serves it. Pure shape/catalog matching — no data access, so the
    /// planner prices the candidate before anything is fetched. A point
    /// probe (one key's bucket) is preferred over a range probe whatever
    /// the conjunct order.
    pub(crate) fn index_candidate(&self, plan: &LogicalPlan) -> Option<IndexCandidate> {
        let inner = match plan {
            LogicalPlan::Project { input, .. } => input.as_ref(),
            other => other,
        };
        let LogicalPlan::Select { input, pred, .. } = inner else {
            return None;
        };
        let LogicalPlan::Scan { table } = input.as_ref() else {
            return None;
        };
        let t = self.tables.get(table)?.main();
        let mut range_cand: Option<IndexCandidate> = None;
        for conj in conjuncts(pred) {
            let Some((col, op, lit)) = simple_cmp(conj) else {
                continue;
            };
            let Some(idx) = self.index(table, col) else {
                continue;
            };
            match op {
                CmpOp::Eq => {
                    // The probe keys integers by value and strings by
                    // dictionary code; a literal of any other type (or a
                    // cross-type comparison the engines would coerce,
                    // e.g. Int32 column = Float64 literal) has no index
                    // key, so the probe would silently miss main-store
                    // hits — leave those shapes to the scan path.
                    let ty = t.schema().columns()[col].ty;
                    let keyable = matches!(
                        (ty, lit),
                        (
                            DataType::Int32 | DataType::Int64,
                            Value::Int32(_) | Value::Int64(_)
                        ) | (DataType::Str, Value::Str(_))
                    );
                    if !keyable {
                        continue;
                    }
                    return Some(IndexCandidate {
                        table: table.clone(),
                        col,
                        access: AccessPath::IndexPoint {
                            column: col,
                            key: lit.clone(),
                        },
                    });
                }
                CmpOp::Le | CmpOp::Lt | CmpOp::Ge | CmpOp::Gt
                    if range_cand.is_none()
                        && matches!(idx, Index::RBTree(_))
                        && t.schema().columns()[col].ty != DataType::Str =>
                {
                    if let Some(k) = lit.as_i64() {
                        // Saturating strict bounds can over-include one
                        // key at the i64 extremes; that is safe — the
                        // probe re-applies the full predicate to every
                        // fetched row — whereas excluding a key would
                        // silently drop rows.
                        let (lo, hi) = match op {
                            CmpOp::Le => (i64::MIN, k),
                            CmpOp::Lt => (i64::MIN, k.saturating_sub(1)),
                            CmpOp::Ge => (k, i64::MAX),
                            CmpOp::Gt => (k.saturating_add(1), i64::MAX),
                            _ => unreachable!(),
                        };
                        range_cand = Some(IndexCandidate {
                            table: table.clone(),
                            col,
                            access: AccessPath::IndexRange {
                                column: col,
                                lo,
                                hi,
                            },
                        });
                    }
                }
                _ => {}
            }
        }
        range_cand
    }

    /// Evaluate `plan` via an index candidate: probe the main-store index,
    /// drop tombstoned hits, residual-filter and project the survivors,
    /// then union the live delta tail (full predicate, append order). Rows
    /// come out in scan order — main order then tail order — exactly what
    /// an engine scan of the same plan produces. Returns `Ok(None)` when
    /// the candidate no longer matches the catalog (caller falls back to
    /// the engine).
    fn run_index_candidate(
        &self,
        plan: &LogicalPlan,
        cand: &IndexCandidate,
    ) -> Result<Option<QueryOutput>, DbError> {
        let (project, inner) = match plan {
            LogicalPlan::Project { input, exprs } => (Some(exprs), input.as_ref()),
            other => (None, other),
        };
        let LogicalPlan::Select { pred, .. } = inner else {
            return Ok(None);
        };
        let vt = self.versioned(&cand.table)?;
        let t = vt.main();
        let Some(idx) = self.index(&cand.table, cand.col) else {
            return Ok(None);
        };
        let mut rows = match &cand.access {
            AccessPath::IndexPoint { key, .. } => match key_of_value(t, cand.col, key) {
                Some(k) => idx.lookup(k),
                None => Vec::new(), // value not in dictionary → no main hits
            },
            AccessPath::IndexRange { lo, hi, .. } => match idx.lookup_range(*lo, *hi) {
                Some(r) => r,
                None => return Ok(None), // index lost range support
            },
            AccessPath::FullScan => return Ok(None),
        };
        rows.sort_unstable();
        let overlay = vt.overlay();
        let materialize = |values: &[Value]| -> Vec<Value> {
            match project {
                Some(exprs) => exprs.iter().map(|e| e.eval(values)).collect(),
                None => values.to_vec(),
            }
        };
        let mut out = QueryOutput::new();
        for r in rows {
            if overlay.as_ref().is_some_and(|o| o.is_dead(r as usize)) {
                continue;
            }
            let row = t.row(r as usize)?;
            if !pred.eval_bool(row.values()) {
                continue;
            }
            out.rows.push(materialize(row.values()));
        }
        if let Some(o) = overlay.as_ref() {
            for row in o.live_tail() {
                if !pred.eval_bool(row.values()) {
                    continue;
                }
                out.rows.push(materialize(row.values()));
            }
        }
        Ok(Some(out))
    }

    /// Record one executed plan into the observed workload (deduplicated;
    /// repeats bump the frequency). `key` is the plan's rendering, shared
    /// with the plan cache so `execute` formats it once.
    fn record_observed(&self, plan: &LogicalPlan, key: String) {
        let mut o = self.observed.lock().unwrap();
        if let Some(&i) = o.by_key.get(&key) {
            o.workload.queries[i].frequency += 1.0;
            return;
        }
        let i = o.workload.queries.len();
        if i >= OBSERVED_CAP {
            return;
        }
        let name = format!("observed-{i}");
        o.workload.push(WorkloadQuery::new(name, plan.clone()));
        o.by_key.insert(key, i);
    }

    /// The traffic [`Database::execute`] has routed so far, as a
    /// [`pdsm_layout::workload::Workload`]: one weighted entry per distinct
    /// plan. Feed it to [`crate::LayoutAdvisor`] so `relayout`/merge can
    /// re-advise from what actually ran.
    pub fn observed_workload(&self) -> Workload {
        self.observed.lock().unwrap().workload.clone()
    }

    /// Forget the observed workload (e.g. after applying its advice).
    pub fn clear_observed_workload(&self) {
        let mut o = self.observed.lock().unwrap();
        o.workload.queries.clear();
        o.by_key.clear();
    }

    /// Total bytes across all tables (main stores + pending deltas).
    pub fn byte_size(&self) -> usize {
        self.tables
            .values()
            .map(|t| t.main().byte_size() + t.delta_byte_size())
            .sum()
    }

    /// Take a consistent, owned snapshot of every table. The snapshot is
    /// `Send + Sync` and independent of later DML — the handle concurrent
    /// readers query while writers keep appending (see `pdsm-txn`).
    pub fn snapshot(&self) -> DbSnapshot {
        DbSnapshot {
            tables: self
                .tables
                .iter()
                .map(|(n, vt)| (n.clone(), vt.snapshot()))
                .collect(),
        }
    }
}

/// Queries against `&Database` see each table's main store plus its pending
/// delta (Rust's borrow rules guarantee no write happens during the
/// borrow, so no snapshotting is needed on this path).
impl TableProvider for Database {
    fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(|vt| vt.main())
    }

    fn overlay(&self, name: &str) -> Option<Overlay<'_>> {
        self.tables.get(name).and_then(|vt| vt.overlay())
    }
}

/// A recognized index probe: which `(table, column)` index serves the
/// plan's outermost selection, and how. Produced by
/// `Database::index_candidate`, priced by the planner, executed by the
/// overlay-aware probe.
#[derive(Debug, Clone)]
pub(crate) struct IndexCandidate {
    pub table: String,
    pub col: ColId,
    pub access: AccessPath,
}

/// An owned multi-table snapshot: every table pinned at one version.
/// Implements [`TableProvider`], so it can be handed to any engine — from
/// any thread — while the database keeps moving.
#[derive(Clone)]
pub struct DbSnapshot {
    tables: HashMap<String, Snapshot>,
}

impl DbSnapshot {
    /// The pinned snapshot of `name`.
    pub fn table_snapshot(&self, name: &str) -> Option<&Snapshot> {
        self.tables.get(name)
    }

    /// Execute `plan` against this snapshot with the chosen engine — the
    /// forced-engine escape hatch. Routine queries should use
    /// [`DbSnapshot::execute`].
    pub fn run(&self, plan: &LogicalPlan, engine: EngineKind) -> Result<QueryOutput, DbError> {
        Ok(engine.engine().execute(plan, self)?)
    }

    /// Execute `plan` with the planner choosing the engine. Snapshots
    /// carry no secondary indexes, so access-path selection reduces to
    /// engine selection over the pinned versions.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<QueryOutput, DbError> {
        let mut views = HashMap::new();
        for name in plan.tables() {
            if views.contains_key(name) {
                continue;
            }
            let Some(s) = self.tables.get(name) else {
                return Err(DbError::UnknownTable(name.to_string()));
            };
            views.insert(
                name.to_string(),
                crate::planner::table_view(s.main(), s.len()),
            );
        }
        let phys = Planner::default().plan_views(views, plan);
        self.run(plan, phys.engine.into())
    }
}

impl TableProvider for DbSnapshot {
    fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(|s| s.main())
    }

    fn overlay(&self, name: &str) -> Option<Overlay<'_>> {
        self.tables.get(name).and_then(|s| s.overlay())
    }
}

/// Build one secondary index over a main store.
fn build_index(t: &Table, col: ColId, kind: IndexKind) -> Index {
    let mut idx = match kind {
        IndexKind::Hash => Index::Hash(HashIndex::with_capacity(t.len())),
        IndexKind::RBTree => Index::RBTree(RBTree::new()),
    };
    for row in 0..t.len() {
        if let Some(key) = index_key(t, row, col) {
            idx.insert(key, row as u32);
        }
    }
    idx
}

/// Index key of `table[row][col]`: integers by value, strings by dictionary
/// code. NULLs are not indexed.
fn index_key(t: &Table, row: usize, col: ColId) -> Option<i64> {
    match t.get(row, col).ok()? {
        Value::Int32(v) => Some(v as i64),
        Value::Int64(v) => Some(v),
        Value::Str(s) => t.dict(col).and_then(|d| d.code_of(&s)).map(|c| c as i64),
        _ => None,
    }
}

/// Index key of a literal compared against `col`.
fn key_of_value(t: &Table, col: ColId, v: &Value) -> Option<i64> {
    match v {
        Value::Int32(x) => Some(*x as i64),
        Value::Int64(x) => Some(*x),
        Value::Str(s) => t.dict(col).and_then(|d| d.code_of(s)).map(|c| c as i64),
        _ => None,
    }
}

/// The AND-conjuncts of a predicate, in evaluation order (shared with the
/// planner's conjunct-level selectivity pricing).
pub(crate) fn conjuncts(pred: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            other => out.push(other),
        }
    }
    walk(pred, &mut out);
    out
}

/// Decompose `col ⟨op⟩ literal` (either orientation) into its parts.
pub(crate) fn simple_cmp(e: &Expr) -> Option<(ColId, CmpOp, &Value)> {
    if let Expr::Cmp { op, left, right } = e {
        match (left.as_ref(), right.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) => return Some((*c, *op, v)),
            (Expr::Lit(v), Expr::Col(c)) => {
                let flip = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    o => *o,
                };
                return Some((*c, flip, v));
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_storage::ColumnDef;

    fn demo_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "orders",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int32),
                ColumnDef::new("cust", DataType::Str),
                ColumnDef::new("qty", DataType::Int64),
            ]),
        )
        .unwrap();
        for i in 0..500 {
            db.insert(
                "orders",
                &[
                    Value::Int32(i),
                    Value::Str(format!("cust-{}", i % 20)),
                    Value::Int64((i as i64) * 2),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn create_insert_query_roundtrip() {
        let db = demo_db();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(1).eq(Expr::lit("cust-3")))
            .project(vec![Expr::col(0)])
            .build();
        for kind in EngineKind::all() {
            let out = db.run(&plan, kind).unwrap();
            assert_eq!(out.len(), 25, "{:?}", kind);
        }
    }

    #[test]
    fn duplicate_and_unknown_tables() {
        let mut db = demo_db();
        assert!(matches!(
            db.create_table(
                "orders",
                Schema::new(vec![ColumnDef::new("x", DataType::Int32)])
            ),
            Err(DbError::DuplicateTable(_))
        ));
        assert!(matches!(
            db.get_table("nope"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn index_path_matches_scan_path() {
        let mut db = demo_db();
        db.create_index("orders", "id", IndexKind::Hash).unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(123)))
            .build();
        let indexed = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        let scanned = db.run(&plan, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "indexed vs scan");
        assert_eq!(indexed.len(), 1);
    }

    #[test]
    fn rbtree_index_serves_ranges() {
        let mut db = demo_db();
        db.create_index("orders", "id", IndexKind::RBTree).unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(0).lt(Expr::lit(10)))
            .project(vec![Expr::col(0)])
            .build();
        let indexed = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        assert_eq!(indexed.len(), 10);
        let scanned = db.run(&plan, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "range index vs scan");
    }

    #[test]
    fn string_index_via_dictionary_codes() {
        let mut db = demo_db();
        db.create_index("orders", "cust", IndexKind::Hash).unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(1).eq(Expr::lit("cust-7")))
            .project(vec![Expr::col(0), Expr::col(1)])
            .build();
        let indexed = db.run_indexed(&plan, EngineKind::Volcano).unwrap();
        assert_eq!(indexed.len(), 25);
        let scanned = db.run(&plan, EngineKind::Volcano).unwrap();
        indexed.assert_same(&scanned, "string index");
        // absent key → empty, not fallback
        let missing = QueryBuilder::scan("orders")
            .filter(Expr::col(1).eq(Expr::lit("cust-999")))
            .build();
        assert!(db
            .run_indexed(&missing, EngineKind::Volcano)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn index_maintained_by_inserts() {
        let mut db = demo_db();
        db.create_index("orders", "id", IndexKind::Hash).unwrap();
        db.insert(
            "orders",
            &[Value::Int32(9999), Value::from("cust-new"), Value::Int64(1)],
        )
        .unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(9999)))
            .build();
        assert_eq!(
            db.run_indexed(&plan, EngineKind::Compiled).unwrap().len(),
            1
        );
    }

    #[test]
    fn relayout_preserves_queries_and_indexes() {
        let mut db = demo_db();
        db.create_index("orders", "id", IndexKind::Hash).unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(42)))
            .build();
        let before = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        db.relayout("orders", Layout::column(3)).unwrap();
        let after = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        before.assert_same(&after, "relayout");
        assert_eq!(db.get_table("orders").unwrap().layout().n_groups(), 3);
    }

    #[test]
    fn get_table_mut_implicit_merge_rebuilds_indexes() {
        let mut db = demo_db();
        db.create_index("orders", "id", IndexKind::Hash).unwrap();
        // tombstone one indexed row and append a replacement → pending delta
        db.delete("orders", 3).unwrap();
        db.insert(
            "orders",
            &[Value::Int32(10_000), Value::from("cust-x"), Value::Int64(3)],
        )
        .unwrap();
        // bulk-load access merges implicitly; the index must follow the
        // renumbered rows
        let _ = db.get_table_mut("orders").unwrap();
        assert!(!db.versioned("orders").unwrap().has_delta());
        let new_row = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(10_000)))
            .build();
        let indexed = db.run_indexed(&new_row, EngineKind::Compiled).unwrap();
        let scanned = db.run(&new_row, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "index rebuilt by implicit merge");
        assert_eq!(indexed.len(), 1);
        let gone = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(3)))
            .build();
        let indexed = db.run_indexed(&gone, EngineKind::Compiled).unwrap();
        let scanned = db.run(&gone, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "deleted row absent from rebuilt index");
        assert!(indexed.is_empty());
    }

    #[test]
    fn versioned_dml_and_merge_roundtrip() {
        let mut db = demo_db();
        let id = db
            .insert(
                "orders",
                &[Value::Int32(900), Value::from("cust-z"), Value::Int64(1)],
            )
            .unwrap();
        let new_id = db.update("orders", id, "qty", &Value::Int64(7)).unwrap();
        assert_ne!(id, new_id);
        db.delete("orders", 0).unwrap();
        let count = QueryBuilder::scan("orders")
            .aggregate(vec![], vec![pdsm_plan::logical::AggExpr::count_star()])
            .build();
        let live = db.run(&count, EngineKind::Compiled).unwrap();
        assert_eq!(live.rows[0][0], Value::Int64(500)); // 500 + 1 − 1
        let stats = db.merge("orders").unwrap();
        assert_eq!(stats.rows_after, 500);
        let merged = db.run(&count, EngineKind::Compiled).unwrap();
        assert_eq!(merged.rows[0][0], Value::Int64(500));
    }

    #[test]
    fn float_columns_not_indexable() {
        let mut db = Database::new();
        db.create_table(
            "f",
            Schema::new(vec![ColumnDef::new("x", DataType::Float64)]),
        )
        .unwrap();
        assert!(matches!(
            db.create_index("f", "x", IndexKind::Hash),
            Err(DbError::NotIndexable { .. })
        ));
    }

    #[test]
    fn residual_predicates_still_apply() {
        let mut db = demo_db();
        db.create_index("orders", "cust", IndexKind::Hash).unwrap();
        // indexed conjunct + residual on qty
        let plan = QueryBuilder::scan("orders")
            .filter(
                Expr::col(1)
                    .eq(Expr::lit("cust-3"))
                    .and(Expr::col(2).gt(Expr::lit(400))),
            )
            .project(vec![Expr::col(0)])
            .build();
        let indexed = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        let scanned = db.run(&plan, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "residual");
    }
}
