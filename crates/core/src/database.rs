//! The database catalog: versioned tables, indexes, engines and DML.
//!
//! Every table lives as a [`pdsm_txn::VersionedTable`]: an immutable
//! read-optimized main store plus an append-only delta with tombstones.
//! DML ([`Database::insert`] / [`Database::update`] / [`Database::delete`])
//! appends to the delta; queries see main ∪ delta − tombstones through the
//! engines' [`pdsm_exec::Overlay`] support; [`Database::merge`] (or
//! [`Database::relayout`], which is a merge under a new layout) folds the
//! delta into a fresh main store and refreshes secondary indexes.

use pdsm_exec::engine::{
    BulkEngine, CompiledEngine, Engine, ExecError, Overlay, TableProvider, VolcanoEngine,
};
use pdsm_exec::QueryOutput;
use pdsm_index::{HashIndex, Index, RBTree};
use pdsm_par::ParallelEngine;
use pdsm_plan::expr::{CmpOp, Expr};
use pdsm_plan::logical::LogicalPlan;
use pdsm_storage::{ColId, DataType, Layout, Schema, Table, Value};
use pdsm_txn::{MergeStats, RowId, Snapshot, VersionedTable};
use std::collections::HashMap;

/// Which execution engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Tuple-at-a-time iterators (the paper's CPU-inefficient baseline).
    Volcano,
    /// Column-at-a-time primitives with full materialization.
    Bulk,
    /// Data-centric fused pipelines (the paper's model).
    Compiled,
    /// Morsel-driven parallel execution of the compiled pipelines
    /// (`pdsm-par`). Thread count comes from `PDSM_THREADS` or the
    /// machine; use [`pdsm_par::ParallelEngine::with_threads`] directly to
    /// pin it per query.
    Parallel,
}

/// The default parallel engine instance (automatic thread resolution).
static PARALLEL: ParallelEngine = ParallelEngine::new();

impl EngineKind {
    /// The engine object.
    pub fn engine(&self) -> &'static dyn Engine {
        match self {
            EngineKind::Volcano => &VolcanoEngine,
            EngineKind::Bulk => &BulkEngine,
            EngineKind::Compiled => &CompiledEngine,
            EngineKind::Parallel => &PARALLEL,
        }
    }

    /// All engines, for differential testing. Test helpers should iterate
    /// this rather than naming engines, so new engines are covered
    /// everywhere automatically.
    pub fn all() -> [EngineKind; 4] {
        [
            EngineKind::Volcano,
            EngineKind::Bulk,
            EngineKind::Compiled,
            EngineKind::Parallel,
        ]
    }
}

/// Index flavor (Fig. 10 uses hash indexes for primary keys and an RB-tree
/// on `VBAP(VBELN)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Hash,
    RBTree,
}

/// Database-level error.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    DuplicateTable(String),
    UnknownTable(String),
    Storage(pdsm_storage::Error),
    Exec(ExecError),
    /// Index requested on a non-indexable column (floats).
    NotIndexable {
        table: String,
        column: String,
    },
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::DuplicateTable(t) => write!(f, "table {t:?} already exists"),
            DbError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::Exec(e) => write!(f, "execution error: {e}"),
            DbError::NotIndexable { table, column } => {
                write!(f, "column {table}.{column} cannot be indexed")
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<pdsm_storage::Error> for DbError {
    fn from(e: pdsm_storage::Error) -> Self {
        DbError::Storage(e)
    }
}

impl From<ExecError> for DbError {
    fn from(e: ExecError) -> Self {
        DbError::Exec(e)
    }
}

/// An in-memory database: catalog of versioned tables + secondary indexes.
#[derive(Default)]
pub struct Database {
    tables: HashMap<String, VersionedTable>,
    /// `(table, column) → index`. Indexes cover the main store only; they
    /// are rebuilt by [`Database::merge`], and the indexed execution path
    /// declines tables with a pending delta.
    indexes: HashMap<(String, ColId), Index>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table in row (N-ary) layout.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), DbError> {
        let layout = Layout::row(schema.len());
        self.create_table_with_layout(name, schema, layout)
    }

    /// Adopt an already-built table (e.g. from a workload generator) as the
    /// generation-0 main store. Replaces any existing table of the same
    /// name; indexes on the old table are dropped.
    pub fn register(&mut self, table: Table) {
        let name = table.name().to_string();
        self.indexes.retain(|(t, _), _| t != &name);
        self.tables.insert(name, VersionedTable::from_table(table));
    }

    /// Create a table with an explicit layout.
    pub fn create_table_with_layout(
        &mut self,
        name: &str,
        schema: Schema,
        layout: Layout,
    ) -> Result<(), DbError> {
        if self.tables.contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_string()));
        }
        let t = VersionedTable::with_layout(name, schema, layout)?;
        self.tables.insert(name.to_string(), t);
        Ok(())
    }

    /// The versioned table called `name`.
    pub fn versioned(&self, name: &str) -> Result<&VersionedTable, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    fn versioned_mut(&mut self, name: &str) -> Result<&mut VersionedTable, DbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// The read-optimized main store of `name`. Excludes pending delta
    /// rows — query through [`Database::run`] (or a snapshot) to see those.
    pub fn get_table(&self, name: &str) -> Result<&Table, DbError> {
        Ok(self.versioned(name)?.main())
    }

    /// Mutable access to the main store (bulk loading). A pending delta is
    /// merged first (rebuilding indexes), since delta row addressing is
    /// relative to the main store. Note that direct main-store edits are
    /// not reflected in existing indexes or snapshots.
    pub fn get_table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        if self.versioned(name)?.has_delta() {
            self.merge(name)?;
        }
        Ok(self.versioned_mut(name)?.main_mut()?)
    }

    /// Table names in the catalog.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Append a row to `table`'s delta. Returns its row id (stable until
    /// the next merge). Visible to every subsequent query.
    pub fn insert(&mut self, table: &str, values: &[Value]) -> Result<RowId, DbError> {
        Ok(self.versioned_mut(table)?.insert(values)?)
    }

    /// Append many rows atomically.
    pub fn insert_batch(
        &mut self,
        table: &str,
        rows: &[Vec<Value>],
    ) -> Result<Vec<RowId>, DbError> {
        Ok(self.versioned_mut(table)?.insert_batch(rows)?)
    }

    /// Overwrite one cell of a visible row (tombstone + re-append).
    /// Returns the row's new id.
    pub fn update(
        &mut self,
        table: &str,
        row: RowId,
        column: &str,
        value: &Value,
    ) -> Result<RowId, DbError> {
        let vt = self.versioned_mut(table)?;
        let col = vt.schema().col_id(column)?;
        Ok(vt.update(row, col, value)?)
    }

    /// Tombstone one visible row of `table`.
    pub fn delete(&mut self, table: &str, row: RowId) -> Result<(), DbError> {
        Ok(self.versioned_mut(table)?.delete(row)?)
    }

    /// Fold `table`'s delta into a fresh main store (current layout) and
    /// rebuild its secondary indexes.
    pub fn merge(&mut self, table: &str) -> Result<MergeStats, DbError> {
        let stats = self.versioned_mut(table)?.merge()?;
        self.rebuild_indexes(table)?;
        Ok(stats)
    }

    /// Merge every table with a pending delta.
    pub fn merge_all(&mut self) -> Result<(), DbError> {
        let names: Vec<String> = self
            .tables
            .iter()
            .filter(|(_, vt)| vt.has_delta())
            .map(|(n, _)| n.clone())
            .collect();
        for n in names {
            self.merge(&n)?;
        }
        Ok(())
    }

    /// Rebuild `table` under `layout`: a merge into the new layout. With an
    /// empty delta this is a pure relayout and row ids are stable (the
    /// property the index tests rely on); with a pending delta the delta is
    /// folded in and ids renumber. Indexes are rebuilt either way.
    pub fn relayout(&mut self, table: &str, layout: Layout) -> Result<(), DbError> {
        self.versioned_mut(table)?.merge_with_layout(layout)?;
        self.rebuild_indexes(table)?;
        Ok(())
    }

    /// Create (and backfill) an index on `table.column`. A pending delta is
    /// merged first so the index covers every visible row.
    pub fn create_index(
        &mut self,
        table: &str,
        column: &str,
        kind: IndexKind,
    ) -> Result<(), DbError> {
        if self.versioned(table)?.has_delta() {
            self.merge(table)?;
        }
        let t = self.get_table(table)?;
        let col = t.schema().col_id(column)?;
        let ty = t.schema().columns()[col].ty;
        if ty == DataType::Float64 {
            return Err(DbError::NotIndexable {
                table: table.to_string(),
                column: column.to_string(),
            });
        }
        let idx = build_index(t, col, kind);
        self.indexes.insert((table.to_string(), col), idx);
        Ok(())
    }

    /// Re-derive every index on `table` from its (new) main store.
    fn rebuild_indexes(&mut self, table: &str) -> Result<(), DbError> {
        let cols: Vec<ColId> = self
            .indexes
            .keys()
            .filter(|(t, _)| t == table)
            .map(|(_, c)| *c)
            .collect();
        if cols.is_empty() {
            return Ok(());
        }
        let t = self.versioned(table)?.main();
        let rebuilt: Vec<(ColId, Index)> = cols
            .into_iter()
            .map(|c| {
                let kind = match self.indexes[&(table.to_string(), c)] {
                    Index::Hash(_) => IndexKind::Hash,
                    Index::RBTree(_) => IndexKind::RBTree,
                };
                (c, build_index(t, c, kind))
            })
            .collect();
        for (c, idx) in rebuilt {
            self.indexes.insert((table.to_string(), c), idx);
        }
        Ok(())
    }

    /// Drop the index on `table.column` if present.
    pub fn drop_index(&mut self, table: &str, column: &str) -> Result<(), DbError> {
        let t = self.get_table(table)?;
        let col = t.schema().col_id(column)?;
        self.indexes.remove(&(table.to_string(), col));
        Ok(())
    }

    /// The index on `(table, col)`, if any.
    pub fn index(&self, table: &str, col: ColId) -> Option<&Index> {
        self.indexes.get(&(table.to_string(), col))
    }

    /// Execute `plan` with the chosen engine, without index acceleration.
    pub fn run(&self, plan: &LogicalPlan, engine: EngineKind) -> Result<QueryOutput, DbError> {
        Ok(engine.engine().execute(plan, self)?)
    }

    /// Execute `plan`, using an index for the outermost selection when one
    /// matches (the Fig.-10 "indexed" execution path); falls back to the
    /// engine otherwise.
    pub fn run_indexed(
        &self,
        plan: &LogicalPlan,
        engine: EngineKind,
    ) -> Result<QueryOutput, DbError> {
        if let Some(out) = self.try_index_path(plan)? {
            return Ok(out);
        }
        self.run(plan, engine)
    }

    /// Recognize `[Project] (Select (Scan))` plans whose predicate contains
    /// an indexed equality or range conjunct; evaluate via the index plus
    /// residual filtering and tuple reconstruction.
    fn try_index_path(&self, plan: &LogicalPlan) -> Result<Option<QueryOutput>, DbError> {
        // Peel an optional projection.
        let (project, inner) = match plan {
            LogicalPlan::Project { input, exprs } => (Some(exprs), input.as_ref()),
            other => (None, other),
        };
        let LogicalPlan::Select { input, pred, .. } = inner else {
            return Ok(None);
        };
        let LogicalPlan::Scan { table } = input.as_ref() else {
            return Ok(None);
        };
        // Indexes cover the main store only; with a pending delta the
        // engine scan path (which understands overlays) is authoritative.
        if self.versioned(table)?.has_delta() {
            return Ok(None);
        }
        let t = self.get_table(table)?;
        // find an indexed conjunct
        let mut rows: Option<Vec<u32>> = None;
        for conj in conjuncts(pred) {
            if let Some((col, op, lit)) = simple_cmp(conj) {
                if let Some(idx) = self.index(table, col) {
                    match op {
                        CmpOp::Eq => {
                            if let Some(key) = key_of_value(t, col, lit) {
                                rows = Some(idx.lookup(key));
                            } else {
                                rows = Some(Vec::new()); // value not in dict
                            }
                            break;
                        }
                        CmpOp::Le | CmpOp::Lt | CmpOp::Ge | CmpOp::Gt
                            if t.schema().columns()[col].ty != DataType::Str =>
                        {
                            if let Some(k) = lit.as_i64() {
                                let (lo, hi) = match op {
                                    CmpOp::Le => (i64::MIN + 1, k),
                                    CmpOp::Lt => (i64::MIN + 1, k - 1),
                                    CmpOp::Ge => (k, i64::MAX),
                                    CmpOp::Gt => (k + 1, i64::MAX),
                                    _ => unreachable!(),
                                };
                                if let Some(r) = idx.lookup_range(lo, hi) {
                                    rows = Some(r);
                                    break;
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        let Some(mut rows) = rows else {
            return Ok(None);
        };
        rows.sort_unstable();
        // residual filter + projection via tuple reconstruction
        let mut out = QueryOutput::new();
        for r in rows {
            let row = t.row(r as usize)?;
            if !pred.eval_bool(row.values()) {
                continue;
            }
            let projected = match project {
                Some(exprs) => exprs.iter().map(|e| e.eval(row.values())).collect(),
                None => row.0,
            };
            out.rows.push(projected);
        }
        Ok(Some(out))
    }

    /// Total bytes across all tables (main stores + pending deltas).
    pub fn byte_size(&self) -> usize {
        self.tables
            .values()
            .map(|t| t.main().byte_size() + t.delta_byte_size())
            .sum()
    }

    /// Take a consistent, owned snapshot of every table. The snapshot is
    /// `Send + Sync` and independent of later DML — the handle concurrent
    /// readers query while writers keep appending (see `pdsm-txn`).
    pub fn snapshot(&self) -> DbSnapshot {
        DbSnapshot {
            tables: self
                .tables
                .iter()
                .map(|(n, vt)| (n.clone(), vt.snapshot()))
                .collect(),
        }
    }
}

/// Queries against `&Database` see each table's main store plus its pending
/// delta (Rust's borrow rules guarantee no write happens during the
/// borrow, so no snapshotting is needed on this path).
impl TableProvider for Database {
    fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(|vt| vt.main())
    }

    fn overlay(&self, name: &str) -> Option<Overlay<'_>> {
        self.tables.get(name).and_then(|vt| vt.overlay())
    }
}

/// An owned multi-table snapshot: every table pinned at one version.
/// Implements [`TableProvider`], so it can be handed to any engine — from
/// any thread — while the database keeps moving.
#[derive(Clone)]
pub struct DbSnapshot {
    tables: HashMap<String, Snapshot>,
}

impl DbSnapshot {
    /// The pinned snapshot of `name`.
    pub fn table_snapshot(&self, name: &str) -> Option<&Snapshot> {
        self.tables.get(name)
    }

    /// Execute `plan` against this snapshot with the chosen engine.
    pub fn run(&self, plan: &LogicalPlan, engine: EngineKind) -> Result<QueryOutput, DbError> {
        Ok(engine.engine().execute(plan, self)?)
    }
}

impl TableProvider for DbSnapshot {
    fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(|s| s.main())
    }

    fn overlay(&self, name: &str) -> Option<Overlay<'_>> {
        self.tables.get(name).and_then(|s| s.overlay())
    }
}

/// Build one secondary index over a main store.
fn build_index(t: &Table, col: ColId, kind: IndexKind) -> Index {
    let mut idx = match kind {
        IndexKind::Hash => Index::Hash(HashIndex::with_capacity(t.len())),
        IndexKind::RBTree => Index::RBTree(RBTree::new()),
    };
    for row in 0..t.len() {
        if let Some(key) = index_key(t, row, col) {
            idx.insert(key, row as u32);
        }
    }
    idx
}

/// Index key of `table[row][col]`: integers by value, strings by dictionary
/// code. NULLs are not indexed.
fn index_key(t: &Table, row: usize, col: ColId) -> Option<i64> {
    match t.get(row, col).ok()? {
        Value::Int32(v) => Some(v as i64),
        Value::Int64(v) => Some(v),
        Value::Str(s) => t.dict(col).and_then(|d| d.code_of(&s)).map(|c| c as i64),
        _ => None,
    }
}

/// Index key of a literal compared against `col`.
fn key_of_value(t: &Table, col: ColId, v: &Value) -> Option<i64> {
    match v {
        Value::Int32(x) => Some(*x as i64),
        Value::Int64(x) => Some(*x),
        Value::Str(s) => t.dict(col).and_then(|d| d.code_of(s)).map(|c| c as i64),
        _ => None,
    }
}

fn conjuncts(pred: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            other => out.push(other),
        }
    }
    walk(pred, &mut out);
    out
}

fn simple_cmp(e: &Expr) -> Option<(ColId, CmpOp, &Value)> {
    if let Expr::Cmp { op, left, right } = e {
        match (left.as_ref(), right.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) => return Some((*c, *op, v)),
            (Expr::Lit(v), Expr::Col(c)) => {
                let flip = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    o => *o,
                };
                return Some((*c, flip, v));
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_storage::ColumnDef;

    fn demo_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "orders",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int32),
                ColumnDef::new("cust", DataType::Str),
                ColumnDef::new("qty", DataType::Int64),
            ]),
        )
        .unwrap();
        for i in 0..500 {
            db.insert(
                "orders",
                &[
                    Value::Int32(i),
                    Value::Str(format!("cust-{}", i % 20)),
                    Value::Int64((i as i64) * 2),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn create_insert_query_roundtrip() {
        let db = demo_db();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(1).eq(Expr::lit("cust-3")))
            .project(vec![Expr::col(0)])
            .build();
        for kind in EngineKind::all() {
            let out = db.run(&plan, kind).unwrap();
            assert_eq!(out.len(), 25, "{:?}", kind);
        }
    }

    #[test]
    fn duplicate_and_unknown_tables() {
        let mut db = demo_db();
        assert!(matches!(
            db.create_table(
                "orders",
                Schema::new(vec![ColumnDef::new("x", DataType::Int32)])
            ),
            Err(DbError::DuplicateTable(_))
        ));
        assert!(matches!(
            db.get_table("nope"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn index_path_matches_scan_path() {
        let mut db = demo_db();
        db.create_index("orders", "id", IndexKind::Hash).unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(123)))
            .build();
        let indexed = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        let scanned = db.run(&plan, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "indexed vs scan");
        assert_eq!(indexed.len(), 1);
    }

    #[test]
    fn rbtree_index_serves_ranges() {
        let mut db = demo_db();
        db.create_index("orders", "id", IndexKind::RBTree).unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(0).lt(Expr::lit(10)))
            .project(vec![Expr::col(0)])
            .build();
        let indexed = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        assert_eq!(indexed.len(), 10);
        let scanned = db.run(&plan, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "range index vs scan");
    }

    #[test]
    fn string_index_via_dictionary_codes() {
        let mut db = demo_db();
        db.create_index("orders", "cust", IndexKind::Hash).unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(1).eq(Expr::lit("cust-7")))
            .project(vec![Expr::col(0), Expr::col(1)])
            .build();
        let indexed = db.run_indexed(&plan, EngineKind::Volcano).unwrap();
        assert_eq!(indexed.len(), 25);
        let scanned = db.run(&plan, EngineKind::Volcano).unwrap();
        indexed.assert_same(&scanned, "string index");
        // absent key → empty, not fallback
        let missing = QueryBuilder::scan("orders")
            .filter(Expr::col(1).eq(Expr::lit("cust-999")))
            .build();
        assert!(db
            .run_indexed(&missing, EngineKind::Volcano)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn index_maintained_by_inserts() {
        let mut db = demo_db();
        db.create_index("orders", "id", IndexKind::Hash).unwrap();
        db.insert(
            "orders",
            &[Value::Int32(9999), Value::from("cust-new"), Value::Int64(1)],
        )
        .unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(9999)))
            .build();
        assert_eq!(
            db.run_indexed(&plan, EngineKind::Compiled).unwrap().len(),
            1
        );
    }

    #[test]
    fn relayout_preserves_queries_and_indexes() {
        let mut db = demo_db();
        db.create_index("orders", "id", IndexKind::Hash).unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(42)))
            .build();
        let before = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        db.relayout("orders", Layout::column(3)).unwrap();
        let after = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        before.assert_same(&after, "relayout");
        assert_eq!(db.get_table("orders").unwrap().layout().n_groups(), 3);
    }

    #[test]
    fn get_table_mut_implicit_merge_rebuilds_indexes() {
        let mut db = demo_db();
        db.create_index("orders", "id", IndexKind::Hash).unwrap();
        // tombstone one indexed row and append a replacement → pending delta
        db.delete("orders", 3).unwrap();
        db.insert(
            "orders",
            &[Value::Int32(10_000), Value::from("cust-x"), Value::Int64(3)],
        )
        .unwrap();
        // bulk-load access merges implicitly; the index must follow the
        // renumbered rows
        let _ = db.get_table_mut("orders").unwrap();
        assert!(!db.versioned("orders").unwrap().has_delta());
        let new_row = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(10_000)))
            .build();
        let indexed = db.run_indexed(&new_row, EngineKind::Compiled).unwrap();
        let scanned = db.run(&new_row, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "index rebuilt by implicit merge");
        assert_eq!(indexed.len(), 1);
        let gone = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(3)))
            .build();
        let indexed = db.run_indexed(&gone, EngineKind::Compiled).unwrap();
        let scanned = db.run(&gone, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "deleted row absent from rebuilt index");
        assert!(indexed.is_empty());
    }

    #[test]
    fn versioned_dml_and_merge_roundtrip() {
        let mut db = demo_db();
        let id = db
            .insert(
                "orders",
                &[Value::Int32(900), Value::from("cust-z"), Value::Int64(1)],
            )
            .unwrap();
        let new_id = db.update("orders", id, "qty", &Value::Int64(7)).unwrap();
        assert_ne!(id, new_id);
        db.delete("orders", 0).unwrap();
        let count = QueryBuilder::scan("orders")
            .aggregate(vec![], vec![pdsm_plan::logical::AggExpr::count_star()])
            .build();
        let live = db.run(&count, EngineKind::Compiled).unwrap();
        assert_eq!(live.rows[0][0], Value::Int64(500)); // 500 + 1 − 1
        let stats = db.merge("orders").unwrap();
        assert_eq!(stats.rows_after, 500);
        let merged = db.run(&count, EngineKind::Compiled).unwrap();
        assert_eq!(merged.rows[0][0], Value::Int64(500));
    }

    #[test]
    fn float_columns_not_indexable() {
        let mut db = Database::new();
        db.create_table(
            "f",
            Schema::new(vec![ColumnDef::new("x", DataType::Float64)]),
        )
        .unwrap();
        assert!(matches!(
            db.create_index("f", "x", IndexKind::Hash),
            Err(DbError::NotIndexable { .. })
        ));
    }

    #[test]
    fn residual_predicates_still_apply() {
        let mut db = demo_db();
        db.create_index("orders", "cust", IndexKind::Hash).unwrap();
        // indexed conjunct + residual on qty
        let plan = QueryBuilder::scan("orders")
            .filter(
                Expr::col(1)
                    .eq(Expr::lit("cust-3"))
                    .and(Expr::col(2).gt(Expr::lit(400))),
            )
            .project(vec![Expr::col(0)])
            .build();
        let indexed = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        let scanned = db.run(&plan, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "residual");
    }
}
