//! The database catalog: versioned tables, indexes, engines and DML —
//! behind a **shared handle**: every entry point takes `&self`.
//!
//! Every table lives as a [`pdsm_txn::SharedTable`]: an immutable
//! read-optimized main store plus an append-only delta with tombstones,
//! wrapped in that table's own reader/writer lock. The catalog itself is
//! an `RwLock`-guarded map of those handles, so
//!
//! * writers to **different** tables proceed fully in parallel (each takes
//!   only its own table's write lock, per operation),
//! * writers to the **same** table serialize on that table's lock only,
//! * readers never block writers: queries run over [`pdsm_txn::Snapshot`]s
//!   pinned under a short read lock, entirely lock-free afterwards.
//!
//! `Database` is `Send + Sync`; the multi-threaded entry point is
//! `Arc<Database>` (clone the `Arc` per thread). DML
//! ([`Database::insert`] / [`Database::update`] / [`Database::delete`])
//! appends to the written table's delta; queries see main ∪ delta −
//! tombstones through the engines' [`pdsm_exec::Overlay`] support;
//! [`Database::merge`] (or [`Database::relayout`], which is a merge under
//! a new layout) folds the delta into a fresh main store and refreshes
//! secondary indexes. Background maintenance (see [`crate::maintenance`])
//! begins merges on the write path but builds *and applies* them on a
//! worker thread.
//!
//! Queries enter through [`Database::execute`]: the cost-based planner
//! (`crate::planner`) lowers the logical plan to a [`PhysicalPlan`] —
//! choosing engine and access path via `pdsm_cost::estimate` — caches it
//! keyed on the tables' merge generations, and dispatches. [`Database::run`]
//! remains as the forced-engine escape hatch benchmarks and differential
//! tests use.
//!
//! ## Migration notes (from the single-writer `&mut self` API)
//!
//! * `versioned(name) -> &VersionedTable` and `get_table_mut(name)` are
//!   gone — borrows can no longer escape the catalog lock. Use
//!   [`Database::with_table`] / [`Database::with_table_write`] (closure
//!   under the table's own lock), [`Database::shared`] (owned handle),
//!   [`Database::table_snapshot`] (pinned version), or
//!   [`Database::edit_main`] (bulk loading).
//! * `get_table(name)` now returns an owned `Arc<Table>` of the main
//!   store instead of `&Table`.
//! * `maintenance_config_mut()` is replaced by
//!   [`Database::set_maintenance_config`] /
//!   [`Database::update_maintenance_config`].
//! * Row-id stability: in `Background` mode a finished merge can now swap
//!   in **at any moment** (the worker applies it), renumbering row ids.
//!   Resolve-then-mutate sequences that must be atomic belong in one
//!   [`Database::with_table_write`] closure; ids crossing statements are
//!   only stable in `Sync`/`Off` modes, where merges happen exclusively
//!   inside insert-path calls.

use crate::maintenance::{
    choose_layout, AdviseInputs, BuildJob, MaintenanceConfig, MaintenanceMode,
    MaintenanceScheduler, MaintenanceStats,
};
use crate::planner::Planner;
use crate::result_cache::{
    CacheStats, DepTokens, PlanCache, ResultCache, ResultCacheConfig, FRAGMENT_TABLE,
};
use pdsm_exec::engine::{
    BulkEngine, CompiledEngine, Engine, ExecError, Overlay, TableProvider, VolcanoEngine,
};
use pdsm_exec::{QueryOutput, QueryResult, VectorizedEngine};
use pdsm_index::{HashIndex, Index, RBTree};
use pdsm_layout::workload::{Workload, WorkloadQuery};
use pdsm_par::ParallelEngine;
use pdsm_plan::expr::{CmpOp, Expr};
use pdsm_plan::fingerprint::{pipeline_fragment, plan_fingerprint, substitute_fragment};
use pdsm_plan::logical::LogicalPlan;
use pdsm_plan::physical::{AccessPath, EngineChoice, PhysicalPlan};
use pdsm_pool::{BufferPool, PoolStats};
use pdsm_storage::{ColId, DataType, Layout, Schema, Table, Value};
use pdsm_store::{FsyncMode, Manifest};
use pdsm_txn::durability::replay;
use pdsm_txn::{
    MergeStats, RowId, SharedTable, Snapshot, TableDurability, VersionStats, VersionedTable,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Which execution engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Tuple-at-a-time iterators (the paper's CPU-inefficient baseline).
    Volcano,
    /// Column-at-a-time primitives with full materialization.
    Bulk,
    /// Data-centric fused pipelines (the paper's model).
    Compiled,
    /// Block-at-a-time processing with cache-resident selection vectors
    /// (MonetDB/X100 model). Supports single-table scan pipelines only —
    /// check [`EngineKind::supports`] before dispatching joins or sorts.
    Vectorized,
    /// Morsel-driven parallel execution of the compiled pipelines
    /// (`pdsm-par`). Thread count comes from `PDSM_THREADS` or the
    /// machine; use [`pdsm_par::ParallelEngine::with_threads`] directly to
    /// pin it per query.
    Parallel,
}

/// The default parallel engine instance (automatic thread resolution).
static PARALLEL: ParallelEngine = ParallelEngine::new();
/// The default vectorized engine instance (X100's ~1k vector sweet spot).
static VECTORIZED: VectorizedEngine = VectorizedEngine { vector_size: 1024 };

impl EngineKind {
    /// The engine object.
    pub fn engine(&self) -> &'static dyn Engine {
        match self {
            EngineKind::Volcano => &VolcanoEngine,
            EngineKind::Bulk => &BulkEngine,
            EngineKind::Compiled => &CompiledEngine,
            EngineKind::Vectorized => &VECTORIZED,
            EngineKind::Parallel => &PARALLEL,
        }
    }

    /// All engines, for differential testing. Test helpers should iterate
    /// this rather than naming engines, so new engines are covered
    /// everywhere automatically.
    pub fn all() -> [EngineKind; 5] {
        [
            EngineKind::Volcano,
            EngineKind::Bulk,
            EngineKind::Compiled,
            EngineKind::Vectorized,
            EngineKind::Parallel,
        ]
    }

    /// Can this engine execute `plan`? Everything but the vectorized
    /// engine handles the full operator vocabulary; the vectorized engine
    /// is limited to single-table scan pipelines. Differential drivers
    /// iterate [`EngineKind::all`] and skip unsupported combinations; the
    /// planner never selects an engine that cannot run the plan.
    pub fn supports(&self, plan: &LogicalPlan) -> bool {
        match self {
            EngineKind::Vectorized => VectorizedEngine::supports(plan),
            _ => true,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Volcano => "volcano",
            EngineKind::Bulk => "bulk",
            EngineKind::Compiled => "compiled",
            EngineKind::Vectorized => "vectorized",
            EngineKind::Parallel => "parallel",
        })
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    /// Parse the [`std::fmt::Display`] names (case-insensitive) — the
    /// `PDSM_ENGINE`-style knob format.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "volcano" => Ok(EngineKind::Volcano),
            "bulk" => Ok(EngineKind::Bulk),
            "compiled" => Ok(EngineKind::Compiled),
            "vectorized" => Ok(EngineKind::Vectorized),
            "parallel" => Ok(EngineKind::Parallel),
            other => Err(format!(
                "unknown engine {other:?} (expected volcano|bulk|compiled|vectorized|parallel)"
            )),
        }
    }
}

impl From<EngineChoice> for EngineKind {
    fn from(c: EngineChoice) -> Self {
        match c {
            EngineChoice::Volcano => EngineKind::Volcano,
            EngineChoice::Bulk => EngineKind::Bulk,
            EngineChoice::Vectorized => EngineKind::Vectorized,
            EngineChoice::Compiled => EngineKind::Compiled,
            EngineChoice::Parallel => EngineKind::Parallel,
        }
    }
}

impl From<EngineKind> for EngineChoice {
    fn from(k: EngineKind) -> Self {
        match k {
            EngineKind::Volcano => EngineChoice::Volcano,
            EngineKind::Bulk => EngineChoice::Bulk,
            EngineKind::Vectorized => EngineChoice::Vectorized,
            EngineKind::Compiled => EngineChoice::Compiled,
            EngineKind::Parallel => EngineChoice::Parallel,
        }
    }
}

/// Index flavor (Fig. 10 uses hash indexes for primary keys and an RB-tree
/// on `VBAP(VBELN)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Hash,
    RBTree,
}

/// Database-level error.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    DuplicateTable(String),
    UnknownTable(String),
    Storage(pdsm_storage::Error),
    Exec(ExecError),
    /// Index requested on a non-indexable column (floats).
    NotIndexable {
        table: String,
        column: String,
    },
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::DuplicateTable(t) => write!(f, "table {t:?} already exists"),
            DbError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::Exec(e) => write!(f, "execution error: {e}"),
            DbError::NotIndexable { table, column } => {
                write!(f, "column {table}.{column} cannot be indexed")
            }
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Storage(e) => Some(e),
            DbError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pdsm_storage::Error> for DbError {
    fn from(e: pdsm_storage::Error) -> Self {
        DbError::Storage(e)
    }
}

impl From<ExecError> for DbError {
    fn from(e: ExecError) -> Self {
        DbError::Exec(e)
    }
}

fn io_db(ctx: &str, e: std::io::Error) -> DbError {
    DbError::Storage(pdsm_storage::Error::Io(format!("{ctx}: {e}")))
}

/// How a durable [`Database`] writes to disk: where, and how eagerly.
///
/// Handed to [`Database::open_with`]; [`Database::open`] builds one from
/// the environment ([`FsyncMode::from_env`] reads `PDSM_FSYNC`).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory: one subdirectory per table (main blobs + WAL) plus
    /// the shared `MANIFEST`.
    pub data_dir: PathBuf,
    /// WAL fsync policy (`always` | `batch` | `off`).
    pub fsync: FsyncMode,
}

impl DurabilityConfig {
    /// Durability under `data_dir` with the fsync policy from `PDSM_FSYNC`
    /// (default: `batch` group commit).
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncMode::from_env(),
        }
    }

    /// Same directory, explicit fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncMode) -> Self {
        self.fsync = fsync;
        self
    }
}

/// The database-wide durable state: config plus the shared manifest every
/// table commits its checkpoint generation through.
struct DbDurability {
    config: DurabilityConfig,
    manifest: Arc<Manifest>,
}

/// Aggregated durability counters across every durable table — the
/// observability face of the WAL/checkpoint subsystem
/// ([`Database::storage_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Tables with a WAL attached (0 for a purely in-memory database).
    pub durable_tables: usize,
    /// Total WAL bytes appended since open (including records later
    /// truncated away by checkpoints).
    pub wal_bytes_appended: u64,
    /// WAL records appended since open.
    pub wal_appends: u64,
    /// Physical fsyncs issued on WAL files.
    pub wal_fsyncs: u64,
    /// Appends whose durability was confirmed by a group-commit fsync —
    /// `wal_appends_synced / wal_fsyncs` is the mean group-commit size.
    pub wal_appends_synced: u64,
    /// Largest single group commit (appends confirmed by one fsync).
    pub wal_max_group: u64,
    /// Bytes currently live in WAL files (shrinks at every checkpoint).
    pub wal_live_bytes: u64,
    /// Checkpoints taken (one per merge of a durable table).
    pub checkpoints: u64,
    /// WAL ops replayed by the last [`Database::open`], summed over
    /// tables — the witness that recovery is O(ops since last checkpoint).
    pub recovery_replay_ops: u64,
}

/// Upper bound on cached physical plans, across the cache's shards
/// (per-shard LRU eviction past it — see [`crate::result_cache::PlanCache`]).
const PLAN_CACHE_CAP: usize = 256;
/// Upper bound on *distinct* plans the observed workload records;
/// frequencies of already-recorded plans keep counting past it.
const OBSERVED_CAP: usize = 512;

/// The observed workload plus an O(1) dedup index over it, so recording a
/// repeat plan on the execute hot path never walks the query list.
#[derive(Default)]
struct ObservedTraffic {
    workload: Workload,
    /// `format!("{plan:?}")` → position in `workload.queries`.
    by_key: HashMap<String, usize>,
}

/// One secondary index, tagged with the main-store generation it was built
/// from. A probe uses it only when the tag matches the pinned snapshot's
/// generation; anything stale falls back to the (always-correct) scan
/// path until the next merge's rebuild catches the index up.
#[derive(Clone)]
pub(crate) struct IndexEntry {
    pub generation: u64,
    pub kind: IndexKind,
    pub index: Arc<Index>,
}

/// Every secondary index of one table, behind that table's index lock
/// (taken *after* the table lock, never while holding it for a fold).
#[derive(Default)]
pub(crate) struct IndexSet {
    pub by_col: HashMap<ColId, IndexEntry>,
}

/// One catalog slot: the shared table handle plus its index set. Cloning
/// an entry clones two `Arc`s — every accessor hands entries out of the
/// catalog lock this way, so no borrow ever escapes it.
#[derive(Clone)]
struct TableEntry {
    table: SharedTable,
    indexes: Arc<RwLock<IndexSet>>,
}

impl TableEntry {
    fn new(table: VersionedTable) -> Self {
        TableEntry {
            table: SharedTable::new(table),
            indexes: Arc::new(RwLock::new(IndexSet::default())),
        }
    }
}

/// An in-memory database: catalog of versioned tables + secondary indexes,
/// usable concurrently through a shared handle (`Arc<Database>`).
///
/// Locking granularity, coarsest to finest:
/// * **catalog lock** (`RwLock`) — held only to look a table handle up or
///   to change the catalog's shape (create/register/drop);
/// * **per-table lock** (inside [`SharedTable`]) — writers take it per
///   DML op; merges hold it only for the begin/finish phases (the fold
///   runs off-lock);
/// * **per-table index lock** — swapped-in rebuilds and probes.
///
/// No lock is ever held across query execution: engines run over pinned
/// snapshots.
pub struct Database {
    /// The catalog: table name → shared handle + index set. The lock is
    /// held only for lookups and shape changes, never across a table
    /// operation — so writers to different tables never contend here
    /// beyond a read-lock acquisition.
    catalog: RwLock<HashMap<String, TableEntry>>,
    /// Bumped by every catalog-shape change (table created/registered,
    /// index created/dropped); part of the plan-cache validity key.
    catalog_epoch: AtomicU64,
    /// Physical plans keyed by the logical plan's rendering, validated
    /// against the referenced tables' live `(generation, delta_ops)`
    /// tokens on every lookup. Sharded + LRU-bounded; repeat executes of
    /// the same plan take only a shard read lock.
    plan_cache: PlanCache,
    /// Materialized results keyed by [`pdsm_plan::plan_fingerprint`] plus
    /// the same per-table tokens — see [`crate::result_cache`]. Consulted
    /// by [`Database::execute`] for admitted plans; serves whole results
    /// and filtered-scan fragments.
    result_cache: ResultCache,
    /// Every plan routed through [`Database::execute`], deduplicated with
    /// frequencies — the observed traffic `relayout`/merge re-advise from.
    observed: Mutex<ObservedTraffic>,
    /// The background merge scheduler (see [`crate::maintenance`]): every
    /// insert-path call consults it; its worker holds [`SharedTable`]
    /// clones and applies finished builds itself.
    maintenance: MaintenanceScheduler,
    /// `Some` iff this database was opened with a data directory
    /// ([`Database::open`]): newly created tables get a WAL, merges
    /// checkpoint, and reopening the directory recovers everything.
    durability: Option<DbDurability>,
    /// `Some` iff `PDSM_POOL_BYTES` configured a buffer pool at open:
    /// checkpointed tables then recover *cold* (header-only) and fault
    /// extents through the pool on demand, instead of loading wholesale.
    pool: Option<Arc<BufferPool>>,
}

impl Default for Database {
    /// Empty database; maintenance policy comes from the environment
    /// (`PDSM_MERGE`, `PDSM_MERGE_THRESHOLD`, `PDSM_MERGE_MAX_LAG`).
    fn default() -> Self {
        Self::with_maintenance(MaintenanceConfig::from_env())
    }
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty database with an explicit maintenance policy (tests and
    /// embedders that must not depend on the process environment).
    pub fn with_maintenance(cfg: MaintenanceConfig) -> Self {
        Database {
            catalog: RwLock::new(HashMap::new()),
            catalog_epoch: AtomicU64::new(0),
            plan_cache: PlanCache::new(PLAN_CACHE_CAP),
            result_cache: ResultCache::new(ResultCacheConfig::from_env()),
            observed: Mutex::new(ObservedTraffic::default()),
            maintenance: MaintenanceScheduler::new(cfg),
            durability: None,
            pool: None,
        }
    }

    /// Open (or create) a **durable** database rooted at `data_dir`:
    /// every table present in the directory's manifest is recovered —
    /// newest checkpointed main store loaded, WAL tail replayed through
    /// the normal DML path — and every table created afterwards writes a
    /// WAL and checkpoints on merge. Replay cost is O(ops since that
    /// table's last checkpoint), not O(history). A torn or corrupt WAL
    /// tail (the crash point) is truncated, never an error; a corrupt
    /// *committed* checkpoint blob is.
    ///
    /// Fsync policy comes from `PDSM_FSYNC` (`always` | `batch` | `off`,
    /// default `batch`); maintenance policy from the environment as in
    /// [`Database::new`]. Use [`Database::open_with`] to pin both.
    pub fn open(data_dir: impl Into<PathBuf>) -> Result<Database, DbError> {
        Self::open_with(
            DurabilityConfig::new(data_dir),
            MaintenanceConfig::from_env(),
        )
    }

    /// [`Database::open`] with explicit durability and maintenance
    /// configuration.
    pub fn open_with(
        config: DurabilityConfig,
        maintenance: MaintenanceConfig,
    ) -> Result<Database, DbError> {
        Self::open_with_pool(config, maintenance, BufferPool::from_env())
    }

    /// [`Database::open_with`] with an explicit buffer pool — `Some` makes
    /// checkpointed tables recover cold and fault through it, `None`
    /// forces fully-resident recovery. For tests and embedders that must
    /// not depend on `PDSM_POOL_BYTES` in the process environment.
    pub fn open_with_pool(
        config: DurabilityConfig,
        maintenance: MaintenanceConfig,
        pool: Option<Arc<BufferPool>>,
    ) -> Result<Database, DbError> {
        std::fs::create_dir_all(&config.data_dir).map_err(|e| io_db("create data dir", e))?;
        let manifest = Arc::new(
            Manifest::open(config.data_dir.join("MANIFEST"))
                .map_err(|e| io_db("open manifest", e))?,
        );
        let mut db = Self::with_maintenance(maintenance);
        db.durability = Some(DbDurability {
            config,
            manifest: Arc::clone(&manifest),
        });
        db.pool = pool;
        let d = db.durability.as_ref().expect("just set");
        // Recover every manifest table: newest committed main + WAL tail
        // replayed through the normal DML path (so engines, overlays and
        // row ids come out exactly as they were at the last durable op).
        // With a buffer pool configured the main store stays *cold* —
        // header only, extents fault in on demand — because WAL replay
        // never reads main-store row data.
        let recover_resident = |name: &str, generation: u64| -> Result<VersionedTable, DbError> {
            let rec = TableDurability::recover(
                &d.config.data_dir,
                name,
                generation,
                Arc::clone(&manifest),
                d.config.fsync,
            )?;
            let mut vt = VersionedTable::from_recovered(rec.table, generation);
            replay(&mut vt, &rec.ops)?;
            vt.set_durability(Arc::new(rec.durability));
            Ok(vt)
        };
        let mut recovered = Vec::new();
        for (name, generation) in manifest.tables() {
            let vt = match &db.pool {
                Some(pool) => match TableDurability::recover_cold(
                    &d.config.data_dir,
                    &name,
                    generation,
                    Arc::clone(&manifest),
                    d.config.fsync,
                    Arc::clone(pool),
                ) {
                    Ok(rec) => {
                        let mut vt = VersionedTable::from_cold(rec.cold, generation);
                        replay(&mut vt, &rec.ops)?;
                        vt.set_durability(Arc::new(rec.durability));
                        vt
                    }
                    // Pre-extent (v2) checkpoints cannot be opened cold;
                    // the resident path loads them — and re-raises real
                    // corruption as the hard error it is.
                    Err(_) => recover_resident(&name, generation)?,
                },
                None => recover_resident(&name, generation)?,
            };
            recovered.push((name, TableEntry::new(vt)));
        }
        {
            let mut catalog = db.write_catalog();
            for (name, entry) in recovered {
                catalog.insert(name, entry);
            }
        }
        db.bump_epoch();
        Ok(db)
    }

    /// True iff this database persists to a data directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The data directory, when durable.
    pub fn data_dir(&self) -> Option<&Path> {
        self.durability
            .as_ref()
            .map(|d| d.config.data_dir.as_path())
    }

    /// Attach a WAL + checkpoint lifecycle to a fresh table (no-op for an
    /// in-memory database). Called with the catalog write lock held, so a
    /// create/register race can never double-create one table's files.
    fn make_durable(&self, vt: &mut VersionedTable) -> Result<(), DbError> {
        if let Some(d) = &self.durability {
            let td = TableDurability::create(
                &d.config.data_dir,
                vt.main().name(),
                Arc::clone(&d.manifest),
                d.config.fsync,
                vt.main(),
                vt.generation(),
            )?;
            vt.set_durability(Arc::new(td));
        }
        Ok(())
    }

    fn read_catalog(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, TableEntry>> {
        self.catalog.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_catalog(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, TableEntry>> {
        self.catalog.write().unwrap_or_else(|e| e.into_inner())
    }

    fn bump_epoch(&self) {
        self.catalog_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// The catalog entry for `name`, cloned out of the catalog lock.
    fn entry(&self, name: &str) -> Result<TableEntry, DbError> {
        self.read_catalog()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Create a table in row (N-ary) layout. Takes the catalog write lock
    /// briefly.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<(), DbError> {
        let layout = Layout::row(schema.len());
        self.create_table_with_layout(name, schema, layout)
    }

    /// Adopt an already-built table (e.g. from a workload generator) as the
    /// generation-0 main store. Replaces any existing table of the same
    /// name; indexes on the old table are dropped. Takes the catalog write
    /// lock briefly.
    ///
    /// `register` is a catalog-*setup* operation, not a concurrent-DML
    /// one: a thread already inside a DML call on the replaced name holds
    /// the old handle and will apply its op to the detached table —
    /// success with no effect on the new one. Quiesce writers to a name
    /// before re-registering it.
    ///
    /// In a durable database the table is checkpointed as its generation-0
    /// main store before it becomes visible; a disk error here panics —
    /// use [`Database::try_register`] to handle it.
    pub fn register(&self, table: Table) {
        self.try_register(table)
            .expect("persisting a registered table failed");
    }

    /// [`Database::register`], surfacing the durable-persist error instead
    /// of panicking. Infallible for an in-memory database.
    pub fn try_register(&self, table: Table) -> Result<(), DbError> {
        let name = table.name().to_string();
        let mut vt = VersionedTable::from_table(table);
        let mut catalog = self.write_catalog();
        self.make_durable(&mut vt)?;
        catalog.insert(name, TableEntry::new(vt));
        drop(catalog);
        self.bump_epoch();
        Ok(())
    }

    /// Create a table with an explicit layout. Takes the catalog write
    /// lock briefly.
    pub fn create_table_with_layout(
        &self,
        name: &str,
        schema: Schema,
        layout: Layout,
    ) -> Result<(), DbError> {
        let mut t = VersionedTable::with_layout(name, schema, layout)?;
        let mut catalog = self.write_catalog();
        if catalog.contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_string()));
        }
        self.make_durable(&mut t)?;
        catalog.insert(name.to_string(), TableEntry::new(t));
        drop(catalog);
        self.bump_epoch();
        Ok(())
    }

    /// An owned handle to `name`'s [`SharedTable`] — the per-table
    /// concurrency primitive itself, for callers that want to drive a
    /// single table directly (snapshot/DML/three-phase merge) without
    /// going back through the catalog.
    pub fn shared(&self, name: &str) -> Result<SharedTable, DbError> {
        Ok(self.entry(name)?.table)
    }

    /// Run `f` under `name`'s table **read** lock. The closure sees a
    /// consistent [`VersionedTable`]; nothing borrowed from it can escape.
    /// This replaces the old `versioned(name) -> &VersionedTable`
    /// accessor.
    pub fn with_table<R>(
        &self,
        name: &str,
        f: impl FnOnce(&VersionedTable) -> R,
    ) -> Result<R, DbError> {
        Ok(self.entry(name)?.table.with_read(f))
    }

    /// Run `f` under `name`'s table **write** lock — the compound-write
    /// primitive. While `f` runs, no other writer, merge swap, or
    /// background catch-up can touch the table, so resolve-then-mutate
    /// sequences (look a row id up, then update it) are atomic here even
    /// in `Background` maintenance mode.
    ///
    /// Maintenance never runs inside: a compound write never merges.
    pub fn with_table_write<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut VersionedTable) -> R,
    ) -> Result<R, DbError> {
        Ok(self.entry(name)?.table.with_write(f))
    }

    /// A pinned snapshot of `name` at its current version (short read
    /// lock; queries on the snapshot run lock-free).
    pub fn table_snapshot(&self, name: &str) -> Result<Snapshot, DbError> {
        Ok(self.entry(name)?.table.snapshot())
    }

    /// The read-optimized main store of `name`, as an owned `Arc` (the
    /// main store is immutable between merges). Excludes pending delta
    /// rows — query through [`Database::run`] (or a snapshot) to see
    /// those.
    pub fn get_table(&self, name: &str) -> Result<Arc<Table>, DbError> {
        Ok(self.entry(name)?.table.main_arc())
    }

    /// Edit the main store in place (bulk loading), under the table's
    /// write lock. A pending delta is merged first (rebuilding indexes),
    /// since delta row addressing is relative to the main store. Replaces
    /// the old `get_table_mut` accessor. Note that direct main-store edits
    /// are not reflected in existing indexes or snapshots.
    pub fn edit_main<R>(&self, name: &str, f: impl FnOnce(&mut Table) -> R) -> Result<R, DbError> {
        let entry = self.entry(name)?;
        if entry.table.has_delta() {
            self.merge(name)?;
        }
        // Re-persist the edited main store blob (the WAL describes delta
        // ops only; a just-merged table's WAL is empty, so the blob swap
        // alone keeps the durable state consistent).
        let r = entry.table.with_write(|vt| {
            let r = vt.main_mut().map(f)?;
            vt.persist_main()?;
            Ok::<_, pdsm_storage::Error>(r)
        })?;
        Ok(r)
    }

    /// Table names in the catalog, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read_catalog().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Append a row to `table`'s delta. Returns its row id (stable until
    /// the next merge — see the struct docs for id stability under
    /// background maintenance). Visible to every subsequent query.
    ///
    /// Locking: the written table's write lock, per operation. Writers to
    /// other tables are unaffected.
    pub fn insert(&self, table: &str, values: &[Value]) -> Result<RowId, DbError> {
        let entry = self.entry(table)?;
        self.maintain(table, &entry)?;
        Ok(entry.table.insert(values)?)
    }

    /// Append many rows atomically (readers see all or none). Same
    /// locking granularity as [`Database::insert`].
    pub fn insert_batch(&self, table: &str, rows: &[Vec<Value>]) -> Result<Vec<RowId>, DbError> {
        let entry = self.entry(table)?;
        self.maintain(table, &entry)?;
        Ok(entry.table.insert_batch(rows)?)
    }

    /// Overwrite one cell of a visible row (tombstone + re-append).
    /// Returns the row's new id. Holds only the written table's write
    /// lock; column resolution and the write are one atomic operation.
    ///
    /// Never runs the maintenance step: `row` is a caller-held id, and a
    /// merge inside the call would renumber it out from under the caller
    /// (see [`Database::insert`] for where maintenance runs).
    pub fn update(
        &self,
        table: &str,
        row: RowId,
        column: &str,
        value: &Value,
    ) -> Result<RowId, DbError> {
        let entry = self.entry(table)?;
        Ok(entry.table.with_write(|vt| {
            let col = vt.schema().col_id(column)?;
            vt.update(row, col, value)
        })?)
    }

    /// Tombstone one visible row of `table` (the table's write lock, one
    /// operation). Like [`Database::update`], never runs the maintenance
    /// step (the id argument must stay valid).
    pub fn delete(&self, table: &str, row: RowId) -> Result<(), DbError> {
        Ok(self.entry(table)?.table.delete(row)?)
    }

    /// SQL `UPDATE table SET col = v, … [WHERE pred]`: overwrite the given
    /// columns of every visible row matching `pred` (all rows when `None`).
    /// Returns the number of rows updated. The match and every write happen
    /// under one acquisition of the table's write lock, so the statement is
    /// atomic with respect to concurrent DML and background merge swaps.
    /// `pred` is evaluated against full schema-order rows.
    pub fn update_where(
        &self,
        table: &str,
        sets: &[(String, Value)],
        pred: Option<&Expr>,
    ) -> Result<usize, DbError> {
        let entry = self.entry(table)?;
        Ok(entry.table.with_write(|vt| {
            let cols: Vec<(ColId, Value)> = sets
                .iter()
                .map(|(name, v)| vt.schema().col_id(name).map(|c| (c, v.clone())))
                .collect::<Result<_, _>>()?;
            let ids = matching_ids(vt, pred)?;
            let n = ids.len();
            for id in ids {
                // update() re-appends under a fresh id; chain multi-column
                // sets through the returned id.
                let mut cur = id;
                for (c, v) in &cols {
                    cur = vt.update(cur, *c, v)?;
                }
            }
            Ok::<_, pdsm_storage::Error>(n)
        })?)
    }

    /// SQL `DELETE FROM table [WHERE pred]`: tombstone every visible row
    /// matching `pred` (all rows when `None`). Returns the number of rows
    /// deleted. Atomic under one acquisition of the table's write lock,
    /// like [`Database::update_where`].
    pub fn delete_where(&self, table: &str, pred: Option<&Expr>) -> Result<usize, DbError> {
        let entry = self.entry(table)?;
        Ok(entry.table.with_write(|vt| {
            let ids = matching_ids(vt, pred)?;
            let n = ids.len();
            for id in ids {
                vt.delete(id)?;
            }
            Ok::<_, pdsm_storage::Error>(n)
        })?)
    }

    /// Fold `table`'s delta into a fresh main store (current layout) and
    /// rebuild its secondary indexes. Synchronous: the table's write lock
    /// is held for the fold; any in-flight background build turns stale
    /// and is discarded. Other tables are untouched.
    pub fn merge(&self, table: &str) -> Result<MergeStats, DbError> {
        let entry = self.entry(table)?;
        let (stats, main, generation) = entry.table.with_write(|vt| {
            let stats = vt.merge()?;
            Ok::<_, pdsm_storage::Error>((stats, vt.main_arc(), vt.generation()))
        })?;
        rebuild_index_set(&entry.indexes, &main, generation);
        Ok(stats)
    }

    /// Merge every table with a pending delta.
    pub fn merge_all(&self) -> Result<(), DbError> {
        for name in self.table_names() {
            let entry = self.entry(&name)?;
            if entry.table.has_delta() {
                self.merge(&name)?;
            }
        }
        Ok(())
    }

    /// Bring the durable state fully up to date: every table with a
    /// pending delta is merged (each merge checkpoints — fresh main blob
    /// committed, WAL truncated), and tables that are already clean get a
    /// final WAL fsync. After this returns, reopening the data directory
    /// replays zero WAL ops. No-op for an in-memory database.
    ///
    /// This is the clean-shutdown hook (`pdsm-server` calls it after
    /// `SHUTDOWN`).
    pub fn checkpoint_all(&self) -> Result<(), DbError> {
        for name in self.table_names() {
            let entry = self.entry(&name)?;
            if entry.table.durability().is_none() {
                continue;
            }
            if entry.table.has_delta() {
                self.merge(&name)?;
            } else if let Some(d) = entry.table.durability() {
                d.sync()?;
            }
        }
        Ok(())
    }

    /// Process-wide scan-kernel counters: SIMD vs. scalar chunks executed
    /// and zone blocks scanned vs. pruned, accumulated across every query
    /// on every engine since the last [`Database::reset_scan_stats`].
    /// Process-wide (not per-database) because the kernels themselves are.
    pub fn scan_stats(&self) -> pdsm_exec::ScanCounters {
        pdsm_exec::scan_counters()
    }

    /// Zero the process-wide scan-kernel counters (benchmark bracketing).
    pub fn reset_scan_stats(&self) {
        pdsm_exec::reset_scan_counters()
    }

    /// Aggregated WAL/checkpoint/recovery counters across every durable
    /// table (all zeros for an in-memory database).
    pub fn storage_stats(&self) -> StorageStats {
        let mut s = StorageStats::default();
        let entries: Vec<TableEntry> = self.read_catalog().values().cloned().collect();
        for entry in entries {
            let Some(d) = entry.table.durability() else {
                continue;
            };
            let ds = d.stats();
            s.durable_tables += 1;
            s.wal_bytes_appended += ds.wal.bytes_appended;
            s.wal_appends += ds.wal.appends;
            s.wal_fsyncs += ds.wal.fsyncs;
            s.wal_appends_synced += ds.wal.appends_synced;
            s.wal_max_group = s.wal_max_group.max(ds.wal.max_group);
            s.wal_live_bytes += ds.wal_len;
            s.checkpoints += ds.checkpoints;
            s.recovery_replay_ops += ds.last_recovery_replay_ops;
        }
        s
    }

    /// The buffer pool, when `PDSM_POOL_BYTES` configured one at open.
    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// Buffer-pool counters (hits, misses, evictions, resident bytes,
    /// fault latency), when pooling is enabled — `None` means every table
    /// is fully memory-resident.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.pool.as_ref().map(|p| p.stats())
    }

    /// The maintenance step every *insert* runs before applying its op:
    /// check the written table against its merge threshold — crossing it
    /// either merges inline ([`MaintenanceMode::Sync`]) or pins a cut and
    /// hands the O(table) fold to the background worker, which applies the
    /// swap itself (catch-up no longer rides the write path).
    ///
    /// Backpressure: if a build is in flight and the delta has outrun it
    /// by `max_lag ×` the threshold, this writer merges synchronously (the
    /// stale build is discarded), bounding what scans pay for.
    fn maintain(&self, table: &str, entry: &TableEntry) -> Result<(), DbError> {
        // Scalar policy only — extracted under the scheduler lock without
        // cloning the config (this runs on every insert).
        let policy = self.maintenance.policy_for(table);
        if policy.mode == MaintenanceMode::Off {
            return Ok(());
        }
        let threshold = policy.threshold;
        let (ops, pending) = entry
            .table
            .with_read(|vt| (vt.delta_ops(), vt.has_pending_merge()));
        if ops < threshold {
            return Ok(());
        }
        // Backpressure applies only when the builder cannot be (re)used:
        // the delta outran it by max_lag thresholds AND either a cut is
        // still pending or the launch slot is blocked (a stale build not
        // yet reaped, or the worker busy). With the slot free, a lagging
        // table just launches a background build — no writer stall.
        let lagging = policy.mode == MaintenanceMode::Background
            && policy.max_lag > 0
            && ops >= threshold.saturating_mul(policy.max_lag);
        if pending {
            if lagging {
                return self.sync_merge_entry(table, entry, &policy, true);
            }
            return Ok(());
        }
        match policy.mode {
            MaintenanceMode::Sync => self.sync_merge_entry(table, entry, &policy, false),
            MaintenanceMode::Background => {
                // Claim the launch slot first so concurrent writers of the
                // same table race begin_merge at most once each.
                if !self.maintenance.try_reserve(table) {
                    if lagging {
                        // Slot blocked while the delta runs away — bound
                        // it inline; the blocked build turns stale.
                        return self.sync_merge_entry(table, entry, &policy, true);
                    }
                    return Ok(());
                }
                let advise = if policy.advise_on_merge {
                    self.advise_inputs(table)
                } else {
                    None
                };
                match entry.table.begin_merge() {
                    Ok(ticket) => {
                        let layout = ticket.snapshot().main().layout().clone();
                        self.maintenance.launch(BuildJob {
                            table: table.to_string(),
                            handle: entry.table.clone(),
                            indexes: Arc::clone(&entry.indexes),
                            ticket,
                            layout,
                            advise,
                        });
                        Ok(())
                    }
                    Err(_) => {
                        // Raced an explicit begin on the shared handle.
                        self.maintenance.unreserve(table);
                        Ok(())
                    }
                }
            }
            MaintenanceMode::Off => Ok(()),
        }
    }

    /// One synchronous, advisor-consulted merge of `table` on the calling
    /// thread (the sync-mode and backpressure path).
    fn sync_merge_entry(
        &self,
        table: &str,
        entry: &TableEntry,
        policy: &crate::maintenance::TablePolicy,
        backpressure: bool,
    ) -> Result<(), DbError> {
        let advise = if policy.advise_on_merge {
            self.advise_inputs(table)
        } else {
            None
        };
        let current = entry.table.with_read(|vt| vt.main().layout().clone());
        let (layout, advised) = choose_layout(
            table,
            current,
            advise.as_ref(),
            &pdsm_cost::Hierarchy::nehalem(),
            &pdsm_layout::bpi::OptimizerConfig::default(),
        );
        let merged = entry.table.with_write(|vt| {
            // Re-check under the write lock: concurrent writers of the
            // same table may all have seen the threshold crossed before
            // the first one merged — the latecomers must not each rerun
            // the O(table) fold on a near-empty delta.
            if vt.delta_ops() < policy.threshold.max(1) {
                return Ok::<_, pdsm_storage::Error>(None);
            }
            vt.merge_with_layout(layout)?;
            Ok(Some((vt.main_arc(), vt.generation())))
        })?;
        if let Some((main, generation)) = merged {
            rebuild_index_set(&entry.indexes, &main, generation);
            self.maintenance.note_sync_merge(advised, backpressure);
        }
        Ok(())
    }

    /// The advisor inputs a merge of `table` ships to the worker: observed
    /// workload + statistics-free table views. `None` when nothing
    /// observed touches the table (callers gate on `advise_on_merge`).
    fn advise_inputs(&self, table: &str) -> Option<AdviseInputs> {
        let workload = self.observed_workload();
        if !workload
            .queries
            .iter()
            .any(|q| q.plan.tables().contains(&table))
        {
            return None;
        }
        let views = crate::LayoutAdvisor::default().views(self);
        Some(AdviseInputs { views, workload })
    }

    /// Merges the background worker has applied since the last call,
    /// without blocking. (The worker applies builds itself now; this only
    /// reports them.)
    pub fn poll_maintenance(&self) -> Result<Vec<(String, MergeStats)>, DbError> {
        Ok(self.maintenance.drain_applied())
    }

    /// Block until every in-flight background build is applied (or
    /// discarded). The deterministic quiesce point tests and benchmarks
    /// use; returns the merges applied since the last drain.
    pub fn flush_maintenance(&self) -> Result<Vec<(String, MergeStats)>, DbError> {
        Ok(self.maintenance.flush())
    }

    /// What the scheduler has done so far.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.maintenance.stats()
    }

    /// A copy of the active maintenance policy.
    pub fn maintenance_config(&self) -> MaintenanceConfig {
        self.maintenance.config()
    }

    /// Replace the maintenance policy (mode, thresholds, advice,
    /// backpressure). Takes effect from the next write. This replaces the
    /// old `maintenance_config_mut` escape hatch — config changes go
    /// through the same interior-mutability discipline as everything else.
    pub fn set_maintenance_config(&self, cfg: MaintenanceConfig) {
        self.maintenance.set_config(cfg);
    }

    /// Adjust the maintenance policy in place under the scheduler lock.
    pub fn update_maintenance_config(&self, f: impl FnOnce(&mut MaintenanceConfig)) {
        self.maintenance.update_config(f);
    }

    /// Set the merge threshold: globally (`table = None`) or for one table.
    pub fn set_merge_threshold(&self, table: Option<&str>, delta_ops: u64) {
        self.maintenance.update_config(|cfg| match table {
            Some(t) => {
                cfg.per_table.insert(t.to_string(), delta_ops);
            }
            None => cfg.merge_threshold = delta_ops,
        });
    }

    /// Version-chain statistics for `table` (see `pdsm_txn::registry`):
    /// live main stores, pinned generations, bytes held by superseded
    /// versions.
    pub fn version_stats(&self, table: &str) -> Result<VersionStats, DbError> {
        self.with_table(table, |vt| vt.version_stats())
    }

    /// Rebuild `table` under `layout`: a merge into the new layout. With an
    /// empty delta this is a pure relayout and row ids are stable (the
    /// property the index tests rely on); with a pending delta the delta is
    /// folded in and ids renumber. Indexes are rebuilt either way. Holds
    /// the table's write lock for the fold.
    pub fn relayout(&self, table: &str, layout: Layout) -> Result<(), DbError> {
        let entry = self.entry(table)?;
        let (_stats, (main, generation)) = entry
            .table
            .merge_with_layout_then(layout, |vt| (vt.main_arc(), vt.generation()))?;
        rebuild_index_set(&entry.indexes, &main, generation);
        Ok(())
    }

    /// Create (and backfill) an index on `table.column`. A pending delta is
    /// merged first so the index covers every visible row. The build runs
    /// off-lock over the immutable main store; only the install takes the
    /// index lock.
    pub fn create_index(&self, table: &str, column: &str, kind: IndexKind) -> Result<(), DbError> {
        let entry = self.entry(table)?;
        if entry.table.has_delta() {
            self.merge(table)?;
        }
        let (main, generation) = entry.table.with_read(|vt| (vt.main_arc(), vt.generation()));
        let col = main.schema().col_id(column)?;
        let ty = main.schema().columns()[col].ty;
        if ty == DataType::Float64 {
            return Err(DbError::NotIndexable {
                table: table.to_string(),
                column: column.to_string(),
            });
        }
        let index = Arc::new(build_index(&main, col, kind));
        entry
            .indexes
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .by_col
            .insert(
                col,
                IndexEntry {
                    generation,
                    kind,
                    index,
                },
            );
        // A background merge may have swapped the main store while we were
        // building. One catch-up rebuild closes the common race; anything
        // rarer is caught by the probe's generation check and healed by
        // the next merge's rebuild.
        let (main2, gen2) = entry.table.with_read(|vt| (vt.main_arc(), vt.generation()));
        if gen2 != generation {
            rebuild_index_set(&entry.indexes, &main2, gen2);
        }
        self.bump_epoch();
        Ok(())
    }

    /// Drop the index on `table.column` if present.
    pub fn drop_index(&self, table: &str, column: &str) -> Result<(), DbError> {
        let entry = self.entry(table)?;
        let col = entry.table.with_read(|vt| vt.schema().col_id(column))?;
        entry
            .indexes
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .by_col
            .remove(&col);
        self.bump_epoch();
        Ok(())
    }

    /// The index on `(table, col)`, if any — an owned handle; it may be
    /// one generation behind the main store right after a merge (probes
    /// check, planners only price).
    pub fn index(&self, table: &str, col: ColId) -> Option<Arc<Index>> {
        let entry = self.read_catalog().get(table)?.clone();
        let set = entry.indexes.read().unwrap_or_else(|e| e.into_inner());
        set.by_col.get(&col).map(|e| Arc::clone(&e.index))
    }

    /// A consistent provider for `plan`'s tables: each table pinned at its
    /// current version (short read lock per table; missing tables are left
    /// for the engine to report). Queries then run entirely lock-free.
    fn provider_for(&self, plan: &LogicalPlan) -> DbSnapshot {
        let catalog = self.read_catalog();
        let mut tables = HashMap::new();
        for name in plan.tables() {
            if tables.contains_key(name) {
                continue;
            }
            if let Some(e) = catalog.get(name) {
                tables.insert(name.to_string(), e.table.snapshot());
            }
        }
        DbSnapshot { tables }
    }

    /// Execute `plan` with the chosen engine, without index acceleration —
    /// the forced-engine escape hatch benchmarks and differential tests
    /// use. Runs over snapshots pinned at call time (no lock held during
    /// execution). Routine queries should go through [`Database::execute`].
    pub fn run(&self, plan: &LogicalPlan, engine: EngineKind) -> Result<QueryResult, DbError> {
        // A still-cold table streams extent-at-a-time through the buffer
        // pool when the plan shape allows it — the scan then never holds
        // more than one extent's frames pinned, so a table larger than
        // the pool budget scans in bounded memory. Non-streamable shapes
        // fall through and hydrate below.
        if let Some(result) = crate::streaming::run_cold_streaming(self, plan, engine)? {
            return Ok(result);
        }
        let provider = self.provider_for(plan);
        let output = engine.engine().execute(plan, &provider)?;
        Ok(QueryResult::new(provider.output_names(plan), output))
    }

    /// Execute `plan` through the cost-based planner: lower it to a
    /// [`PhysicalPlan`] (cached per catalog/generation fingerprint), record
    /// it in the observed workload, consult the result cache for admitted
    /// plans, and dispatch to the chosen engine or index probe. Results
    /// are byte-identical to every fixed engine — cached or not.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<QueryResult, DbError> {
        // One rendering serves both the plan cache and the observed-
        // workload dedup — it is the only per-plan string work on a
        // cache-hit execute.
        let key = format!("{plan:?}");
        let (phys, deps, epoch) = self.plan_query_deps(plan, &key)?;
        self.record_observed(plan, key);
        self.execute_physical_cached(&phys, Some((deps, epoch)))
    }

    /// Lower `plan` to its [`PhysicalPlan`] without executing it. Cached:
    /// repeated calls return the same `Arc` until a referenced table's
    /// merge generation or delta fingerprint moves (including bumps from
    /// the background worker), or the catalog changes shape (table
    /// registered, index created/dropped).
    pub fn plan_query(&self, plan: &LogicalPlan) -> Result<Arc<PhysicalPlan>, DbError> {
        Ok(self.plan_query_deps(plan, &format!("{plan:?}"))?.0)
    }

    /// The per-table invalidation tokens of every table `plan` reads, plus
    /// the catalog epoch — the shared validity fingerprint of the plan and
    /// result caches.
    fn deps_and_epoch(&self, plan: &LogicalPlan) -> Result<(DepTokens, u64), DbError> {
        let mut deps: DepTokens = Vec::new();
        for t in plan.tables() {
            if deps.iter().any(|(n, _, _)| n == t) {
                continue;
            }
            let (generation, delta_ops) =
                self.with_table(t, |vt| (vt.generation(), vt.delta_ops()))?;
            deps.push((t.to_string(), generation, delta_ops));
        }
        let epoch = self.catalog_epoch.load(Ordering::Relaxed);
        Ok((deps, epoch))
    }

    /// Lower (or fetch the cached lowering of) `plan`, returning the
    /// tokens it was validated against so callers can reuse them for the
    /// result-cache probe without re-reading table locks.
    fn plan_query_deps(
        &self,
        plan: &LogicalPlan,
        key: &str,
    ) -> Result<(Arc<PhysicalPlan>, DepTokens, u64), DbError> {
        let (deps, epoch) = self.deps_and_epoch(plan)?;
        if let Some(phys) = self.plan_cache.lookup(key, epoch, &deps) {
            return Ok((phys, deps, epoch));
        }
        let phys = Arc::new(Planner::default().plan(self, plan)?);
        self.plan_cache
            .insert(key.to_string(), epoch, deps.clone(), phys.clone());
        Ok((phys, deps, epoch))
    }

    /// The `EXPLAIN` of `plan`: the physical plan's rendering — chosen
    /// engine, per-pipeline access path, model cost, all priced
    /// alternatives — plus the result cache's live status for this plan
    /// (`bypass` when disabled or not admitted, otherwise a stat-silent
    /// peek answers `hit` or `miss`).
    pub fn explain(&self, plan: &LogicalPlan) -> Result<String, DbError> {
        let key = format!("{plan:?}");
        let (phys, deps, epoch) = self.plan_query_deps(plan, &key)?;
        let status = if !self.result_cache.is_enabled() || !phys.cache_admit {
            "bypass"
        } else if self
            .result_cache
            .probe(&plan_fingerprint(&phys.logical), epoch, &deps, false)
            .is_some()
        {
            "hit"
        } else {
            "miss"
        };
        Ok(phys.explain_with(Some(status)))
    }

    /// Execute an already-lowered plan, consulting the result cache the
    /// same way [`Database::execute`] does.
    pub fn execute_physical(&self, phys: &PhysicalPlan) -> Result<QueryResult, DbError> {
        self.execute_physical_cached(phys, None)
    }

    /// The cache-wrapped execution path. `deps_epoch` carries the tokens
    /// `execute` already read for the plan cache; `None` (direct
    /// `execute_physical` callers) reads them fresh.
    fn execute_physical_cached(
        &self,
        phys: &PhysicalPlan,
        deps_epoch: Option<(DepTokens, u64)>,
    ) -> Result<QueryResult, DbError> {
        // The entire cache-off cost: one atomic load.
        if !self.result_cache.is_enabled() {
            return self.execute_physical_uncached(phys);
        }
        if !phys.cache_admit {
            // The model priced this result as cheaper to recompute than
            // to copy in and out of a cache.
            self.result_cache.note_bypass();
            return self.execute_physical_uncached(phys);
        }
        let (deps, epoch) = match deps_epoch {
            Some(d) => d,
            None => self.deps_and_epoch(&phys.logical)?,
        };
        let fp = plan_fingerprint(&phys.logical);
        if let Some(hit) = self.result_cache.probe(&fp, epoch, &deps, true) {
            return Ok((*hit.result).clone());
        }
        // Whole-result miss: a cached filtered-scan fragment may still
        // serve this plan (e.g. an aggregate over a previously-run
        // filter); otherwise execute for real.
        let result = match self.fragment_result(&phys.logical, epoch, &deps)? {
            Some(r) => r,
            None => self.execute_physical_uncached(phys)?,
        };
        // Admit only if no DML/merge/shape change raced the execution:
        // the tokens are monotonic, so equality before and after brackets
        // the pinned snapshot and proves the tag matches the rows. A
        // vanished table just skips admission.
        if let Ok((deps_after, epoch_after)) = self.deps_and_epoch(&phys.logical) {
            if deps_after == deps && epoch_after == epoch {
                let result = Arc::new(result);
                let benefit = (phys.cost.total() - phys.copy_out_cycles).max(0.0);
                self.result_cache.admit(
                    fp,
                    epoch,
                    deps,
                    Arc::clone(&result),
                    benefit,
                    self.fragment_schema(&phys.logical),
                );
                return Ok((*result).clone());
            }
        }
        Ok(result)
    }

    /// Execute an already-lowered plan with no cache interaction:
    /// index-probe pipelines run the overlay-aware probe + delta-tail
    /// union; everything else dispatches to the chosen engine.
    fn execute_physical_uncached(&self, phys: &PhysicalPlan) -> Result<QueryResult, DbError> {
        if phys.access().is_indexed() {
            if let Some(cand) = self.index_candidate(&phys.logical) {
                if let Some(out) = self.run_index_candidate(&phys.logical, &cand)? {
                    return Ok(QueryResult::new(self.names_for(&phys.logical), out));
                }
            }
            // Index dropped (or reshaped) since planning — scan instead.
        }
        self.run(&phys.logical, phys.engine.into())
    }

    /// Serve `plan` from a cached filtered-scan fragment: when `plan` is a
    /// **global aggregate** directly over a cached-and-current
    /// `Select(Scan)` fragment, the fragment's rows are rebuilt into a
    /// synthetic table once and the aggregate runs over them on the
    /// compiled engine. Restricted to empty-`group_by` aggregates because
    /// their single-row output is independent of both row order and the
    /// engine that computes it — grouped or row-returning consumers would
    /// tie the output's row *order* to the serving engine, and group order
    /// is an engine-level degree of freedom this cache must not alter.
    fn fragment_result(
        &self,
        plan: &LogicalPlan,
        epoch: u64,
        deps: &DepTokens,
    ) -> Result<Option<QueryResult>, DbError> {
        let LogicalPlan::Aggregate {
            input, group_by, ..
        } = plan
        else {
            return Ok(None);
        };
        if !group_by.is_empty() {
            return Ok(None);
        }
        let Some(frag) = pipeline_fragment(plan) else {
            return Ok(None);
        };
        if !std::ptr::eq(frag, input.as_ref()) {
            return Ok(None);
        }
        let fp = plan_fingerprint(frag);
        // Single-table plans only (fragments never cross joins), so the
        // plan's tokens are exactly the fragment's tokens.
        let Some(entry) = self.result_cache.probe(&fp, epoch, deps, false) else {
            return Ok(None);
        };
        let Some(table) = entry.fragment_table() else {
            return Ok(None);
        };
        self.result_cache.note_fragment_hit(&entry);
        let rewritten = substitute_fragment(plan, FRAGMENT_TABLE);
        let provider = FragProvider { table };
        let output = EngineKind::Compiled
            .engine()
            .execute(&rewritten, &provider)?;
        Ok(Some(QueryResult::new(self.names_for(plan), output)))
    }

    /// The base table's schema when `plan` is a full-schema filtered scan
    /// (`Select` directly over `Scan`) — the shape whose cached result can
    /// later serve as a fragment for other plans.
    fn fragment_schema(&self, plan: &LogicalPlan) -> Option<Schema> {
        let LogicalPlan::Select { input, .. } = plan else {
            return None;
        };
        let LogicalPlan::Scan { table } = input.as_ref() else {
            return None;
        };
        self.with_table(table, |vt| vt.schema().clone()).ok()
    }

    /// Combined counters of the plan cache and the result cache.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            plan: self.plan_cache.stats(),
            result: self.result_cache.stats(),
        }
    }

    /// Reconfigure the result cache (tests, embedders, benchmarks that
    /// must not depend on the process environment). Drops every cached
    /// result; counters keep accumulating.
    pub fn set_result_cache(&self, cfg: ResultCacheConfig) {
        self.result_cache.set_config(cfg);
    }

    /// The result cache's active configuration.
    pub fn result_cache_config(&self) -> ResultCacheConfig {
        self.result_cache.config()
    }

    /// Execute `plan`, using an index for the outermost selection when one
    /// matches (the Fig.-10 "indexed" execution path); falls back to the
    /// engine otherwise. Probes are delta-aware: main-store hits minus
    /// tombstones, unioned with the filtered live tail.
    pub fn run_indexed(
        &self,
        plan: &LogicalPlan,
        engine: EngineKind,
    ) -> Result<QueryResult, DbError> {
        if let Some(cand) = self.index_candidate(plan) {
            if let Some(out) = self.run_index_candidate(plan, &cand)? {
                return Ok(QueryResult::new(self.names_for(plan), out));
            }
        }
        self.run(plan, engine)
    }

    /// Output column names of `plan` against the current catalog (short
    /// read locks; see [`LogicalPlan::output_names`]).
    pub(crate) fn names_for(&self, plan: &LogicalPlan) -> Vec<String> {
        plan.output_names(&|t| {
            self.with_table(t, |vt| {
                vt.schema()
                    .columns()
                    .iter()
                    .map(|c| c.name.clone())
                    .collect()
            })
            .ok()
        })
    }

    /// Recognize `[Project] (Select (Scan))` plans whose predicate contains
    /// an indexed equality or range conjunct, and name the probe that
    /// serves it. Pure shape/catalog matching — no data access, so the
    /// planner prices the candidate before anything is fetched. A point
    /// probe (one key's bucket) is preferred over a range probe whatever
    /// the conjunct order.
    pub(crate) fn index_candidate(&self, plan: &LogicalPlan) -> Option<IndexCandidate> {
        let inner = match plan {
            LogicalPlan::Project { input, .. } => input.as_ref(),
            other => other,
        };
        let LogicalPlan::Select { input, pred, .. } = inner else {
            return None;
        };
        let LogicalPlan::Scan { table } = input.as_ref() else {
            return None;
        };
        let entry = self.read_catalog().get(table)?.clone();
        let t = entry.table.main_arc();
        let set = entry.indexes.read().unwrap_or_else(|e| e.into_inner());
        let mut range_cand: Option<IndexCandidate> = None;
        for conj in conjuncts(pred) {
            let Some((col, op, lit)) = simple_cmp(conj) else {
                continue;
            };
            let Some(ie) = set.by_col.get(&col) else {
                continue;
            };
            match op {
                CmpOp::Eq => {
                    // The probe keys integers by value and strings by
                    // dictionary code; a literal of any other type (or a
                    // cross-type comparison the engines would coerce,
                    // e.g. Int32 column = Float64 literal) has no index
                    // key, so the probe would silently miss main-store
                    // hits — leave those shapes to the scan path.
                    let ty = t.schema().columns()[col].ty;
                    let keyable = matches!(
                        (ty, lit),
                        (
                            DataType::Int32 | DataType::Int64,
                            Value::Int32(_) | Value::Int64(_)
                        ) | (DataType::Str, Value::Str(_))
                    );
                    if !keyable {
                        continue;
                    }
                    return Some(IndexCandidate {
                        table: table.clone(),
                        col,
                        access: AccessPath::IndexPoint {
                            column: col,
                            key: lit.clone(),
                        },
                    });
                }
                CmpOp::Le | CmpOp::Lt | CmpOp::Ge | CmpOp::Gt
                    if range_cand.is_none()
                        && matches!(ie.index.as_ref(), Index::RBTree(_))
                        && t.schema().columns()[col].ty != DataType::Str =>
                {
                    if let Some(k) = lit.as_i64() {
                        // Saturating strict bounds can over-include one
                        // key at the i64 extremes; that is safe — the
                        // probe re-applies the full predicate to every
                        // fetched row — whereas excluding a key would
                        // silently drop rows.
                        let (lo, hi) = match op {
                            CmpOp::Le => (i64::MIN, k),
                            CmpOp::Lt => (i64::MIN, k.saturating_sub(1)),
                            CmpOp::Ge => (k, i64::MAX),
                            CmpOp::Gt => (k.saturating_add(1), i64::MAX),
                            _ => unreachable!(),
                        };
                        range_cand = Some(IndexCandidate {
                            table: table.clone(),
                            col,
                            access: AccessPath::IndexRange {
                                column: col,
                                lo,
                                hi,
                            },
                        });
                    }
                }
                _ => {}
            }
        }
        range_cand
    }

    /// Evaluate `plan` via an index candidate: pin a snapshot, probe the
    /// main-store index, drop tombstoned hits, residual-filter and project
    /// the survivors, then union the live delta tail (full predicate,
    /// append order). Rows come out in scan order — main order then tail
    /// order — exactly what an engine scan of the same plan produces.
    /// Returns `Ok(None)` when the candidate no longer matches the catalog
    /// or the index lags the snapshot's generation (a merge swapped the
    /// main in between; the caller falls back to the engine).
    fn run_index_candidate(
        &self,
        plan: &LogicalPlan,
        cand: &IndexCandidate,
    ) -> Result<Option<QueryOutput>, DbError> {
        let (project, inner) = match plan {
            LogicalPlan::Project { input, exprs } => (Some(exprs), input.as_ref()),
            other => (None, other),
        };
        let LogicalPlan::Select { pred, .. } = inner else {
            return Ok(None);
        };
        let entry = self.entry(&cand.table)?;
        // The snapshot pins (main, overlay, generation) atomically; the
        // index is used only if it covers exactly that main store.
        let snap = entry.table.snapshot();
        let ie = {
            let set = entry.indexes.read().unwrap_or_else(|e| e.into_inner());
            match set.by_col.get(&cand.col) {
                Some(e) => e.clone(),
                None => return Ok(None),
            }
        };
        if ie.generation != snap.generation() {
            return Ok(None); // index not yet rebuilt for this version
        }
        let t = snap.main();
        let mut rows = match &cand.access {
            AccessPath::IndexPoint { key, .. } => match key_of_value(t, cand.col, key) {
                Some(k) => ie.index.lookup(k),
                None => Vec::new(), // value not in dictionary → no main hits
            },
            AccessPath::IndexRange { lo, hi, .. } => match ie.index.lookup_range(*lo, *hi) {
                Some(r) => r,
                None => return Ok(None), // index lost range support
            },
            AccessPath::FullScan => return Ok(None),
        };
        rows.sort_unstable();
        let overlay = snap.overlay();
        let materialize = |values: &[Value]| -> Vec<Value> {
            match project {
                Some(exprs) => exprs.iter().map(|e| e.eval(values)).collect(),
                None => values.to_vec(),
            }
        };
        let mut out = QueryOutput::new();
        for r in rows {
            if overlay.as_ref().is_some_and(|o| o.is_dead(r as usize)) {
                continue;
            }
            let row = t.row(r as usize)?;
            if !pred.eval_bool(row.values()) {
                continue;
            }
            out.rows.push(materialize(row.values()));
        }
        if let Some(o) = overlay.as_ref() {
            for row in o.live_tail() {
                if !pred.eval_bool(row.values()) {
                    continue;
                }
                out.rows.push(materialize(row.values()));
            }
        }
        Ok(Some(out))
    }

    /// Record one executed plan into the observed workload (deduplicated;
    /// repeats bump the frequency). `key` is the plan's rendering, shared
    /// with the plan cache so `execute` formats it once.
    fn record_observed(&self, plan: &LogicalPlan, key: String) {
        let mut o = self.observed.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&i) = o.by_key.get(&key) {
            o.workload.queries[i].frequency += 1.0;
            return;
        }
        let i = o.workload.queries.len();
        if i >= OBSERVED_CAP {
            return;
        }
        let name = format!("observed-{i}");
        o.workload.push(WorkloadQuery::new(name, plan.clone()));
        o.by_key.insert(key, i);
    }

    /// The traffic [`Database::execute`] has routed so far, as a
    /// [`pdsm_layout::workload::Workload`]: one weighted entry per distinct
    /// plan. Feed it to [`crate::LayoutAdvisor`] so `relayout`/merge can
    /// re-advise from what actually ran.
    pub fn observed_workload(&self) -> Workload {
        self.observed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .workload
            .clone()
    }

    /// Forget the observed workload (e.g. after applying its advice).
    pub fn clear_observed_workload(&self) {
        let mut o = self.observed.lock().unwrap_or_else(|e| e.into_inner());
        o.workload.queries.clear();
        o.by_key.clear();
    }

    /// Total bytes across all tables (main stores + pending deltas).
    pub fn byte_size(&self) -> usize {
        self.read_catalog()
            .values()
            .map(|e| {
                e.table
                    .with_read(|vt| vt.main().byte_size() + vt.delta_byte_size())
            })
            .sum()
    }

    /// Take an owned snapshot of every table, each pinned at its current
    /// version. The snapshot is `Send + Sync` and independent of later DML
    /// — the handle concurrent readers query while writers keep appending
    /// (see `pdsm-txn`). Each table's cut is internally consistent; the
    /// cuts of different tables are taken in sequence under one catalog
    /// read lock.
    pub fn snapshot(&self) -> DbSnapshot {
        DbSnapshot {
            tables: self
                .read_catalog()
                .iter()
                .map(|(n, e)| (n.clone(), e.table.snapshot()))
                .collect(),
        }
    }
}

/// Re-derive every index of a table from a freshly merged main store.
/// Called after the swap (sync path: the merging thread; background path:
/// the maintenance worker), never under the table lock — the main store is
/// immutable, and the per-index generation tag keeps racing rebuilds
/// monotonic: an older build never overwrites a newer one, and columns
/// dropped meanwhile stay dropped.
pub(crate) fn rebuild_index_set(indexes: &RwLock<IndexSet>, main: &Table, generation: u64) {
    let cols: Vec<(ColId, IndexKind)> = {
        let set = indexes.read().unwrap_or_else(|e| e.into_inner());
        set.by_col
            .iter()
            .filter(|(_, e)| e.generation < generation)
            .map(|(c, e)| (*c, e.kind))
            .collect()
    };
    if cols.is_empty() {
        return;
    }
    let rebuilt: Vec<(ColId, IndexKind, Arc<Index>)> = cols
        .into_iter()
        .map(|(c, k)| (c, k, Arc::new(build_index(main, c, k))))
        .collect();
    let mut set = indexes.write().unwrap_or_else(|e| e.into_inner());
    for (col, kind, index) in rebuilt {
        if let Some(e) = set.by_col.get_mut(&col) {
            if e.generation < generation {
                *e = IndexEntry {
                    generation,
                    kind,
                    index,
                };
            }
        }
    }
}

/// A recognized index probe: which `(table, column)` index serves the
/// plan's outermost selection, and how. Produced by
/// `Database::index_candidate`, priced by the planner, executed by the
/// overlay-aware probe.
#[derive(Debug, Clone)]
pub(crate) struct IndexCandidate {
    pub table: String,
    pub col: ColId,
    pub access: AccessPath,
}

/// An owned multi-table snapshot: every table pinned at one version.
/// Implements [`TableProvider`], so it can be handed to any engine — from
/// any thread — while the database keeps moving.
#[derive(Clone)]
pub struct DbSnapshot {
    tables: HashMap<String, Snapshot>,
}

impl DbSnapshot {
    /// The pinned snapshot of `name`.
    pub fn table_snapshot(&self, name: &str) -> Option<&Snapshot> {
        self.tables.get(name)
    }

    /// Output column names of `plan` against the pinned schemas.
    pub(crate) fn output_names(&self, plan: &LogicalPlan) -> Vec<String> {
        plan.output_names(&|t| {
            self.tables.get(t).map(|s| {
                s.main()
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| c.name.clone())
                    .collect()
            })
        })
    }

    /// Execute `plan` against this snapshot with the chosen engine — the
    /// forced-engine escape hatch. Routine queries should use
    /// [`DbSnapshot::execute`].
    pub fn run(&self, plan: &LogicalPlan, engine: EngineKind) -> Result<QueryResult, DbError> {
        let output = engine.engine().execute(plan, self)?;
        Ok(QueryResult::new(self.output_names(plan), output))
    }

    /// Execute `plan` with the planner choosing the engine. Snapshots
    /// carry no secondary indexes, so access-path selection reduces to
    /// engine selection over the pinned versions.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<QueryResult, DbError> {
        let mut views = HashMap::new();
        for name in plan.tables() {
            if views.contains_key(name) {
                continue;
            }
            let Some(s) = self.tables.get(name) else {
                return Err(DbError::UnknownTable(name.to_string()));
            };
            views.insert(
                name.to_string(),
                crate::planner::table_view(s.main(), s.len()),
            );
        }
        let phys = Planner::default().plan_views(views, plan);
        self.run(plan, phys.engine.into())
    }
}

impl TableProvider for DbSnapshot {
    fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(|s| s.main())
    }

    fn overlay(&self, name: &str) -> Option<Overlay<'_>> {
        self.tables.get(name).and_then(|s| s.overlay())
    }
}

/// Provider serving a single materialized fragment under
/// [`FRAGMENT_TABLE`] — what a fragment-rewritten plan scans. No overlay:
/// the fragment is fully materialized, its rows are the whole truth.
struct FragProvider {
    table: Arc<Table>,
}

impl TableProvider for FragProvider {
    fn table(&self, name: &str) -> Option<&Table> {
        (name == FRAGMENT_TABLE).then_some(&self.table)
    }
}

/// Build one secondary index over a main store.
fn build_index(t: &Table, col: ColId, kind: IndexKind) -> Index {
    let mut idx = match kind {
        IndexKind::Hash => Index::Hash(HashIndex::with_capacity(t.len())),
        IndexKind::RBTree => Index::RBTree(RBTree::new()),
    };
    for row in 0..t.len() {
        if let Some(key) = index_key(t, row, col) {
            idx.insert(key, row as u32);
        }
    }
    idx
}

/// Index key of `table[row][col]`: integers by value, strings by dictionary
/// code. NULLs are not indexed.
fn index_key(t: &Table, row: usize, col: ColId) -> Option<i64> {
    match t.get(row, col).ok()? {
        Value::Int32(v) => Some(v as i64),
        Value::Int64(v) => Some(v),
        Value::Str(s) => t.dict(col).and_then(|d| d.code_of(&s)).map(|c| c as i64),
        _ => None,
    }
}

/// Index key of a literal compared against `col`.
fn key_of_value(t: &Table, col: ColId, v: &Value) -> Option<i64> {
    match v {
        Value::Int32(x) => Some(*x as i64),
        Value::Int64(x) => Some(*x),
        Value::Str(s) => t.dict(col).and_then(|d| d.code_of(s)).map(|c| c as i64),
        _ => None,
    }
}

/// Row ids of every visible row of `vt` matching `pred` (all visible rows
/// when `None`), in scan order. Runs under the caller's table lock — the
/// id set is only meaningful while that lock is held.
fn matching_ids(
    vt: &VersionedTable,
    pred: Option<&Expr>,
) -> Result<Vec<RowId>, pdsm_storage::Error> {
    let id_space = vt.main().len() + vt.delta_rows();
    let mut ids = Vec::new();
    for id in 0..id_space {
        if !vt.is_visible(id) {
            continue;
        }
        let row = vt.get(id)?;
        if pred.is_none_or(|p| p.eval_bool(row.values())) {
            ids.push(id);
        }
    }
    Ok(ids)
}

/// The AND-conjuncts of a predicate, in evaluation order (shared with the
/// planner's conjunct-level selectivity pricing).
pub(crate) fn conjuncts(pred: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            other => out.push(other),
        }
    }
    walk(pred, &mut out);
    out
}

/// Decompose `col ⟨op⟩ literal` (either orientation) into its parts.
pub(crate) fn simple_cmp(e: &Expr) -> Option<(ColId, CmpOp, &Value)> {
    if let Expr::Cmp { op, left, right } = e {
        match (left.as_ref(), right.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) => return Some((*c, *op, v)),
            (Expr::Lit(v), Expr::Col(c)) => {
                let flip = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    o => *o,
                };
                return Some((*c, flip, v));
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_storage::ColumnDef;

    fn demo_db() -> Database {
        let db = Database::new();
        db.create_table(
            "orders",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int32),
                ColumnDef::new("cust", DataType::Str),
                ColumnDef::new("qty", DataType::Int64),
            ]),
        )
        .unwrap();
        for i in 0..500 {
            db.insert(
                "orders",
                &[
                    Value::Int32(i),
                    Value::Str(format!("cust-{}", i % 20)),
                    Value::Int64((i as i64) * 2),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn create_insert_query_roundtrip() {
        let db = demo_db();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(1).eq(Expr::lit("cust-3")))
            .project(vec![Expr::col(0)])
            .build();
        for kind in EngineKind::all() {
            let out = db.run(&plan, kind).unwrap();
            assert_eq!(out.len(), 25, "{:?}", kind);
        }
    }

    #[test]
    fn duplicate_and_unknown_tables() {
        let db = demo_db();
        assert!(matches!(
            db.create_table(
                "orders",
                Schema::new(vec![ColumnDef::new("x", DataType::Int32)])
            ),
            Err(DbError::DuplicateTable(_))
        ));
        assert!(matches!(
            db.get_table("nope"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn index_path_matches_scan_path() {
        let db = demo_db();
        db.create_index("orders", "id", IndexKind::Hash).unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(123)))
            .build();
        let indexed = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        let scanned = db.run(&plan, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "indexed vs scan");
        assert_eq!(indexed.len(), 1);
    }

    #[test]
    fn rbtree_index_serves_ranges() {
        let db = demo_db();
        db.create_index("orders", "id", IndexKind::RBTree).unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(0).lt(Expr::lit(10)))
            .project(vec![Expr::col(0)])
            .build();
        let indexed = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        assert_eq!(indexed.len(), 10);
        let scanned = db.run(&plan, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "range index vs scan");
    }

    #[test]
    fn string_index_via_dictionary_codes() {
        let db = demo_db();
        db.create_index("orders", "cust", IndexKind::Hash).unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(1).eq(Expr::lit("cust-7")))
            .project(vec![Expr::col(0), Expr::col(1)])
            .build();
        let indexed = db.run_indexed(&plan, EngineKind::Volcano).unwrap();
        assert_eq!(indexed.len(), 25);
        let scanned = db.run(&plan, EngineKind::Volcano).unwrap();
        indexed.assert_same(&scanned, "string index");
        // absent key → empty, not fallback
        let missing = QueryBuilder::scan("orders")
            .filter(Expr::col(1).eq(Expr::lit("cust-999")))
            .build();
        assert!(db
            .run_indexed(&missing, EngineKind::Volcano)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn index_maintained_by_inserts() {
        let db = demo_db();
        db.create_index("orders", "id", IndexKind::Hash).unwrap();
        db.insert(
            "orders",
            &[Value::Int32(9999), Value::from("cust-new"), Value::Int64(1)],
        )
        .unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(9999)))
            .build();
        assert_eq!(
            db.run_indexed(&plan, EngineKind::Compiled).unwrap().len(),
            1
        );
    }

    #[test]
    fn relayout_preserves_queries_and_indexes() {
        let db = demo_db();
        db.create_index("orders", "id", IndexKind::Hash).unwrap();
        let plan = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(42)))
            .build();
        let before = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        db.relayout("orders", Layout::column(3)).unwrap();
        let after = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        before.assert_same(&after, "relayout");
        assert_eq!(db.get_table("orders").unwrap().layout().n_groups(), 3);
    }

    #[test]
    fn edit_main_implicit_merge_rebuilds_indexes() {
        let db = demo_db();
        db.create_index("orders", "id", IndexKind::Hash).unwrap();
        // tombstone one indexed row and append a replacement → pending delta
        db.delete("orders", 3).unwrap();
        db.insert(
            "orders",
            &[Value::Int32(10_000), Value::from("cust-x"), Value::Int64(3)],
        )
        .unwrap();
        // bulk-load access merges implicitly; the index must follow the
        // renumbered rows
        db.edit_main("orders", |_t| {}).unwrap();
        assert!(!db.with_table("orders", |vt| vt.has_delta()).unwrap());
        let new_row = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(10_000)))
            .build();
        let indexed = db.run_indexed(&new_row, EngineKind::Compiled).unwrap();
        let scanned = db.run(&new_row, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "index rebuilt by implicit merge");
        assert_eq!(indexed.len(), 1);
        let gone = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(3)))
            .build();
        let indexed = db.run_indexed(&gone, EngineKind::Compiled).unwrap();
        let scanned = db.run(&gone, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "deleted row absent from rebuilt index");
        assert!(indexed.is_empty());
    }

    #[test]
    fn versioned_dml_and_merge_roundtrip() {
        let db = demo_db();
        let id = db
            .insert(
                "orders",
                &[Value::Int32(900), Value::from("cust-z"), Value::Int64(1)],
            )
            .unwrap();
        let new_id = db.update("orders", id, "qty", &Value::Int64(7)).unwrap();
        assert_ne!(id, new_id);
        db.delete("orders", 0).unwrap();
        let count = QueryBuilder::scan("orders")
            .aggregate(vec![], vec![pdsm_plan::logical::AggExpr::count_star()])
            .build();
        let live = db.run(&count, EngineKind::Compiled).unwrap();
        assert_eq!(live.rows[0][0], Value::Int64(500)); // 500 + 1 − 1
        let stats = db.merge("orders").unwrap();
        assert_eq!(stats.rows_after, 500);
        let merged = db.run(&count, EngineKind::Compiled).unwrap();
        assert_eq!(merged.rows[0][0], Value::Int64(500));
    }

    #[test]
    fn float_columns_not_indexable() {
        let db = Database::new();
        db.create_table(
            "f",
            Schema::new(vec![ColumnDef::new("x", DataType::Float64)]),
        )
        .unwrap();
        assert!(matches!(
            db.create_index("f", "x", IndexKind::Hash),
            Err(DbError::NotIndexable { .. })
        ));
    }

    #[test]
    fn residual_predicates_still_apply() {
        let db = demo_db();
        db.create_index("orders", "cust", IndexKind::Hash).unwrap();
        // indexed conjunct + residual on qty
        let plan = QueryBuilder::scan("orders")
            .filter(
                Expr::col(1)
                    .eq(Expr::lit("cust-3"))
                    .and(Expr::col(2).gt(Expr::lit(400))),
            )
            .project(vec![Expr::col(0)])
            .build();
        let indexed = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        let scanned = db.run(&plan, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "residual");
    }

    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<DbSnapshot>();
    }

    fn durable_tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pdsm-core-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open_off(dir: &Path) -> Database {
        Database::open_with(
            DurabilityConfig::new(dir).with_fsync(FsyncMode::Off),
            MaintenanceConfig {
                mode: MaintenanceMode::Off,
                ..MaintenanceConfig::default()
            },
        )
        .unwrap()
    }

    fn count_orders(db: &Database) -> i64 {
        let count = QueryBuilder::scan("orders")
            .aggregate(vec![], vec![pdsm_plan::logical::AggExpr::count_star()])
            .build();
        match db.run(&count, EngineKind::Compiled).unwrap().rows[0][0] {
            Value::Int64(n) => n,
            ref v => panic!("count returned {v:?}"),
        }
    }

    #[test]
    fn durable_database_survives_reopen() {
        let dir = durable_tmpdir("reopen");
        {
            let db = open_off(&dir);
            db.create_table(
                "orders",
                Schema::new(vec![
                    ColumnDef::new("id", DataType::Int32),
                    ColumnDef::new("cust", DataType::Str),
                    ColumnDef::new("qty", DataType::Int64),
                ]),
            )
            .unwrap();
            for i in 0..50 {
                db.insert(
                    "orders",
                    &[
                        Value::Int32(i),
                        Value::Str(format!("cust-{}", i % 5)),
                        Value::Int64(i as i64),
                    ],
                )
                .unwrap();
            }
            db.delete("orders", 3).unwrap();
            db.update("orders", 7, "qty", &Value::Int64(999)).unwrap();
            assert!(db.is_durable());
            let stats = db.storage_stats();
            assert_eq!(stats.durable_tables, 1);
            assert!(stats.wal_appends >= 52);
        }
        let db = open_off(&dir);
        assert_eq!(db.table_names(), vec!["orders".to_string()]);
        assert_eq!(count_orders(&db), 49);
        // 50 inserts + 1 delete + 1 update replayed from the WAL tail.
        assert_eq!(db.storage_stats().recovery_replay_ops, 52);
        let probe = QueryBuilder::scan("orders")
            .filter(Expr::col(0).eq(Expr::lit(7)))
            .project(vec![Expr::col(2)])
            .build();
        let out = db.run(&probe, EngineKind::Compiled).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int64(999)]]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_on_merge_makes_recovery_replay_small() {
        let dir = durable_tmpdir("ckpt");
        {
            let db = open_off(&dir);
            db.create_table(
                "orders",
                Schema::new(vec![
                    ColumnDef::new("id", DataType::Int32),
                    ColumnDef::new("qty", DataType::Int64),
                ]),
            )
            .unwrap();
            for i in 0..200 {
                db.insert("orders", &[Value::Int32(i), Value::Int64(i as i64)])
                    .unwrap();
            }
            db.merge("orders").unwrap();
            assert_eq!(db.storage_stats().checkpoints, 1);
            assert_eq!(db.storage_stats().wal_live_bytes, 0);
            // Only these land in the WAL after the checkpoint.
            db.insert("orders", &[Value::Int32(200), Value::Int64(200)])
                .unwrap();
            db.delete("orders", 0).unwrap();
        }
        let db = open_off(&dir);
        // Replay is O(ops since the last checkpoint), not O(history).
        assert_eq!(db.storage_stats().recovery_replay_ops, 2);
        assert_eq!(count_orders(&db), 200);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_all_leaves_nothing_to_replay() {
        let dir = durable_tmpdir("ckpt-all");
        {
            let db = open_off(&dir);
            db.create_table(
                "orders",
                Schema::new(vec![ColumnDef::new("id", DataType::Int32)]),
            )
            .unwrap();
            for i in 0..30 {
                db.insert("orders", &[Value::Int32(i)]).unwrap();
            }
            db.checkpoint_all().unwrap();
            assert_eq!(db.storage_stats().wal_live_bytes, 0);
        }
        let db = open_off(&dir);
        assert_eq!(db.storage_stats().recovery_replay_ops, 0);
        assert_eq!(count_orders(&db), 30);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registered_table_is_durable_and_edit_main_persists() {
        let dir = durable_tmpdir("register");
        {
            let db = open_off(&dir);
            let mut t = Table::new(
                "orders",
                Schema::new(vec![ColumnDef::new("id", DataType::Int32)]),
            );
            for i in 0..10 {
                t.insert(&[Value::Int32(i)]).unwrap();
            }
            db.register(t);
            db.edit_main("orders", |main| {
                main.insert(&[Value::Int32(99)]).map(|_| ())
            })
            .unwrap()
            .unwrap();
        }
        let db = open_off(&dir);
        assert_eq!(count_orders(&db), 11);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_merge_checkpoints_durably() {
        let dir = durable_tmpdir("bg-merge");
        {
            let db = Database::open_with(
                DurabilityConfig::new(&dir).with_fsync(FsyncMode::Off),
                MaintenanceConfig {
                    mode: MaintenanceMode::Background,
                    merge_threshold: 64,
                    ..MaintenanceConfig::default()
                },
            )
            .unwrap();
            db.create_table(
                "orders",
                Schema::new(vec![ColumnDef::new("id", DataType::Int32)]),
            )
            .unwrap();
            for i in 0..500 {
                db.insert("orders", &[Value::Int32(i)]).unwrap();
            }
            db.flush_maintenance().unwrap();
            assert!(db.storage_stats().checkpoints >= 1);
        }
        let db = open_off(&dir);
        assert_eq!(count_orders(&db), 500);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
