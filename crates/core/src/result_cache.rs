//! The mid-query result cache (and the bounded plan cache living beside
//! it): materialized pipeline results keyed by canonical plan fingerprints
//! plus each input table's `(generation, delta_ops)` token.
//!
//! The cheapest scan is the one never re-run. [`ResultCache`] stores the
//! [`QueryResult`] of an admitted plan under
//! [`pdsm_plan::plan_fingerprint`], tagged with the catalog epoch and the
//! token `(generation, delta_ops)` of every input table — exactly the
//! invalidation fingerprint the plan cache already re-reads on every
//! lookup. Both components of the token are monotonic (a merge bumps the
//! generation, DML bumps `delta_ops` within one), so a merge or any DML
//! batch invalidates entries *for free*: the next probe re-reads the live
//! tokens, sees a mismatch, and drops the entry. A stale entry can never
//! re-validate, which makes a cached hit provably equal to re-execution at
//! that fingerprint. Replaced tables can reset tokens, so the catalog
//! epoch (bumped by every shape change) is part of validity too.
//!
//! Admission is the planner's job ([`PhysicalPlan`]`::cache_admit`): a
//! plan is cacheable only when its predicted re-execution cost exceeds the
//! priced copy-out (`pdsm_cost::copy_out_cycles`) by
//! `crate::planner::CACHE_ADMIT_FACTOR`. Eviction is byte-budgeted LRU
//! with cost-weighted benefit: when over budget, the entry with the lowest
//! `benefit-density × observed-reuse / recency` score goes first.
//!
//! Entries whose plan was a full-schema filtered scan (`Select(Scan)`)
//! additionally serve *fragment reuse*: a later aggregate over the same
//! filtered scan executes against the materialized rows (lazily rebuilt
//! into a [`Table`] once) instead of rescanning the base table — reuse of
//! pipeline results, not just whole answers.
//!
//! Knobs: `PDSM_RESULT_CACHE=off|on` (default on) and
//! `PDSM_RESULT_CACHE_BYTES=<bytes>` (default 64 MiB).

use pdsm_exec::QueryResult;
use pdsm_plan::physical::PhysicalPlan;
use pdsm_storage::{Schema, Table, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Per-table invalidation tokens: `(table, generation, delta_ops)` of
/// every table a plan reads, in first-reference order.
pub type DepTokens = Vec<(String, u64, u64)>;

/// Synthetic table name cached fragments are scanned under when a
/// consuming plan is rewritten over a materialized fragment.
pub const FRAGMENT_TABLE: &str = "#cached-fragment";

/// Result-cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultCacheConfig {
    /// Master switch (`PDSM_RESULT_CACHE`). When off, `execute` pays a
    /// single atomic load and nothing else.
    pub enabled: bool,
    /// Byte budget across all entries (`PDSM_RESULT_CACHE_BYTES`). A
    /// single result larger than a quarter of the budget is never
    /// admitted (it would evict everything for one entry).
    pub budget_bytes: usize,
}

impl Default for ResultCacheConfig {
    fn default() -> Self {
        ResultCacheConfig {
            enabled: true,
            budget_bytes: 64 << 20,
        }
    }
}

impl ResultCacheConfig {
    /// Configuration from `PDSM_RESULT_CACHE` (`off`/`0`/`false` disable;
    /// default on) and `PDSM_RESULT_CACHE_BYTES` (plain byte count).
    pub fn from_env() -> Self {
        let mut cfg = ResultCacheConfig::default();
        if let Ok(v) = std::env::var("PDSM_RESULT_CACHE") {
            cfg.enabled = !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "off" | "0" | "false" | "no"
            );
        }
        if let Ok(v) = std::env::var("PDSM_RESULT_CACHE_BYTES") {
            if let Ok(b) = v.trim().parse::<usize>() {
                cfg.budget_bytes = b;
            }
        }
        cfg
    }
}

/// One cached result: the materialized rows plus everything needed to
/// prove them current (`epoch`, `deps`) and to rank them for eviction
/// (`bytes`, `benefit`, recency, observed reuse).
pub struct CachedResult {
    /// Catalog epoch at execution.
    pub epoch: u64,
    /// Input-table tokens at execution (validated against live tokens on
    /// every probe).
    pub deps: DepTokens,
    /// The materialized result.
    pub result: Arc<QueryResult>,
    /// Estimated resident bytes (rows + column names).
    pub bytes: usize,
    /// Model-predicted cycles one hit saves (re-execution minus copy-out).
    pub benefit: f64,
    /// Base-table schema when the plan was a full-schema `Select(Scan)` —
    /// the shape eligible for fragment reuse.
    frag_schema: Option<Schema>,
    /// The fragment rows rebuilt as a scannable [`Table`], built at most
    /// once, on first fragment reuse (`None` inside = a row failed to
    /// insert; give up on fragment service, whole-result hits still work).
    frag_table: OnceLock<Option<Arc<Table>>>,
    /// Logical-clock tick of the last hit (LRU recency).
    last_used: AtomicU64,
    /// Hits served (whole-result or fragment) — the reuse weight.
    hits: AtomicU64,
}

impl CachedResult {
    /// The fragment rows as a scannable table named [`FRAGMENT_TABLE`],
    /// when this entry is fragment-eligible. Built once, lazily.
    pub fn fragment_table(&self) -> Option<Arc<Table>> {
        let schema = self.frag_schema.as_ref()?;
        self.frag_table
            .get_or_init(|| {
                let mut t = Table::new(FRAGMENT_TABLE, schema.clone());
                for row in &self.result.rows {
                    if t.insert(row).is_err() {
                        return None;
                    }
                }
                Some(Arc::new(t))
            })
            .clone()
    }
}

/// Point-in-time counters of the result cache layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultCacheStats {
    /// Whether the cache is currently enabled.
    pub enabled: bool,
    /// Configured byte budget.
    pub budget_bytes: usize,
    /// Estimated bytes currently resident.
    pub bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Whole-result hits (the probe returned a materialized answer).
    pub hits: u64,
    /// Fragment hits: a cached filtered-scan served a *different* plan
    /// over the same fragment (these also count one whole-result miss).
    pub fragment_hits: u64,
    /// Probes that found nothing current.
    pub misses: u64,
    /// Executions that skipped the cache: planner admission said the
    /// result is cheaper to recompute than to copy, or caching is off.
    pub bypasses: u64,
    /// Entries dropped by the byte-budget eviction.
    pub evictions: u64,
    /// Entries dropped because a probe saw moved tokens (DML/merge/shape).
    pub invalidations: u64,
    /// Results admitted since creation.
    pub insertions: u64,
}

impl ResultCacheStats {
    /// Whole-result hit rate over all counted probes.
    pub fn hit_rate(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// The bounded, concurrent result cache. All methods take `&self`; lookups
/// touch the map under a read lock only.
pub struct ResultCache {
    map: RwLock<HashMap<String, Arc<CachedResult>>>,
    enabled: AtomicBool,
    budget: AtomicUsize,
    /// Estimated resident bytes; mutated only under the map's write lock.
    bytes: AtomicUsize,
    /// Logical clock: one tick per probe, for LRU recency.
    clock: AtomicU64,
    hits: AtomicU64,
    fragment_hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    insertions: AtomicU64,
}

impl ResultCache {
    pub fn new(cfg: ResultCacheConfig) -> Self {
        ResultCache {
            map: RwLock::new(HashMap::new()),
            enabled: AtomicBool::new(cfg.enabled),
            budget: AtomicUsize::new(cfg.budget_bytes),
            bytes: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            fragment_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    /// The one check the cache-off fast path pays.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Current configuration.
    pub fn config(&self) -> ResultCacheConfig {
        ResultCacheConfig {
            enabled: self.enabled.load(Ordering::Relaxed),
            budget_bytes: self.budget.load(Ordering::Relaxed),
        }
    }

    /// Reconfigure (tests, embedders). Drops every entry; counters keep
    /// accumulating.
    pub fn set_config(&self, cfg: ResultCacheConfig) {
        let mut m = self.write_map();
        m.clear();
        self.bytes.store(0, Ordering::Relaxed);
        self.enabled.store(cfg.enabled, Ordering::Relaxed);
        self.budget.store(cfg.budget_bytes, Ordering::Relaxed);
    }

    fn read_map(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<CachedResult>>> {
        self.map.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_map(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<CachedResult>>> {
        self.map.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Record one execution that never consulted the cache (admission said
    /// recompute, or the cache is off for this probe).
    pub fn note_bypass(&self) {
        self.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// A validated entry for `key`, or `None`. `count` selects the
    /// stats-bearing probe (`execute`) vs. the silent peek (`explain`).
    /// A stale entry (tokens moved) is removed — and counted as an
    /// invalidation — on the counting path.
    pub fn probe(
        &self,
        key: &str,
        epoch: u64,
        deps: &DepTokens,
        count: bool,
    ) -> Option<Arc<CachedResult>> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = self.read_map().get(key).cloned();
        match entry {
            Some(e) if e.epoch == epoch && e.deps == *deps => {
                if count {
                    e.last_used.store(tick, Ordering::Relaxed);
                    e.hits.fetch_add(1, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(e)
            }
            Some(stale) => {
                if count {
                    let mut m = self.write_map();
                    // Only remove the entry we validated: a racing insert
                    // may have refreshed the key in between.
                    if let Some(cur) = m.get(key) {
                        if Arc::ptr_eq(cur, &stale) {
                            self.bytes.fetch_sub(cur.bytes, Ordering::Relaxed);
                            m.remove(key);
                            self.invalidations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
            None => {
                if count {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
        }
    }

    /// Count one fragment-served execution against entry `e` (the probe
    /// that missed the whole result already counted the miss), bumping the
    /// entry's recency and reuse weight so fragment service keeps it warm.
    pub fn note_fragment_hit(&self, e: &CachedResult) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        e.last_used.store(tick, Ordering::Relaxed);
        e.hits.fetch_add(1, Ordering::Relaxed);
        self.fragment_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Admit one materialized result. `frag_schema` marks full-schema
    /// `Select(Scan)` results as fragment-eligible. The caller must have
    /// re-validated `deps` against the live tables *after* executing —
    /// monotonic tokens then guarantee the rows match the tag. Oversized
    /// results (> budget/4) are not admitted.
    pub fn admit(
        &self,
        key: String,
        epoch: u64,
        deps: DepTokens,
        result: Arc<QueryResult>,
        benefit: f64,
        frag_schema: Option<Schema>,
    ) {
        let bytes = result_bytes(&result);
        let budget = self.budget.load(Ordering::Relaxed);
        if bytes > budget / 4 {
            return;
        }
        let tick = self.clock.load(Ordering::Relaxed);
        let entry = Arc::new(CachedResult {
            epoch,
            deps,
            result,
            bytes,
            benefit,
            frag_schema,
            frag_table: OnceLock::new(),
            last_used: AtomicU64::new(tick),
            hits: AtomicU64::new(0),
        });
        let mut m = self.write_map();
        if let Some(old) = m.insert(key, entry) {
            self.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evict_over_budget(&mut m, budget, tick);
    }

    /// Byte-budgeted eviction with cost-weighted benefit: while over
    /// budget, drop the entry with the lowest
    /// `benefit/byte × (1 + hits) / (1 + age)` score — low predicted
    /// savings, little observed reuse and long idleness all push an entry
    /// toward the door.
    fn evict_over_budget(
        &self,
        m: &mut HashMap<String, Arc<CachedResult>>,
        budget: usize,
        now: u64,
    ) {
        while self.bytes.load(Ordering::Relaxed) > budget && !m.is_empty() {
            let victim = m
                .iter()
                .map(|(k, e)| {
                    let density = e.benefit / e.bytes.max(1) as f64;
                    let reuse = 1.0 + e.hits.load(Ordering::Relaxed) as f64;
                    let age = 1.0 + now.saturating_sub(e.last_used.load(Ordering::Relaxed)) as f64;
                    (k.clone(), density * reuse / age)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(k, _)| k);
            match victim {
                Some(k) => {
                    if let Some(e) = m.remove(&k) {
                        self.bytes.fetch_sub(e.bytes, Ordering::Relaxed);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            enabled: self.enabled.load(Ordering::Relaxed),
            budget_bytes: self.budget.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            entries: self.read_map().len(),
            hits: self.hits.load(Ordering::Relaxed),
            fragment_hits: self.fragment_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
        }
    }
}

/// Estimated resident bytes of a materialized result: per-value enum
/// footprint plus string payloads plus the column-name header.
fn result_bytes(r: &QueryResult) -> usize {
    let mut b: usize = r.columns.iter().map(|c| c.len() + 24).sum();
    for row in &r.rows {
        b += 24; // Vec header
        for v in row {
            b += std::mem::size_of::<Value>();
            if let Value::Str(s) = v {
                b += s.len();
            }
        }
    }
    b
}

// ---------------------------------------------------------------------------
// Plan cache: bounded, sharded, LRU.
// ---------------------------------------------------------------------------

/// Point-in-time counters of the plan cache layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that returned a still-valid lowering.
    pub hits: u64,
    /// Lookups that found nothing current (the caller re-planned).
    pub misses: u64,
    /// Entries displaced by the per-shard LRU capacity bound.
    pub evictions: u64,
    /// Entries dropped because their tokens had moved.
    pub invalidations: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// Combined [`PlanCacheStats`] + [`ResultCacheStats`] —
/// `Database::cache_stats()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    pub plan: PlanCacheStats,
    pub result: ResultCacheStats,
}

struct PlanEntry {
    epoch: u64,
    deps: DepTokens,
    phys: Arc<PhysicalPlan>,
    last_used: AtomicU64,
}

/// Cached physical plans behind sharded `RwLock`s: concurrent executes of
/// *different* plans take different shards, repeat executes of the *same*
/// plan take only a read lock — the de-serialized fast path the old
/// whole-cache `Mutex` could not give. Each shard holds at most
/// `cap / SHARDS` entries; inserting past that evicts the shard's
/// least-recently-used entry (no more wholesale clears).
pub(crate) struct PlanCache {
    shards: Vec<RwLock<HashMap<String, PlanEntry>>>,
    cap_per_shard: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

const PLAN_CACHE_SHARDS: usize = 8;

impl PlanCache {
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            shards: (0..PLAN_CACHE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            cap_per_shard: capacity.div_ceil(PLAN_CACHE_SHARDS).max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, PlanEntry>> {
        // FNV-1a over the key bytes picks the shard.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        &self.shards[(h % PLAN_CACHE_SHARDS as u64) as usize]
    }

    /// A still-valid lowering for `key`, bumping its recency — or `None`
    /// (stale entries are removed and counted).
    pub fn lookup(&self, key: &str, epoch: u64, deps: &DepTokens) -> Option<Arc<PhysicalPlan>> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let shard = self.shard(key);
        {
            let m = shard.read().unwrap_or_else(|e| e.into_inner());
            match m.get(key) {
                Some(e) if e.epoch == epoch && e.deps == *deps => {
                    e.last_used.store(tick, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(e.phys.clone());
                }
                Some(_) => {}
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
        // Stale under the read lock; re-check and remove under the write
        // lock (a racing execute may have refreshed it meanwhile).
        let mut m = shard.write().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = m.get(key) {
            if e.epoch == epoch && e.deps == *deps {
                e.last_used.store(tick, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(e.phys.clone());
            }
            m.remove(key);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert a fresh lowering, LRU-evicting within the shard at capacity.
    pub fn insert(&self, key: String, epoch: u64, deps: DepTokens, phys: Arc<PhysicalPlan>) {
        let tick = self.clock.load(Ordering::Relaxed);
        let shard = self.shard(&key);
        let mut m = shard.write().unwrap_or_else(|e| e.into_inner());
        if !m.contains_key(&key) && m.len() >= self.cap_per_shard {
            let lru = m
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(k) = lru {
                m.remove(&k);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        m.insert(
            key,
            PlanEntry {
                epoch,
                deps,
                phys,
                last_used: AtomicU64::new(tick),
            },
        );
    }

    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_exec::QueryOutput;

    fn result(rows: usize) -> Arc<QueryResult> {
        let mut out = QueryOutput::new();
        for i in 0..rows {
            out.rows.push(vec![Value::Int64(i as i64)]);
        }
        Arc::new(QueryResult::new(vec!["c".into()], out))
    }

    fn deps(generation: u64, ops: u64) -> DepTokens {
        vec![("t".to_string(), generation, ops)]
    }

    #[test]
    fn probe_validates_tokens_and_epoch() {
        let c = ResultCache::new(ResultCacheConfig::default());
        c.admit("k".into(), 1, deps(0, 5), result(3), 1e6, None);
        assert!(c.probe("k", 1, &deps(0, 5), true).is_some());
        // delta advanced → invalidated
        assert!(c.probe("k", 1, &deps(0, 6), true).is_none());
        // entry is gone now, even for the original tokens
        assert!(c.probe("k", 1, &deps(0, 5), true).is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.misses, 2);
        // epoch mismatch invalidates too (replaced tables reset tokens)
        c.admit("k".into(), 1, deps(0, 5), result(3), 1e6, None);
        assert!(c.probe("k", 2, &deps(0, 5), true).is_none());
    }

    #[test]
    fn silent_peek_counts_nothing() {
        let c = ResultCache::new(ResultCacheConfig::default());
        c.admit("k".into(), 0, deps(0, 0), result(1), 1e6, None);
        assert!(c.probe("k", 0, &deps(0, 0), false).is_some());
        assert!(c.probe("absent", 0, &deps(0, 0), false).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn byte_budget_evicts_and_bounds() {
        let small = ResultCacheConfig {
            enabled: true,
            budget_bytes: 4096,
        };
        let c = ResultCache::new(small);
        for i in 0..64 {
            c.admit(format!("k{i}"), 0, deps(0, 0), result(8), 1e6, None);
        }
        let s = c.stats();
        assert!(s.evictions > 0, "{s:?}");
        assert!(s.bytes <= 4096, "{s:?}");
        assert!(s.entries < 64);
    }

    #[test]
    fn oversized_results_never_admitted() {
        let c = ResultCache::new(ResultCacheConfig {
            enabled: true,
            budget_bytes: 1024,
        });
        c.admit("big".into(), 0, deps(0, 0), result(1000), 1e6, None);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn plan_cache_bounds_and_counts() {
        let pc = PlanCache::new(16);
        let phys = || {
            Arc::new(PhysicalPlan {
                logical: pdsm_plan::builder::QueryBuilder::scan("t").build(),
                engine: pdsm_plan::physical::EngineChoice::Compiled,
                pipelines: vec![],
                cost: Default::default(),
                alternatives: vec![],
                est_out_rows: 0.0,
                cache_admit: false,
                copy_out_cycles: 0.0,
            })
        };
        for i in 0..100 {
            let key = format!("plan-{i}");
            assert!(pc.lookup(&key, 0, &deps(0, 0)).is_none());
            pc.insert(key, 0, deps(0, 0), phys());
        }
        let s = pc.stats();
        assert!(s.entries <= 16 + PLAN_CACHE_SHARDS, "{s:?}");
        assert!(
            s.evictions >= 100 - (16 + PLAN_CACHE_SHARDS) as u64,
            "{s:?}"
        );
        // hit, then invalidate
        assert!(pc.lookup("plan-99", 0, &deps(0, 0)).is_some());
        assert!(pc.lookup("plan-99", 0, &deps(1, 0)).is_none());
        let s = pc.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.invalidations, 1);
    }
}
