//! Extent-at-a-time execution over cold (unhydrated) tables.
//!
//! A table recovered through the buffer pool keeps its main store on disk
//! as checkpoint extents. Hydrating it wholesale would defeat the pool —
//! a table 4× the budget would fault everything in just to answer one
//! scan. Instead, for the plan shapes whose output is a row-local function
//! of the input partitioning (scans, selections, projections, and global
//! aggregates with mergeable accumulators), this module runs the *chosen
//! engine unchanged* over one extent at a time:
//!
//! * each extent materializes as a self-contained mini table with the
//!   delta's tombstone slice overlaid (no tail), holding its pool frames
//!   pinned only while the engine is on it;
//! * zone-refuted extents are skipped without faulting a byte — for
//!   *every* engine, since refutation proves no main row of the extent
//!   can pass the scan's predicate;
//! * the live delta tail runs as one final partial over a zero-row
//!   skeleton table carrying the full tail overlay — exactly the
//!   main-order-then-tail sequence a resident scan produces;
//! * row outputs concatenate; aggregate outputs merge with the same
//!   null-skipping, first-wins semantics as `Accumulator::merge`.
//!
//! Byte-identity with the resident path is the contract (the pooled twin
//! proptest in `tests/pool` enforces it), which is why float sums and
//! averages are *not* streamed: merging their finalized partials would
//! reassociate floating-point addition. Those shapes — like joins, sorts,
//! grouped aggregates and limits — fall back to hydration.

use crate::database::{Database, DbError, EngineKind};
use pdsm_exec::engine::{Overlay, TableProvider};
use pdsm_exec::{zone_preds, QueryResult};
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::{AggExpr, AggFunc, LogicalPlan};
use pdsm_storage::types::cmp_values;
use pdsm_storage::{DataType, Row, Table, Value, ZonePred};
use pdsm_txn::ColdScan;

/// One extent (or the tail) presented to an engine as a whole table.
struct ExtentProvider<'a> {
    name: &'a str,
    table: &'a Table,
    dead: &'a [bool],
    tail: &'a [Row],
    tail_alive: &'a [bool],
}

impl TableProvider for ExtentProvider<'_> {
    fn table(&self, name: &str) -> Option<&Table> {
        (name == self.name).then_some(self.table)
    }

    fn overlay(&self, name: &str) -> Option<Overlay<'_>> {
        if name != self.name || (self.dead.is_empty() && self.tail.is_empty()) {
            return None;
        }
        Some(Overlay {
            dead: self.dead,
            tail: self.tail,
            tail_alive: self.tail_alive,
        })
    }
}

/// The streamable plan shape `[Aggregate(no group)] [Project] [Select]
/// Scan`, decomposed: the global aggregates (if the root is one) and the
/// predicate sitting directly over the scan (for zone refutation).
fn stream_shape(plan: &LogicalPlan) -> Option<(Option<&[AggExpr]>, Option<&Expr>)> {
    let (aggs, inner) = match plan {
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } if group_by.is_empty() => (Some(aggs.as_slice()), input.as_ref()),
        other => (None, other),
    };
    let inner = match inner {
        LogicalPlan::Project { input, .. } => input.as_ref(),
        other => other,
    };
    let (pred, inner) = match inner {
        LogicalPlan::Select { input, pred, .. } => (Some(pred), input.as_ref()),
        other => (None, other),
    };
    matches!(inner, LogicalPlan::Scan { .. }).then_some((aggs, pred))
}

/// Can these global aggregates be rebuilt from per-extent *finalized*
/// outputs without changing a byte? Count always (`Int64` addition);
/// min/max always (picking one of the partial values never retypes it);
/// sum only over an integer column (no float reassociation); avg never
/// (its division does not distribute over the partitioning).
fn aggs_mergeable(aggs: &[AggExpr], schema: &pdsm_storage::Schema) -> bool {
    aggs.iter().all(|a| match a.func {
        AggFunc::Count | AggFunc::Min | AggFunc::Max => true,
        AggFunc::Avg => false,
        AggFunc::Sum => match &a.arg {
            Some(Expr::Col(c)) => matches!(
                schema.columns().get(*c).map(|col| col.ty),
                Some(DataType::Int32 | DataType::Int64)
            ),
            _ => false,
        },
    })
}

/// Fold one partial's finalized aggregate row into the running one, with
/// exactly `Accumulator::merge`'s semantics over finished values: counts
/// add, int sums null-skip and add, extremes replace only on a *strict*
/// win (so earlier extents keep ties, as the sequential fold does).
fn merge_agg_row(acc: &mut [Value], next: &[Value], aggs: &[AggExpr]) {
    for (i, a) in aggs.iter().enumerate() {
        acc[i] = match a.func {
            AggFunc::Count => {
                Value::Int64(acc[i].as_i64().unwrap_or(0) + next[i].as_i64().unwrap_or(0))
            }
            AggFunc::Sum => match (acc[i].is_null(), next[i].is_null()) {
                (true, _) => next[i].clone(),
                (_, true) => acc[i].clone(),
                _ => Value::Int64(
                    acc[i].as_i64().expect("int sum") + next[i].as_i64().expect("int sum"),
                ),
            },
            AggFunc::Min | AggFunc::Max => {
                let replace = match (&acc[i], &next[i]) {
                    (_, Value::Null) => false,
                    (Value::Null, _) => true,
                    (ours, theirs) => {
                        if a.func == AggFunc::Min {
                            cmp_values(theirs, ours).is_lt()
                        } else {
                            cmp_values(theirs, ours).is_gt()
                        }
                    }
                };
                if replace {
                    next[i].clone()
                } else {
                    acc[i].clone()
                }
            }
            AggFunc::Avg => unreachable!("avg is never streamed"),
        };
    }
}

/// Run `plan` extent-at-a-time over its (single, cold) table, or return
/// `Ok(None)` when the plan is multi-table, the table is resident, or the
/// shape/aggregates are not streamable — the caller then takes the
/// ordinary (hydrating) snapshot path.
pub(crate) fn run_cold_streaming(
    db: &Database,
    plan: &LogicalPlan,
    engine: EngineKind,
) -> Result<Option<QueryResult>, DbError> {
    let tables = plan.tables();
    let [table] = tables.as_slice() else {
        return Ok(None);
    };
    let Some((aggs, pred)) = stream_shape(plan) else {
        return Ok(None);
    };
    let Some(scan) = db.with_table(table, |vt| vt.cold_scan())? else {
        return Ok(None);
    };
    let ColdScan { cold, overlay, .. } = &scan;
    if let Some(aggs) = aggs {
        if !aggs_mergeable(aggs, &cold.header().schema) {
            return Ok(None);
        }
    }
    let eng = engine.engine();
    let skeleton = cold.skeleton();
    let zps: Vec<ZonePred> = pred
        .map(|p| zone_preds(&skeleton, std::slice::from_ref(p)))
        .unwrap_or_default();
    let dead: &[bool] = overlay.as_ref().map(|o| o.dead.as_slice()).unwrap_or(&[]);

    let mut agg_row: Option<Vec<Value>> = None;
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for e in 0..cold.n_extents() {
        if !zps.is_empty() && cold.extent_refuted(e, &zps) {
            // No main row of this extent can pass the predicate, and
            // tombstones only remove rows — skipping is sound for every
            // engine and every streamable shape.
            cold.pool().note_skipped_fault();
            continue;
        }
        let (lo, hi) = cold.header().extent_row_range(e);
        let (mini, _pins) = cold.extent_table(e)?;
        let dslice = &dead[lo.min(dead.len())..hi.min(dead.len())];
        let provider = ExtentProvider {
            name: table,
            table: &mini,
            dead: dslice,
            tail: &[],
            tail_alive: &[],
        };
        let out = eng.execute(plan, &provider)?;
        match (aggs, &mut agg_row) {
            (Some(_), None) => agg_row = Some(out.rows.into_iter().next().expect("agg row")),
            (Some(aggs), Some(acc)) => merge_agg_row(acc, &out.rows[0], aggs),
            (None, _) => rows.extend(out.rows),
        }
        // _pins drop here: the next extent may evict this one.
    }

    // The delta tail, last — a zero-row main table carrying the full tail
    // overlay reproduces the resident scan's main-order-then-tail output.
    // This partial always runs, so even a zero-extent (empty or fully
    // pruned) scan yields a genuine engine output to return or seed from.
    let (tail, tail_alive) = overlay
        .as_ref()
        .map(|o| (o.tail.as_slice(), o.tail_alive.as_slice()))
        .unwrap_or((&[], &[]));
    let provider = ExtentProvider {
        name: table,
        table: &skeleton,
        dead: &[],
        tail,
        tail_alive,
    };
    let out = eng.execute(plan, &provider)?;
    let output = match (aggs, agg_row) {
        (Some(aggs), Some(mut acc)) => {
            merge_agg_row(&mut acc, &out.rows[0], aggs);
            pdsm_exec::QueryOutput { rows: vec![acc] }
        }
        _ => {
            // Row shape, or an aggregate with no extent partials: the
            // tail partial already is the whole answer for the aggregate;
            // for rows, append it after the main-order outputs.
            rows.extend(out.rows);
            pdsm_exec::QueryOutput { rows }
        }
    };
    Ok(Some(QueryResult::new(db.names_for(plan), output)))
}
