//! The layout advisor: workload in, per-table layouts out (§V end-to-end).

use crate::database::{Database, DbError};
use pdsm_cost::Hierarchy;
use pdsm_layout::bpi::{optimize_table, OptimizerConfig};
use pdsm_layout::workload::Workload;
use pdsm_plan::patterns::TableView;
use pdsm_plan::selectivity::TableStatsView;
use pdsm_storage::Layout;
use std::collections::HashMap;

/// Outcome of advising one table.
#[derive(Debug, Clone)]
pub struct TableAdvice {
    pub table: String,
    pub layout: Layout,
    pub estimated_cost: f64,
    pub row_cost: f64,
    pub column_cost: f64,
}

/// Full advisor report.
#[derive(Debug, Clone, Default)]
pub struct AdvisorReport {
    pub tables: Vec<TableAdvice>,
}

impl AdvisorReport {
    /// Estimated workload speed-up of the advised layouts over row storage.
    pub fn speedup_vs_row(&self) -> f64 {
        let row: f64 = self.tables.iter().map(|t| t.row_cost).sum();
        let opt: f64 = self.tables.iter().map(|t| t.estimated_cost).sum();
        if opt > 0.0 {
            row / opt
        } else {
            1.0
        }
    }
}

/// Drives the BPi optimizer across a database's tables.
pub struct LayoutAdvisor {
    pub hierarchy: Hierarchy,
    pub config: OptimizerConfig,
    /// Attach exact column statistics to the views (costs one pass per
    /// column; improves selectivity estimates for un-hinted predicates).
    pub compute_stats: bool,
}

impl Default for LayoutAdvisor {
    fn default() -> Self {
        LayoutAdvisor {
            hierarchy: Hierarchy::nehalem(),
            config: OptimizerConfig::default(),
            compute_stats: false,
        }
    }
}

impl LayoutAdvisor {
    /// Build [`TableView`]s for every table in the database. Views model
    /// the post-merge state: row counts (and, when enabled, statistics)
    /// cover the visible rows — main store plus any pending delta — since
    /// that is what the advised layout will hold once the merge folds the
    /// delta in.
    pub fn views(&self, db: &Database) -> HashMap<String, TableView> {
        let mut views = HashMap::new();
        for name in db.table_names() {
            // Pin a snapshot (short lock) and do all the O(rows × cols)
            // stats work lock-free against it — writers to the table are
            // never stalled behind a stats pass. Tables can be
            // dropped/replaced concurrently; skip ones that vanished
            // between the listing and the lookup.
            let Ok(snap) = db.table_snapshot(&name) else {
                continue;
            };
            let t = snap.main();
            let mut view = TableView::from_table(t);
            view.n_rows = snap.len() as u64;
            if self.compute_stats {
                let ncols = t.schema().len();
                let mut stats = TableStatsView {
                    distinct: vec![None; ncols],
                    density: vec![None; ncols],
                };
                let has_delta = snap.overlay().is_some();
                // Decode visible rows once, not once per column.
                let visible: Vec<pdsm_storage::Row> =
                    if has_delta { snap.rows() } else { Vec::new() };
                for c in 0..ncols {
                    let s = if has_delta {
                        pdsm_storage::stats::ColumnStats::compute(
                            visible.iter().map(|r| r.values()[c].clone()),
                        )
                    } else {
                        t.col_stats(c)
                    };
                    stats.distinct[c] = Some(s.distinct_count);
                    stats.density[c] = Some(s.density());
                }
                view = view.with_stats(stats);
            }
            views.insert(name.to_string(), view);
        }
        views
    }

    /// Recommend a layout for every table the workload touches.
    pub fn advise(&self, db: &Database, workload: &Workload) -> AdvisorReport {
        let views = self.views(db);
        let mut report = AdvisorReport::default();
        let mut touched: Vec<String> = workload
            .queries
            .iter()
            .flat_map(|q| q.plan.tables().into_iter().map(str::to_string))
            .collect();
        touched.sort();
        touched.dedup();
        for table in touched {
            let Some(view) = views.get(&table) else {
                continue;
            };
            let n = view.col_widths.len();
            let opt = optimize_table(&table, &views, workload, &self.hierarchy, &self.config);
            let row_cost =
                workload.cost_with_layout(&views, &table, &Layout::row(n), &self.hierarchy);
            let column_cost =
                workload.cost_with_layout(&views, &table, &Layout::column(n), &self.hierarchy);
            report.tables.push(TableAdvice {
                table,
                layout: opt.layout,
                estimated_cost: opt.cost,
                row_cost,
                column_cost,
            });
        }
        report
    }

    /// Advise and immediately rebuild the affected tables. `&self` all the
    /// way down: each relayout holds only its own table's write lock.
    pub fn apply(&self, db: &Database, workload: &Workload) -> Result<AdvisorReport, DbError> {
        let report = self.advise(db, workload);
        for advice in &report.tables {
            db.relayout(&advice.table, advice.layout.clone())?;
        }
        Ok(report)
    }

    /// Advise from the traffic [`Database::execute`] has observed (see
    /// [`Database::observed_workload`]) — the closed loop the planner
    /// enables: run queries, then let the merge re-advise from what
    /// actually ran.
    pub fn advise_observed(&self, db: &Database) -> AdvisorReport {
        self.advise(db, &db.observed_workload())
    }

    /// Re-layout every table the observed workload touches, per its own
    /// advice.
    pub fn apply_observed(&self, db: &Database) -> Result<AdvisorReport, DbError> {
        let workload = db.observed_workload();
        self.apply(db, &workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_layout::workload::WorkloadQuery;
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_plan::expr::Expr;
    use pdsm_plan::logical::{AggExpr, AggFunc};
    use pdsm_storage::{ColumnDef, DataType, Schema, Value};

    fn wide_db(rows: i32) -> Database {
        let db = Database::new();
        let cols: Vec<ColumnDef> = (0..16)
            .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int32))
            .collect();
        db.create_table("r", Schema::new(cols)).unwrap();
        for i in 0..rows {
            let row: Vec<Value> = (0..16).map(|c| Value::Int32(i * 16 + c)).collect();
            db.insert("r", &row).unwrap();
        }
        db
    }

    fn workload() -> Workload {
        let mut w = Workload::new();
        w.push(WorkloadQuery::new(
            "q1",
            QueryBuilder::scan("r")
                .filter_with_selectivity(Expr::col(0).eq(Expr::lit(3)), 0.05)
                .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(1))])
                .build(),
        ));
        w
    }

    #[test]
    fn advise_beats_row_layout() {
        let db = wide_db(2000);
        let report = LayoutAdvisor::default().advise(&db, &workload());
        assert_eq!(report.tables.len(), 1);
        let a = &report.tables[0];
        assert!(a.estimated_cost <= a.row_cost);
        assert!(a.estimated_cost <= a.column_cost);
        assert!(report.speedup_vs_row() >= 1.0);
    }

    #[test]
    fn apply_rebuilds_and_preserves_results() {
        let db = wide_db(500);
        let plan = QueryBuilder::scan("r")
            .filter(Expr::col(0).gt(Expr::lit(100)))
            .project(vec![Expr::col(1), Expr::col(15)])
            .build();
        let before = db.run(&plan, crate::EngineKind::Compiled).unwrap();
        let report = LayoutAdvisor::default().apply(&db, &workload()).unwrap();
        assert!(!report.tables.is_empty());
        let after = db.run(&plan, crate::EngineKind::Compiled).unwrap();
        before.assert_same(&after, "advisor apply");
        assert!(db.get_table("r").unwrap().layout().n_groups() > 1);
    }

    #[test]
    fn stats_views_populated() {
        let db = wide_db(100);
        let advisor = LayoutAdvisor {
            compute_stats: true,
            ..Default::default()
        };
        let views = advisor.views(&db);
        let stats = views["r"].stats.as_ref().unwrap();
        assert_eq!(stats.distinct[0], Some(100));
        assert_eq!(stats.density[0], Some(1.0));
    }
}
