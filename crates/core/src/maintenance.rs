//! Background maintenance: the scheduler that takes merges off the write
//! path — and, since the shared-handle redesign, applies them off the
//! write path too.
//!
//! Every DML call used to be the only thing that could pay for a merge —
//! an O(table) fold on the writer's thread (`fig_update_mix` shows the
//! resulting 50/50-mix throughput cliff at small thresholds). The
//! [`MaintenanceScheduler`] owned by [`crate::Database`] decouples that:
//!
//! * it watches every table's `delta_ops` against a configurable
//!   threshold (global default + per-table overrides);
//! * when a table crosses it, the write path runs only
//!   [`pdsm_txn::SharedTable::begin_merge`] (pin the cut, O(delta), short
//!   write lock) and hands the [`pdsm_txn::MergeTicket`] — together with
//!   clones of the table's [`pdsm_txn::SharedTable`] handle and its index
//!   set — to a background worker thread;
//! * the worker folds the cut into a fresh main store — consulting the
//!   layout advisor on the observed workload first, so drifted tables
//!   merge straight into an advised layout — then **applies the swap
//!   itself** via [`pdsm_txn::SharedTable::finish_merge_then`] (replay
//!   post-cut ops + swap, O(ops since cut), short write lock) and rebuilds
//!   the table's secondary indexes from the fresh main store. Catch-up no
//!   longer rides the write path: writers never apply someone else's
//!   merge.
//!
//! ## Backpressure (`PDSM_MERGE_MAX_LAG`)
//!
//! A fast writer can outrun the builder: while one build is in flight the
//! delta keeps growing, and scans pay for every pending row. When a
//! table's `delta_ops` exceeds `max_lag ×` its merge threshold and the
//! builder cannot absorb it — a cut is still pending, or the launch slot
//! is blocked by a not-yet-reaped build — the writing thread falls back
//! to a *synchronous* merge (staling the in-flight build, which is
//! discarded harmlessly). With the slot free, a lagging table just
//! launches a background build: writers never stall when the worker is
//! available. `PDSM_MERGE_MAX_LAG` sets the factor (default 8; `0`
//! disables backpressure).
//!
//! ## Modes (`PDSM_MERGE`)
//!
//! * `background` (default) — builds run and are applied on the worker
//!   thread.
//! * `sync` — threshold crossings merge inline on the writer's thread:
//!   deterministic, single-threaded, what 1-core CI and differential tests
//!   want. Results are byte-identical to the background path (both run the
//!   same three-phase pipeline; see `pdsm_txn::merge`).
//! * `off` — the scheduler never merges; only explicit
//!   [`crate::Database::merge`] calls do.
//!
//! `PDSM_MERGE_THRESHOLD` sets the global delta-ops threshold (default
//! 65536). All knobs are read once, when the [`MaintenanceConfig`] is
//! built from the environment (i.e. at `Database::new`).

use crate::database::IndexSet;
use pdsm_cost::Hierarchy;
use pdsm_layout::bpi::{optimize_table, OptimizerConfig};
use pdsm_layout::workload::Workload;
use pdsm_plan::patterns::TableView;
use pdsm_storage::Layout;
use pdsm_txn::{MergeStats, MergeTicket, SharedTable};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// When the scheduler is allowed to merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// Builds run — and are applied — on the background worker.
    #[default]
    Background,
    /// Threshold crossings merge inline on the writer's thread
    /// (deterministic fallback for 1-core runs and differential tests).
    Sync,
    /// The scheduler never merges.
    Off,
}

/// Scheduler policy. [`MaintenanceConfig::from_env`] honors the
/// `PDSM_MERGE` / `PDSM_MERGE_THRESHOLD` / `PDSM_MERGE_MAX_LAG` knobs;
/// `Database::new` uses it.
#[derive(Debug, Clone)]
pub struct MaintenanceConfig {
    pub mode: MaintenanceMode,
    /// Delta ops (writes since last merge) that trigger a merge.
    pub merge_threshold: u64,
    /// Per-table threshold overrides.
    pub per_table: HashMap<String, u64>,
    /// Consult `LayoutAdvisor::advise_observed`-equivalent inputs at merge
    /// time, so tables whose observed workload drifted merge into an
    /// advised layout automatically.
    pub advise_on_merge: bool,
    /// Backpressure factor: once `delta_ops ≥ max_lag × threshold` and the
    /// background builder cannot absorb it (a build is in flight or its
    /// slot is blocked), the writing thread merges synchronously instead
    /// of letting the delta grow without bound. `0` disables backpressure.
    pub max_lag: u64,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            mode: MaintenanceMode::default(),
            merge_threshold: 65_536,
            per_table: HashMap::new(),
            advise_on_merge: true,
            max_lag: 8,
        }
    }
}

impl MaintenanceConfig {
    /// Defaults overridden by `PDSM_MERGE` (`background` | `sync` | `off`),
    /// `PDSM_MERGE_THRESHOLD` (delta ops) and `PDSM_MERGE_MAX_LAG`
    /// (backpressure factor, `0` = off).
    pub fn from_env() -> Self {
        let mut cfg = MaintenanceConfig::default();
        match std::env::var("PDSM_MERGE").ok().as_deref() {
            Some("sync") => cfg.mode = MaintenanceMode::Sync,
            Some("off") => cfg.mode = MaintenanceMode::Off,
            _ => {}
        }
        if let Some(t) = std::env::var("PDSM_MERGE_THRESHOLD")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.merge_threshold = t;
        }
        if let Some(l) = std::env::var("PDSM_MERGE_MAX_LAG")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.max_lag = l;
        }
        cfg
    }

    /// The threshold applying to `table`.
    pub fn threshold_for(&self, table: &str) -> u64 {
        self.per_table
            .get(table)
            .copied()
            .unwrap_or(self.merge_threshold)
    }
}

/// What the scheduler has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Background builds handed to the worker.
    pub builds_started: u64,
    /// Background builds the worker applied (replay + swap + index
    /// rebuild).
    pub builds_applied: u64,
    /// Background builds discarded (stale — an explicit or backpressure
    /// merge won the race — or failed).
    pub builds_discarded: u64,
    /// Inline merges run in [`MaintenanceMode::Sync`].
    pub sync_merges: u64,
    /// Inline merges forced by backpressure: the delta outran an in-flight
    /// build by more than [`MaintenanceConfig::max_lag`] thresholds.
    pub backpressure_merges: u64,
    /// Merges (any path) that folded into an advisor-chosen layout
    /// differing from the table's previous one.
    pub advised_relayouts: u64,
}

/// The scalar maintenance policy for one table at one instant (see
/// [`MaintenanceScheduler::policy_for`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TablePolicy {
    pub mode: MaintenanceMode,
    pub threshold: u64,
    pub max_lag: u64,
    pub advise_on_merge: bool,
}

/// A build order for the worker: the pinned cut, the table and index
/// handles to apply the finished build to, the layout to fold into unless
/// the advisor overrides it, and the advisor's inputs.
pub(crate) struct BuildJob {
    pub table: String,
    /// Cloned shared handle — the worker finishes the merge through it.
    pub handle: SharedTable,
    /// The table's index set — rebuilt from the fresh main after the swap.
    pub indexes: Arc<RwLock<IndexSet>>,
    pub ticket: MergeTicket,
    pub layout: Layout,
    pub advise: Option<AdviseInputs>,
}

/// Everything `optimize_table` needs, captured on the write path (cheap:
/// views carry no statistics) and shipped to the worker so the BPi search
/// itself runs off the hot path.
pub(crate) struct AdviseInputs {
    pub views: HashMap<String, TableView>,
    pub workload: Workload,
}

/// Mutable scheduler state, shared between the front (DML threads) and
/// the worker thread. The mutex is held only for bookkeeping — never
/// across a fold, a table lock, or an index rebuild.
struct SchedState {
    /// Job channel to the worker; `None` until the first background build.
    tx: Option<Sender<BuildJob>>,
    handle: Option<JoinHandle<()>>,
    /// Tables with a build in flight (suppresses re-triggering).
    in_flight: HashSet<String>,
    /// Merges the worker applied since the last drain.
    applied: Vec<(String, MergeStats)>,
    stats: MaintenanceStats,
}

struct SchedShared {
    /// The active policy, swapped wholesale on change. Kept outside the
    /// state mutex so the per-insert policy probe takes only a shared
    /// read lock and clones an `Arc` — no exclusive serialization point
    /// and no allocation on the write hot path.
    cfg: RwLock<Arc<MaintenanceConfig>>,
    state: Mutex<SchedState>,
    /// Signalled whenever a build completes (applied or discarded).
    done: Condvar,
}

impl SchedShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn cfg(&self) -> Arc<MaintenanceConfig> {
        Arc::clone(&self.cfg.read().unwrap_or_else(|e| e.into_inner()))
    }
}

/// The per-database maintenance engine. `Database` consults it on every
/// insert-path call; it owns the worker thread (spawned lazily on the
/// first background build, so `sync`/`off` databases never start one).
/// All entry points take `&self` — the scheduler is interior-mutable, the
/// shape the shared `Database` handle requires.
pub struct MaintenanceScheduler {
    shared: Arc<SchedShared>,
}

impl Default for MaintenanceScheduler {
    fn default() -> Self {
        Self::new(MaintenanceConfig::default())
    }
}

impl MaintenanceScheduler {
    pub fn new(cfg: MaintenanceConfig) -> Self {
        MaintenanceScheduler {
            shared: Arc::new(SchedShared {
                cfg: RwLock::new(Arc::new(cfg)),
                state: Mutex::new(SchedState {
                    tx: None,
                    handle: None,
                    in_flight: HashSet::new(),
                    applied: Vec::new(),
                    stats: MaintenanceStats::default(),
                }),
                done: Condvar::new(),
            }),
        }
    }

    /// Scheduler built from the process environment (`PDSM_MERGE`,
    /// `PDSM_MERGE_THRESHOLD`, `PDSM_MERGE_MAX_LAG`).
    pub fn from_env() -> Self {
        Self::new(MaintenanceConfig::from_env())
    }

    /// A copy of the active policy. (The scheduler is shared across
    /// threads, so no reference into it can be handed out.)
    pub fn config(&self) -> MaintenanceConfig {
        (*self.shared.cfg()).clone()
    }

    /// The scalar policy applying to one table — what the insert-path
    /// maintenance check needs. A shared read lock + `Arc` bump, then the
    /// fields are read lock-free: no exclusive lock and no allocation on
    /// the write hot path.
    pub(crate) fn policy_for(&self, table: &str) -> TablePolicy {
        let cfg = self.shared.cfg();
        TablePolicy {
            mode: cfg.mode,
            threshold: cfg.threshold_for(table),
            max_lag: cfg.max_lag,
            advise_on_merge: cfg.advise_on_merge,
        }
    }

    /// Replace the policy. Takes effect from the next write.
    pub fn set_config(&self, cfg: MaintenanceConfig) {
        *self.shared.cfg.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(cfg);
    }

    /// Adjust the policy in place under the config lock.
    pub fn update_config(&self, f: impl FnOnce(&mut MaintenanceConfig)) {
        let mut guard = self.shared.cfg.write().unwrap_or_else(|e| e.into_inner());
        let mut cfg = (**guard).clone();
        f(&mut cfg);
        *guard = Arc::new(cfg);
    }

    pub fn stats(&self) -> MaintenanceStats {
        self.shared.lock().stats
    }

    /// Background builds currently in flight.
    pub fn in_flight(&self) -> usize {
        self.shared.lock().in_flight.len()
    }

    /// Atomically claim the launch slot for `table`: returns false when a
    /// build for it is already in flight. A successful reservation must be
    /// followed by [`MaintenanceScheduler::launch`] or
    /// [`MaintenanceScheduler::unreserve`].
    pub(crate) fn try_reserve(&self, table: &str) -> bool {
        self.shared.lock().in_flight.insert(table.to_string())
    }

    /// Release a reservation whose `begin_merge` lost a race.
    pub(crate) fn unreserve(&self, table: &str) {
        let mut st = self.shared.lock();
        st.in_flight.remove(table);
        drop(st);
        self.shared.done.notify_all();
    }

    pub(crate) fn note_sync_merge(&self, advised: bool, backpressure: bool) {
        let mut st = self.shared.lock();
        st.stats.sync_merges += 1;
        if backpressure {
            st.stats.backpressure_merges += 1;
        }
        if advised {
            st.stats.advised_relayouts += 1;
        }
    }

    /// Hand a reserved build to the worker (spawning it on first use).
    pub(crate) fn launch(&self, job: BuildJob) {
        let mut st = self.shared.lock();
        st.stats.builds_started += 1;
        if st.tx.is_none() {
            let (tx, rx) = channel::<BuildJob>();
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name("pdsm-maintenance".into())
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        run_build(job, &shared);
                    }
                })
                .expect("spawn maintenance worker");
            st.tx = Some(tx);
            st.handle = Some(handle);
        }
        // A send fails only if the worker thread died (a panic outside
        // run_build's contained region). Reclaim fully: release the slot,
        // abort the orphaned cut, and drop the dead worker so the next
        // launch respawns a fresh one — a lost build never disables
        // automatic merging and never wedges flush().
        match st.tx.as_ref().expect("installed above").send(job) {
            Ok(()) => {}
            Err(std::sync::mpsc::SendError(job)) => {
                st.stats.builds_discarded += 1;
                st.in_flight.remove(&job.table);
                st.tx = None;
                st.handle = None; // already dead; dropping detaches it
                drop(st);
                job.handle.abort_merge_epoch(job.ticket.epoch());
                self.shared.done.notify_all();
            }
        }
    }

    /// Merges the worker has applied since the last drain, without
    /// blocking.
    pub fn drain_applied(&self) -> Vec<(String, MergeStats)> {
        std::mem::take(&mut self.shared.lock().applied)
    }

    /// Block until every in-flight build has been applied (or discarded),
    /// then drain the applied list — the deterministic quiesce point tests
    /// and benchmarks use.
    pub fn flush(&self) -> Vec<(String, MergeStats)> {
        let mut st = self.shared.lock();
        while !st.in_flight.is_empty() {
            st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        std::mem::take(&mut st.applied)
    }
}

impl Drop for MaintenanceScheduler {
    fn drop(&mut self) {
        let (tx, handle) = {
            let mut st = self.shared.lock();
            (st.tx.take(), st.handle.take())
        };
        drop(tx); // closes the channel; the worker loop exits
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// Process one build on the worker thread: advise the layout, fold the
/// cut, apply the swap through the shared handle, rebuild the table's
/// indexes from the fresh main store, record the outcome. Panics inside
/// the fold are contained — the pending cut is aborted and the build
/// counted as discarded, so a poisoned table never wedges the scheduler.
fn run_build(job: BuildJob, shared: &SchedShared) {
    let table = job.table.clone();
    let handle = job.handle.clone();
    let epoch = job.ticket.epoch();
    let hw = Hierarchy::nehalem();
    let opt_cfg = OptimizerConfig::default();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let (layout, advised) = choose_layout(
            &job.table,
            job.layout.clone(),
            job.advise.as_ref(),
            &hw,
            &opt_cfg,
        );
        match job.ticket.build(layout) {
            Ok(built) => {
                // Durable tables: serialize the checkpoint blob off-lock
                // so finish_merge's checkpoint renames it instead of
                // serializing under the write lock. A failed pre-persist
                // (self-removed) just means inline fallback.
                if let Some(d) = job.handle.durability() {
                    let generation = job.ticket.snapshot().generation() + 1;
                    let _ = d.pre_persist(built.table(), generation, epoch);
                }
                match job
                    .handle
                    .finish_merge_then(built, |vt| (vt.main_arc(), vt.generation()))
                {
                    Ok((stats, (main, generation))) => {
                        // Index rebuild runs off every lock: the fresh main
                        // is immutable, and the generation tag makes a
                        // stale result harmless (probes fall back to scan).
                        crate::database::rebuild_index_set(&job.indexes, &main, generation);
                        Some((stats, advised))
                    }
                    // Stale: an explicit or backpressure merge preempted us.
                    Err(_) => None,
                }
            }
            Err(_) => {
                // Build failed; clear our pending cut so merges can run.
                job.handle.abort_merge_epoch(epoch);
                None
            }
        }
    }));
    if outcome.is_err() {
        // A panic mid-fold: make sure our cut is not left pending.
        handle.abort_merge_epoch(epoch);
    }
    // Release the job — and with it the ticket's pinned cut snapshot —
    // *before* reporting completion: a thread woken by flush() must never
    // observe this build still pinning a superseded version.
    drop(job);
    let mut st = shared.lock();
    st.in_flight.remove(&table);
    match outcome {
        Ok(Some((stats, advised))) => {
            st.stats.builds_applied += 1;
            if advised {
                st.stats.advised_relayouts += 1;
            }
            st.applied.push((table, stats));
        }
        _ => st.stats.builds_discarded += 1,
    }
    drop(st);
    shared.done.notify_all();
}

/// Pick the layout a merge of `table` should fold into: the advisor's
/// choice over the observed workload when it differs from `current`,
/// otherwise `current`. Returns `(layout, advised)`.
pub(crate) fn choose_layout(
    table: &str,
    current: Layout,
    advise: Option<&AdviseInputs>,
    hw: &Hierarchy,
    cfg: &OptimizerConfig,
) -> (Layout, bool) {
    let Some(a) = advise else {
        return (current, false);
    };
    if a.workload.queries.is_empty() || !a.views.contains_key(table) {
        return (current, false);
    }
    let opt = optimize_table(table, &a.views, &a.workload, hw, cfg);
    if opt.layout != current {
        (opt.layout, true)
    } else {
        (current, false)
    }
}
