//! Background maintenance: the scheduler that takes merges off the write
//! path.
//!
//! Every DML call used to be the only thing that could pay for a merge —
//! an O(table) fold on the writer's thread (`fig_update_mix` shows the
//! resulting 50/50-mix throughput cliff at small thresholds). The
//! [`MaintenanceScheduler`] owned by [`crate::Database`] decouples that:
//!
//! * it watches every table's `delta_ops` against a configurable
//!   threshold (global default + per-table overrides);
//! * when a table crosses it, the write path runs only
//!   [`pdsm_txn::VersionedTable::begin_merge`] (pin the cut, O(delta))
//!   and hands the [`pdsm_txn::MergeTicket`] to a background worker
//!   thread, which folds the cut into a fresh main store — consulting the
//!   layout advisor on the observed workload first, so drifted tables
//!   merge straight into an advised layout;
//! * the finished build is *caught up* on a later write-path call (or an
//!   explicit [`crate::Database::poll_maintenance`] /
//!   [`crate::Database::flush_maintenance`]): the post-cut ops are
//!   replayed and the new main swapped in, O(ops since cut).
//!
//! ## Modes (`PDSM_MERGE`)
//!
//! * `background` (default) — builds run on the worker thread.
//! * `sync` — threshold crossings merge inline on the writer's thread:
//!   deterministic, single-threaded, what 1-core CI and differential tests
//!   want. Results are byte-identical to the background path (both run the
//!   same three-phase pipeline; see `pdsm_txn::merge`).
//! * `off` — the scheduler never merges; only explicit
//!   [`crate::Database::merge`] calls do.
//!
//! `PDSM_MERGE_THRESHOLD` sets the global delta-ops threshold (default
//! 65536). Both knobs are read once, when the [`MaintenanceConfig`] is
//! built from the environment (i.e. at `Database::new`).

use pdsm_cost::Hierarchy;
use pdsm_layout::bpi::{optimize_table, OptimizerConfig};
use pdsm_layout::workload::Workload;
use pdsm_plan::patterns::TableView;
use pdsm_storage::Layout;
use pdsm_txn::{BuiltMain, MergeTicket};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// When the scheduler is allowed to merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// Builds run on the background worker; swaps are caught up on later
    /// write-path calls.
    #[default]
    Background,
    /// Threshold crossings merge inline on the writer's thread
    /// (deterministic fallback for 1-core runs and differential tests).
    Sync,
    /// The scheduler never merges.
    Off,
}

/// Scheduler policy. [`MaintenanceConfig::from_env`] honors the
/// `PDSM_MERGE` / `PDSM_MERGE_THRESHOLD` knobs; `Database::new` uses it.
#[derive(Debug, Clone)]
pub struct MaintenanceConfig {
    pub mode: MaintenanceMode,
    /// Delta ops (writes since last merge) that trigger a merge.
    pub merge_threshold: u64,
    /// Per-table threshold overrides.
    pub per_table: HashMap<String, u64>,
    /// Consult `LayoutAdvisor::advise_observed`-equivalent inputs at merge
    /// time, so tables whose observed workload drifted merge into an
    /// advised layout automatically.
    pub advise_on_merge: bool,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            mode: MaintenanceMode::default(),
            merge_threshold: 65_536,
            per_table: HashMap::new(),
            advise_on_merge: true,
        }
    }
}

impl MaintenanceConfig {
    /// Defaults overridden by `PDSM_MERGE` (`background` | `sync` | `off`)
    /// and `PDSM_MERGE_THRESHOLD` (delta ops).
    pub fn from_env() -> Self {
        let mut cfg = MaintenanceConfig::default();
        match std::env::var("PDSM_MERGE").ok().as_deref() {
            Some("sync") => cfg.mode = MaintenanceMode::Sync,
            Some("off") => cfg.mode = MaintenanceMode::Off,
            _ => {}
        }
        if let Some(t) = std::env::var("PDSM_MERGE_THRESHOLD")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.merge_threshold = t;
        }
        cfg
    }

    /// The threshold applying to `table`.
    pub fn threshold_for(&self, table: &str) -> u64 {
        self.per_table
            .get(table)
            .copied()
            .unwrap_or(self.merge_threshold)
    }
}

/// What the scheduler has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Background builds handed to the worker.
    pub builds_started: u64,
    /// Background builds whose swap was applied.
    pub builds_applied: u64,
    /// Background builds discarded (stale — an explicit merge won the
    /// race — or failed).
    pub builds_discarded: u64,
    /// Inline merges run in [`MaintenanceMode::Sync`].
    pub sync_merges: u64,
    /// Merges (either mode) that folded into an advisor-chosen layout
    /// differing from the table's previous one.
    pub advised_relayouts: u64,
}

/// A build order for the worker: the pinned cut, the layout to fold into
/// unless the advisor overrides it, and the advisor's inputs.
pub(crate) struct BuildJob {
    pub table: String,
    pub ticket: MergeTicket,
    pub layout: Layout,
    pub advise: Option<AdviseInputs>,
}

/// Everything `optimize_table` needs, captured on the write path (cheap:
/// views carry no statistics) and shipped to the worker so the BPi search
/// itself runs off the hot path.
pub(crate) struct AdviseInputs {
    pub views: HashMap<String, TableView>,
    pub workload: Workload,
}

/// A finished build coming back from the worker.
pub(crate) struct BuildDone {
    pub table: String,
    pub result: Result<BuiltMain, pdsm_storage::Error>,
    /// The advisor picked a layout different from the table's current one.
    pub advised: bool,
}

enum Job {
    Build(BuildJob),
    Stop,
}

struct Worker {
    tx: Sender<Job>,
    rx: Receiver<BuildDone>,
    handle: Option<JoinHandle<()>>,
}

/// The per-database maintenance engine. `Database` consults it on every
/// DML call; it owns the worker thread (spawned lazily on the first
/// background build, so `sync`/`off` databases never start one).
#[derive(Default)]
pub struct MaintenanceScheduler {
    cfg: MaintenanceConfig,
    worker: Option<Worker>,
    /// Tables with a build in flight (suppresses re-triggering).
    in_flight: HashSet<String>,
    /// Builds received by a blocking wait, not yet drained.
    done_buf: Vec<BuildDone>,
    stats: MaintenanceStats,
}

impl MaintenanceScheduler {
    pub fn new(cfg: MaintenanceConfig) -> Self {
        MaintenanceScheduler {
            cfg,
            worker: None,
            in_flight: HashSet::new(),
            done_buf: Vec::new(),
            stats: MaintenanceStats::default(),
        }
    }

    /// Scheduler built from the process environment (`PDSM_MERGE`,
    /// `PDSM_MERGE_THRESHOLD`).
    pub fn from_env() -> Self {
        Self::new(MaintenanceConfig::from_env())
    }

    pub fn config(&self) -> &MaintenanceConfig {
        &self.cfg
    }

    pub fn config_mut(&mut self) -> &mut MaintenanceConfig {
        &mut self.cfg
    }

    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// Background builds currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Should `table` at `delta_ops` merge now? (Threshold crossed, mode
    /// permits it, and no build for it is already in flight.)
    pub(crate) fn wants_merge(&self, table: &str, delta_ops: u64) -> bool {
        self.cfg.mode != MaintenanceMode::Off
            && delta_ops >= self.cfg.threshold_for(table)
            && !self.in_flight.contains(table)
    }

    pub(crate) fn note_sync_merge(&mut self, advised: bool) {
        self.stats.sync_merges += 1;
        if advised {
            self.stats.advised_relayouts += 1;
        }
    }

    pub(crate) fn note_applied(&mut self, advised: bool) {
        self.stats.builds_applied += 1;
        if advised {
            self.stats.advised_relayouts += 1;
        }
    }

    pub(crate) fn note_discarded(&mut self) {
        self.stats.builds_discarded += 1;
    }

    /// Hand a build to the worker (spawning it on first use).
    pub(crate) fn launch(&mut self, job: BuildJob) {
        let worker = self.worker.get_or_insert_with(|| {
            let (tx_jobs, rx_jobs) = channel::<Job>();
            let (tx_done, rx_done) = channel::<BuildDone>();
            let handle = std::thread::Builder::new()
                .name("pdsm-maintenance".into())
                .spawn(move || worker_loop(rx_jobs, tx_done))
                .expect("spawn maintenance worker");
            Worker {
                tx: tx_jobs,
                rx: rx_done,
                handle: Some(handle),
            }
        });
        self.in_flight.insert(job.table.clone());
        self.stats.builds_started += 1;
        // A send only fails if the worker died (a panic inside a build).
        // Drop it so the next drain reclaims the orphaned in_flight
        // entries and the next launch respawns a fresh worker.
        if worker.tx.send(Job::Build(job)).is_err() {
            self.worker = None;
        }
    }

    /// All builds that have finished, without blocking. The second value
    /// lists tables orphaned by a dead worker (a panic inside a build):
    /// their builds will never arrive, so the caller must abort their
    /// pending merges. The dead worker is dropped, and the next
    /// [`MaintenanceScheduler::launch`] spawns a fresh one — a lost build
    /// never disables automatic merging.
    pub(crate) fn drain_done(&mut self) -> (Vec<BuildDone>, Vec<String>) {
        let mut out = std::mem::take(&mut self.done_buf);
        let mut worker_dead = false;
        if let Some(w) = &self.worker {
            loop {
                match w.rx.try_recv() {
                    Ok(d) => out.push(d),
                    Err(std::sync::mpsc::TryRecvError::Empty) => break,
                    Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        worker_dead = true;
                        break;
                    }
                }
            }
        }
        for d in &out {
            self.in_flight.remove(&d.table);
        }
        if worker_dead {
            self.worker = None;
        }
        // in_flight entries with no worker to serve them are orphans
        // (covers both the dead-worker path above and a failed send)
        let orphans = if self.worker.is_none() {
            self.in_flight.drain().collect()
        } else {
            Vec::new()
        };
        (out, orphans)
    }

    /// Block until one in-flight build finishes (buffered for the next
    /// [`MaintenanceScheduler::drain_done`]). Returns false — no progress
    /// possible — when nothing is in flight or the worker died; the caller
    /// then reclaims [`MaintenanceScheduler::take_in_flight`] tables.
    pub(crate) fn wait_one(&mut self) -> bool {
        if self.in_flight.is_empty() {
            return false;
        }
        let Some(w) = &self.worker else {
            return false;
        };
        match w.rx.recv() {
            Ok(d) => {
                self.in_flight.remove(&d.table);
                self.done_buf.push(d);
                true
            }
            Err(_) => false,
        }
    }

    /// Tables that still count as in flight (used to abort their pending
    /// merges if the worker died).
    pub(crate) fn take_in_flight(&mut self) -> Vec<String> {
        self.in_flight.drain().collect()
    }
}

impl Drop for MaintenanceScheduler {
    fn drop(&mut self) {
        if let Some(w) = self.worker.take() {
            let _ = w.tx.send(Job::Stop);
            if let Some(h) = w.handle {
                let _ = h.join();
            }
        }
    }
}

/// Pick the layout a merge of `table` should fold into: the advisor's
/// choice over the observed workload when it differs from `current`,
/// otherwise `current`. Returns `(layout, advised)`.
pub(crate) fn choose_layout(
    table: &str,
    current: Layout,
    advise: Option<&AdviseInputs>,
    hw: &Hierarchy,
    cfg: &OptimizerConfig,
) -> (Layout, bool) {
    let Some(a) = advise else {
        return (current, false);
    };
    if a.workload.queries.is_empty() || !a.views.contains_key(table) {
        return (current, false);
    }
    let opt = optimize_table(table, &a.views, &a.workload, hw, cfg);
    if opt.layout != current {
        (opt.layout, true)
    } else {
        (current, false)
    }
}

fn worker_loop(rx_jobs: Receiver<Job>, tx_done: Sender<BuildDone>) {
    let hw = Hierarchy::nehalem();
    let opt_cfg = OptimizerConfig::default();
    while let Ok(job) = rx_jobs.recv() {
        let job = match job {
            Job::Stop => break,
            Job::Build(j) => j,
        };
        let (layout, advised) = choose_layout(
            &job.table,
            job.layout.clone(),
            job.advise.as_ref(),
            &hw,
            &opt_cfg,
        );
        let result = job.ticket.build(layout);
        if tx_done
            .send(BuildDone {
                table: job.table,
                result,
                advised,
            })
            .is_err()
        {
            break;
        }
    }
}
