//! # pdsm-core
//!
//! The integrated memory-resident DBMS this reproduction delivers: a
//! [`Database`] catalog of vertically partitioned tables, secondary index
//! maintenance, the cost-based [`planner`] that lowers every query to a
//! [`pdsm_plan::physical::PhysicalPlan`] — choosing engine
//! (Volcano / bulk / vectorized / compiled / parallel) and access path
//! (full scan vs. main-index probe + delta-tail union, §VI-B, Fig. 10)
//! via `pdsm_cost::estimate` — and the [`advisor`] that drives the
//! cost-model-based layout optimizer (§V). Queries enter through
//! [`Database::execute`]; [`Database::run`] forces an engine.
//!
//! ```
//! use pdsm_core::{Database, EngineKind};
//! use pdsm_plan::builder::QueryBuilder;
//! use pdsm_plan::expr::Expr;
//! use pdsm_plan::logical::{AggExpr, AggFunc};
//! use pdsm_storage::{ColumnDef, DataType, Schema, Value};
//!
//! let db = Database::new();
//! db.create_table(
//!     "r",
//!     Schema::new(vec![
//!         ColumnDef::new("a", DataType::Int32),
//!         ColumnDef::new("b", DataType::Int32),
//!     ]),
//! )
//! .unwrap();
//! for i in 0..1000 {
//!     db.insert("r", &[Value::Int32(i % 50), Value::Int32(i)]).unwrap();
//! }
//! let plan = QueryBuilder::scan("r")
//!     .filter(Expr::col(0).eq(Expr::lit(7)))
//!     .aggregate(vec![], vec![AggExpr::new(AggFunc::Count, Expr::col(1))])
//!     .build();
//! let out = db.run(&plan, EngineKind::Compiled).unwrap();
//! assert_eq!(out.rows[0][0], Value::Int64(20));
//! ```

pub mod advisor;
pub mod database;
pub mod maintenance;
pub mod planner;
pub mod result_cache;
pub mod streaming;

pub use advisor::{AdvisorReport, LayoutAdvisor};
pub use database::{
    Database, DbError, DbSnapshot, DurabilityConfig, EngineKind, IndexKind, StorageStats,
};
pub use maintenance::{MaintenanceConfig, MaintenanceMode, MaintenanceScheduler, MaintenanceStats};
pub use pdsm_exec::{
    reset_scan_counters, scan_counters, set_mode_override, QueryOutput, QueryResult, ScanCounters,
    SimdMode,
};
pub use pdsm_par::ParallelEngine;
pub use pdsm_plan::physical::{AccessPath, CostSummary, EngineChoice, PhysicalPlan};
pub use pdsm_pool::{BufferPool, PoolStats};
pub use pdsm_store::FsyncMode;
pub use pdsm_txn::{
    DurabilityStats, MergeStats, RowId, SharedTable, Snapshot, TableDurability, VersionStats,
    VersionedTable,
};
pub use planner::Planner;
pub use result_cache::{CacheStats, PlanCacheStats, ResultCacheConfig, ResultCacheStats};
