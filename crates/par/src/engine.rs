//! `ParallelEngine`: the compiled engine's plan lowering with parallel
//! pipeline drivers.
//!
//! Lowering mirrors `pdsm_exec::compiled` exactly — scans open pipelines,
//! selections merge into kernel conjuncts (or residual filter steps once
//! the pipe has steps), projections and join probes append steps, and
//! pipeline breakers (aggregates, join builds, sorts, limits) materialize.
//! The difference is *how* an open pipeline runs:
//!
//! * **collect pipelines** run on the worker pool with per-morsel output
//!   buffers stitched in morsel order — byte-identical to sequential;
//! * **bare-scan aggregations** with merge-exact aggregates (counts,
//!   integer sums, min/max) use thread-local partial states merged at the
//!   barrier;
//! * **float-sensitive or stepped aggregations** parallelize the scan and
//!   probe work via an ordered collect, then fold sequentially, keeping
//!   float accumulation order — and therefore every output bit — identical
//!   to the compiled engine.

use crate::agg::{float_sensitive, fold_rows, grouped_agg_parallel, scalar_agg_parallel};
use crate::pipeline::{collect_parallel, Step};
use crate::pool::default_threads;
use pdsm_exec::compiled::conjuncts;
use pdsm_exec::engine::{Engine, ExecError, TableProvider};
use pdsm_exec::keys::GroupKey;
use pdsm_exec::QueryOutput;
use pdsm_plan::logical::LogicalPlan;
use pdsm_storage::types::cmp_values;
use pdsm_storage::{ColId, Table, Value};
use std::collections::HashMap;

/// The morsel-driven parallel engine.
///
/// `threads == 0` (the default) resolves at execution time: the
/// `PDSM_THREADS` environment variable if set, otherwise all cores.
#[derive(Debug, Default, Clone, Copy)]
pub struct ParallelEngine {
    threads: usize,
}

impl ParallelEngine {
    /// Engine with automatic thread-count resolution.
    pub const fn new() -> Self {
        ParallelEngine { threads: 0 }
    }

    /// Engine pinned to exactly `threads` workers (`0` = automatic).
    pub const fn with_threads(threads: usize) -> Self {
        ParallelEngine { threads }
    }

    /// The worker count this engine will use right now.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            default_threads()
        }
    }
}

impl Engine for ParallelEngine {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn execute(
        &self,
        plan: &LogicalPlan,
        db: &dyn TableProvider,
    ) -> Result<QueryOutput, ExecError> {
        let width = |t: &str| db.table(t).map(|tb| tb.schema().len()).unwrap_or(0);
        let required = plan.required_columns(&width);
        let threads = self.effective_threads();
        let rows = exec(plan, db, &required, threads)?;
        Ok(QueryOutput { rows })
    }
}

/// A lowered query fragment: an open (parallelizable) scan pipeline or
/// materialized rows. The parallel twin of the compiled engine's.
enum Fragment {
    Pipe {
        table: String,
        preds: Vec<pdsm_plan::expr::Expr>,
        steps: Vec<Step>,
    },
    Rows(Vec<Vec<Value>>),
}

fn needed_cols(name: &str, t: &Table, required: &[(String, Vec<ColId>)]) -> Vec<ColId> {
    required
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, c)| c.clone())
        .unwrap_or_else(|| (0..t.schema().len()).collect())
}

fn exec(
    plan: &LogicalPlan,
    db: &dyn TableProvider,
    required: &[(String, Vec<ColId>)],
    threads: usize,
) -> Result<Vec<Vec<Value>>, ExecError> {
    let frag = lower(plan, db, required, threads)?;
    Ok(match frag {
        Fragment::Rows(rows) => rows,
        Fragment::Pipe {
            table,
            preds,
            steps,
        } => {
            let t = db
                .table(&table)
                .ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
            let needed = needed_cols(&table, t, required);
            collect_parallel(t, db.overlay(&table), &preds, &steps, &needed, threads)
        }
    })
}

fn lower(
    plan: &LogicalPlan,
    db: &dyn TableProvider,
    required: &[(String, Vec<ColId>)],
    threads: usize,
) -> Result<Fragment, ExecError> {
    match plan {
        LogicalPlan::Scan { table } => {
            db.table(table)
                .ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
            Ok(Fragment::Pipe {
                table: table.clone(),
                preds: Vec::new(),
                steps: Vec::new(),
            })
        }
        LogicalPlan::Select { input, pred, .. } => {
            let frag = lower(input, db, required, threads)?;
            Ok(match frag {
                Fragment::Pipe {
                    table,
                    mut preds,
                    mut steps,
                } => {
                    if steps.is_empty() {
                        preds.extend(conjuncts(pred).into_iter().cloned());
                    } else {
                        steps.push(Step::Filter(pred.clone()));
                    }
                    Fragment::Pipe {
                        table,
                        preds,
                        steps,
                    }
                }
                Fragment::Rows(rows) => Fragment::Rows(
                    rows.into_iter()
                        .filter(|r| pred.eval_bool(&r[..]))
                        .collect(),
                ),
            })
        }
        LogicalPlan::Project { input, exprs } => {
            let frag = lower(input, db, required, threads)?;
            Ok(match frag {
                Fragment::Pipe {
                    table,
                    preds,
                    mut steps,
                } => {
                    steps.push(Step::Project(exprs.clone()));
                    Fragment::Pipe {
                        table,
                        preds,
                        steps,
                    }
                }
                Fragment::Rows(rows) => Fragment::Rows(
                    rows.into_iter()
                        .map(|r| exprs.iter().map(|e| e.eval(&r[..])).collect())
                        .collect(),
                ),
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let frag = lower(input, db, required, threads)?;
            let rows = match frag {
                Fragment::Pipe {
                    table,
                    preds,
                    steps,
                } => {
                    let t = db
                        .table(&table)
                        .ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
                    let overlay = db.overlay(&table);
                    let needed = needed_cols(&table, t, required);
                    let mergeable = steps.is_empty() && !aggs.iter().any(|a| float_sensitive(t, a));
                    if mergeable && group_by.is_empty() {
                        scalar_agg_parallel(t, overlay.as_ref(), &preds, aggs, &needed, threads)
                    } else if mergeable {
                        grouped_agg_parallel(
                            t,
                            overlay.as_ref(),
                            &preds,
                            group_by,
                            aggs,
                            &needed,
                            threads,
                        )
                    } else {
                        // Ordered collect keeps the sequential accumulation
                        // order, so float sums stay bit-identical.
                        let survivors =
                            collect_parallel(t, overlay, &preds, &steps, &needed, threads);
                        fold_rows(survivors, group_by, aggs)
                    }
                }
                Fragment::Rows(rows) => fold_rows(rows, group_by, aggs),
            };
            Ok(Fragment::Rows(rows))
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            // Build side is a pipeline breaker: materialize (in parallel,
            // order-preserving) and build the hash table in row order so
            // probe fan-out order matches the sequential engines.
            let build_rows = exec(left, db, required, threads)?;
            let mut ht: HashMap<GroupKey, Vec<Vec<Value>>> = HashMap::new();
            for r in build_rows {
                let k = left_key.eval(&r[..]);
                if k.is_null() {
                    continue;
                }
                ht.entry(GroupKey::single(&k)).or_default().push(r);
            }
            let frag = lower(right, db, required, threads)?;
            Ok(match frag {
                Fragment::Pipe {
                    table,
                    preds,
                    mut steps,
                } => {
                    steps.push(Step::Probe {
                        ht,
                        key: right_key.clone(),
                    });
                    Fragment::Pipe {
                        table,
                        preds,
                        steps,
                    }
                }
                Fragment::Rows(rows) => {
                    let mut out = Vec::new();
                    for r in rows {
                        let k = right_key.eval(&r[..]);
                        if k.is_null() {
                            continue;
                        }
                        if let Some(ms) = ht.get(&GroupKey::single(&k)) {
                            for m in ms {
                                let mut j = m.clone();
                                j.extend(r.iter().cloned());
                                out.push(j);
                            }
                        }
                    }
                    Fragment::Rows(out)
                }
            })
        }
        LogicalPlan::Sort { input, keys } => {
            let mut rows = exec(input, db, required, threads)?;
            rows.sort_by(|a, b| {
                for k in keys {
                    let ord = cmp_values(&k.expr.eval(&a[..]), &k.expr.eval(&b[..]));
                    let ord = if k.asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(Fragment::Rows(rows))
        }
        LogicalPlan::Limit { input, n } => {
            let mut rows = exec(input, db, required, threads)?;
            rows.truncate(*n);
            Ok(Fragment::Rows(rows))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_exec::engine::{CompiledEngine, VolcanoEngine};
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_plan::expr::Expr;
    use pdsm_plan::logical::{AggExpr, AggFunc};
    use pdsm_storage::{ColumnDef, DataType, Schema};

    fn db() -> HashMap<String, Table> {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int32),
                ColumnDef::new("b", DataType::Int32),
                ColumnDef::new("s", DataType::Str),
                ColumnDef::nullable("f", DataType::Float64),
            ]),
        );
        for i in 0..20_000 {
            t.insert(&[
                Value::Int32(i),
                Value::Int32(i % 10),
                Value::Str(format!("name-{}", i % 5)),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Float64(i as f64 / 2.0)
                },
            ])
            .unwrap();
        }
        let mut m = HashMap::new();
        m.insert("t".to_string(), t);
        m
    }

    fn assert_matches_compiled(plan: &LogicalPlan, d: &HashMap<String, Table>, ctx: &str) {
        let reference = CompiledEngine.execute(plan, d).unwrap();
        for threads in [1, 2, 4, 8] {
            let par = ParallelEngine::with_threads(threads)
                .execute(plan, d)
                .unwrap();
            reference.assert_same(&par, &format!("{ctx} (threads={threads})"));
        }
    }

    #[test]
    fn filter_project_byte_identical_order() {
        let d = db();
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(1).lt(Expr::lit(3)))
            .project(vec![Expr::col(0), Expr::col(2)])
            .build();
        let reference = CompiledEngine.execute(&plan, &d).unwrap();
        for threads in [1, 2, 4, 8] {
            let par = ParallelEngine::with_threads(threads)
                .execute(&plan, &d)
                .unwrap();
            assert_eq!(reference.rows, par.rows, "exact order at threads={threads}");
        }
    }

    #[test]
    fn scalar_and_grouped_aggregates_match() {
        let d = db();
        let scalar = QueryBuilder::scan("t")
            .filter(Expr::col(1).eq(Expr::lit(7)))
            .aggregate(
                vec![],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(0)),
                    AggExpr::new(AggFunc::Min, Expr::col(0)),
                    AggExpr::new(AggFunc::Max, Expr::col(0)),
                ],
            )
            .build();
        assert_matches_compiled(&scalar, &d, "scalar agg");
        let grouped = QueryBuilder::scan("t")
            .aggregate(
                vec![Expr::col(2)],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(1)),
                ],
            )
            .build();
        assert_matches_compiled(&grouped, &d, "grouped agg");
    }

    #[test]
    fn float_aggregates_bit_identical_via_ordered_fold() {
        let d = db();
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(1).lt(Expr::lit(8)))
            .aggregate(
                vec![Expr::col(2)],
                vec![
                    AggExpr::new(AggFunc::Sum, Expr::col(3)),
                    AggExpr::new(AggFunc::Avg, Expr::col(3)),
                ],
            )
            .build();
        let reference = CompiledEngine.execute(&plan, &d).unwrap();
        for threads in [2, 8] {
            let par = ParallelEngine::with_threads(threads)
                .execute(&plan, &d)
                .unwrap();
            // not just normalized: the float bits must match the sequential fold
            let mut a: Vec<String> = reference.rows.iter().map(|r| format!("{r:?}")).collect();
            let mut b: Vec<String> = par.rows.iter().map(|r| format!("{r:?}")).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn joins_sorts_limits_match() {
        let d = db();
        let join = QueryBuilder::scan("t")
            .filter(Expr::col(1).eq(Expr::lit(2)))
            .join(QueryBuilder::scan("t").build(), Expr::col(0), Expr::col(0))
            .aggregate(
                vec![Expr::col(4 + 1)],
                vec![AggExpr::new(AggFunc::Sum, Expr::col(0))],
            )
            .build();
        assert_matches_compiled(&join, &d, "join+agg");
        let sort = QueryBuilder::scan("t")
            .project(vec![Expr::col(1), Expr::col(0)])
            .sort(vec![(Expr::col(0), true), (Expr::col(1), false)])
            .limit(37)
            .build();
        let reference = CompiledEngine.execute(&sort, &d).unwrap();
        let par = ParallelEngine::with_threads(4).execute(&sort, &d).unwrap();
        assert_eq!(reference.rows, par.rows, "sort+limit exact");
    }

    #[test]
    fn volcano_agrees_too() {
        let d = db();
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(2).like("name-1").or(Expr::col(3).is_null()))
            .aggregate(vec![Expr::col(1)], vec![AggExpr::count_star()])
            .build();
        let v = VolcanoEngine.execute(&plan, &d).unwrap();
        let p = ParallelEngine::with_threads(4).execute(&plan, &d).unwrap();
        v.assert_same(&p, "volcano vs parallel");
    }

    #[test]
    fn unknown_table_error_matches() {
        let d: HashMap<String, Table> = HashMap::new();
        let plan = QueryBuilder::scan("missing").build();
        let err = ParallelEngine::new().execute(&plan, &d).unwrap_err();
        assert_eq!(err, ExecError::UnknownTable("missing".into()));
    }

    #[test]
    fn thread_knob_resolution() {
        assert_eq!(ParallelEngine::with_threads(3).effective_threads(), 3);
        assert!(ParallelEngine::new().effective_threads() >= 1);
    }
}
