//! Parallel scan pipelines: the compiled engine's fused loops, one morsel
//! at a time.
//!
//! Each worker compiles its own predicate kernels (they borrow partition
//! readers, which are plain slice views — cheap), then claims morsels from
//! the shared queue and runs the same loop the compiled engine runs:
//! kernels first, survivors materialized column-pruned, then pushed through
//! the step chain (projections, hash-join probes, residual filters) into a
//! per-morsel buffer. Buffers are stitched in morsel order afterwards, so a
//! parallel collect returns rows in *exactly* the sequential scan order —
//! byte-identical output, regardless of worker count or claim interleaving.

use crate::morsel::MorselQueue;
use crate::pool::run_workers;
use pdsm_exec::compiled::{compile_pred, zone_preds, PredKernel};
use pdsm_exec::keys::GroupKey;
use pdsm_exec::{masked_tail_row, simd, tail_row_passes, Overlay};
use pdsm_plan::expr::Expr;
use pdsm_storage::{ColId, Table, Value};
use std::collections::HashMap;

/// Steps applied to rows surviving the scan kernels — the parallel mirror
/// of the compiled engine's step chain (same semantics, same order).
pub(crate) enum Step {
    /// Replace the row with the projected expressions.
    Project(Vec<Expr>),
    /// Probe a build-side hash table; fan out to `build_row ++ row`.
    Probe {
        ht: HashMap<GroupKey, Vec<Vec<Value>>>,
        key: Expr,
    },
    /// Post-join filter.
    Filter(Expr),
}

/// Push `row` through `steps` into `emit`. Mirrors the compiled engine's
/// `push_row` exactly: NULL probe keys drop the row, probe matches fan out
/// in build-insertion order.
pub(crate) fn push_row(row: Vec<Value>, steps: &[Step], emit: &mut dyn FnMut(Vec<Value>)) {
    match steps.first() {
        None => emit(row),
        Some(Step::Project(exprs)) => {
            let projected: Vec<Value> = exprs.iter().map(|e| e.eval(&row[..])).collect();
            push_row(projected, &steps[1..], emit);
        }
        Some(Step::Filter(pred)) => {
            if pred.eval_bool(&row[..]) {
                push_row(row, &steps[1..], emit);
            }
        }
        Some(Step::Probe { ht, key }) => {
            let k = key.eval(&row[..]);
            if k.is_null() {
                return;
            }
            if let Some(matches) = ht.get(&GroupKey::single(&k)) {
                for m in matches {
                    let mut joined = m.clone();
                    joined.extend(row.iter().cloned());
                    push_row(joined, &steps[1..], emit);
                }
            }
        }
    }
}

/// One worker's share of a scan: claim morsels, run kernels, feed survivors
/// through `steps`, calling `sink(morsel_index, row)` for every emitted row.
/// `dead` is the snapshot's main-store tombstone mask (empty = none).
pub(crate) fn scan_worker(
    table: &Table,
    dead: &[bool],
    queue: &MorselQueue,
    preds: &[Expr],
    steps: &[Step],
    needed: &[ColId],
    mut sink: impl FnMut(usize, Vec<Value>),
) {
    let kernels: Vec<PredKernel<'_>> = preds.iter().map(|p| compile_pred(table, p)).collect();
    let width = table.schema().len();
    while let Some(m) = queue.claim() {
        'rows: for i in m.start..m.end {
            if !dead.is_empty() && dead[i] {
                continue;
            }
            for k in &kernels {
                if !k.test(i) {
                    continue 'rows;
                }
            }
            let mut row = vec![Value::Null; width];
            for &c in needed {
                row[c] = table.get(i, c).expect("in-range");
            }
            push_row(row, steps, &mut |r| sink(m.index, r));
        }
    }
}

/// Run a scan pipeline on `threads` workers, materializing all emitted rows
/// **in sequential scan order** (per-morsel buffers stitched by morsel
/// index). The delta tail — when an overlay is present — is appended by one
/// sequential pass after the stitch, which keeps the overall order the same
/// as the compiled engine's main-then-tail scan.
pub(crate) fn collect_parallel(
    table: &Table,
    overlay: Option<Overlay<'_>>,
    preds: &[Expr],
    steps: &[Step],
    needed: &[ColId],
    threads: usize,
) -> Vec<Vec<Value>> {
    let (queue, scanned, pruned) = MorselQueue::for_table_pruned(table, &zone_preds(table, preds));
    simd::note_blocks(scanned, pruned);
    let threads = threads.min(queue.n_morsels()).max(1);
    let dead: &[bool] = overlay.as_ref().map(|o| o.dead).unwrap_or(&[]);
    let per_worker: Vec<Vec<(usize, Vec<Vec<Value>>)>> = run_workers(threads, |_| {
        let mut chunks: Vec<(usize, Vec<Vec<Value>>)> = Vec::new();
        scan_worker(
            table,
            dead,
            &queue,
            preds,
            steps,
            needed,
            |morsel, row| match chunks.last_mut() {
                Some((idx, rows)) if *idx == morsel => rows.push(row),
                _ => chunks.push((morsel, vec![row])),
            },
        );
        chunks
    });
    let mut tagged: Vec<(usize, Vec<Vec<Value>>)> = per_worker.into_iter().flatten().collect();
    tagged.sort_unstable_by_key(|(idx, _)| *idx);
    let mut out: Vec<Vec<Value>> = tagged.into_iter().flat_map(|(_, rows)| rows).collect();
    if let Some(o) = &overlay {
        let width = table.schema().len();
        for r in o.live_tail() {
            if !tail_row_passes(preds, r) {
                continue;
            }
            push_row(masked_tail_row(r, needed, width), steps, &mut |row| {
                out.push(row)
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_storage::{ColumnDef, DataType, Schema};

    fn table(n: usize) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int32),
                ColumnDef::new("b", DataType::Int32),
            ]),
        );
        for i in 0..n {
            t.insert(&[Value::Int32(i as i32), Value::Int32((i % 7) as i32)])
                .unwrap();
        }
        t
    }

    #[test]
    fn parallel_collect_preserves_scan_order() {
        let t = table(20_000);
        let preds = vec![Expr::col(1).eq(Expr::lit(3))];
        let needed = vec![0, 1];
        let sequential = collect_parallel(&t, None, &preds, &[], &needed, 1);
        for threads in [2, 4, 8] {
            let parallel = collect_parallel(&t, None, &preds, &[], &needed, threads);
            assert_eq!(sequential, parallel, "threads={threads}");
        }
        let expect = (0..20_000).filter(|i| i % 7 == 3).count();
        assert_eq!(sequential.len(), expect);
    }

    #[test]
    fn steps_apply_after_kernels() {
        let t = table(5_000);
        let preds = vec![Expr::col(0).lt(Expr::lit(100))];
        let steps = vec![Step::Project(vec![Expr::col(0).mul(Expr::lit(2))])];
        let out = collect_parallel(&t, None, &preds, &steps, &[0, 1], 4);
        assert_eq!(out.len(), 100);
        assert_eq!(out[7], vec![Value::Int64(14)]);
    }

    #[test]
    fn overlay_tombstones_and_tail_in_order() {
        use pdsm_storage::row::Row;
        let t = table(1_000);
        let mut dead = vec![false; 1_000];
        dead[0] = true;
        dead[3] = true;
        let tail = vec![
            Row(vec![Value::Int32(5000), Value::Int32(3)]),
            Row(vec![Value::Int32(5001), Value::Int32(4)]),
        ];
        let overlay = Overlay {
            dead: &dead,
            tail: &tail,
            tail_alive: &[],
        };
        let preds = vec![Expr::col(1).eq(Expr::lit(3))];
        let one = collect_parallel(&t, Some(overlay), &preds, &[], &[0, 1], 1);
        for threads in [2, 4] {
            let many = collect_parallel(&t, Some(overlay), &preds, &[], &[0, 1], threads);
            assert_eq!(one, many, "threads={threads}");
        }
        // row 3 (b==3) is tombstoned; tail row 5000 matches and comes last
        assert!(!one.iter().any(|r| r[0] == Value::Int32(3)));
        assert_eq!(one.last().unwrap()[0], Value::Int32(5000));
    }
}
