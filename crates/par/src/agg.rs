//! Thread-local partial aggregation and the barrier merge.
//!
//! Workers aggregate the morsels they claim into private state — scalar
//! accumulator vectors or per-worker hash tables for grouped aggregation —
//! and the partials are merged in worker-id order once the pool joins
//! ([`pdsm_exec::Accumulator::merge`]). Merging is exact for counts,
//! integer sums and min/max, so these run fully parallel. Aggregates whose
//! inputs are floating point are *not* dispatched here: reassociating float
//! addition changes low-order bits, and this engine promises results
//! identical to the compiled engine's sequential fold. The engine routes
//! those through an order-preserving parallel collect + sequential fold
//! instead (see `engine.rs`).

use crate::morsel::MorselQueue;
use crate::pool::run_workers;
use pdsm_exec::compiled::{compile_pred, zone_preds, PredKernel};
use pdsm_exec::keys::GroupKey;
use pdsm_exec::{
    agg_tail_update, fig2c_tail_fold, simd, tail_defeats_raw_keys, tail_raw_key, tail_row_passes,
    Accumulator, Overlay,
};
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::{AggExpr, AggFunc};
use pdsm_storage::partition::{F64Col, I32Col, I64Col, U32Col};
use pdsm_storage::{ColId, DataType, Table, Value};
use std::collections::HashMap;

/// Typed per-worker reader feeding one accumulator (the compiled engine's
/// `AggReader`, rebuilt per worker so each borrows its own view).
enum AggReader<'t> {
    I32(I32Col<'t>, Option<ColId>),
    I64(I64Col<'t>, Option<ColId>),
    F64(F64Col<'t>, Option<ColId>),
    CountStar,
    /// Fallback: evaluate the argument expression on the materialized row.
    Expr(Expr),
}

fn reader_for<'t>(table: &'t Table, agg: &AggExpr) -> AggReader<'t> {
    match &agg.arg {
        None => AggReader::CountStar,
        Some(Expr::Col(c)) => {
            let def = &table.schema().columns()[*c];
            let nc = def.nullable.then_some(*c);
            match def.ty {
                DataType::Int32 => AggReader::I32(table.i32_reader(*c), nc),
                DataType::Int64 => AggReader::I64(table.i64_reader(*c), nc),
                DataType::Float64 => AggReader::F64(table.f64_reader(*c), nc),
                DataType::Str => AggReader::Expr(Expr::Col(*c)),
            }
        }
        Some(e) => AggReader::Expr(e.clone()),
    }
}

impl AggReader<'_> {
    /// Feed row `i` (typed readers) or the materialized `row` (expression
    /// fallback) into `acc`, with the compiled engine's NULL handling.
    #[inline]
    fn update(&self, table: &Table, i: usize, row: &[Value], acc: &mut Accumulator) {
        match self {
            AggReader::CountStar => acc.update_i64(1),
            AggReader::I32(r, nc) => {
                if nc.map(|c| table.is_valid(i, c)).unwrap_or(true) {
                    acc.update_i64(r.get(i) as i64);
                }
            }
            AggReader::I64(r, nc) => {
                if nc.map(|c| table.is_valid(i, c)).unwrap_or(true) {
                    acc.update_i64(r.get(i));
                }
            }
            AggReader::F64(r, nc) => {
                if nc.map(|c| table.is_valid(i, c)).unwrap_or(true) {
                    acc.update_f64(r.get(i));
                }
            }
            AggReader::Expr(e) => acc.update(&e.eval(row)),
        }
    }

    /// Whether this reader needs the materialized row.
    fn needs_row(&self) -> bool {
        matches!(self, AggReader::Expr(_))
    }
}

/// The parallel Fig. 2c kernel: one non-nullable `i32` comparison
/// predicate, scalar `sum`s over non-nullable `i32` columns. Each worker
/// runs the compiled engine's tightest loop — one branch plus a handful of
/// adds per tuple, partials in registers — over the morsels it claims.
/// Partial `(hits, sums)` merge by addition, which is exact, so this path
/// is bit-identical to the sequential kernel at any thread count.
fn fig2c_parallel(
    table: &Table,
    overlay: Option<&Overlay<'_>>,
    preds: &[Expr],
    aggs: &[AggExpr],
    threads: usize,
) -> Option<Vec<Vec<Value>>> {
    if preds.len() != 1 {
        return None;
    }
    // Shape probe on the caller thread; workers re-compile their own.
    if !matches!(
        compile_pred(table, &preds[0]),
        PredKernel::I32Cmp { null_col: None, .. }
    ) {
        return None;
    }
    let mut cols = Vec::with_capacity(aggs.len());
    for a in aggs {
        match &a.arg {
            Some(Expr::Col(c)) if a.func == AggFunc::Sum => {
                let def = &table.schema().columns()[*c];
                if def.ty != DataType::Int32 || def.nullable {
                    return None;
                }
                cols.push(*c);
            }
            _ => return None,
        }
    }
    let (queue, scanned, pruned) = MorselQueue::for_table_pruned(table, &zone_preds(table, preds));
    simd::note_blocks(scanned, pruned);
    let threads = threads.min(queue.n_morsels()).max(1);
    let dead: &[bool] = overlay.map(|o| o.dead).unwrap_or(&[]);
    let wide = simd::wide_enabled(simd::mode());
    let partials: Vec<(u64, Vec<i64>)> = run_workers(threads, |_| {
        let (pr, op, pv) = match compile_pred(table, &preds[0]) {
            PredKernel::I32Cmp {
                r,
                op,
                v,
                null_col: None,
                ..
            } => (r, op, v),
            _ => unreachable!("shape checked above"),
        };
        let readers: Vec<I32Col<'_>> = cols.iter().map(|&c| table.i32_reader(c)).collect();
        // The same fused wide kernel the compiled engine runs, one morsel
        // at a time. Integer sums are associative, so per-morsel chunked
        // accumulation merges exactly at the barrier.
        let pred_slice = pr.as_slice();
        let agg_slices: Option<Vec<&[i32]>> = readers.iter().map(|r| r.as_slice()).collect();
        let mut stats = simd::ChunkStats::default();
        let mut sums = vec![0i64; readers.len()];
        let mut hits = 0u64;
        while let Some(m) = queue.claim() {
            if dead.is_empty() {
                if let (Some(ps), Some(ags)) = (pred_slice, agg_slices.as_ref()) {
                    let tails: Vec<&[i32]> = ags.iter().map(|a| &a[m.start..m.end]).collect();
                    hits += simd::fused_filter_sum_i32(
                        &ps[m.start..m.end],
                        op,
                        pv,
                        &tails,
                        &mut sums,
                        wide,
                        &mut stats,
                    );
                    continue;
                }
            }
            stats.scalar += m.len().div_ceil(simd::CHUNK_ROWS) as u64;
            match op {
                pdsm_plan::expr::CmpOp::Eq => {
                    for i in m.start..m.end {
                        if (dead.is_empty() || !dead[i]) && pr.get(i) as i64 == pv {
                            hits += 1;
                            for (s, r) in sums.iter_mut().zip(readers.iter()) {
                                *s += r.get(i) as i64;
                            }
                        }
                    }
                }
                _ => {
                    for i in m.start..m.end {
                        if (dead.is_empty() || !dead[i]) && op.matches((pr.get(i) as i64).cmp(&pv))
                        {
                            hits += 1;
                            for (s, r) in sums.iter_mut().zip(readers.iter()) {
                                *s += r.get(i) as i64;
                            }
                        }
                    }
                }
            }
        }
        stats.flush();
        (hits, sums)
    });
    let mut hits = 0u64;
    let mut sums = vec![0i64; cols.len()];
    for (h, partial) in partials {
        hits += h;
        for (s, p) in sums.iter_mut().zip(partial) {
            *s += p;
        }
    }
    // Integer sums merge exactly, so the (sequential) tail folds in last —
    // the same result the compiled engine's main-then-tail loop produces.
    fig2c_tail_fold(overlay, preds, &cols, &mut sums, &mut hits);
    let row: Vec<Value> = sums
        .into_iter()
        .map(|s| {
            if hits == 0 {
                Value::Null
            } else {
                Value::Int64(s)
            }
        })
        .collect();
    Some(vec![row])
}

/// Scalar (ungrouped) aggregation over a bare scan: every worker folds its
/// morsels into a private accumulator vector; partials merge in worker
/// order. Returns the single result row.
pub(crate) fn scalar_agg_parallel(
    table: &Table,
    overlay: Option<&Overlay<'_>>,
    preds: &[Expr],
    aggs: &[AggExpr],
    needed: &[ColId],
    threads: usize,
) -> Vec<Vec<Value>> {
    if let Some(rows) = fig2c_parallel(table, overlay, preds, aggs, threads) {
        return rows;
    }
    let (queue, scanned, pruned) = MorselQueue::for_table_pruned(table, &zone_preds(table, preds));
    simd::note_blocks(scanned, pruned);
    let threads = threads.min(queue.n_morsels()).max(1);
    let width = table.schema().len();
    let dead: &[bool] = overlay.map(|o| o.dead).unwrap_or(&[]);
    let partials: Vec<Vec<Accumulator>> = run_workers(threads, |_| {
        let kernels: Vec<PredKernel<'_>> = preds.iter().map(|p| compile_pred(table, p)).collect();
        let readers: Vec<AggReader<'_>> = aggs.iter().map(|a| reader_for(table, a)).collect();
        let materialize = readers.iter().any(|r| r.needs_row());
        let mut accs: Vec<Accumulator> = aggs.iter().map(|a| Accumulator::new(a.func)).collect();
        let mut row: Vec<Value> = vec![Value::Null; width];
        while let Some(m) = queue.claim() {
            'rows: for i in m.start..m.end {
                if !dead.is_empty() && dead[i] {
                    continue;
                }
                for k in &kernels {
                    if !k.test(i) {
                        continue 'rows;
                    }
                }
                if materialize {
                    for &c in needed {
                        row[c] = table.get(i, c).expect("in-range");
                    }
                }
                for (acc, rd) in accs.iter_mut().zip(readers.iter()) {
                    rd.update(table, i, &row, acc);
                }
            }
        }
        accs
    });
    let mut merged = partials
        .first()
        .cloned()
        .unwrap_or_else(|| aggs.iter().map(|a| Accumulator::new(a.func)).collect());
    for partial in partials.iter().skip(1) {
        for (acc, p) in merged.iter_mut().zip(partial.iter()) {
            acc.merge(p);
        }
    }
    // Only merge-exact aggregates reach this path, so folding the tail
    // after the barrier matches the sequential main-then-tail fold.
    if let Some(o) = overlay {
        for r in o.live_tail() {
            if !tail_row_passes(preds, r) {
                continue;
            }
            agg_tail_update(aggs, r, &mut merged);
        }
    }
    vec![merged.iter().map(|a| a.finish()).collect()]
}

/// One worker's grouped-aggregation hash table.
type GroupMap = HashMap<GroupKey, (Vec<Value>, Vec<Accumulator>)>;

/// Typed reader over a single-column group key (the compiled engine's
/// grouped fast path, per worker).
enum KeyReader<'t> {
    I32(I32Col<'t>),
    I64(I64Col<'t>),
    Code(U32Col<'t>, ColId),
}

impl KeyReader<'_> {
    fn open<'t>(table: &'t Table, group_by: &[Expr]) -> Option<KeyReader<'t>> {
        let [Expr::Col(key_col)] = group_by else {
            return None;
        };
        let def = &table.schema().columns()[*key_col];
        if def.nullable {
            return None;
        }
        Some(match def.ty {
            DataType::Int32 => KeyReader::I32(table.i32_reader(*key_col)),
            DataType::Int64 => KeyReader::I64(table.i64_reader(*key_col)),
            DataType::Str => KeyReader::Code(table.str_code_reader(*key_col), *key_col),
            DataType::Float64 => return None,
        })
    }

    #[inline]
    fn raw(&self, i: usize) -> u64 {
        match self {
            KeyReader::I32(r) => r.get(i) as i64 as u64,
            KeyReader::I64(r) => r.get(i) as u64,
            KeyReader::Code(r, _) => r.get(i) as u64,
        }
    }

    /// Decode a raw key the way the compiled engine does (Int32 keys come
    /// back as `Value::Int32`, string keys via the dictionary).
    fn decode(&self, table: &Table, raw: u64) -> Value {
        match self {
            KeyReader::I32(_) => Value::Int32(raw as i64 as i32),
            KeyReader::I64(_) => Value::Int64(raw as i64),
            KeyReader::Code(_, c) => Value::Str(
                table
                    .dict(*c)
                    .expect("str col has dict")
                    .decode(raw as u32)
                    .to_owned(),
            ),
        }
    }
}

/// Grouped fast path: a single plain non-nullable key column and plain
/// column (or `count(*)`) aggregates. Workers key their private tables by
/// the raw `u64` — no per-row `Value` construction or byte-key
/// serialization — and partials merge by raw key at the barrier.
fn grouped_fast_parallel(
    table: &Table,
    overlay: Option<&Overlay<'_>>,
    preds: &[Expr],
    group_by: &[Expr],
    aggs: &[AggExpr],
    threads: usize,
) -> Option<Vec<Vec<Value>>> {
    let probe_key = KeyReader::open(table, group_by)?;
    let [Expr::Col(key_col)] = group_by else {
        return None;
    };
    // A tail row keyed by a string the main dictionary has never interned
    // has no raw code; fall back to the generic (GroupKey) path.
    if tail_defeats_raw_keys(table, *key_col, overlay) {
        return None;
    }
    // every aggregate must avoid row materialization
    for a in aggs {
        match &a.arg {
            None => {}
            Some(Expr::Col(c)) if table.schema().columns()[*c].ty != DataType::Str => {}
            _ => return None,
        }
    }
    let (queue, scanned, pruned) = MorselQueue::for_table_pruned(table, &zone_preds(table, preds));
    simd::note_blocks(scanned, pruned);
    let threads = threads.min(queue.n_morsels()).max(1);
    let dead: &[bool] = overlay.map(|o| o.dead).unwrap_or(&[]);
    let partials: Vec<HashMap<u64, Vec<Accumulator>>> = run_workers(threads, |_| {
        let kernels: Vec<PredKernel<'_>> = preds.iter().map(|p| compile_pred(table, p)).collect();
        let readers: Vec<AggReader<'_>> = aggs.iter().map(|a| reader_for(table, a)).collect();
        let key = KeyReader::open(table, group_by).expect("shape checked");
        let mut groups: HashMap<u64, Vec<Accumulator>> = HashMap::new();
        while let Some(m) = queue.claim() {
            'rows: for i in m.start..m.end {
                if !dead.is_empty() && dead[i] {
                    continue;
                }
                for k in &kernels {
                    if !k.test(i) {
                        continue 'rows;
                    }
                }
                let accs = groups
                    .entry(key.raw(i))
                    .or_insert_with(|| aggs.iter().map(|a| Accumulator::new(a.func)).collect());
                for (acc, rd) in accs.iter_mut().zip(readers.iter()) {
                    rd.update(table, i, &[], acc);
                }
            }
        }
        groups
    });
    let mut merged: HashMap<u64, Vec<Accumulator>> = HashMap::new();
    for partial in partials {
        for (raw, accs) in partial {
            match merged.entry(raw) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(accs);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    for (mine, theirs) in o.get_mut().iter_mut().zip(accs.iter()) {
                        mine.merge(theirs);
                    }
                }
            }
        }
    }
    if let Some(o) = overlay {
        for r in o.live_tail() {
            if !tail_row_passes(preds, r) {
                continue;
            }
            let raw = tail_raw_key(table, *key_col, &r.values()[*key_col])
                .expect("tail keys checked before entering the fast path");
            let accs = merged
                .entry(raw)
                .or_insert_with(|| aggs.iter().map(|a| Accumulator::new(a.func)).collect());
            agg_tail_update(aggs, r, accs);
        }
    }
    Some(
        merged
            .into_iter()
            .map(|(raw, accs)| {
                let mut row = vec![probe_key.decode(table, raw)];
                row.extend(accs.iter().map(|a| a.finish()));
                row
            })
            .collect(),
    )
}

/// Grouped aggregation over a bare scan: per-worker hash tables keyed by
/// the engines' canonical [`GroupKey`], merged at the barrier in worker
/// order. Group rows come out in whatever order the merged map iterates —
/// the same contract the sequential engines' hash aggregation has.
pub(crate) fn grouped_agg_parallel(
    table: &Table,
    overlay: Option<&Overlay<'_>>,
    preds: &[Expr],
    group_by: &[Expr],
    aggs: &[AggExpr],
    needed: &[ColId],
    threads: usize,
) -> Vec<Vec<Value>> {
    if let Some(rows) = grouped_fast_parallel(table, overlay, preds, group_by, aggs, threads) {
        return rows;
    }
    let (queue, scanned, pruned) = MorselQueue::for_table_pruned(table, &zone_preds(table, preds));
    simd::note_blocks(scanned, pruned);
    let threads = threads.min(queue.n_morsels()).max(1);
    let width = table.schema().len();
    let dead: &[bool] = overlay.map(|o| o.dead).unwrap_or(&[]);
    let partials: Vec<GroupMap> = run_workers(threads, |_| {
        let kernels: Vec<PredKernel<'_>> = preds.iter().map(|p| compile_pred(table, p)).collect();
        let readers: Vec<AggReader<'_>> = aggs.iter().map(|a| reader_for(table, a)).collect();
        let mut groups: GroupMap = HashMap::new();
        let mut row: Vec<Value> = vec![Value::Null; width];
        while let Some(m) = queue.claim() {
            'rows: for i in m.start..m.end {
                if !dead.is_empty() && dead[i] {
                    continue;
                }
                for k in &kernels {
                    if !k.test(i) {
                        continue 'rows;
                    }
                }
                // group keys are expressions, so the row is always needed
                for &c in needed {
                    row[c] = table.get(i, c).expect("in-range");
                }
                let key_vals: Vec<Value> = group_by.iter().map(|g| g.eval(&row[..])).collect();
                let key = GroupKey::of(&key_vals);
                let entry = groups.entry(key).or_insert_with(|| {
                    (
                        key_vals.clone(),
                        aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
                    )
                });
                for (acc, rd) in entry.1.iter_mut().zip(readers.iter()) {
                    rd.update(table, i, &row, acc);
                }
            }
        }
        groups
    });
    let mut merged: GroupMap = HashMap::new();
    for partial in partials {
        for (key, (key_vals, accs)) in partial {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((key_vals, accs));
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    for (mine, theirs) in o.get_mut().1.iter_mut().zip(accs.iter()) {
                        mine.merge(theirs);
                    }
                }
            }
        }
    }
    if let Some(o) = overlay {
        for r in o.live_tail() {
            if !tail_row_passes(preds, r) {
                continue;
            }
            let key_vals: Vec<Value> = group_by.iter().map(|g| g.eval(r.values())).collect();
            let key = GroupKey::of(&key_vals);
            let entry = merged.entry(key).or_insert_with(|| {
                (
                    key_vals.clone(),
                    aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
                )
            });
            agg_tail_update(aggs, r, &mut entry.1);
        }
    }
    if merged.is_empty() && group_by.is_empty() {
        let accs: Vec<Accumulator> = aggs.iter().map(|a| Accumulator::new(a.func)).collect();
        return vec![accs.iter().map(|a| a.finish()).collect()];
    }
    merged
        .into_values()
        .map(|(mut key_vals, accs)| {
            key_vals.extend(accs.iter().map(|a| a.finish()));
            key_vals
        })
        .collect()
}

/// Sequential fold of already-ordered rows into an aggregation sink —
/// the tail of the ordered-collect path for float aggregates and stepped
/// pipelines. Identical to the compiled engine's `Sink::Agg`.
pub(crate) fn fold_rows(
    rows: Vec<Vec<Value>>,
    group_by: &[Expr],
    aggs: &[AggExpr],
) -> Vec<Vec<Value>> {
    let mut groups: GroupMap = HashMap::new();
    for row in rows {
        let key_vals: Vec<Value> = group_by.iter().map(|g| g.eval(&row[..])).collect();
        let key = GroupKey::of(&key_vals);
        let entry = groups.entry(key).or_insert_with(|| {
            (
                key_vals.clone(),
                aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
            )
        });
        for (acc, spec) in entry.1.iter_mut().zip(aggs.iter()) {
            match &spec.arg {
                Some(e) => acc.update(&e.eval(&row[..])),
                None => acc.update(&Value::Int32(1)),
            }
        }
    }
    if groups.is_empty() && group_by.is_empty() {
        let accs: Vec<Accumulator> = aggs.iter().map(|a| Accumulator::new(a.func)).collect();
        return vec![accs.iter().map(|a| a.finish()).collect()];
    }
    groups
        .into_values()
        .map(|(mut key_vals, accs)| {
            key_vals.extend(accs.iter().map(|a| a.finish()));
            key_vals
        })
        .collect()
}

/// True when merging partials of `agg` could reassociate float addition
/// and so break this engine's bit-identical-to-compiled guarantee: float
/// inputs, or `avg` (which always finishes through the float running sum,
/// where partial int sums beyond 2^53 round order-dependently). Such
/// aggregates take the ordered collect+fold path instead. Count never
/// inspects magnitudes and integer sums finish through the exact integer
/// sum, so those merge freely.
pub(crate) fn float_sensitive(table: &Table, agg: &AggExpr) -> bool {
    if agg.func == AggFunc::Count {
        return false;
    }
    if agg.func == AggFunc::Avg {
        return true;
    }
    let Some(arg) = &agg.arg else { return false };
    expr_touches_float(table, arg)
}

fn expr_touches_float(table: &Table, e: &Expr) -> bool {
    if e.columns()
        .iter()
        .any(|&c| table.schema().columns()[c].ty == DataType::Float64)
    {
        return true;
    }
    contains_float_lit(e)
}

fn contains_float_lit(e: &Expr) -> bool {
    match e {
        Expr::Lit(Value::Float64(_)) => true,
        Expr::Lit(_) | Expr::Col(_) => false,
        Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
            contains_float_lit(left) || contains_float_lit(right)
        }
        Expr::And(a, b) | Expr::Or(a, b) => contains_float_lit(a) || contains_float_lit(b),
        Expr::Not(a) | Expr::IsNull(a) => contains_float_lit(a),
        Expr::Like { expr, .. } => contains_float_lit(expr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_storage::{ColumnDef, Schema};

    fn table(n: usize) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int32),
                ColumnDef::new("v", DataType::Int64),
                ColumnDef::nullable("f", DataType::Float64),
            ]),
        );
        for i in 0..n {
            t.insert(&[
                Value::Int32((i % 5) as i32),
                Value::Int64(i as i64),
                if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::Float64(i as f64 / 4.0)
                },
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn scalar_partials_merge_exactly() {
        let t = table(30_000);
        let aggs = vec![
            AggExpr::count_star(),
            AggExpr::new(AggFunc::Sum, Expr::col(1)),
            AggExpr::new(AggFunc::Min, Expr::col(1)),
            AggExpr::new(AggFunc::Max, Expr::col(1)),
        ];
        let preds = vec![Expr::col(0).eq(Expr::lit(2))];
        let one = scalar_agg_parallel(&t, None, &preds, &aggs, &[0, 1], 1);
        for threads in [2, 4, 8] {
            let many = scalar_agg_parallel(&t, None, &preds, &aggs, &[0, 1], threads);
            assert_eq!(one, many, "threads={threads}");
        }
        assert_eq!(one[0][0], Value::Int64(6_000));
    }

    #[test]
    fn grouped_partials_merge_exactly() {
        let t = table(10_000);
        let aggs = vec![
            AggExpr::count_star(),
            AggExpr::new(AggFunc::Sum, Expr::col(1)),
        ];
        let group = vec![Expr::col(0)];
        let mut one = grouped_agg_parallel(&t, None, &[], &group, &aggs, &[0, 1], 1);
        for threads in [2, 4] {
            let mut many = grouped_agg_parallel(&t, None, &[], &group, &aggs, &[0, 1], threads);
            one.sort_by_key(|r| format!("{r:?}"));
            many.sort_by_key(|r| format!("{r:?}"));
            assert_eq!(one, many, "threads={threads}");
        }
    }

    #[test]
    fn float_sensitivity_detection() {
        let t = table(1);
        assert!(float_sensitive(
            &t,
            &AggExpr::new(AggFunc::Sum, Expr::col(2))
        ));
        assert!(float_sensitive(
            &t,
            &AggExpr::new(AggFunc::Sum, Expr::col(1).mul(Expr::lit(0.5)))
        ));
        assert!(!float_sensitive(
            &t,
            &AggExpr::new(AggFunc::Sum, Expr::col(1))
        ));
        assert!(!float_sensitive(
            &t,
            &AggExpr::new(AggFunc::Count, Expr::col(2))
        ));
        assert!(!float_sensitive(&t, &AggExpr::count_star()));
        // avg always finishes through the float running sum, even over ints
        assert!(float_sensitive(
            &t,
            &AggExpr::new(AggFunc::Avg, Expr::col(1))
        ));
    }

    #[test]
    fn empty_scan_yields_null_row() {
        let t = table(0);
        let aggs = vec![
            AggExpr::count_star(),
            AggExpr::new(AggFunc::Sum, Expr::col(1)),
        ];
        let out = scalar_agg_parallel(&t, None, &[], &aggs, &[1], 4);
        assert_eq!(out, vec![vec![Value::Int64(0), Value::Null]]);
    }
}
