//! # pdsm-par — morsel-driven parallel execution
//!
//! The paper makes a single core CPU- and cache-efficient; this crate makes
//! the engine use *all* cores without giving any of that back. It follows
//! the morsel-driven design (Leis et al., "Morsel-Driven Parallelism"),
//! which composes naturally with PDSM storage:
//!
//! * **Morsels** ([`morsel`]) — each table slices into contiguous row
//!   ranges sized by the table's per-row byte footprint, so one morsel's
//!   working set fits in L2 under any layout (partitions are fixed-stride,
//!   so a row range is a contiguous byte range in every partition). A
//!   single atomic cursor dispenses morsels; claiming is wait-free and
//!   skew self-balances.
//! * **Workers** ([`pool`]) — a fixed pool of scoped `std::thread` workers
//!   (no runtime dependencies). Each worker compiles its own predicate
//!   kernels from `pdsm-exec`'s compiled engine — the same typed,
//!   branch-predictable fused loops the paper's argument rests on — and
//!   runs them morsel at a time.
//! * **Pipelines** ([`pipeline`]) — scan/select/project (and join-probe)
//!   pipelines buffer output per morsel and stitch buffers in morsel
//!   order, so parallel execution returns rows in **exactly** the
//!   sequential scan order: byte-identical results at any thread count.
//! * **Aggregation** ([`agg`]) — workers hold thread-local partial states
//!   (accumulator vectors, or per-worker hash tables for grouped
//!   aggregation) merged at the pipeline barrier via
//!   [`pdsm_exec::Accumulator::merge`]. Counts, integer sums and min/max
//!   merge exactly; float-summing aggregates and `avg` instead take an
//!   order-preserving collect + sequential fold so their accumulation
//!   order — and therefore every output bit — matches the compiled engine.
//!
//! ## Using it
//!
//! [`ParallelEngine`] implements `pdsm_exec::Engine` and is registered in
//! `pdsm-core` as `EngineKind::Parallel`, so it participates in every
//! differential test that iterates `EngineKind::all()`:
//!
//! ```
//! use pdsm_par::ParallelEngine;
//! use pdsm_exec::Engine;
//! # use pdsm_plan::builder::QueryBuilder;
//! # use pdsm_plan::expr::Expr;
//! # use pdsm_storage::{ColumnDef, DataType, Schema, Table, Value};
//! # let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("x", DataType::Int32)]));
//! # for i in 0..100 { t.insert(&[Value::Int32(i)]).unwrap(); }
//! # let mut db = std::collections::HashMap::new();
//! # db.insert("t".to_string(), t);
//! let plan = QueryBuilder::scan("t").filter(Expr::col(0).lt(Expr::lit(50))).build();
//! let auto = ParallelEngine::new();            // threads from PDSM_THREADS or all cores
//! let four = ParallelEngine::with_threads(4);  // pinned worker count
//! assert_eq!(auto.execute(&plan, &db).unwrap().len(), 50);
//! assert_eq!(four.execute(&plan, &db).unwrap().len(), 50);
//! ```
//!
//! ## Workspace layout
//!
//! This crate sits beside the sequential engines, not above them:
//!
//! ```text
//! pdsm-storage ── tables, partitions, typed readers
//!      │
//! pdsm-plan ───── logical plans, expressions
//!      │
//! pdsm-exec ───── Volcano / bulk / vectorized / compiled engines,
//!      │          predicate kernels (shared with this crate), Accumulator
//! pdsm-par ────── morsels, worker pool, parallel pipelines   ← you are here
//!      │
//! pdsm-core ───── Database catalog, EngineKind::{Volcano,Bulk,Compiled,Parallel}
//! ```
//!
//! The scaling story is measured by `pdsm-bench`'s `parallel` criterion
//! bench and the `fig_scaling` binary (rows/sec vs worker count on the
//! Fig. 3 microbenchmark query).

pub mod agg;
pub mod engine;
pub mod morsel;
pub mod pipeline;
pub mod pool;

pub use engine::ParallelEngine;
pub use morsel::{Morsel, MorselQueue};
pub use pool::default_threads;
