//! The worker pool: scoped `std::thread` workers, no dependencies.
//!
//! Workers are spawned per pipeline (not kept hot across queries): scoped
//! threads let workers borrow the table, the compiled kernels' readers and
//! the shared [`crate::morsel::MorselQueue`] directly, with the scope itself
//! acting as the pipeline barrier. Spawn cost (~10 µs/thread) is noise
//! against the scans this engine exists for; a persistent pool would buy
//! nothing until sub-millisecond queries matter.

/// Resolve the worker count: an explicit engine setting wins, then the
/// `PDSM_THREADS` environment variable, then the machine's parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PDSM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `worker(worker_id)` on `threads` scoped workers and return their
/// results in worker-id order (the deterministic merge order for partial
/// aggregates). `threads == 1` runs inline on the caller's thread — the
/// sequential fold, bit-for-bit.
pub fn run_workers<R, W>(threads: usize, worker: W) -> Vec<R>
where
    R: Send,
    W: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        return vec![worker(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|id| {
                let worker = &worker;
                scope.spawn(move || worker(id))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morsel::MorselQueue;

    #[test]
    fn results_arrive_in_worker_order() {
        let out = run_workers(8, |id| id * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn workers_share_a_queue() {
        let q = MorselQueue::new(50_000, 128);
        let partial_sums = run_workers(4, |_| {
            let mut local = 0u64;
            while let Some(m) = q.claim() {
                for r in m.start..m.end {
                    local += r as u64;
                }
            }
            local
        });
        let total: u64 = partial_sums.iter().sum();
        assert_eq!(total, (0..50_000u64).sum());
    }

    #[test]
    fn single_thread_runs_inline() {
        let caller = std::thread::current().id();
        let out = run_workers(1, |_| std::thread::current().id());
        assert_eq!(out, vec![caller]);
    }
}
