//! Morsels: cache-sized row ranges claimed dynamically by workers.
//!
//! A morsel is a contiguous range of row ids within one table. Because PDSM
//! partitions are fixed-stride arrays, a row range addresses a contiguous
//! byte range *in every partition* — a morsel's working set is
//! `rows × Σ stride(partition)` bytes regardless of layout, so sizing
//! morsels by bytes keeps each unit of work cache-resident whether the
//! table is row-, column- or hybrid-partitioned.
//!
//! Dispatch is a single atomic cursor ([`MorselQueue::claim`]): workers pull
//! the next morsel when they finish their current one, so skew (e.g. a
//! selective predicate matching only one region) self-balances without any
//! static assignment.

use pdsm_storage::Table;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Target working-set bytes per morsel. Half a typical L2 so the scanned
/// fragments and the worker's output both stay cache-resident.
pub const MORSEL_TARGET_BYTES: usize = 512 * 1024;

/// Minimum rows per morsel: below this, claim overhead dominates.
pub const MIN_MORSEL_ROWS: usize = 1_024;

/// Maximum rows per morsel: above this, dynamic balancing degrades.
pub const MAX_MORSEL_ROWS: usize = 1 << 20;

/// A claimed unit of scan work: rows `start..end` of one table.
/// `index` is the morsel's position in scan order, used to stitch
/// per-morsel outputs back into the sequential row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    pub index: usize,
    pub start: usize,
    pub end: usize,
}

impl Morsel {
    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True iff the morsel covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Rows per morsel for `table`, from its per-row footprint across all
/// partitions (clamped to [`MIN_MORSEL_ROWS`]..=[`MAX_MORSEL_ROWS`]).
pub fn rows_per_morsel(table: &Table) -> usize {
    let bytes_per_row: usize = table.partitions().iter().map(|p| p.stride()).sum();
    (MORSEL_TARGET_BYTES / bytes_per_row.max(1)).clamp(MIN_MORSEL_ROWS, MAX_MORSEL_ROWS)
}

/// A lock-free dispenser of morsels over `0..n_rows`.
pub struct MorselQueue {
    cursor: AtomicUsize,
    n_rows: usize,
    rows_per: usize,
}

impl MorselQueue {
    /// Queue over `n_rows` rows in chunks of `rows_per`.
    pub fn new(n_rows: usize, rows_per: usize) -> Self {
        MorselQueue {
            cursor: AtomicUsize::new(0),
            n_rows,
            rows_per: rows_per.max(1),
        }
    }

    /// Queue sized for `table` via [`rows_per_morsel`].
    pub fn for_table(table: &Table) -> Self {
        Self::new(table.len(), rows_per_morsel(table))
    }

    /// Total number of morsels this queue dispenses.
    pub fn n_morsels(&self) -> usize {
        self.n_rows.div_ceil(self.rows_per)
    }

    /// Claim the next morsel, or `None` when the scan is exhausted.
    /// Safe to call from any number of threads; each morsel is handed out
    /// exactly once.
    pub fn claim(&self) -> Option<Morsel> {
        let index = self.cursor.fetch_add(1, Ordering::Relaxed);
        let start = index.checked_mul(self.rows_per)?;
        if start >= self.n_rows {
            return None;
        }
        Some(Morsel {
            index,
            start,
            end: (start + self.rows_per).min(self.n_rows),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_all_rows_exactly_once() {
        let q = MorselQueue::new(10_500, 1_000);
        assert_eq!(q.n_morsels(), 11);
        let mut seen = vec![false; 10_500];
        while let Some(m) = q.claim() {
            assert!(!m.is_empty());
            for (r, flag) in seen.iter_mut().enumerate().take(m.end).skip(m.start) {
                assert!(!*flag, "row {r} dispensed twice");
                *flag = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all rows covered");
        assert!(q.claim().is_none(), "exhausted queue stays exhausted");
    }

    #[test]
    fn empty_table_yields_no_morsels() {
        let q = MorselQueue::new(0, 4_096);
        assert_eq!(q.n_morsels(), 0);
        assert!(q.claim().is_none());
    }

    #[test]
    fn concurrent_claims_partition_the_scan() {
        let q = std::sync::Arc::new(MorselQueue::new(100_000, 64));
        let counted: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let q = std::sync::Arc::clone(&q);
                    s.spawn(move || {
                        let mut rows = 0;
                        while let Some(m) = q.claim() {
                            rows += m.len();
                        }
                        rows
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(counted, 100_000);
    }
}
