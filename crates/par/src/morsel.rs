//! Morsels: cache-sized row ranges claimed dynamically by workers.
//!
//! A morsel is a contiguous range of row ids within one table. Because PDSM
//! partitions are fixed-stride arrays, a row range addresses a contiguous
//! byte range *in every partition* — a morsel's working set is
//! `rows × Σ stride(partition)` bytes regardless of layout, so sizing
//! morsels by bytes keeps each unit of work cache-resident whether the
//! table is row-, column- or hybrid-partitioned.
//!
//! Dispatch is a single atomic cursor ([`MorselQueue::claim`]): workers pull
//! the next morsel when they finish their current one, so skew (e.g. a
//! selective predicate matching only one region) self-balances without any
//! static assignment.

use pdsm_storage::{Table, ZonePred, ZONE_BLOCK_ROWS};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Target working-set bytes per morsel. Half a typical L2 so the scanned
/// fragments and the worker's output both stay cache-resident.
pub const MORSEL_TARGET_BYTES: usize = 512 * 1024;

/// Minimum rows per morsel: below this, claim overhead dominates.
pub const MIN_MORSEL_ROWS: usize = 1_024;

/// Maximum rows per morsel: above this, dynamic balancing degrades.
pub const MAX_MORSEL_ROWS: usize = 1 << 20;

/// A claimed unit of scan work: rows `start..end` of one table.
/// `index` is the morsel's position in scan order, used to stitch
/// per-morsel outputs back into the sequential row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    pub index: usize,
    pub start: usize,
    pub end: usize,
}

impl Morsel {
    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True iff the morsel covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Rows per morsel for `table`, from its per-row footprint across all
/// partitions (clamped to [`MIN_MORSEL_ROWS`]..=[`MAX_MORSEL_ROWS`]).
pub fn rows_per_morsel(table: &Table) -> usize {
    let bytes_per_row: usize = table.partitions().iter().map(|p| p.stride()).sum();
    (MORSEL_TARGET_BYTES / bytes_per_row.max(1)).clamp(MIN_MORSEL_ROWS, MAX_MORSEL_ROWS)
}

/// A lock-free dispenser of morsels over `0..n_rows`. Built with
/// [`MorselQueue::for_table_pruned`], morsels whose zone blocks are *all*
/// refuted by the scan predicates are never handed out — pruning happens
/// at dispatch, before any worker touches the morsel's memory.
pub struct MorselQueue {
    cursor: AtomicUsize,
    n_rows: usize,
    rows_per: usize,
    /// `pruned[i]` = morsel `i` is fully refuted (empty when unpruned).
    pruned: Vec<bool>,
}

impl MorselQueue {
    /// Queue over `n_rows` rows in chunks of `rows_per`.
    pub fn new(n_rows: usize, rows_per: usize) -> Self {
        MorselQueue {
            cursor: AtomicUsize::new(0),
            n_rows,
            rows_per: rows_per.max(1),
            pruned: Vec::new(),
        }
    }

    /// Queue sized for `table` via [`rows_per_morsel`].
    pub fn for_table(table: &Table) -> Self {
        Self::new(table.len(), rows_per_morsel(table))
    }

    /// Queue sized for `table` that skips morsels refuted by `zpreds` via
    /// the table's zone map. A morsel is skipped only when **every** zone
    /// block it overlaps is refuted, so skipping never drops a surviving
    /// row. Returns the queue plus `(scanned, pruned)` zone-block counts
    /// for the scan counters (each block attributed to the morsel holding
    /// its first row).
    pub fn for_table_pruned(table: &Table, zpreds: &[ZonePred]) -> (Self, u64, u64) {
        let mut q = Self::for_table(table);
        if zpreds.is_empty() || table.is_empty() {
            return (q, 0, 0);
        }
        let zones = table.zone_map();
        let refuted = zones.pruned_blocks(zpreds);
        let n_blocks = refuted.len() as u64;
        let mut pruned_blocks = 0u64;
        let mut any = false;
        let pruned: Vec<bool> = (0..q.n_morsels())
            .map(|m| {
                let start = m * q.rows_per;
                let end = (start + q.rows_per).min(q.n_rows);
                let b0 = start / ZONE_BLOCK_ROWS;
                let b1 = (end - 1) / ZONE_BLOCK_ROWS;
                let skip = refuted[b0..=b1].iter().all(|&r| r);
                if skip {
                    any = true;
                    // blocks starting inside this morsel
                    let first = if b0 * ZONE_BLOCK_ROWS >= start {
                        b0
                    } else {
                        b0 + 1
                    };
                    pruned_blocks += (b1 + 1 - first) as u64;
                }
                skip
            })
            .collect();
        if any {
            q.pruned = pruned;
        }
        (q, n_blocks - pruned_blocks, pruned_blocks)
    }

    /// Total number of morsels this queue dispenses (pruned ones included —
    /// they occupy an index so stitched output order is stable).
    pub fn n_morsels(&self) -> usize {
        self.n_rows.div_ceil(self.rows_per)
    }

    /// Claim the next unpruned morsel, or `None` when the scan is
    /// exhausted. Safe to call from any number of threads; each morsel is
    /// handed out exactly once.
    pub fn claim(&self) -> Option<Morsel> {
        loop {
            let index = self.cursor.fetch_add(1, Ordering::Relaxed);
            let start = index.checked_mul(self.rows_per)?;
            if start >= self.n_rows {
                return None;
            }
            if self.pruned.get(index).copied().unwrap_or(false) {
                continue;
            }
            return Some(Morsel {
                index,
                start,
                end: (start + self.rows_per).min(self.n_rows),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_all_rows_exactly_once() {
        let q = MorselQueue::new(10_500, 1_000);
        assert_eq!(q.n_morsels(), 11);
        let mut seen = vec![false; 10_500];
        while let Some(m) = q.claim() {
            assert!(!m.is_empty());
            for (r, flag) in seen.iter_mut().enumerate().take(m.end).skip(m.start) {
                assert!(!*flag, "row {r} dispensed twice");
                *flag = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all rows covered");
        assert!(q.claim().is_none(), "exhausted queue stays exhausted");
    }

    #[test]
    fn empty_table_yields_no_morsels() {
        let q = MorselQueue::new(0, 4_096);
        assert_eq!(q.n_morsels(), 0);
        assert!(q.claim().is_none());
    }

    #[test]
    fn pruned_morsels_are_never_dispensed() {
        use pdsm_storage::{ColumnDef, DataType, Schema, Value, ZoneOp};
        let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("a", DataType::Int32)]));
        const N: usize = 1_000_000;
        for i in 0..N {
            t.insert(&[Value::Int32(i as i32)]).unwrap();
        }
        // a >= N-1000: only the last morsel can hold matches.
        let zp = vec![ZonePred::I64Cmp {
            col: 0,
            op: ZoneOp::Ge,
            v: (N - 1_000) as i64,
        }];
        let (q, scanned, pruned) = MorselQueue::for_table_pruned(&t, &zp);
        assert!(pruned > 0, "clustered predicate must prune blocks");
        assert_eq!(
            scanned + pruned,
            (N as u64).div_ceil(ZONE_BLOCK_ROWS as u64)
        );
        let mut rows = Vec::new();
        while let Some(m) = q.claim() {
            rows.extend(m.start..m.end);
        }
        // every potentially-matching row is still dispensed
        assert!(rows.contains(&(N - 1_000)));
        assert!(rows.contains(&(N - 1)));
        // and refuted regions are skipped
        assert!(!rows.contains(&0));

        // unpruned queue (no zone preds) dispenses everything
        let (q2, s2, p2) = MorselQueue::for_table_pruned(&t, &[]);
        assert_eq!((s2, p2), (0, 0));
        let mut n = 0;
        while let Some(m) = q2.claim() {
            n += m.len();
        }
        assert_eq!(n, N);
    }

    #[test]
    fn concurrent_claims_partition_the_scan() {
        let q = std::sync::Arc::new(MorselQueue::new(100_000, 64));
        let counted: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let q = std::sync::Arc::clone(&q);
                    s.spawn(move || {
                        let mut rows = 0;
                        while let Some(m) = q.claim() {
                            rows += m.len();
                        }
                        rows
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(counted, 100_000);
    }
}
