//! The manifest: the one file whose atomic replacement commits a
//! checkpoint. It maps table names to their current durable generation;
//! everything else on disk (main blobs, WAL files) is named by
//! generation, so flipping the manifest entry is the single commit point
//! — a crash on either side of the rename recovers a consistent state.

use crate::blob::write_atomic;
use pdsm_storage::crc32;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

const MAGIC: &[u8; 8] = b"PDSMMAN1";

/// The durable table → generation map. Interior-mutable and shared
/// (`Arc<Manifest>`) across all tables of one database; [`Manifest::set`]
/// serializes writers internally and rewrites the file atomically.
pub struct Manifest {
    path: PathBuf,
    tmp: PathBuf,
    entries: Mutex<BTreeMap<String, u64>>,
}

impl Manifest {
    /// Load the manifest at `path`, or start empty if the file does not
    /// exist. A file that exists but fails its checksum is a hard error:
    /// the manifest is always written atomically, so corruption here is
    /// real damage, not a crash artifact.
    pub fn open(path: PathBuf) -> std::io::Result<Manifest> {
        let entries = match std::fs::read(&path) {
            Ok(bytes) => decode(&bytes).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("corrupt manifest at {}", path.display()),
                )
            })?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => return Err(e),
        };
        let tmp = path.with_extension("tmp");
        Ok(Manifest {
            path,
            tmp,
            entries: Mutex::new(entries),
        })
    }

    /// Current durable generation of `table`, if any.
    pub fn get(&self, table: &str) -> Option<u64> {
        self.lock().get(table).copied()
    }

    /// Every `(table, generation)` pair, name-ordered.
    pub fn tables(&self) -> Vec<(String, u64)> {
        self.lock().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Commit `table` at `generation`: update the map and atomically
    /// rewrite the file. When this returns, the checkpoint is durable.
    pub fn set(&self, table: &str, generation: u64) -> std::io::Result<()> {
        let mut g = self.lock();
        g.insert(table.to_string(), generation);
        let bytes = encode(&g);
        // Hold the map lock across the file write so concurrent `set`s
        // cannot persist an older map over a newer one.
        write_atomic(&self.path, &self.tmp, &bytes)
    }

    /// Drop `table` from the manifest (table deletion; currently unused
    /// by the engine but kept symmetric).
    pub fn remove(&self, table: &str) -> std::io::Result<()> {
        let mut g = self.lock();
        g.remove(table);
        let bytes = encode(&g);
        write_atomic(&self.path, &self.tmp, &bytes)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, u64>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn encode(entries: &BTreeMap<String, u64>) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, gen) in entries {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&gen.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

fn decode(bytes: &[u8]) -> Option<BTreeMap<String, u64>> {
    if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().ok()?);
    if crc32(body) != want {
        return None;
    }
    let mut pos = MAGIC.len();
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let s = body.get(*pos..*pos + n)?;
        *pos += n;
        Some(s)
    };
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    let mut entries = BTreeMap::new();
    for _ in 0..count {
        let nlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let name = String::from_utf8(take(&mut pos, nlen)?.to_vec()).ok()?;
        let gen = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        entries.insert(name, gen);
    }
    (pos == body.len()).then_some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pdsm-man-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn set_get_survives_reopen() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("MANIFEST");
        {
            let m = Manifest::open(path.clone()).unwrap();
            assert!(m.tables().is_empty());
            m.set("orders", 3).unwrap();
            m.set("lineitem", 1).unwrap();
            m.set("orders", 4).unwrap();
        }
        let m = Manifest::open(path).unwrap();
        assert_eq!(m.get("orders"), Some(4));
        assert_eq!(m.get("lineitem"), Some(1));
        assert_eq!(
            m.tables(),
            vec![("lineitem".to_string(), 1), ("orders".to_string(), 4)]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_a_hard_error() {
        let dir = tmpdir("corrupt");
        let path = dir.join("MANIFEST");
        {
            let m = Manifest::open(path.clone()).unwrap();
            m.set("t", 1).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(Manifest::open(path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
