//! The per-table write-ahead log: an append-only file of framed records
//! (see [`crate::record`]) with three durability disciplines.
//!
//! Appends always go straight to the `File` via `write_all` — there is no
//! user-space buffering, so a SIGKILL can never lose an acknowledged
//! append (only an OS crash can, bounded by the fsync policy):
//!
//! * [`FsyncMode::Always`] — fsync inline before the append returns.
//!   Every acknowledged write survives power loss; latency = disk sync.
//! * [`FsyncMode::Batch`] — the append returns after `write_all`; a
//!   background flusher coalesces outstanding appends into one fsync
//!   (group commit). Process crash loses nothing; power loss is bounded
//!   by one coalesce window. This keeps the µs write path.
//! * [`FsyncMode::Group`] — group-commit *acknowledgement*: writes
//!   coalesce into one fsync exactly as in Batch, but each append blocks
//!   until the group fsync covering it lands. Acknowledged writes survive
//!   power loss (like Always) at Batch's fsync rate; latency = one
//!   coalesce window.
//! * [`FsyncMode::Off`] — never fsync (tests, bulk loads).
//!
//! The flusher syncs through a cloned file handle *outside* the append
//! lock, so appenders never wait behind a disk flush.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// When the WAL calls fsync. Parsed from `PDSM_FSYNC`
/// (`always` | `batch` | `group` | `off`); the default is `batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncMode {
    /// fsync before every append returns.
    Always,
    /// Group commit: a background flusher coalesces appends into one
    /// fsync; appends return immediately after the write.
    #[default]
    Batch,
    /// Group-commit *acknowledgement*: appends coalesce into one fsync
    /// exactly as in Batch, but each append blocks until the fsync
    /// covering it has landed — `Always` durability at `Batch` fsync
    /// rates.
    Group,
    /// Never fsync.
    Off,
}

impl FsyncMode {
    /// Read `PDSM_FSYNC` (`always` | `batch` | `group` | `off`),
    /// defaulting to [`FsyncMode::Batch`].
    pub fn from_env() -> Self {
        match std::env::var("PDSM_FSYNC").ok().as_deref() {
            Some("always") => FsyncMode::Always,
            Some("group") => FsyncMode::Group,
            Some("off") => FsyncMode::Off,
            _ => FsyncMode::Batch,
        }
    }
}

/// Counters one WAL has accumulated. Group-commit effectiveness is
/// `appends_synced / fsyncs`; [`crate::wal::WalStats::max_group`] is the
/// largest single group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Record bytes appended.
    pub bytes_appended: u64,
    /// Records appended.
    pub appends: u64,
    /// fsync calls issued.
    pub fsyncs: u64,
    /// Appends covered by an fsync so far (Batch mode; `appends` in
    /// Always mode).
    pub appends_synced: u64,
    /// Largest number of appends one fsync covered.
    pub max_group: u64,
}

impl WalStats {
    /// Fold another WAL's counters into this one (for per-database
    /// aggregation).
    pub fn merge(&mut self, other: &WalStats) {
        self.bytes_appended += other.bytes_appended;
        self.appends += other.appends;
        self.fsyncs += other.fsyncs;
        self.appends_synced += other.appends_synced;
        self.max_group = self.max_group.max(other.max_group);
    }
}

struct WalInner {
    file: File,
    len: u64,
    /// Appends since the last fsync (what the next group will cover).
    pending: u64,
    /// File length covered by a completed fsync (Group-mode ack point).
    synced_len: u64,
    /// A flusher fsync failed; Group-mode appenders must error, not hang.
    sync_failed: bool,
    stats: WalStats,
    stop: bool,
}

struct WalShared {
    inner: Mutex<WalInner>,
    /// Signalled on append (work for the flusher) and on stop.
    work: Condvar,
    /// Signalled when `synced_len` advances (Group-mode acks).
    synced: Condvar,
}

/// One append-only log file. Cheap to clone-share via `Arc`; dropped, it
/// joins its flusher (Batch mode) after a final fsync.
pub struct Wal {
    shared: Arc<WalShared>,
    mode: FsyncMode,
    flusher: Option<JoinHandle<()>>,
}

impl Wal {
    /// Create (or truncate) the log at `path`.
    pub fn create(path: &Path, mode: FsyncMode) -> std::io::Result<Wal> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Wal::from_file(file, 0, mode))
    }

    /// Open an existing log for appending, trusting exactly `valid_len`
    /// bytes: anything past it (a torn tail found during recovery) is
    /// truncated away first.
    pub fn open_append(path: &Path, valid_len: u64, mode: FsyncMode) -> std::io::Result<Wal> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::Start(valid_len))?;
        Ok(Wal::from_file(file, valid_len, mode))
    }

    fn from_file(file: File, len: u64, mode: FsyncMode) -> Wal {
        let shared = Arc::new(WalShared {
            inner: Mutex::new(WalInner {
                file,
                len,
                pending: 0,
                synced_len: len,
                sync_failed: false,
                stats: WalStats::default(),
                stop: false,
            }),
            work: Condvar::new(),
            synced: Condvar::new(),
        });
        let flusher = matches!(mode, FsyncMode::Batch | FsyncMode::Group).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pdsm-wal-flush".into())
                .spawn(move || flusher_loop(&shared))
                .expect("spawn wal flusher")
        });
        Wal {
            shared,
            mode,
            flusher,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalInner> {
        self.shared.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append one framed record. The bytes hit the file (not a user-space
    /// buffer) before this returns; whether they are also fsynced depends
    /// on the mode.
    pub fn append(&self, record: &[u8]) -> std::io::Result<()> {
        let mut g = self.lock();
        g.file.write_all(record)?;
        g.len += record.len() as u64;
        g.stats.bytes_appended += record.len() as u64;
        g.stats.appends += 1;
        match self.mode {
            FsyncMode::Always => {
                g.file.sync_data()?;
                g.stats.fsyncs += 1;
                g.stats.appends_synced += 1;
                g.stats.max_group = g.stats.max_group.max(1);
            }
            FsyncMode::Batch => {
                g.pending += 1;
                let first = g.pending == 1;
                drop(g);
                // Only the append that opens a group needs to wake the
                // flusher; later appends just join the pending group.
                if first {
                    self.shared.work.notify_one();
                }
            }
            FsyncMode::Group => {
                g.pending += 1;
                let my_len = g.len;
                if g.pending == 1 {
                    self.shared.work.notify_one();
                }
                // Ack only once the group fsync covering this record has
                // landed. Everyone who raced into the same coalesce window
                // wakes together off a single fsync.
                while g.synced_len < my_len && !g.sync_failed && !g.stop {
                    g = self
                        .shared
                        .synced
                        .wait(g)
                        .unwrap_or_else(|e| e.into_inner());
                }
                if g.synced_len < my_len {
                    return Err(std::io::Error::other("wal group fsync failed"));
                }
            }
            FsyncMode::Off => {}
        }
        Ok(())
    }

    /// Force everything appended so far to disk (checkpoint barriers and
    /// clean shutdown), regardless of mode.
    pub fn sync(&self) -> std::io::Result<()> {
        let mut g = self.lock();
        let group = g.pending;
        let up_to = g.len;
        g.pending = 0;
        let file = g.file.try_clone()?;
        drop(g);
        file.sync_data()?;
        let mut g = self.lock();
        g.stats.fsyncs += 1;
        g.stats.appends_synced += group;
        g.stats.max_group = g.stats.max_group.max(group);
        g.synced_len = g.synced_len.max(up_to);
        drop(g);
        self.shared.synced.notify_all();
        Ok(())
    }

    /// Bytes appended to the file so far.
    pub fn len(&self) -> u64 {
        self.lock().len
    }

    /// True iff nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> WalStats {
        self.lock().stats
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        {
            let mut g = self.lock();
            g.stop = true;
        }
        self.shared.work.notify_all();
        self.shared.synced.notify_all();
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

/// How long the flusher waits after the first append of a group before
/// fsyncing, so racing writers coalesce into one sync. This is also the
/// power-loss exposure window in Batch mode (a process crash still loses
/// nothing — appends hit the file before returning). Overridable via
/// `PDSM_FSYNC_WINDOW_MS` (cf. PostgreSQL's `commit_delay`): on a slow
/// or busy disk a wider window trades staleness-under-power-loss for
/// less fsync interference with the append path.
const COALESCE_WINDOW_MS: u64 = 20;

fn coalesce_window() -> Duration {
    use std::sync::OnceLock;
    static WINDOW: OnceLock<Duration> = OnceLock::new();
    *WINDOW.get_or_init(|| {
        let ms = std::env::var("PDSM_FSYNC_WINDOW_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(COALESCE_WINDOW_MS);
        Duration::from_millis(ms)
    })
}

/// Group-commit loop: wait for appends, give concurrent writers a short
/// coalesce window, then fsync once for the whole group — through a
/// cloned handle, off the append lock.
fn flusher_loop(shared: &WalShared) {
    loop {
        let (group, up_to, file) = {
            let mut g = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            while g.pending == 0 && !g.stop {
                g = shared.work.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            if g.pending == 0 && g.stop {
                return;
            }
            drop(g);
            // Coalesce: let the writers that raced us land too. The window
            // bounds power-loss exposure AND the fsync rate — on a machine
            // where fdatasync costs ~250µs, a too-eager flusher would eat
            // a whole core (and the write path's tail latency) in syncs.
            std::thread::sleep(coalesce_window());
            let mut g = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            let group = g.pending;
            let up_to = g.len;
            g.pending = 0;
            let file = g.file.try_clone();
            (group, up_to, file)
        };
        let synced = match file {
            Ok(f) => f.sync_data().is_ok(),
            Err(_) => false,
        };
        let mut g = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if synced {
            g.stats.fsyncs += 1;
            g.stats.appends_synced += group;
            g.stats.max_group = g.stats.max_group.max(group);
            g.synced_len = g.synced_len.max(up_to);
        } else {
            g.sync_failed = true;
        }
        let stop = g.stop && g.pending == 0;
        drop(g);
        shared.synced.notify_all();
        if stop {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{decode_stream, WalOp};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pdsm-wal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let ops: Vec<WalOp> = (0..100).map(|i| WalOp::Delete { row: i }).collect();
        {
            let wal = Wal::create(&path, FsyncMode::Batch).unwrap();
            for op in &ops {
                wal.append(&op.encode_record()).unwrap();
            }
            wal.sync().unwrap();
            let stats = wal.stats();
            assert_eq!(stats.appends, 100);
            assert!(stats.fsyncs >= 1);
            assert!(stats.max_group >= 1);
        }
        let bytes = std::fs::read(&path).unwrap();
        let (decoded, valid) = decode_stream(&bytes);
        assert_eq!(valid, bytes.len());
        assert_eq!(decoded, ops);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_append_truncates_the_torn_tail() {
        let dir = tmpdir("truncate");
        let path = dir.join("wal.log");
        let op = WalOp::Delete { row: 1 };
        let rec = op.encode_record();
        {
            let wal = Wal::create(&path, FsyncMode::Off).unwrap();
            wal.append(&rec).unwrap();
            wal.append(&rec).unwrap();
        }
        // Simulate a crash half-way through the second record.
        let torn_len = rec.len() as u64 + 3;
        {
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(torn_len).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let (ops, valid) = decode_stream(&bytes);
        assert_eq!(ops.len(), 1);
        assert_eq!(valid as u64, rec.len() as u64);
        let wal = Wal::open_append(&path, valid as u64, FsyncMode::Always).unwrap();
        wal.append(&rec).unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        let (ops, valid) = decode_stream(&bytes);
        assert_eq!(ops.len(), 2);
        assert_eq!(valid, bytes.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_mode_acks_only_after_the_covering_fsync() {
        let dir = tmpdir("groupack");
        let path = dir.join("wal.log");
        let wal = std::sync::Arc::new(Wal::create(&path, FsyncMode::Group).unwrap());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let wal = std::sync::Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let op = WalOp::Delete { row: t * 1000 + i };
                        wal.append(&op.encode_record()).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.appends, 200);
        // Every append that returned was covered by a completed fsync —
        // that is the Group contract (vs Batch, where synced lags).
        assert_eq!(stats.appends_synced, 200);
        // ... and the acks still coalesced instead of syncing per append.
        assert!(stats.fsyncs < 200, "fsyncs = {}", stats.fsyncs);
        assert!(stats.max_group > 1, "no coalescing happened");
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        let (ops, valid) = decode_stream(&bytes);
        assert_eq!(ops.len(), 200);
        assert_eq!(valid, bytes.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_appends_all_land_and_coalesce() {
        let dir = tmpdir("group");
        let path = dir.join("wal.log");
        let wal = std::sync::Arc::new(Wal::create(&path, FsyncMode::Batch).unwrap());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let wal = std::sync::Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        let op = WalOp::Delete { row: t * 1000 + i };
                        wal.append(&op.encode_record()).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        wal.sync().unwrap();
        let stats = wal.stats();
        assert_eq!(stats.appends, 1000);
        // Group commit must have coalesced: far fewer fsyncs than appends.
        assert!(stats.fsyncs < 1000, "fsyncs = {}", stats.fsyncs);
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        let (ops, valid) = decode_stream(&bytes);
        assert_eq!(ops.len(), 1000);
        assert_eq!(valid, bytes.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
