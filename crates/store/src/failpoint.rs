//! Fault injection for durability tests. **Test-only tooling** — it lives
//! in the public API (not behind `cfg(test)`) so downstream crates'
//! integration tests can crash-test recovery, but nothing in the engine
//! proper uses it.
//!
//! Two families:
//!
//! * [`FailpointFile`]: an `io::Write` wrapper that silently stops
//!   persisting after byte `N`, simulating a process killed mid-write —
//!   the file ends up with a torn tail exactly where a real crash would
//!   leave one.
//! * [`truncate_at`] / [`flip_bit`]: post-hoc damage to files already on
//!   disk, simulating torn appends and media bit rot.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// An `io::Write` that forwards bytes to `inner` until `fail_at` total
/// bytes have been written, then silently swallows the rest (reporting
/// success to the caller, as a killed process's page cache would).
pub struct FailpointFile<W: Write> {
    inner: W,
    written: u64,
    fail_at: u64,
}

impl<W: Write> FailpointFile<W> {
    /// Wrap `inner`; bytes past offset `fail_at` are dropped.
    pub fn new(inner: W, fail_at: u64) -> Self {
        FailpointFile {
            inner,
            written: 0,
            fail_at,
        }
    }

    /// Bytes the caller believes it wrote (persisted or not).
    pub fn claimed_len(&self) -> u64 {
        self.written
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailpointFile<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let persist = (self.fail_at.saturating_sub(self.written) as usize).min(buf.len());
        if persist > 0 {
            self.inner.write_all(&buf[..persist])?;
        }
        self.written += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Truncate the file at `path` to `len` bytes (a crash that lost the
/// tail of an append).
pub fn truncate_at(path: &Path, len: u64) -> std::io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)
}

/// Flip one bit (`byte_idx`, low bit 0x01) in the file at `path` —
/// media corruption a checksum must catch.
pub fn flip_bit(path: &Path, byte_idx: u64) -> std::io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(byte_idx))?;
    f.read_exact(&mut b)?;
    b[0] ^= 0x01;
    f.seek(SeekFrom::Start(byte_idx))?;
    f.write_all(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failpoint_drops_everything_past_the_cut() {
        let mut sink = Vec::new();
        {
            let mut f = FailpointFile::new(&mut sink, 5);
            f.write_all(b"abc").unwrap();
            f.write_all(b"defg").unwrap(); // crosses the cut at 5
            f.write_all(b"hij").unwrap(); // entirely past it
            assert_eq!(f.claimed_len(), 10);
        }
        assert_eq!(sink, b"abcde");
    }

    #[test]
    fn file_damage_helpers() {
        let dir = std::env::temp_dir().join(format!("pdsm-fp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        std::fs::write(&path, b"0123456789").unwrap();
        truncate_at(&path, 4).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"0123");
        flip_bit(&path, 0).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"1123");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
