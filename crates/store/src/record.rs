//! WAL record encoding: one committed DML batch per record, framed as
//! `[payload len: u32 LE][crc32(payload): u32 LE][payload]`.
//!
//! The decoder is *torn-tail tolerant*: it walks records until the bytes
//! run out or a checksum fails, and reports how many bytes of the file
//! form a valid prefix. A short or corrupt tail record marks the crash
//! point — recovery truncates there and replays everything before it.
//! Corruption is therefore not an error at this layer; it is the
//! expected shape of a file whose writer was killed mid-append.

use pdsm_storage::crc32;
use pdsm_storage::{Row, Value};

/// One logical write, as it went through the table's DML API. Row ids are
/// the `pdsm_txn`-level ids the operation used at commit time; a
/// checkpoint rewrites the log so ids are always valid against the main
/// store generation the log sits on top of.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// `insert` / `insert_batch` of already-normalized rows.
    InsertBatch(Vec<Row>),
    /// `update(row, col, value)` with the normalized value.
    Update { row: u64, col: u32, value: Value },
    /// `delete(row)`.
    Delete { row: u64 },
}

const OP_INSERT_BATCH: u8 = 1;
const OP_UPDATE: u8 = 2;
const OP_DELETE: u8 = 3;

const VAL_NULL: u8 = 0;
const VAL_I32: u8 = 1;
const VAL_I64: u8 = 2;
const VAL_F64: u8 = 3;
const VAL_STR: u8 = 4;

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(VAL_NULL),
        Value::Int32(x) => {
            buf.push(VAL_I32);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Int64(x) => {
            buf.push(VAL_I64);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Float64(x) => {
            buf.push(VAL_F64);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(VAL_STR);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
    }
}

fn put_row(buf: &mut Vec<u8>, row: &Row) {
    buf.extend_from_slice(&(row.len() as u32).to_le_bytes());
    for v in row.values() {
        put_value(buf, v);
    }
}

impl WalOp {
    /// Serialize the op payload (unframed).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WalOp::InsertBatch(rows) => {
                buf.push(OP_INSERT_BATCH);
                buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for r in rows {
                    put_row(&mut buf, r);
                }
            }
            WalOp::Update { row, col, value } => {
                buf.push(OP_UPDATE);
                buf.extend_from_slice(&row.to_le_bytes());
                buf.extend_from_slice(&col.to_le_bytes());
                put_value(&mut buf, value);
            }
            WalOp::Delete { row } => {
                buf.push(OP_DELETE);
                buf.extend_from_slice(&row.to_le_bytes());
            }
        }
        buf
    }

    /// Serialize the op as a complete framed record (length, checksum,
    /// payload) ready to append to a WAL file.
    pub fn encode_record(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        rec
    }
}

/// A forward-only byte cursor; every read returns `None` past the end,
/// which the record decoder maps to "torn tail".
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

fn get_value(c: &mut Cursor) -> Option<Value> {
    Some(match c.u8()? {
        VAL_NULL => Value::Null,
        VAL_I32 => Value::Int32(c.u32()? as i32),
        VAL_I64 => Value::Int64(c.u64()? as i64),
        VAL_F64 => Value::Float64(f64::from_bits(c.u64()?)),
        VAL_STR => {
            let n = c.u32()? as usize;
            Value::Str(String::from_utf8(c.take(n)?.to_vec()).ok()?)
        }
        _ => return None,
    })
}

fn get_row(c: &mut Cursor) -> Option<Row> {
    let n = c.u32()? as usize;
    let mut vals = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        vals.push(get_value(c)?);
    }
    Some(Row(vals))
}

fn decode_payload(payload: &[u8]) -> Option<WalOp> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let op = match c.u8()? {
        OP_INSERT_BATCH => {
            let n = c.u32()? as usize;
            let mut rows = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                rows.push(get_row(&mut c)?);
            }
            WalOp::InsertBatch(rows)
        }
        OP_UPDATE => WalOp::Update {
            row: c.u64()?,
            col: c.u32()?,
            value: get_value(&mut c)?,
        },
        OP_DELETE => WalOp::Delete { row: c.u64()? },
        _ => return None,
    };
    // Trailing garbage inside a checksummed payload means a writer bug,
    // not a crash; be conservative and reject the record anyway.
    (c.pos == payload.len()).then_some(op)
}

/// Decode every whole, checksum-valid record from the front of `bytes`.
/// Returns the ops and the byte length of the valid prefix; anything past
/// that point is a torn or corrupt tail and must be truncated away before
/// new records are appended.
pub fn decode_stream(bytes: &[u8]) -> (Vec<WalOp>, usize) {
    let mut ops = Vec::new();
    let mut valid = 0usize;
    loop {
        let rest = &bytes[valid..];
        if rest.len() < 8 {
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let Some(payload) = rest.get(8..8 + len) else {
            break; // record extends past EOF: torn append
        };
        if crc32(payload) != want_crc {
            break; // bit rot or half-written payload
        }
        let Some(op) = decode_payload(payload) else {
            break;
        };
        ops.push(op);
        valid += 8 + len;
    }
    (ops, valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::InsertBatch(vec![
                Row(vec![
                    Value::Int32(1),
                    Value::Str("abc".into()),
                    Value::Null,
                    Value::Float64(-0.5),
                ]),
                Row(vec![Value::Int64(i64::MIN), Value::Str(String::new())]),
            ]),
            WalOp::Update {
                row: 7,
                col: 2,
                value: Value::Str("déjà".into()),
            },
            WalOp::Delete { row: u64::MAX },
            WalOp::InsertBatch(Vec::new()),
        ]
    }

    fn encode_all(ops: &[WalOp]) -> Vec<u8> {
        ops.iter().flat_map(|op| op.encode_record()).collect()
    }

    #[test]
    fn round_trip() {
        let ops = sample_ops();
        let bytes = encode_all(&ops);
        let (decoded, valid) = decode_stream(&bytes);
        assert_eq!(decoded, ops);
        assert_eq!(valid, bytes.len());
    }

    #[test]
    fn torn_tail_stops_cleanly_at_every_cut() {
        let ops = sample_ops();
        let bytes = encode_all(&ops);
        // Record boundaries.
        let mut bounds = vec![0usize];
        for op in &ops {
            bounds.push(bounds.last().unwrap() + op.encode_record().len());
        }
        for cut in 0..bytes.len() {
            let (decoded, valid) = decode_stream(&bytes[..cut]);
            // Valid prefix = the largest record boundary <= cut.
            let want = *bounds.iter().filter(|&&b| b <= cut).max().unwrap();
            assert_eq!(valid, want, "cut at {cut}");
            let nrec = bounds.iter().position(|&b| b == want).unwrap();
            assert_eq!(decoded, ops[..nrec], "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_anywhere_invalidates_exactly_the_hit_record_onward() {
        let ops = sample_ops();
        let bytes = encode_all(&ops);
        let mut bounds = vec![0usize];
        for op in &ops {
            bounds.push(bounds.last().unwrap() + op.encode_record().len());
        }
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 0x40;
            let (decoded, valid) = decode_stream(&corrupt);
            // Everything strictly before the record containing `byte`
            // must still decode; the decoder must not read past it.
            let rec = bounds.iter().rposition(|&b| b <= byte).unwrap();
            assert!(valid <= bounds[rec], "flip at {byte}");
            assert!(decoded.len() <= rec, "flip at {byte}");
            // A flipped length field may truncate earlier, but never
            // yields wrong ops: whatever decoded matches the originals.
            assert_eq!(decoded[..], ops[..decoded.len()], "flip at {byte}");
        }
    }
}
