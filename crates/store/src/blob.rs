//! Atomic blob I/O: write-temp-then-rename with fsync barriers. Used for
//! checkpointed main stores and the manifest, so a crash at any byte
//! leaves either the old file or the new one — never a half of each.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Write `bytes` to `tmp`, fsync it, rename it over `dest`, and fsync the
/// containing directory so the rename itself is durable. On return the
/// blob is atomically visible under `dest`; on a crash before the rename
/// only the temp file (ignored by recovery) is affected.
pub fn write_atomic(dest: &Path, tmp: &Path, bytes: &[u8]) -> std::io::Result<()> {
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(tmp, dest)?;
    if let Some(dir) = dest.parent() {
        fsync_dir(dir)?;
    }
    Ok(())
}

/// fsync a directory, making prior renames/creates in it durable. A
/// no-op error on platforms that refuse to open directories is ignored —
/// atomicity (old file or new) still holds; only power-loss durability
/// of the rename itself would degrade.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    match File::open(dir) {
        Ok(f) => f.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Scrub stale temp files (`*.tmp*` leftovers from a crash mid-write) in
/// `dir`. Best-effort: unreadable entries are skipped.
pub fn remove_temp_files(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        if name.to_string_lossy().contains(".tmp") {
            let _ = std::fs::remove_file(e.path());
        }
    }
}

/// Map a table name onto a filesystem-safe directory name: ASCII
/// alphanumerics, `_` and `-` pass through; every other byte is escaped
/// as `%XX`. Injective, so distinct tables never collide on disk.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_is_injective_on_tricky_names() {
        let names = ["a/b", "a%2Fb", "a_b", "A-1", "caché", "..", "a b"];
        let mut seen = std::collections::HashSet::new();
        for n in names {
            let s = sanitize_name(n);
            assert!(
                s.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'%'),
                "{s}"
            );
            assert!(seen.insert(s), "collision for {n}");
        }
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("pdsm-blob-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("blob.bin");
        let tmp = dir.join("blob.tmp.bin");
        write_atomic(&dest, &tmp, b"first version").unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"first version");
        write_atomic(&dest, &tmp, b"v2").unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"v2");
        assert!(!tmp.exists());
        remove_temp_files(&dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
