//! `pdsm-store` — durability primitives for the PDSM engine.
//!
//! The main+delta design (see `pdsm-txn`) already has the shape of a
//! checkpointing system: the immutable main store is a checkpoint, the
//! generation number is its id, and the delta tail is exactly what a WAL
//! must replay. This crate supplies the missing on-disk pieces, all
//! dependency-free:
//!
//! * [`record`] — length-prefixed, CRC32-checksummed WAL records with a
//!   torn-tail-tolerant decoder (a half-written tail is the crash point,
//!   not an error);
//! * [`wal`] — the append-only log with group commit
//!   (`PDSM_FSYNC=always|batch|off`);
//! * [`blob`] — write-temp-then-rename atomic blob I/O for checkpointed
//!   main stores;
//! * [`manifest`] — the atomically-replaced table → generation map whose
//!   rename is the checkpoint commit point;
//! * [`failpoint`] — fault injection (torn writes, truncation, bit
//!   flips) for crash-recovery tests.
//!
//! Layering: this crate depends only on `pdsm-storage` (for the
//! `Row`/`Value` vocabulary WAL records carry). `pdsm-txn` wires the WAL
//! into the commit path and checkpoints on merge; `pdsm-core` drives
//! recovery from `Database::open`.

pub mod blob;
pub mod failpoint;
pub mod manifest;
pub mod record;
pub mod wal;

pub use blob::{fsync_dir, remove_temp_files, sanitize_name, write_atomic};
pub use failpoint::{flip_bit, truncate_at, FailpointFile};
pub use manifest::Manifest;
pub use pdsm_storage::crc32;
pub use record::{decode_stream, WalOp};
pub use wal::{FsyncMode, Wal, WalStats};
