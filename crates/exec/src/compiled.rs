//! The compiled engine: data-centric fused pipelines (§III-B, Fig. 2c).
//!
//! HyPer JiT-compiles each query with LLVM; the property that matters for
//! the paper's argument is what the *generated loops look like*: all
//! operators of a pipeline fused into one loop, predicates evaluated on
//! typed in-place data, values staying in registers, and **no per-tuple
//! indirect calls**. This engine reproduces those loops ahead of time:
//!
//! * a query is "compiled" once: predicates lower to typed
//!   [`PredKernel`]s bound directly to partition readers (string predicates
//!   become dictionary-code tests via a one-pass dictionary prescan),
//! * each pipeline runs as a single loop over its scan; survivors flow
//!   through join probes and projections into a sink (aggregation state,
//!   join hash table, or the result buffer),
//! * the hottest shape — scan → conjunctive filter → scalar aggregation,
//!   the paper's Fig. 2c — runs a fully typed loop with no row
//!   materialization at all.
//!
//! Enum-match dispatch inside the loop compiles to direct, predictable
//! branches (the same target every iteration), which is the microarchitectural
//! property the paper contrasts against Volcano's function pointers.

use crate::engine::{
    agg_tail_update, fig2c_tail_fold, masked_tail_row, tail_defeats_raw_keys, tail_raw_key,
    tail_row_passes, Accumulator, Engine, ExecError, Overlay, TableProvider,
};
use crate::keys::GroupKey;
use crate::result::QueryOutput;
use crate::simd;
use pdsm_plan::expr::{CmpOp, Expr};
use pdsm_plan::logical::{AggExpr, LogicalPlan};
use pdsm_storage::dictionary::like_match;
use pdsm_storage::partition::{F64Col, I32Col, I64Col, U32Col};
use pdsm_storage::types::cmp_values;
use pdsm_storage::{ColId, DataType, Table, Value, ZoneMap, ZoneOp, ZonePred, ZONE_BLOCK_ROWS};
use std::collections::HashMap;
use std::sync::Arc;

/// The compiled engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct CompiledEngine;

impl Engine for CompiledEngine {
    fn name(&self) -> &'static str {
        "compiled"
    }

    fn execute(
        &self,
        plan: &LogicalPlan,
        db: &dyn TableProvider,
    ) -> Result<QueryOutput, ExecError> {
        let width = |t: &str| db.table(t).map(|tb| tb.schema().len()).unwrap_or(0);
        let required = plan.required_columns(&width);
        let rows = exec(plan, db, &required)?;
        Ok(QueryOutput { rows })
    }
}

// ---------------------------------------------------------------------------
// predicate kernels
// ---------------------------------------------------------------------------

/// A typed, pre-bound predicate over one scan. `test(row)` is an inlined
/// match with direct loads — the compiled counterpart of Fig. 2c line 6.
pub enum PredKernel<'t> {
    I32Cmp {
        r: I32Col<'t>,
        op: CmpOp,
        v: i64,
        null_col: Option<ColId>,
        t: &'t Table,
    },
    I64Cmp {
        r: I64Col<'t>,
        op: CmpOp,
        v: i64,
        null_col: Option<ColId>,
        t: &'t Table,
    },
    F64Cmp {
        r: F64Col<'t>,
        op: CmpOp,
        v: f64,
        null_col: Option<ColId>,
        t: &'t Table,
    },
    CodeEq {
        r: U32Col<'t>,
        code: u32,
        null_col: Option<ColId>,
        t: &'t Table,
    },
    /// Dictionary-code membership (LIKE and other string predicates).
    CodeIn {
        r: U32Col<'t>,
        hits: Vec<bool>,
        null_col: Option<ColId>,
        t: &'t Table,
    },
    /// Matches nothing (e.g. equality with a string absent from the dict).
    Never,
    /// `IS [NOT] NULL`.
    Null {
        col: ColId,
        negate: bool,
        t: &'t Table,
    },
    /// Short-circuit disjunction of two kernels (e.g. Q1's two LIKEs).
    Or(Box<PredKernel<'t>>, Box<PredKernel<'t>>),
    /// Short-circuit conjunction (inside an Or branch).
    And(Box<PredKernel<'t>>, Box<PredKernel<'t>>),
    /// Negation of a kernel.
    Not(Box<PredKernel<'t>>),
    /// Interpreter fallback for predicates outside the kernel vocabulary
    /// (disjunctions, cross-column compares). Reads only its columns.
    Interp {
        expr: Expr,
        cols: Vec<ColId>,
        width: usize,
        t: &'t Table,
    },
}

impl PredKernel<'_> {
    #[inline(always)]
    pub fn test(&self, i: usize) -> bool {
        match self {
            PredKernel::I32Cmp {
                r,
                op,
                v,
                null_col,
                t,
            } => {
                if let Some(c) = null_col {
                    if !t.is_valid(i, *c) {
                        return false;
                    }
                }
                op.matches((r.get(i) as i64).cmp(v))
            }
            PredKernel::I64Cmp {
                r,
                op,
                v,
                null_col,
                t,
            } => {
                if let Some(c) = null_col {
                    if !t.is_valid(i, *c) {
                        return false;
                    }
                }
                op.matches(r.get(i).cmp(v))
            }
            PredKernel::F64Cmp {
                r,
                op,
                v,
                null_col,
                t,
            } => {
                if let Some(c) = null_col {
                    if !t.is_valid(i, *c) {
                        return false;
                    }
                }
                r.get(i)
                    .partial_cmp(v)
                    .map(|o| op.matches(o))
                    .unwrap_or(false)
            }
            PredKernel::CodeEq {
                r,
                code,
                null_col,
                t,
            } => {
                if let Some(c) = null_col {
                    if !t.is_valid(i, *c) {
                        return false;
                    }
                }
                r.get(i) == *code
            }
            PredKernel::CodeIn {
                r,
                hits,
                null_col,
                t,
            } => {
                if let Some(c) = null_col {
                    if !t.is_valid(i, *c) {
                        return false;
                    }
                }
                hits[r.get(i) as usize]
            }
            PredKernel::Never => false,
            PredKernel::Null { col, negate, t } => t.is_valid(i, *col) == *negate,
            PredKernel::Or(a, b) => a.test(i) || b.test(i),
            PredKernel::And(a, b) => a.test(i) && b.test(i),
            PredKernel::Not(a) => !a.test(i),
            PredKernel::Interp {
                expr,
                cols,
                width,
                t,
            } => {
                let mut row = vec![Value::Null; *width];
                for &c in cols {
                    row[c] = t.get(i, c).expect("in-range");
                }
                expr.eval_bool(&row[..])
            }
        }
    }
}

/// Lower one conjunct to a kernel.
pub fn compile_pred<'t>(t: &'t Table, e: &Expr) -> PredKernel<'t> {
    let null_of = |c: ColId| t.schema().columns()[c].nullable.then_some(c);
    if let Expr::Cmp { op, left, right } = e {
        let sides = match (left.as_ref(), right.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) => Some((*c, *op, v)),
            (Expr::Lit(v), Expr::Col(c)) => {
                let flip = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    o => *o,
                };
                Some((*c, flip, v))
            }
            _ => None,
        };
        if let Some((c, op, lit)) = sides {
            match t.schema().columns()[c].ty {
                DataType::Int32 => {
                    if let Some(v) = lit.as_i64() {
                        return PredKernel::I32Cmp {
                            r: t.i32_reader(c),
                            op,
                            v,
                            null_col: null_of(c),
                            t,
                        };
                    }
                }
                DataType::Int64 => {
                    if let Some(v) = lit.as_i64() {
                        return PredKernel::I64Cmp {
                            r: t.i64_reader(c),
                            op,
                            v,
                            null_col: null_of(c),
                            t,
                        };
                    }
                }
                DataType::Float64 => {
                    if let Some(v) = lit.as_f64() {
                        return PredKernel::F64Cmp {
                            r: t.f64_reader(c),
                            op,
                            v,
                            null_col: null_of(c),
                            t,
                        };
                    }
                }
                DataType::Str => {
                    if let (CmpOp::Eq, Some(s)) = (op, lit.as_str()) {
                        return match t.dict(c).and_then(|d| d.code_of(s)) {
                            Some(code) => PredKernel::CodeEq {
                                r: t.str_code_reader(c),
                                code,
                                null_col: null_of(c),
                                t,
                            },
                            None => PredKernel::Never,
                        };
                    }
                }
            }
        }
    }
    if let Expr::Like { expr, pattern } = e {
        if let Expr::Col(c) = expr.as_ref() {
            if t.schema().columns()[*c].ty == DataType::Str {
                let dict = t.dict(*c).expect("str col");
                let mut hits = vec![false; dict.len()];
                for (code, s) in dict.iter() {
                    hits[code as usize] = like_match(pattern, s);
                }
                return PredKernel::CodeIn {
                    r: t.str_code_reader(*c),
                    hits,
                    null_col: null_of(*c),
                    t,
                };
            }
        }
    }
    if let Expr::IsNull(inner) = e {
        if let Expr::Col(c) = inner.as_ref() {
            return PredKernel::Null {
                col: *c,
                negate: false,
                t,
            };
        }
    }
    if let Expr::Not(inner) = e {
        if let Expr::IsNull(inner2) = inner.as_ref() {
            if let Expr::Col(c) = inner2.as_ref() {
                return PredKernel::Null {
                    col: *c,
                    negate: true,
                    t,
                };
            }
        }
        let k = compile_pred(t, inner);
        if !matches!(k, PredKernel::Interp { .. }) {
            return PredKernel::Not(Box::new(k));
        }
    }
    // Boolean composition stays in kernel space when both sides lower to
    // kernels; interpreting one leaf would interpret the whole thing anyway.
    if let Expr::Or(a, b) = e {
        let (ka, kb) = (compile_pred(t, a), compile_pred(t, b));
        if !matches!(ka, PredKernel::Interp { .. }) && !matches!(kb, PredKernel::Interp { .. }) {
            return PredKernel::Or(Box::new(ka), Box::new(kb));
        }
    }
    if let Expr::And(a, b) = e {
        let (ka, kb) = (compile_pred(t, a), compile_pred(t, b));
        if !matches!(ka, PredKernel::Interp { .. }) && !matches!(kb, PredKernel::Interp { .. }) {
            return PredKernel::And(Box::new(ka), Box::new(kb));
        }
    }
    PredKernel::Interp {
        expr: e.clone(),
        cols: e.columns(),
        width: t.schema().len(),
        t,
    }
}

pub fn conjuncts(pred: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            other => out.push(other),
        }
    }
    walk(pred, &mut out);
    out
}

// ---------------------------------------------------------------------------
// zone-map pruning
// ---------------------------------------------------------------------------

/// Extract the zone-map-refutable conjuncts of `preds` (each element is
/// itself a conjunct of the scan). Mirrors [`compile_pred`]'s literal
/// handling, so a zone refutation is exactly "no row in this block can pass
/// the corresponding kernel": comparisons against literals on numeric
/// columns (in the kernel's widened domain), `IS [NOT] NULL` on plain
/// columns. `OR`s, string predicates, and anything interpreted contribute
/// nothing — pruning stays sound by simply knowing less.
pub fn zone_preds(t: &Table, preds: &[Expr]) -> Vec<ZonePred> {
    let mut out = Vec::new();
    for p in preds {
        for c in conjuncts(p) {
            collect_zone_pred(t, c, &mut out);
        }
    }
    out
}

fn collect_zone_pred(t: &Table, e: &Expr, out: &mut Vec<ZonePred>) {
    let zop = |op: CmpOp| match op {
        CmpOp::Eq => ZoneOp::Eq,
        CmpOp::Ne => ZoneOp::Ne,
        CmpOp::Lt => ZoneOp::Lt,
        CmpOp::Le => ZoneOp::Le,
        CmpOp::Gt => ZoneOp::Gt,
        CmpOp::Ge => ZoneOp::Ge,
    };
    match e {
        Expr::Cmp { op, left, right } => {
            let sides = match (left.as_ref(), right.as_ref()) {
                (Expr::Col(c), Expr::Lit(v)) => Some((*c, *op, v)),
                (Expr::Lit(v), Expr::Col(c)) => {
                    let flip = match op {
                        CmpOp::Lt => CmpOp::Gt,
                        CmpOp::Le => CmpOp::Ge,
                        CmpOp::Gt => CmpOp::Lt,
                        CmpOp::Ge => CmpOp::Le,
                        o => *o,
                    };
                    Some((*c, flip, v))
                }
                _ => None,
            };
            if let Some((col, op, lit)) = sides {
                match t.schema().columns()[col].ty {
                    DataType::Int32 | DataType::Int64 => {
                        if let Some(v) = lit.as_i64() {
                            out.push(ZonePred::I64Cmp {
                                col,
                                op: zop(op),
                                v,
                            });
                        }
                    }
                    DataType::Float64 => {
                        if let Some(v) = lit.as_f64() {
                            out.push(ZonePred::F64Cmp {
                                col,
                                op: zop(op),
                                v,
                            });
                        }
                    }
                    DataType::Str => {}
                }
            }
        }
        Expr::IsNull(inner) => {
            if let Expr::Col(c) = inner.as_ref() {
                out.push(ZonePred::IsNull {
                    col: *c,
                    negate: false,
                });
            }
        }
        Expr::Not(inner) => {
            if let Expr::IsNull(inner2) = inner.as_ref() {
                if let Expr::Col(c) = inner2.as_ref() {
                    out.push(ZonePred::IsNull {
                        col: *c,
                        negate: true,
                    });
                }
            }
        }
        _ => {}
    }
}

/// The zone map of `table` when any conjunct can refute blocks; `None`
/// avoids even the (one-time) zone-map build for unprunable scans.
fn prunable_zones(table: &Table, zpreds: &[ZonePred]) -> Option<Arc<ZoneMap>> {
    if zpreds.is_empty() || table.is_empty() {
        return None;
    }
    Some(table.zone_map().clone())
}

/// Per-row validity of `c` over `len (≤ 64)` rows from `start`, as a bitmask.
fn valid_mask(t: &Table, c: ColId, start: usize, len: usize) -> u64 {
    let mut m = 0u64;
    for j in 0..len {
        m |= (t.is_valid(start + j, c) as u64) << j;
    }
    m
}

impl<'t> PredKernel<'t> {
    /// Evaluate this kernel over `len (≤ 64)` consecutive main-store rows
    /// starting at `start`; bit `j` of the result is `self.test(start + j)`.
    /// Densely packed integer comparisons go through the wide kernels of
    /// [`crate::simd`]; everything else falls back to a scalar loop, so the
    /// mask is always exactly the row-at-a-time verdicts.
    pub fn block_mask(
        &self,
        start: usize,
        len: usize,
        wide: bool,
        stats: &mut simd::ChunkStats,
    ) -> u64 {
        debug_assert!(len <= 64);
        match self {
            PredKernel::I32Cmp {
                r,
                op,
                v,
                null_col,
                t,
            } => {
                let mut m = match r.as_slice() {
                    Some(s) => simd::mask_i32(&s[start..start + len], *op, *v, wide, stats),
                    None => {
                        stats.scalar += 1;
                        let mut m = 0u64;
                        for j in 0..len {
                            let x = r.get(start + j) as i64;
                            m |= (op.matches(x.cmp(v)) as u64) << j;
                        }
                        m
                    }
                };
                if let Some(c) = null_col {
                    m &= valid_mask(t, *c, start, len);
                }
                m
            }
            PredKernel::I64Cmp {
                r,
                op,
                v,
                null_col,
                t,
            } => {
                let mut m = match r.as_slice() {
                    Some(s) => simd::mask_i64(&s[start..start + len], *op, *v, wide, stats),
                    None => {
                        stats.scalar += 1;
                        let mut m = 0u64;
                        for j in 0..len {
                            m |= (op.matches(r.get(start + j).cmp(v)) as u64) << j;
                        }
                        m
                    }
                };
                if let Some(c) = null_col {
                    m &= valid_mask(t, *c, start, len);
                }
                m
            }
            PredKernel::Never => 0,
            PredKernel::Null { col, negate, t } => {
                let vm = valid_mask(t, *col, start, len);
                if *negate {
                    vm
                } else {
                    !vm & simd::ones(len)
                }
            }
            PredKernel::And(a, b) => {
                let ma = a.block_mask(start, len, wide, stats);
                if ma == 0 {
                    return 0;
                }
                ma & b.block_mask(start, len, wide, stats)
            }
            PredKernel::Or(a, b) => {
                a.block_mask(start, len, wide, stats) | b.block_mask(start, len, wide, stats)
            }
            PredKernel::Not(a) => !a.block_mask(start, len, wide, stats) & simd::ones(len),
            // Float comparisons, dictionary-code tests, and interpreted
            // predicates stay scalar (floats deliberately so: see the
            // module docs of `crate::simd`).
            _ => {
                stats.scalar += 1;
                let mut m = 0u64;
                for j in 0..len {
                    m |= (self.test(start + j) as u64) << j;
                }
                m
            }
        }
    }
}

// ---------------------------------------------------------------------------
// pipelines
// ---------------------------------------------------------------------------

/// Steps applied to rows that survive the scan predicates.
enum Step {
    /// Replace the row with the projected expressions.
    Project(Vec<Expr>),
    /// Probe a build-side hash table; fan out to `build_row ++ row`.
    Probe {
        ht: HashMap<GroupKey, Vec<Vec<Value>>>,
        key: Expr,
    },
    /// Post-join filter (interpreted; rare in the workloads).
    Filter(Expr),
}

/// A compiled query fragment: either an open scan pipeline or materialized
/// rows (output of a pipeline breaker).
enum Fragment {
    Pipe {
        table: String,
        preds: Vec<Expr>,
        steps: Vec<Step>,
    },
    Rows(Vec<Vec<Value>>),
}

/// Sinks consume survivor rows.
enum Sink {
    Collect(Vec<Vec<Value>>),
    Agg {
        group_by: Vec<Expr>,
        aggs: Vec<AggExpr>,
        groups: HashMap<GroupKey, (Vec<Value>, Vec<Accumulator>)>,
    },
}

impl Sink {
    fn consume(&mut self, row: Vec<Value>) {
        match self {
            Sink::Collect(rows) => rows.push(row),
            Sink::Agg {
                group_by,
                aggs,
                groups,
            } => {
                let key_vals: Vec<Value> = group_by.iter().map(|g| g.eval(&row[..])).collect();
                let key = GroupKey::of(&key_vals);
                let entry = groups.entry(key).or_insert_with(|| {
                    (
                        key_vals.clone(),
                        aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
                    )
                });
                for (acc, spec) in entry.1.iter_mut().zip(aggs.iter()) {
                    match &spec.arg {
                        Some(e) => acc.update(&e.eval(&row[..])),
                        None => acc.update(&Value::Int32(1)),
                    }
                }
            }
        }
    }

    fn finish(self) -> Vec<Vec<Value>> {
        match self {
            Sink::Collect(rows) => rows,
            Sink::Agg {
                group_by,
                aggs,
                groups,
            } => {
                if groups.is_empty() && group_by.is_empty() {
                    let accs: Vec<Accumulator> =
                        aggs.iter().map(|a| Accumulator::new(a.func)).collect();
                    return vec![accs.iter().map(|a| a.finish()).collect()];
                }
                groups
                    .into_values()
                    .map(|(mut k, accs)| {
                        k.extend(accs.iter().map(|a| a.finish()));
                        k
                    })
                    .collect()
            }
        }
    }
}

/// Recursively push `row` through `steps[step_idx..]` into the sink.
fn push_row(row: Vec<Value>, steps: &[Step], sink: &mut Sink) {
    match steps.first() {
        None => sink.consume(row),
        Some(Step::Project(exprs)) => {
            let projected: Vec<Value> = exprs.iter().map(|e| e.eval(&row[..])).collect();
            push_row(projected, &steps[1..], sink);
        }
        Some(Step::Filter(pred)) => {
            if pred.eval_bool(&row[..]) {
                push_row(row, &steps[1..], sink);
            }
        }
        Some(Step::Probe { ht, key }) => {
            let k = key.eval(&row[..]);
            if k.is_null() {
                return;
            }
            if let Some(matches) = ht.get(&GroupKey::single(&k)) {
                for m in matches {
                    let mut joined = m.clone();
                    joined.extend(row.iter().cloned());
                    push_row(joined, &steps[1..], sink);
                }
            }
        }
    }
}

/// Run a fused pipeline: one loop over the scan, kernels first, survivors
/// through the steps into the sink. With an [`Overlay`], tombstoned rows
/// are skipped and the live tail rows run through the same steps after the
/// main loop (predicates interpreted: tail rows are decoded, not
/// dictionary-coded).
fn run_pipeline(
    table: &Table,
    overlay: Option<Overlay<'_>>,
    preds: &[Expr],
    steps: &[Step],
    needed: &[ColId],
    mut sink: Sink,
) -> Vec<Vec<Value>> {
    let kernels: Vec<PredKernel<'_>> = preds.iter().map(|p| compile_pred(table, p)).collect();
    let width = table.schema().len();
    let n = table.len();
    let dead: &[bool] = overlay.as_ref().map(|o| o.dead).unwrap_or(&[]);
    // Probe steps whose key reads columns this scan must supply are included
    // in `needed` by the caller.
    let wide = simd::wide_enabled(simd::mode());
    let mut stats = simd::ChunkStats::default();
    let zpreds = zone_preds(table, preds);
    let zones = prunable_zones(table, &zpreds);
    let (mut scanned, mut pruned) = (0u64, 0u64);
    for b in 0..n.div_ceil(ZONE_BLOCK_ROWS) {
        let (bs, be) = (b * ZONE_BLOCK_ROWS, ((b + 1) * ZONE_BLOCK_ROWS).min(n));
        if let Some(z) = &zones {
            if z.block_refuted(b, &zpreds) {
                pruned += 1;
                continue;
            }
            scanned += 1;
        }
        let mut sub = bs;
        while sub < be {
            let len = (be - sub).min(64);
            let mut mask = simd::ones(len);
            if !dead.is_empty() {
                for (j, &d) in dead[sub..sub + len].iter().enumerate() {
                    mask &= !((d as u64) << j);
                }
            }
            for k in &kernels {
                if mask == 0 {
                    break;
                }
                mask &= k.block_mask(sub, len, wide, &mut stats);
            }
            while mask != 0 {
                let i = sub + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let mut row = vec![Value::Null; width];
                for &c in needed {
                    row[c] = table.get(i, c).expect("in-range");
                }
                push_row(row, steps, &mut sink);
            }
            sub += len;
        }
    }
    stats.flush();
    simd::note_blocks(scanned, pruned);
    if let Some(o) = &overlay {
        for r in o.live_tail() {
            if !tail_row_passes(preds, r) {
                continue;
            }
            push_row(masked_tail_row(r, needed, width), steps, &mut sink);
        }
    }
    sink.finish()
}

/// The Fig.-2c special case: conjunctive typed predicates + scalar
/// column aggregates, no steps. Runs with **zero** per-survivor heap
/// allocation: values go straight from partition readers into accumulators.
enum AggReader<'t> {
    I32(I32Col<'t>, Option<ColId>),
    I64(I64Col<'t>, Option<ColId>),
    F64(F64Col<'t>, Option<ColId>),
    CountStar,
}

/// The literal Fig. 2c kernel: one `i32` comparison predicate, scalar `sum`s
/// over non-nullable `i32` columns. Compiles to a single branch + a handful
/// of adds per tuple — the code HyPer's LLVM backend would emit. With an
/// overlay, the typed loop additionally skips tombstones and the (decoded)
/// tail rows fold into the same running sums afterwards.
fn fig2c_kernel(
    table: &Table,
    overlay: Option<&Overlay<'_>>,
    preds: &[Expr],
    aggs: &[AggExpr],
) -> Option<Vec<Vec<Value>>> {
    if preds.len() != 1 {
        return None;
    }
    let k = compile_pred(table, &preds[0]);
    let (pr, op, pv) = match k {
        PredKernel::I32Cmp {
            r,
            op,
            v,
            null_col: None,
            ..
        } => (r, op, v),
        _ => return None,
    };
    let mut readers = Vec::with_capacity(aggs.len());
    let mut agg_cols = Vec::with_capacity(aggs.len());
    for a in aggs {
        match &a.arg {
            Some(Expr::Col(c)) if a.func == pdsm_plan::logical::AggFunc::Sum => {
                let def = &table.schema().columns()[*c];
                if def.ty != DataType::Int32 || def.nullable {
                    return None;
                }
                readers.push(table.i32_reader(*c));
                agg_cols.push(*c);
            }
            _ => return None,
        }
    }
    let n = table.len();
    let dead: &[bool] = overlay.map(|o| o.dead).unwrap_or(&[]);
    let mut sums = vec![0i64; readers.len()];
    let mut hits = 0u64;
    let wide = simd::wide_enabled(simd::mode());
    let mut stats = simd::ChunkStats::default();
    // Dense slices exist when each column lives alone in its partition
    // (column / suitable hybrid layouts) — that is where the fused wide
    // kernel applies. Tombstoned scans keep the scalar path.
    let pred_slice = pr.as_slice();
    let agg_slices: Option<Vec<&[i32]>> = readers.iter().map(|r| r.as_slice()).collect();
    let zpreds = zone_preds(table, preds);
    let zones = prunable_zones(table, &zpreds);
    let (mut scanned, mut pruned) = (0u64, 0u64);
    for b in 0..n.div_ceil(ZONE_BLOCK_ROWS) {
        let (bs, be) = (b * ZONE_BLOCK_ROWS, ((b + 1) * ZONE_BLOCK_ROWS).min(n));
        if let Some(z) = &zones {
            if z.block_refuted(b, &zpreds) {
                pruned += 1;
                continue;
            }
            scanned += 1;
        }
        if dead.is_empty() {
            if let (Some(ps), Some(ags)) = (pred_slice, agg_slices.as_ref()) {
                let tails: Vec<&[i32]> = ags.iter().map(|a| &a[bs..be]).collect();
                hits += simd::fused_filter_sum_i32(
                    &ps[bs..be],
                    op,
                    pv,
                    &tails,
                    &mut sums,
                    wide,
                    &mut stats,
                );
                continue;
            }
        }
        stats.scalar += (be - bs).div_ceil(simd::CHUNK_ROWS) as u64;
        fig2c_scan_rows(&pr, op, pv, &readers, dead, bs, be, &mut sums, &mut hits);
    }
    stats.flush();
    simd::note_blocks(scanned, pruned);
    fig2c_tail_fold(overlay, preds, &agg_cols, &mut sums, &mut hits);
    let row: Vec<Value> = sums
        .into_iter()
        .map(|s| {
            if hits == 0 {
                Value::Null
            } else {
                Value::Int64(s)
            }
        })
        .collect();
    Some(vec![row])
}

/// The row-at-a-time Fig.-2c loop, for strided columns and tombstoned
/// regions (the pre-SIMD kernel, kept verbatim as the fallback).
#[allow(clippy::too_many_arguments)]
fn fig2c_scan_rows(
    pr: &I32Col<'_>,
    op: CmpOp,
    pv: i64,
    readers: &[I32Col<'_>],
    dead: &[bool],
    start: usize,
    end: usize,
    sums: &mut [i64],
    hits: &mut u64,
) {
    match op {
        CmpOp::Eq => {
            for i in start..end {
                if (dead.is_empty() || !dead[i]) && pr.get(i) as i64 == pv {
                    *hits += 1;
                    for (s, r) in sums.iter_mut().zip(readers.iter()) {
                        *s += r.get(i) as i64;
                    }
                }
            }
        }
        _ => {
            for i in start..end {
                if (dead.is_empty() || !dead[i]) && op.matches((pr.get(i) as i64).cmp(&pv)) {
                    *hits += 1;
                    for (s, r) in sums.iter_mut().zip(readers.iter()) {
                        *s += r.get(i) as i64;
                    }
                }
            }
        }
    }
}

/// Typed reader over a single-column group key.
enum KeyReader<'t> {
    I32(I32Col<'t>),
    I64(I64Col<'t>),
    Code(U32Col<'t>, ColId),
}

/// Grouped-aggregation fast path: a single plain-column group key and
/// plain-column aggregate arguments. Keys hash as raw `u64`s (no per-row
/// `Value` allocation, no byte-key serialization) — the compiled engine's
/// group-by loop, as HyPer's generated code would do it. Overlay tombstones
/// are skipped in the typed loop and tail rows fold in afterwards; if a tail
/// row carries a group-key string the main dictionary has never seen, there
/// is no raw code for it and the caller falls back to the generic path.
fn grouped_agg_fast_path(
    table: &Table,
    overlay: Option<&Overlay<'_>>,
    preds: &[Expr],
    group_by: &[Expr],
    aggs: &[AggExpr],
) -> Option<Vec<Vec<Value>>> {
    let [Expr::Col(key_col)] = group_by else {
        return None;
    };
    let key_def = &table.schema().columns()[*key_col];
    if key_def.nullable {
        return None;
    }
    let key = match key_def.ty {
        DataType::Int32 => KeyReader::I32(table.i32_reader(*key_col)),
        DataType::Int64 => KeyReader::I64(table.i64_reader(*key_col)),
        DataType::Str => KeyReader::Code(table.str_code_reader(*key_col), *key_col),
        DataType::Float64 => return None,
    };
    if tail_defeats_raw_keys(table, *key_col, overlay) {
        return None;
    }
    let mut readers = Vec::with_capacity(aggs.len());
    for a in aggs {
        match &a.arg {
            None => readers.push(AggReader::CountStar),
            Some(Expr::Col(c)) => {
                let def = &table.schema().columns()[*c];
                let nc = def.nullable.then_some(*c);
                match def.ty {
                    DataType::Int32 => readers.push(AggReader::I32(table.i32_reader(*c), nc)),
                    DataType::Int64 => readers.push(AggReader::I64(table.i64_reader(*c), nc)),
                    DataType::Float64 => readers.push(AggReader::F64(table.f64_reader(*c), nc)),
                    DataType::Str => return None,
                }
            }
            Some(_) => return None,
        }
    }
    let kernels: Vec<PredKernel<'_>> = preds.iter().map(|p| compile_pred(table, p)).collect();
    if kernels
        .iter()
        .any(|k| matches!(k, PredKernel::Interp { .. }))
    {
        return None;
    }
    let mut groups: HashMap<u64, Vec<Accumulator>> = HashMap::new();
    let n = table.len();
    let dead: &[bool] = overlay.map(|o| o.dead).unwrap_or(&[]);
    let wide = simd::wide_enabled(simd::mode());
    let mut stats = simd::ChunkStats::default();
    let zpreds = zone_preds(table, preds);
    let zones = prunable_zones(table, &zpreds);
    let (mut scanned, mut pruned) = (0u64, 0u64);
    for b in 0..n.div_ceil(ZONE_BLOCK_ROWS) {
        let (bs, be) = (b * ZONE_BLOCK_ROWS, ((b + 1) * ZONE_BLOCK_ROWS).min(n));
        if let Some(z) = &zones {
            if z.block_refuted(b, &zpreds) {
                pruned += 1;
                continue;
            }
            scanned += 1;
        }
        let mut sub = bs;
        while sub < be {
            let len = (be - sub).min(64);
            let mut mask = simd::ones(len);
            if !dead.is_empty() {
                for (j, &d) in dead[sub..sub + len].iter().enumerate() {
                    mask &= !((d as u64) << j);
                }
            }
            for k in &kernels {
                if mask == 0 {
                    break;
                }
                mask &= k.block_mask(sub, len, wide, &mut stats);
            }
            while mask != 0 {
                let i = sub + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let raw_key = match &key {
                    KeyReader::I32(r) => r.get(i) as i64 as u64,
                    KeyReader::I64(r) => r.get(i) as u64,
                    KeyReader::Code(r, _) => r.get(i) as u64,
                };
                let accs = groups
                    .entry(raw_key)
                    .or_insert_with(|| aggs.iter().map(|a| Accumulator::new(a.func)).collect());
                for (acc, rd) in accs.iter_mut().zip(readers.iter()) {
                    match rd {
                        AggReader::CountStar => acc.update_i64(1),
                        AggReader::I32(r, nc) => {
                            if nc.map(|c| table.is_valid(i, c)).unwrap_or(true) {
                                acc.update_i64(r.get(i) as i64);
                            }
                        }
                        AggReader::I64(r, nc) => {
                            if nc.map(|c| table.is_valid(i, c)).unwrap_or(true) {
                                acc.update_i64(r.get(i));
                            }
                        }
                        AggReader::F64(r, nc) => {
                            if nc.map(|c| table.is_valid(i, c)).unwrap_or(true) {
                                acc.update_f64(r.get(i));
                            }
                        }
                    }
                }
            }
            sub += len;
        }
    }
    stats.flush();
    simd::note_blocks(scanned, pruned);
    if let Some(o) = overlay {
        for r in o.live_tail() {
            if !tail_row_passes(preds, r) {
                continue;
            }
            let raw_key = tail_raw_key(table, *key_col, &r.values()[*key_col])
                .expect("tail keys checked before entering the fast path");
            let accs = groups
                .entry(raw_key)
                .or_insert_with(|| aggs.iter().map(|a| Accumulator::new(a.func)).collect());
            agg_tail_update(aggs, r, accs);
        }
    }
    let decode_key = |raw: u64| -> Value {
        match &key {
            // Int32 keys must decode as Int32 to match the generic path.
            KeyReader::I32(_) => Value::Int32(raw as i64 as i32),
            KeyReader::I64(_) => Value::Int64(raw as i64),
            KeyReader::Code(_, c) => Value::Str(
                table
                    .dict(*c)
                    .expect("str col has dict")
                    .decode(raw as u32)
                    .to_owned(),
            ),
        }
    };
    Some(
        groups
            .into_iter()
            .map(|(raw, accs)| {
                let mut row = vec![decode_key(raw)];
                row.extend(accs.iter().map(|a| a.finish()));
                row
            })
            .collect(),
    )
}

fn scalar_agg_fast_path(
    table: &Table,
    overlay: Option<&Overlay<'_>>,
    preds: &[Expr],
    aggs: &[AggExpr],
) -> Option<Vec<Vec<Value>>> {
    if let Some(rows) = fig2c_kernel(table, overlay, preds, aggs) {
        return Some(rows);
    }
    // All aggregates must be over plain non-string columns (or count(*)).
    let mut readers = Vec::with_capacity(aggs.len());
    for a in aggs {
        match &a.arg {
            None => readers.push(AggReader::CountStar),
            Some(Expr::Col(c)) => {
                let def = &table.schema().columns()[*c];
                let nc = def.nullable.then_some(*c);
                match def.ty {
                    DataType::Int32 => readers.push(AggReader::I32(table.i32_reader(*c), nc)),
                    DataType::Int64 => readers.push(AggReader::I64(table.i64_reader(*c), nc)),
                    DataType::Float64 => readers.push(AggReader::F64(table.f64_reader(*c), nc)),
                    DataType::Str => return None,
                }
            }
            Some(_) => return None,
        }
    }
    let kernels: Vec<PredKernel<'_>> = preds.iter().map(|p| compile_pred(table, p)).collect();
    // Interpreted kernels would defeat the purpose; fall back.
    if kernels
        .iter()
        .any(|k| matches!(k, PredKernel::Interp { .. }))
    {
        return None;
    }
    let mut accs: Vec<Accumulator> = aggs.iter().map(|a| Accumulator::new(a.func)).collect();
    let n = table.len();
    let dead: &[bool] = overlay.map(|o| o.dead).unwrap_or(&[]);
    let wide = simd::wide_enabled(simd::mode());
    let mut stats = simd::ChunkStats::default();
    let zpreds = zone_preds(table, preds);
    let zones = prunable_zones(table, &zpreds);
    let (mut scanned, mut pruned) = (0u64, 0u64);
    for b in 0..n.div_ceil(ZONE_BLOCK_ROWS) {
        let (bs, be) = (b * ZONE_BLOCK_ROWS, ((b + 1) * ZONE_BLOCK_ROWS).min(n));
        if let Some(z) = &zones {
            if z.block_refuted(b, &zpreds) {
                pruned += 1;
                continue;
            }
            scanned += 1;
        }
        let mut sub = bs;
        while sub < be {
            let len = (be - sub).min(64);
            let mut mask = simd::ones(len);
            if !dead.is_empty() {
                for (j, &d) in dead[sub..sub + len].iter().enumerate() {
                    mask &= !((d as u64) << j);
                }
            }
            for k in &kernels {
                if mask == 0 {
                    break;
                }
                mask &= k.block_mask(sub, len, wide, &mut stats);
            }
            while mask != 0 {
                let i = sub + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                for (acc, rd) in accs.iter_mut().zip(readers.iter()) {
                    match rd {
                        AggReader::CountStar => acc.update_i64(1),
                        AggReader::I32(r, nc) => {
                            if nc.map(|c| table.is_valid(i, c)).unwrap_or(true) {
                                acc.update_i64(r.get(i) as i64);
                            }
                        }
                        AggReader::I64(r, nc) => {
                            if nc.map(|c| table.is_valid(i, c)).unwrap_or(true) {
                                acc.update_i64(r.get(i));
                            }
                        }
                        AggReader::F64(r, nc) => {
                            if nc.map(|c| table.is_valid(i, c)).unwrap_or(true) {
                                acc.update_f64(r.get(i));
                            }
                        }
                    }
                }
            }
            sub += len;
        }
    }
    stats.flush();
    simd::note_blocks(scanned, pruned);
    if let Some(o) = overlay {
        for r in o.live_tail() {
            if !tail_row_passes(preds, r) {
                continue;
            }
            agg_tail_update(aggs, r, &mut accs);
        }
    }
    Some(vec![accs.iter().map(|a| a.finish()).collect()])
}

// ---------------------------------------------------------------------------
// compilation / execution
// ---------------------------------------------------------------------------

fn exec(
    plan: &LogicalPlan,
    db: &dyn TableProvider,
    required: &[(String, Vec<ColId>)],
) -> Result<Vec<Vec<Value>>, ExecError> {
    let frag = lower(plan, db, required)?;
    Ok(match frag {
        Fragment::Rows(rows) => rows,
        Fragment::Pipe {
            table,
            preds,
            steps,
        } => {
            let t = db
                .table(&table)
                .ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
            let needed = needed_cols(&table, t, required);
            run_pipeline(
                t,
                db.overlay(&table),
                &preds,
                &steps,
                &needed,
                Sink::Collect(Vec::new()),
            )
        }
    })
}

fn needed_cols(name: &str, t: &Table, required: &[(String, Vec<ColId>)]) -> Vec<ColId> {
    required
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, c)| c.clone())
        .unwrap_or_else(|| (0..t.schema().len()).collect())
}

/// Lower a plan into a fragment, executing pipeline breakers on the way.
fn lower(
    plan: &LogicalPlan,
    db: &dyn TableProvider,
    required: &[(String, Vec<ColId>)],
) -> Result<Fragment, ExecError> {
    match plan {
        LogicalPlan::Scan { table } => {
            db.table(table)
                .ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
            Ok(Fragment::Pipe {
                table: table.clone(),
                preds: Vec::new(),
                steps: Vec::new(),
            })
        }
        LogicalPlan::Select { input, pred, .. } => {
            let frag = lower(input, db, required)?;
            Ok(match frag {
                Fragment::Pipe {
                    table,
                    mut preds,
                    mut steps,
                } => {
                    if steps.is_empty() {
                        preds.extend(conjuncts(pred).into_iter().cloned());
                    } else {
                        steps.push(Step::Filter(pred.clone()));
                    }
                    Fragment::Pipe {
                        table,
                        preds,
                        steps,
                    }
                }
                Fragment::Rows(rows) => Fragment::Rows(
                    rows.into_iter()
                        .filter(|r| pred.eval_bool(&r[..]))
                        .collect(),
                ),
            })
        }
        LogicalPlan::Project { input, exprs } => {
            let frag = lower(input, db, required)?;
            Ok(match frag {
                Fragment::Pipe {
                    table,
                    preds,
                    mut steps,
                } => {
                    steps.push(Step::Project(exprs.clone()));
                    Fragment::Pipe {
                        table,
                        preds,
                        steps,
                    }
                }
                Fragment::Rows(rows) => Fragment::Rows(
                    rows.into_iter()
                        .map(|r| exprs.iter().map(|e| e.eval(&r[..])).collect())
                        .collect(),
                ),
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let frag = lower(input, db, required)?;
            let rows = match frag {
                Fragment::Pipe {
                    table,
                    preds,
                    steps,
                } => {
                    let t = db
                        .table(&table)
                        .ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
                    let overlay = db.overlay(&table);
                    // Fig. 2c fast path: no steps, scalar column aggregates.
                    if steps.is_empty() && group_by.is_empty() {
                        if let Some(rows) = scalar_agg_fast_path(t, overlay.as_ref(), &preds, aggs)
                        {
                            return Ok(Fragment::Rows(rows));
                        }
                    }
                    // Grouped fast path: single plain-column key.
                    if steps.is_empty() && !group_by.is_empty() {
                        if let Some(rows) =
                            grouped_agg_fast_path(t, overlay.as_ref(), &preds, group_by, aggs)
                        {
                            return Ok(Fragment::Rows(rows));
                        }
                    }
                    let needed = needed_cols(&table, t, required);
                    run_pipeline(
                        t,
                        overlay,
                        &preds,
                        &steps,
                        &needed,
                        Sink::Agg {
                            group_by: group_by.clone(),
                            aggs: aggs.clone(),
                            groups: HashMap::new(),
                        },
                    )
                }
                Fragment::Rows(rows) => {
                    let mut sink = Sink::Agg {
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                        groups: HashMap::new(),
                    };
                    for r in rows {
                        sink.consume(r);
                    }
                    sink.finish()
                }
            };
            Ok(Fragment::Rows(rows))
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            // Build side is always materialized (pipeline breaker).
            let build_rows = exec(left, db, required)?;
            let mut ht: HashMap<GroupKey, Vec<Vec<Value>>> = HashMap::new();
            for r in build_rows {
                let k = left_key.eval(&r[..]);
                if k.is_null() {
                    continue;
                }
                ht.entry(GroupKey::single(&k)).or_default().push(r);
            }
            let frag = lower(right, db, required)?;
            Ok(match frag {
                Fragment::Pipe {
                    table,
                    preds,
                    mut steps,
                } => {
                    // Probe key is evaluated against the probe-side row; the
                    // produced row is build ++ probe, so later steps see the
                    // concatenated space. The probe-side row arrives in its
                    // base space, so the key needs no shifting — but steps
                    // after the probe do (they already operate positionally).
                    steps.push(Step::Probe {
                        ht,
                        key: right_key.clone(),
                    });
                    Fragment::Pipe {
                        table,
                        preds,
                        steps,
                    }
                }
                Fragment::Rows(rows) => {
                    let mut out = Vec::new();
                    for r in rows {
                        let k = right_key.eval(&r[..]);
                        if k.is_null() {
                            continue;
                        }
                        if let Some(ms) = ht.get(&GroupKey::single(&k)) {
                            for m in ms {
                                let mut j = m.clone();
                                j.extend(r.iter().cloned());
                                out.push(j);
                            }
                        }
                    }
                    Fragment::Rows(out)
                }
            })
        }
        LogicalPlan::Sort { input, keys } => {
            let mut rows = exec(input, db, required)?;
            rows.sort_by(|a, b| {
                for k in keys {
                    let ord = cmp_values(&k.expr.eval(&a[..]), &k.expr.eval(&b[..]));
                    let ord = if k.asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(Fragment::Rows(rows))
        }
        LogicalPlan::Limit { input, n } => {
            let mut rows = exec(input, db, required)?;
            rows.truncate(*n);
            Ok(Fragment::Rows(rows))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::BulkEngine;
    use crate::volcano::VolcanoEngine;
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_plan::logical::AggFunc;
    use pdsm_storage::{ColumnDef, Schema};

    fn db() -> HashMap<String, Table> {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int32),
                ColumnDef::new("b", DataType::Int32),
                ColumnDef::new("s", DataType::Str),
                ColumnDef::nullable("f", DataType::Float64),
            ]),
        );
        for i in 0..200 {
            t.insert(&[
                Value::Int32(i),
                Value::Int32(i % 10),
                Value::Str(format!("name-{}", i % 5)),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Float64(i as f64 / 2.0)
                },
            ])
            .unwrap();
        }
        let mut m = HashMap::new();
        m.insert("t".to_string(), t);
        m
    }

    #[test]
    fn fig2c_fast_path_sums() {
        // select sum(a), count(*) from t where b = 3 — the Fig. 2c loop
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(1).eq(Expr::lit(3)))
            .aggregate(
                vec![],
                vec![
                    AggExpr::new(AggFunc::Sum, Expr::col(0)),
                    AggExpr::count_star(),
                ],
            )
            .build();
        let out = CompiledEngine.execute(&plan, &db()).unwrap();
        let expect: i64 = (0..200).filter(|i| i % 10 == 3).sum::<i64>();
        assert_eq!(out.rows[0][0], Value::Int64(expect));
        assert_eq!(out.rows[0][1], Value::Int64(20));
    }

    #[test]
    fn fast_path_skips_nulls() {
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(1).lt(Expr::lit(5)))
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Count, Expr::col(3))])
            .build();
        let d = db();
        let a = CompiledEngine.execute(&plan, &d).unwrap();
        let b = VolcanoEngine.execute(&plan, &d).unwrap();
        a.assert_same(&b, "null handling in fast path");
    }

    #[test]
    fn string_predicates_via_codes() {
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(2).like("name-2").or(Expr::col(2).like("name-3")))
            .aggregate(vec![], vec![AggExpr::count_star()])
            .build();
        let d = db();
        let a = CompiledEngine.execute(&plan, &d).unwrap();
        let b = VolcanoEngine.execute(&plan, &d).unwrap();
        a.assert_same(&b, "disjunctive LIKE");
        assert_eq!(a.rows[0][0], Value::Int64(80));
    }

    #[test]
    fn str_eq_absent_matches_nothing() {
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(2).eq(Expr::lit("no-such-name")))
            .project(vec![Expr::col(0)])
            .build();
        let out = CompiledEngine.execute(&plan, &db()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn differential_group_by() {
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(0).ge(Expr::lit(40)))
            .aggregate(
                vec![Expr::col(2)],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(1)),
                    AggExpr::new(AggFunc::Avg, Expr::col(3)),
                ],
            )
            .build();
        let d = db();
        let a = CompiledEngine.execute(&plan, &d).unwrap();
        let b = VolcanoEngine.execute(&plan, &d).unwrap();
        let c = BulkEngine.execute(&plan, &d).unwrap();
        a.assert_same(&b, "compiled vs volcano");
        a.assert_same(&c, "compiled vs bulk");
    }

    #[test]
    fn fused_join_probe() {
        // self join: filtered build side, full probe side
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(1).eq(Expr::lit(7)))
            .join(QueryBuilder::scan("t").build(), Expr::col(0), Expr::col(0))
            .project(vec![Expr::col(0), Expr::col(4 + 2)])
            .build();
        let d = db();
        let a = CompiledEngine.execute(&plan, &d).unwrap();
        let b = VolcanoEngine.execute(&plan, &d).unwrap();
        a.assert_same(&b, "fused join");
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn join_then_aggregate_pipeline() {
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(1).le(Expr::lit(2)))
            .join(QueryBuilder::scan("t").build(), Expr::col(0), Expr::col(0))
            .aggregate(
                vec![Expr::col(4 + 1)],
                vec![AggExpr::new(AggFunc::Sum, Expr::col(0))],
            )
            .build();
        let d = db();
        let a = CompiledEngine.execute(&plan, &d).unwrap();
        let b = VolcanoEngine.execute(&plan, &d).unwrap();
        a.assert_same(&b, "join+agg");
    }

    #[test]
    fn sort_limit_exact_order() {
        let plan = QueryBuilder::scan("t")
            .project(vec![Expr::col(1), Expr::col(0)])
            .sort(vec![(Expr::col(0), true), (Expr::col(1), false)])
            .limit(11)
            .build();
        let d = db();
        let a = CompiledEngine.execute(&plan, &d).unwrap();
        let b = VolcanoEngine.execute(&plan, &d).unwrap();
        assert_eq!(a.rows, b.rows);
    }
}
