//! Query results and helpers for order-insensitive comparison.

use pdsm_storage::Value;

/// A materialized query result: rows of decoded values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryOutput {
    pub rows: Vec<Vec<Value>>,
}

/// A query result with its output schema: the column names of the plan
/// root plus the materialized rows. This is what `Database::run` /
/// `Database::execute` return — network sessions need the header to frame
/// results, while row-only consumers keep working through `Deref` to
/// [`QueryOutput`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names, in plan-root order (`SELECT` list order).
    pub columns: Vec<String>,
    /// The materialized rows.
    pub output: QueryOutput,
}

impl QueryResult {
    /// Wrap an engine's output with its column names.
    pub fn new(columns: Vec<String>, output: QueryOutput) -> Self {
        QueryResult { columns, output }
    }

    /// Discard the header, keeping only the rows.
    pub fn into_output(self) -> QueryOutput {
        self.output
    }
}

impl std::ops::Deref for QueryResult {
    type Target = QueryOutput;
    fn deref(&self) -> &QueryOutput {
        &self.output
    }
}

impl std::ops::DerefMut for QueryResult {
    fn deref_mut(&mut self) -> &mut QueryOutput {
        &mut self.output
    }
}

impl AsRef<QueryOutput> for QueryResult {
    fn as_ref(&self) -> &QueryOutput {
        &self.output
    }
}

impl AsRef<QueryOutput> for QueryOutput {
    fn as_ref(&self) -> &QueryOutput {
        self
    }
}

impl QueryOutput {
    /// Empty result.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows rendered to strings and sorted — a canonical form for comparing
    /// engines whose output order may legitimately differ (hash aggregation,
    /// join order). Floats are rounded to 9 decimal places so accumulation
    /// order cannot flip a comparison.
    pub fn normalized(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .rows
            .iter()
            .map(|r| r.iter().map(render).collect::<Vec<_>>().join("|"))
            .collect();
        out.sort();
        out
    }

    /// Assert two outputs are equal up to row order (panics with a diff).
    /// Accepts either [`QueryOutput`] or [`QueryResult`] on both sides.
    pub fn assert_same(&self, other: &impl AsRef<QueryOutput>, context: &str) {
        let a = self.normalized();
        let b = other.as_ref().normalized();
        if a != b {
            let only_a: Vec<_> = a.iter().filter(|r| !b.contains(r)).take(5).collect();
            let only_b: Vec<_> = b.iter().filter(|r| !a.contains(r)).take(5).collect();
            panic!(
                "{context}: outputs differ ({} vs {} rows)\n only in left: {only_a:?}\n only in right: {only_b:?}",
                a.len(),
                b.len()
            );
        }
    }
}

fn render(v: &Value) -> String {
    match v {
        Value::Float64(f) => format!("{:.9}", f),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_ignores_row_order() {
        let a = QueryOutput {
            rows: vec![
                vec![Value::Int32(1), Value::from("x")],
                vec![Value::Int32(2), Value::from("y")],
            ],
        };
        let b = QueryOutput {
            rows: vec![
                vec![Value::Int32(2), Value::from("y")],
                vec![Value::Int32(1), Value::from("x")],
            ],
        };
        assert_eq!(a.normalized(), b.normalized());
        a.assert_same(&b, "swap");
    }

    #[test]
    fn float_rounding_tolerates_accumulation_order() {
        let a = QueryOutput {
            rows: vec![vec![Value::Float64(0.1 + 0.2)]],
        };
        let b = QueryOutput {
            rows: vec![vec![Value::Float64(0.3)]],
        };
        a.assert_same(&b, "float");
    }

    #[test]
    #[should_panic(expected = "outputs differ")]
    fn mismatch_detected() {
        let a = QueryOutput {
            rows: vec![vec![Value::Int32(1)]],
        };
        let b = QueryOutput { rows: vec![] };
        a.assert_same(&b, "boom");
    }
}
