//! Canonical group/join keys shared by all engines.
//!
//! Engines must agree byte-for-byte on key identity so differential tests
//! hold. Keys serialize values into a compact byte form: integers widen to
//! `i64`, floats keep their bit pattern, strings are length-prefixed UTF-8.

use pdsm_storage::Value;

/// A hashable, equality-comparable key over a tuple of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupKey(Vec<u8>);

impl GroupKey {
    /// Build from a slice of values.
    pub fn of(values: &[Value]) -> Self {
        let mut buf = Vec::with_capacity(values.len() * 9);
        for v in values {
            encode(v, &mut buf);
        }
        GroupKey(buf)
    }

    /// Build from one value.
    pub fn single(v: &Value) -> Self {
        Self::of(std::slice::from_ref(v))
    }
}

fn encode(v: &Value, buf: &mut Vec<u8>) {
    match v {
        Value::Null => buf.push(0),
        Value::Int32(x) => {
            buf.push(1);
            buf.extend((*x as i64).to_le_bytes());
        }
        Value::Int64(x) => {
            buf.push(1); // same tag as Int32: cross-width equality
            buf.extend(x.to_le_bytes());
        }
        Value::Float64(x) => {
            buf.push(2);
            // normalize -0.0 so join keys match arithmetic results
            let x = if *x == 0.0 { 0.0 } else { *x };
            buf.extend(x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(3);
            buf.extend((s.len() as u32).to_le_bytes());
            buf.extend(s.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_equal_keys() {
        assert_eq!(
            GroupKey::of(&[Value::Int32(5), Value::from("a")]),
            GroupKey::of(&[Value::Int32(5), Value::from("a")])
        );
        assert_ne!(
            GroupKey::of(&[Value::Int32(5)]),
            GroupKey::of(&[Value::Int32(6)])
        );
    }

    #[test]
    fn int_widths_unify() {
        assert_eq!(
            GroupKey::single(&Value::Int32(7)),
            GroupKey::single(&Value::Int64(7))
        );
    }

    #[test]
    fn negative_zero_normalized() {
        assert_eq!(
            GroupKey::single(&Value::Float64(-0.0)),
            GroupKey::single(&Value::Float64(0.0))
        );
    }

    #[test]
    fn null_distinct_from_zero() {
        assert_ne!(
            GroupKey::single(&Value::Null),
            GroupKey::single(&Value::Int32(0))
        );
    }

    #[test]
    fn string_lengths_prefixed() {
        // ("ab","c") must differ from ("a","bc")
        assert_ne!(
            GroupKey::of(&[Value::from("ab"), Value::from("c")]),
            GroupKey::of(&[Value::from("a"), Value::from("bc")])
        );
    }
}
