//! The Volcano (iterator) engine — the CPU-inefficient baseline of §II-A.
//!
//! Every operator is a boxed trait object; `next()` is a virtual call per
//! tuple per operator; predicates and projections are boxed closures
//! ("configured" operators, exactly the function-pointer wiring the paper
//! describes); tuples are heap-allocated `Vec<Value>`s. None of this is
//! accidental sloppiness — it is the faithful reconstruction of the model
//! whose cost the paper quantifies. Do not "optimize" it.

use crate::engine::{Accumulator, Engine, ExecError, Overlay, TableProvider};
use crate::keys::GroupKey;
use crate::result::QueryOutput;
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::{AggExpr, LogicalPlan, SortKey};
use pdsm_storage::types::cmp_values;
use pdsm_storage::{ColId, Table, Value};
use std::collections::HashMap;

/// Tuple-at-a-time operator interface.
trait Operator {
    /// Produce the next tuple, or `None` when exhausted.
    fn next(&mut self) -> Option<Vec<Value>>;
}

/// Scan over a table, materializing the listed columns per tuple (positions
/// not listed are filled with NULL so column indexes stay schema-positional).
/// With a visibility [`Overlay`], tombstoned main rows are skipped and the
/// live tail rows are emitted after the main store, in append order.
struct ScanOp<'a> {
    table: &'a Table,
    overlay: Option<Overlay<'a>>,
    needed: Vec<ColId>,
    width: usize,
    row: usize,
    tail_row: usize,
}

impl Operator for ScanOp<'_> {
    fn next(&mut self) -> Option<Vec<Value>> {
        while self.row < self.table.len() {
            let i = self.row;
            self.row += 1;
            if let Some(o) = &self.overlay {
                if o.is_dead(i) {
                    continue;
                }
            }
            let mut out = vec![Value::Null; self.width];
            for &c in &self.needed {
                out[c] = self.table.get(i, c).expect("in-range");
            }
            return Some(out);
        }
        let o = self.overlay.as_ref()?;
        while self.tail_row < o.tail.len() {
            let k = self.tail_row;
            self.tail_row += 1;
            if !o.tail_alive.is_empty() && !o.tail_alive[k] {
                continue;
            }
            return Some(crate::engine::masked_tail_row(
                &o.tail[k],
                &self.needed,
                self.width,
            ));
        }
        None
    }
}

/// Boxed row predicate — the per-tuple indirect call Volcano pays by design.
type RowPred<'a> = Box<dyn Fn(&[Value]) -> bool + 'a>;
/// Boxed row expression evaluator.
type RowEval<'a> = Box<dyn Fn(&[Value]) -> Value + 'a>;

/// Filter with a boxed predicate closure.
struct SelectOp<'a> {
    input: Box<dyn Operator + 'a>,
    pred: RowPred<'a>,
}

impl Operator for SelectOp<'_> {
    fn next(&mut self) -> Option<Vec<Value>> {
        loop {
            let t = self.input.next()?;
            if (self.pred)(&t) {
                return Some(t);
            }
        }
    }
}

/// Projection with boxed expression evaluators.
struct ProjectOp<'a> {
    input: Box<dyn Operator + 'a>,
    exprs: Vec<RowEval<'a>>,
}

impl Operator for ProjectOp<'_> {
    fn next(&mut self) -> Option<Vec<Value>> {
        let t = self.input.next()?;
        Some(self.exprs.iter().map(|e| e(&t)).collect())
    }
}

/// Blocking hash aggregation.
struct AggregateOp<'a> {
    input: Option<Box<dyn Operator + 'a>>,
    group_by: Vec<Expr>,
    aggs: Vec<AggExpr>,
    buffered: std::vec::IntoIter<Vec<Value>>,
    done: bool,
}

impl AggregateOp<'_> {
    fn drain(&mut self) {
        let mut input = self.input.take().expect("drained once");
        let mut groups: HashMap<GroupKey, (Vec<Value>, Vec<Accumulator>)> = HashMap::new();
        while let Some(t) = input.next() {
            let key_vals: Vec<Value> = self.group_by.iter().map(|g| g.eval(&t[..])).collect();
            let key = GroupKey::of(&key_vals);
            let entry = groups.entry(key).or_insert_with(|| {
                (
                    key_vals.clone(),
                    self.aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
                )
            });
            for (acc, spec) in entry.1.iter_mut().zip(&self.aggs) {
                match &spec.arg {
                    Some(e) => acc.update(&e.eval(&t[..])),
                    None => acc.update(&Value::Int32(1)), // count(*)
                }
            }
        }
        // Scalar aggregation over empty input still yields one row.
        if groups.is_empty() && self.group_by.is_empty() {
            let accs: Vec<Accumulator> =
                self.aggs.iter().map(|a| Accumulator::new(a.func)).collect();
            let row: Vec<Value> = accs.iter().map(|a| a.finish()).collect();
            self.buffered = vec![row].into_iter();
            return;
        }
        let rows: Vec<Vec<Value>> = groups
            .into_values()
            .map(|(mut keys, accs)| {
                keys.extend(accs.iter().map(|a| a.finish()));
                keys
            })
            .collect();
        self.buffered = rows.into_iter();
    }
}

impl Operator for AggregateOp<'_> {
    fn next(&mut self) -> Option<Vec<Value>> {
        if !self.done {
            self.drain();
            self.done = true;
        }
        self.buffered.next()
    }
}

/// Blocking hash join (build left, probe right).
struct JoinOp<'a> {
    left: Option<Box<dyn Operator + 'a>>,
    right: Box<dyn Operator + 'a>,
    left_key: Expr,
    right_key: Expr,
    ht: HashMap<GroupKey, Vec<Vec<Value>>>,
    built: bool,
    pending: Vec<Vec<Value>>,
}

impl Operator for JoinOp<'_> {
    fn next(&mut self) -> Option<Vec<Value>> {
        if !self.built {
            let mut left = self.left.take().expect("build once");
            while let Some(t) = left.next() {
                let k = self.left_key.eval(&t[..]);
                if k.is_null() {
                    continue;
                }
                self.ht.entry(GroupKey::single(&k)).or_default().push(t);
            }
            self.built = true;
        }
        loop {
            if let Some(row) = self.pending.pop() {
                return Some(row);
            }
            let probe = self.right.next()?;
            let k = self.right_key.eval(&probe[..]);
            if k.is_null() {
                continue;
            }
            if let Some(matches) = self.ht.get(&GroupKey::single(&k)) {
                for m in matches {
                    let mut row = m.clone();
                    row.extend(probe.iter().cloned());
                    self.pending.push(row);
                }
            }
        }
    }
}

/// Blocking sort.
struct SortOp<'a> {
    input: Option<Box<dyn Operator + 'a>>,
    keys: Vec<SortKey>,
    buffered: std::vec::IntoIter<Vec<Value>>,
    done: bool,
}

impl Operator for SortOp<'_> {
    fn next(&mut self) -> Option<Vec<Value>> {
        if !self.done {
            let mut input = self.input.take().expect("drained once");
            let mut rows = Vec::new();
            while let Some(t) = input.next() {
                rows.push(t);
            }
            rows.sort_by(|a, b| {
                for k in &self.keys {
                    let (va, vb) = (k.expr.eval(&a[..]), k.expr.eval(&b[..]));
                    let ord = cmp_values(&va, &vb);
                    let ord = if k.asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.buffered = rows.into_iter();
            self.done = true;
        }
        self.buffered.next()
    }
}

struct LimitOp<'a> {
    input: Box<dyn Operator + 'a>,
    left: usize,
}

impl Operator for LimitOp<'_> {
    fn next(&mut self) -> Option<Vec<Value>> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        self.input.next()
    }
}

/// The Volcano engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct VolcanoEngine;

impl Engine for VolcanoEngine {
    fn name(&self) -> &'static str {
        "volcano"
    }

    fn execute(
        &self,
        plan: &LogicalPlan,
        db: &dyn TableProvider,
    ) -> Result<QueryOutput, ExecError> {
        // Compute per-table required columns once, then let scans decode
        // only those.
        let width = |t: &str| db.table(t).map(|tb| tb.schema().len()).unwrap_or(0);
        let required = plan.required_columns(&width);
        let mut root = self.compile_with_pruning(plan, db, &required)?;
        let mut out = QueryOutput::new();
        while let Some(t) = root.next() {
            out.rows.push(t);
        }
        Ok(out)
    }
}

impl VolcanoEngine {
    fn compile_with_pruning<'a>(
        &self,
        plan: &'a LogicalPlan,
        db: &'a dyn TableProvider,
        required: &[(String, Vec<ColId>)],
    ) -> Result<Box<dyn Operator + 'a>, ExecError> {
        if let LogicalPlan::Scan { table } = plan {
            let t = db
                .table(table)
                .ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
            let needed = required
                .iter()
                .find(|(n, _)| n == table)
                .map(|(_, c)| c.clone())
                .unwrap_or_else(|| (0..t.schema().len()).collect());
            return Ok(Box::new(ScanOp {
                table: t,
                overlay: db.overlay(table),
                needed,
                width: t.schema().len(),
                row: 0,
                tail_row: 0,
            }));
        }
        // Non-scan nodes: compile children through this same path.
        Ok(match plan {
            LogicalPlan::Scan { .. } => unreachable!("handled above"),
            LogicalPlan::Select { input, pred, .. } => {
                let child = self.compile_with_pruning(input, db, required)?;
                let p = pred.clone();
                Box::new(SelectOp {
                    input: child,
                    pred: Box::new(move |t| p.eval_bool(t)),
                })
            }
            LogicalPlan::Project { input, exprs } => {
                let child = self.compile_with_pruning(input, db, required)?;
                let fns: Vec<RowEval<'_>> = exprs
                    .iter()
                    .map(|e| {
                        let e = e.clone();
                        Box::new(move |t: &[Value]| e.eval(t)) as RowEval<'_>
                    })
                    .collect();
                Box::new(ProjectOp {
                    input: child,
                    exprs: fns,
                })
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => Box::new(AggregateOp {
                input: Some(self.compile_with_pruning(input, db, required)?),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                buffered: Vec::new().into_iter(),
                done: false,
            }),
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => Box::new(JoinOp {
                left: Some(self.compile_with_pruning(left, db, required)?),
                right: self.compile_with_pruning(right, db, required)?,
                left_key: left_key.clone(),
                right_key: right_key.clone(),
                ht: HashMap::new(),
                built: false,
                pending: Vec::new(),
            }),
            LogicalPlan::Sort { input, keys } => Box::new(SortOp {
                input: Some(self.compile_with_pruning(input, db, required)?),
                keys: keys.clone(),
                buffered: Vec::new().into_iter(),
                done: false,
            }),
            LogicalPlan::Limit { input, n } => Box::new(LimitOp {
                input: self.compile_with_pruning(input, db, required)?,
                left: *n,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_plan::logical::AggFunc;
    use pdsm_storage::{ColumnDef, DataType, Schema};

    fn db() -> HashMap<String, Table> {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int32),
                ColumnDef::new("b", DataType::Int32),
                ColumnDef::new("s", DataType::Str),
            ]),
        );
        for i in 0..100 {
            t.insert(&[
                Value::Int32(i),
                Value::Int32(i % 10),
                Value::Str(format!("name-{}", i % 3)),
            ])
            .unwrap();
        }
        let mut m = HashMap::new();
        m.insert("t".to_string(), t);
        m
    }

    #[test]
    fn scan_filter_project() {
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(1).eq(Expr::lit(3)))
            .project(vec![Expr::col(0)])
            .build();
        let out = VolcanoEngine.execute(&plan, &db()).unwrap();
        assert_eq!(out.len(), 10);
        assert!(out.rows.iter().all(|r| match &r[0] {
            Value::Int32(v) => v % 10 == 3,
            _ => false,
        }));
    }

    #[test]
    fn aggregate_with_groups() {
        let plan = QueryBuilder::scan("t")
            .aggregate(
                vec![Expr::col(2)],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(0)),
                ],
            )
            .build();
        let out = VolcanoEngine.execute(&plan, &db()).unwrap();
        assert_eq!(out.len(), 3);
        let total: i64 = out.rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn scalar_aggregate_on_empty_input() {
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(0).eq(Expr::lit(-1)))
            .aggregate(
                vec![],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(0)),
                ],
            )
            .build();
        let out = VolcanoEngine.execute(&plan, &db()).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int64(0), Value::Null]]);
    }

    #[test]
    fn join_and_sort_and_limit() {
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(1).eq(Expr::lit(0)))
            .join(QueryBuilder::scan("t").build(), Expr::col(0), Expr::col(0))
            .project(vec![Expr::col(0), Expr::col(5)])
            .sort(vec![(Expr::col(0), false)])
            .limit(3)
            .build();
        let out = VolcanoEngine.execute(&plan, &db()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.rows[0][0], Value::Int32(90));
    }

    #[test]
    fn unknown_table_errors() {
        let plan = QueryBuilder::scan("nope").build();
        assert_eq!(
            VolcanoEngine.execute(&plan, &db()).unwrap_err(),
            ExecError::UnknownTable("nope".into())
        );
    }
}
