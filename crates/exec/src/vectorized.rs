//! The vectorized engine — MonetDB/X100-style block-at-a-time processing
//! (§II-A of the paper, citing Zukowski et al. \[35\] and the
//! vectorization-vs-compilation study of Sompolski et al. \[32\]).
//!
//! Between bulk and compiled: primitives are invoked **once per vector**
//! (amortizing interpretation overhead like bulk) but intermediates —
//! selection vectors of positions — stay CPU-cache resident instead of
//! being materialized in full (unlike bulk). The engine processes a scan in
//! blocks of [`VectorizedEngine::vector_size`] tuples; each predicate
//! kernel filters the block's selection vector in one call.
//!
//! Scope: the vectorized model's distinguishing behaviour lives in
//! scan-filter-aggregate/project pipelines, which is what this engine
//! implements (the Fig. 3 query family and the single-table benchmark
//! queries). Joins and sorts return [`ExecError::Unsupported`]; the paper's
//! comparisons involving those operators use the other three engines.

use crate::compiled::{compile_pred, conjuncts, PredKernel};
use crate::engine::{
    masked_tail_row, tail_row_passes, Accumulator, Engine, ExecError, TableProvider,
};
use crate::keys::GroupKey;
use crate::result::QueryOutput;
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::{AggExpr, LogicalPlan};
use pdsm_storage::{ColId, Table, Value};
use std::collections::HashMap;

/// Block-at-a-time engine with a configurable vector size.
#[derive(Debug, Clone, Copy)]
pub struct VectorizedEngine {
    /// Tuples per vector. X100's sweet spot is around 1 k — large enough to
    /// amortize per-primitive dispatch, small enough that positions and
    /// fetched values stay in L1/L2 (the `vector_size` ablation bench sweeps
    /// this).
    pub vector_size: usize,
}

impl Default for VectorizedEngine {
    fn default() -> Self {
        VectorizedEngine { vector_size: 1024 }
    }
}

impl VectorizedEngine {
    /// Engine with an explicit vector size (for the ablation).
    pub fn with_vector_size(vector_size: usize) -> Self {
        assert!(vector_size > 0);
        VectorizedEngine { vector_size }
    }

    /// Can this engine run `plan`? True exactly for the single-table
    /// `[Limit]([Project|Aggregate](Select*(Scan)))` pipelines the
    /// vectorized model implements; joins and sorts are not vectorized.
    /// Planners and differential-test drivers consult this instead of
    /// probing for [`ExecError::Unsupported`] at run time.
    pub fn supports(plan: &LogicalPlan) -> bool {
        recognize(plan).is_ok()
    }
}

impl Engine for VectorizedEngine {
    fn name(&self) -> &'static str {
        "vectorized"
    }

    fn execute(
        &self,
        plan: &LogicalPlan,
        db: &dyn TableProvider,
    ) -> Result<QueryOutput, ExecError> {
        let width = |t: &str| db.table(t).map(|tb| tb.schema().len()).unwrap_or(0);
        let required = plan.required_columns(&width);
        let shape = recognize(plan)?;
        let t = db
            .table(shape.table)
            .ok_or_else(|| ExecError::UnknownTable(shape.table.to_string()))?;
        let needed: Vec<ColId> = required
            .iter()
            .find(|(n, _)| n == shape.table)
            .map(|(_, c)| c.clone())
            .unwrap_or_else(|| (0..t.schema().len()).collect());
        let kernels: Vec<PredKernel<'_>> = shape.preds.iter().map(|p| compile_pred(t, p)).collect();

        let overlay = db.overlay(shape.table);
        let mut out = QueryOutput::new();
        let mut agg_state: HashMap<GroupKey, (Vec<Value>, Vec<Accumulator>)> = HashMap::new();
        let n = t.len();
        let vs = self.vector_size;
        let feed =
            |row: Vec<Value>,
             out: &mut QueryOutput,
             agg_state: &mut HashMap<GroupKey, (Vec<Value>, Vec<Accumulator>)>| {
                match &shape.sink {
                    VecSink::Collect(exprs) => {
                        out.rows.push(match exprs {
                            Some(es) => es.iter().map(|e| e.eval(&row)).collect(),
                            None => row,
                        });
                    }
                    VecSink::Aggregate { group_by, aggs } => {
                        let key_vals: Vec<Value> = group_by.iter().map(|g| g.eval(&row)).collect();
                        let entry = agg_state.entry(GroupKey::of(&key_vals)).or_insert_with(|| {
                            (
                                key_vals.clone(),
                                aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
                            )
                        });
                        for (acc, spec) in entry.1.iter_mut().zip(aggs.iter()) {
                            match &spec.arg {
                                Some(e) => acc.update(&e.eval(&row)),
                                None => acc.update(&Value::Int32(1)),
                            }
                        }
                    }
                }
            };
        // reusable, cache-resident selection vector
        let mut sel: Vec<u32> = Vec::with_capacity(vs);
        let mut start = 0usize;
        while start < n {
            let end = (start + vs).min(n);
            sel.clear();
            match &overlay {
                // Tombstones filter the fresh selection vector like a
                // zeroth primitive.
                Some(o) if !o.dead.is_empty() => {
                    sel.extend((start as u32..end as u32).filter(|&i| !o.is_dead(i as usize)))
                }
                _ => sel.extend(start as u32..end as u32),
            }
            // one primitive call per kernel per vector
            for k in &kernels {
                filter_vector(k, &mut sel);
                if sel.is_empty() {
                    break;
                }
            }
            for &i in &sel {
                let row = materialize(t, i as usize, &needed);
                feed(row, &mut out, &mut agg_state);
            }
            start = end;
        }
        // The delta tail: decoded rows appended after the main store, with
        // the predicates interpreted per row (no dictionary codes to test).
        if let Some(o) = &overlay {
            let width = t.schema().len();
            for r in o.live_tail() {
                if !tail_row_passes(&shape.preds, r) {
                    continue;
                }
                feed(masked_tail_row(r, &needed, width), &mut out, &mut agg_state);
            }
        }
        if let VecSink::Aggregate { group_by, aggs } = &shape.sink {
            if agg_state.is_empty() && group_by.is_empty() {
                let accs: Vec<Accumulator> =
                    aggs.iter().map(|a| Accumulator::new(a.func)).collect();
                out.rows.push(accs.iter().map(|a| a.finish()).collect());
            } else {
                for (mut keys, accs) in agg_state.into_values() {
                    keys.extend(accs.iter().map(|a| a.finish()));
                    out.rows.push(keys);
                }
            }
        }
        if let Some(limit) = shape.limit {
            out.rows.truncate(limit);
        }
        Ok(out)
    }
}

/// One primitive call: keep the positions of the vector that satisfy the
/// kernel. The variant is matched **once**; the retained loop is tight.
fn filter_vector(k: &PredKernel<'_>, sel: &mut Vec<u32>) {
    sel.retain(|&i| k.test(i as usize));
}

fn materialize(t: &Table, i: usize, needed: &[ColId]) -> Vec<Value> {
    let mut row = vec![Value::Null; t.schema().len()];
    for &c in needed {
        row[c] = t.get(i, c).expect("in-range");
    }
    row
}

enum VecSink {
    /// Output rows, optionally projected.
    Collect(Option<Vec<Expr>>),
    /// Hash aggregation.
    Aggregate {
        group_by: Vec<Expr>,
        aggs: Vec<AggExpr>,
    },
}

struct VecShape<'p> {
    table: &'p str,
    preds: Vec<Expr>,
    sink: VecSink,
    limit: Option<usize>,
}

/// Recognize the single-table pipeline shapes this engine supports:
/// `[Limit] ([Project]|[Aggregate]) Select* Scan`.
fn recognize(plan: &LogicalPlan) -> Result<VecShape<'_>, ExecError> {
    let (limit, plan) = match plan {
        LogicalPlan::Limit { input, n } => (Some(*n), input.as_ref()),
        p => (None, p),
    };
    let (sink, mut cur) = match plan {
        LogicalPlan::Project { input, exprs } => {
            (VecSink::Collect(Some(exprs.clone())), input.as_ref())
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => (
            VecSink::Aggregate {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            input.as_ref(),
        ),
        p => (VecSink::Collect(None), p),
    };
    let mut preds = Vec::new();
    loop {
        match cur {
            LogicalPlan::Select { input, pred, .. } => {
                // preserve evaluation order: outer selects run later
                let mut cs: Vec<Expr> = conjuncts(pred).into_iter().cloned().collect();
                cs.extend(preds);
                preds = cs;
                cur = input.as_ref();
            }
            LogicalPlan::Scan { table } => {
                return Ok(VecShape {
                    table,
                    preds,
                    sink,
                    limit,
                })
            }
            other => {
                return Err(ExecError::Unsupported(format!(
                    "vectorized engine supports single-table scan pipelines, got {other:?}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledEngine;
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_plan::logical::AggFunc;
    use pdsm_storage::{ColumnDef, DataType, Schema};

    fn db() -> HashMap<String, Table> {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int32),
                ColumnDef::new("b", DataType::Int32),
                ColumnDef::new("s", DataType::Str),
            ]),
        );
        for i in 0..5000 {
            t.insert(&[
                Value::Int32(i),
                Value::Int32(i % 13),
                Value::Str(format!("g{}", i % 4)),
            ])
            .unwrap();
        }
        let mut m = HashMap::new();
        m.insert("t".to_string(), t);
        m
    }

    #[test]
    fn matches_compiled_on_filter_aggregate() {
        let d = db();
        let plan = QueryBuilder::scan("t")
            .filter(
                Expr::col(1)
                    .eq(Expr::lit(3))
                    .and(Expr::col(0).lt(Expr::lit(2500))),
            )
            .aggregate(
                vec![Expr::col(2)],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(0)),
                ],
            )
            .build();
        let v = VectorizedEngine::default().execute(&plan, &d).unwrap();
        let c = CompiledEngine.execute(&plan, &d).unwrap();
        v.assert_same(&c, "vectorized vs compiled");
    }

    #[test]
    fn vector_size_does_not_change_results() {
        let d = db();
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(2).like("g1%"))
            .project(vec![Expr::col(0)])
            .build();
        let reference = VectorizedEngine::with_vector_size(1)
            .execute(&plan, &d)
            .unwrap();
        for vs in [7, 64, 1024, 1 << 20] {
            let out = VectorizedEngine::with_vector_size(vs)
                .execute(&plan, &d)
                .unwrap();
            assert_eq!(out.rows, reference.rows, "vector size {vs}");
        }
    }

    #[test]
    fn scalar_aggregate_and_empty_result() {
        let d = db();
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(0).eq(Expr::lit(-1)))
            .aggregate(vec![], vec![AggExpr::count_star()])
            .build();
        let out = VectorizedEngine::default().execute(&plan, &d).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int64(0)]]);
    }

    #[test]
    fn limit_applies() {
        let d = db();
        let plan = QueryBuilder::scan("t")
            .project(vec![Expr::col(0)])
            .limit(17)
            .build();
        let out = VectorizedEngine::default().execute(&plan, &d).unwrap();
        assert_eq!(out.len(), 17);
    }

    #[test]
    fn joins_unsupported() {
        let d = db();
        let plan = QueryBuilder::scan("t")
            .join(QueryBuilder::scan("t").build(), Expr::col(0), Expr::col(0))
            .build();
        assert!(matches!(
            VectorizedEngine::default().execute(&plan, &d),
            Err(ExecError::Unsupported(_))
        ));
    }

    #[test]
    fn stacked_selects_preserve_order() {
        let d = db();
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(1).lt(Expr::lit(5)))
            .filter(Expr::col(0).gt(Expr::lit(100)))
            .project(vec![Expr::col(0), Expr::col(1)])
            .build();
        let v = VectorizedEngine::default().execute(&plan, &d).unwrap();
        let c = CompiledEngine.execute(&plan, &d).unwrap();
        v.assert_same(&c, "stacked selects");
    }
}
